/**
 * @file
 * Families 3 and 6: pool-concurrency (token-level) and pool-escape
 * (semantic).
 *
 * Lambdas submitted to exec::Pool::parallelFor or the runSweep /
 * runIndexSweep templates execute concurrently.  A capture that
 * writes shared state from inside such a lambda is a data race
 * unless one of the sanctioned patterns applies:
 *
 *   per-index slot    results[i] = ...; the subscript names a lambda
 *                     parameter (the task index) so each task owns a
 *                     disjoint element — the pattern runSweep itself
 *                     uses for its ordered reduction.
 *   lock in scope     a lock_guard / scoped_lock / unique_lock /
 *                     shared_lock declared in the lambda body.
 *   atomic target     the written variable is declared std::atomic.
 *
 * The token-level family (checkPoolConcurrency) is local to one file
 * and only looks at by-reference captures — fast, and the way the
 * bug is usually written.  The semantic family (checkPoolEscape)
 * runs over the whole project's symbol index and call graph and
 * additionally catches what the token scan provably cannot:
 *
 *   pool-escape.pointer-capture-write   a pointer captured BY VALUE
 *       whose pointee is written — the copy aliases the same object,
 *       so tasks still race (the token family bails out on by-value
 *       capture lists)
 *   pool-escape.global-write            a namespace-scope variable
 *       written directly or any bounded number of calls deep
 *       (globals need no capture at all)
 *   pool-escape.field-write             a member field written via
 *       the captured this (directly or through a same-class method)
 *   pool-escape.capture-write           a by-ref capture written in
 *       the task body (the semantic version of the token rule)
 *   pool-escape.param-alias-write       an escaped object passed to
 *       a callee that writes through that parameter
 *
 * Both families share the waiver: // vsgpu-lint: shared-ok(<reason>).
 *
 * This file also hosts the pool-happens-before family (v3), which
 * models the pool's synchronization protocol rather than its data
 * races: parallelFor/runSweep block until every task joins, so
 * writes before submission happen-before the tasks and reads after
 * the call happen-after them — neither is ever diagnosed.  What IS
 * diagnosed is what the protocol cannot order:
 *
 *   pool-happens-before.nested-submit   a task body that submits to
 *       the pool again, directly or any number of calls deep —
 *       exec::Pool is not reentrant, so a worker waiting on an inner
 *       batch deadlocks the outer one
 *   pool-happens-before.cross-task-read a task that writes its own
 *       per-index slot but reads a neighbouring slot (c[i - 1]) in
 *       the same phase — the neighbour is written concurrently, and
 *       no intra-batch ordering exists
 *
 * Waiver: // vsgpu-lint: hb-ok(<reason>).
 */

#include "concurrency_model.hh"
#include "dataflow.hh"
#include "semantic.hh"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <utility>

namespace vsgpu::lint
{

namespace
{

using TokenVec = std::vector<Token>;
using cm::NameSet;
using cm::PoolLambda;
using cm::findPoolLambdas;
using cm::indexAliasNames;
using cm::indexedByParam;
using cm::isAssignOp;
using cm::isLockType;
using cm::isMutatingMember;
using cm::localNames;
using cm::paramNames;
using cm::skipBalanced;

/** Names declared std::atomic<...> anywhere in the file. */
NameSet
atomicNames(const TokenVec &tokens)
{
    NameSet atomics;
    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
        if (tokens[i].text != "atomic" &&
            tokens[i].text != "atomic_flag")
            continue;
        std::size_t j = i + 1;
        if (tokens[j].text == "<") {
            int depth = 0;
            for (; j < tokens.size(); ++j) {
                if (tokens[j].text == "<")
                    ++depth;
                else if (tokens[j].text == ">")
                    --depth;
                else if (tokens[j].text == ">>")
                    depth -= 2;
                if (depth <= 0) {
                    ++j;
                    break;
                }
            }
        }
        if (j < tokens.size() &&
            tokens[j].kind == Token::Kind::Identifier)
            atomics.insert(std::string(tokens[j].text));
    }
    return atomics;
}

/** Names declared const/constexpr anywhere in the file — a const
 *  object cannot be assigned, so a "write" finding against one is
 *  always a misparse (the FP class this set suppresses). */
NameSet
constDeclNames(const TokenVec &tokens)
{
    NameSet names;
    for (std::size_t i = 1; i + 1 < tokens.size(); ++i) {
        if (tokens[i].kind != Token::Kind::Identifier)
            continue;
        const std::string_view next = tokens[i + 1].text;
        if (next != "=" && next != ";" && next != "{")
            continue;
        const Token &prev = tokens[i - 1];
        const bool typeBefore =
            prev.kind == Token::Kind::Identifier || prev.text == ">" ||
            prev.text == "&" || prev.text == "*";
        if (!typeBefore)
            continue;
        // Statement window: back to the nearest ; { or }.
        bool hasConst = false;
        for (std::size_t k = i; k > 0; --k) {
            const std::string_view t = tokens[k - 1].text;
            if (t == ";" || t == "{" || t == "}")
                break;
            if (t == "const" || t == "constexpr")
                hasConst = true;
        }
        if (hasConst)
            names.insert(std::string(tokens[i].text));
    }
    return names;
}

struct LambdaScan
{
    const SourceFile &src;
    const TokenVec &tokens;
    const NameSet &atomics;
    const NameSet &consts;
    std::vector<Diagnostic> &out;
};

/** Analyze one by-reference lambda body submitted to the pool. */
void
analyzeLambda(LambdaScan &scan, const PoolLambda &lam)
{
    const TokenVec &tokens = scan.tokens;
    const std::size_t bodyBegin = lam.bodyBegin;
    const std::size_t bodyEnd = lam.bodyEnd;

    bool defaultRef = false;
    NameSet refCaptures;
    for (std::size_t i = lam.captBegin + 1; i < lam.captEnd; ++i) {
        if (tokens[i].text != "&")
            continue;
        if (i + 1 < lam.captEnd &&
            tokens[i + 1].kind == Token::Kind::Identifier)
            refCaptures.insert(std::string(tokens[i + 1].text));
        else
            defaultRef = true;
    }
    if (!defaultRef && refCaptures.empty())
        return; // by-value only: the semantic family's territory

    const NameSet taskParams =
        lam.paramOpen < lam.paramClose
            ? paramNames(tokens, lam.paramOpen, lam.paramClose)
            : NameSet{};
    const NameSet params =
        indexAliasNames(tokens, bodyBegin, bodyEnd, taskParams);
    const NameSet locals = localNames(tokens, bodyBegin, bodyEnd);

    bool lockHeld = false;
    for (std::size_t i = bodyBegin; i < bodyEnd; ++i)
        if (tokens[i].kind == Token::Kind::Identifier &&
            isLockType(tokens[i].text))
            lockHeld = true;
    if (lockHeld)
        return;

    auto isSharedName = [&](std::string_view name) {
        if (params.count(name) > 0 || locals.count(name) > 0 ||
            scan.atomics.count(name) > 0 ||
            scan.consts.count(name) > 0)
            return false;
        return defaultRef || refCaptures.count(name) > 0;
    };

    auto diagnose = [&](const Token &name, const char *what) {
        const int line = scan.src.lineOf(name.offset);
        if (scan.src.hasWaiver(line, "vsgpu-lint: shared-ok"))
            return;
        scan.out.push_back(
            {scan.src.display(), line, Check::PoolConcurrency,
             std::string(what) + " '" + std::string(name.text) +
                 "' captured by reference in a pool task without a "
                 "lock, atomic, or per-task-index slot — concurrent "
                 "tasks race; index by the task parameter, guard "
                 "with std::lock_guard, or make it atomic",
             ""});
    };

    for (std::size_t i = bodyBegin; i < bodyEnd; ++i) {
        if (tokens[i].kind != Token::Kind::Identifier)
            continue;
        const Token &root = tokens[i];
        // `auto [lo, hi] = f();` is a structured-binding
        // declaration, not a write through a subscript chain.
        if (root.text == "auto")
            continue;
        // Follow the postfix chain: x, x.y, x->y, x[...], x(...).
        std::size_t j = i + 1;
        while (j < bodyEnd) {
            if (tokens[j].text == "." || tokens[j].text == "->") {
                j += 2;
            } else if (tokens[j].text == "[") {
                j = skipBalanced(tokens, j, "[", "]") + 1;
            } else {
                break;
            }
        }
        if (j >= bodyEnd) {
            i = j;
            continue;
        }
        const bool chained = j != i + 1;
        if (isAssignOp(tokens[j].text)) {
            // Plain write through the chain root.
            const std::string_view prevText =
                i > bodyBegin ? tokens[i - 1].text
                              : std::string_view{};
            const bool declaration =
                !chained && i > bodyBegin &&
                ((tokens[i - 1].kind == Token::Kind::Identifier &&
                  !isAssignOp(prevText)) ||
                 prevText == ">" || prevText == "&" ||
                 prevText == "*");
            if (!declaration && isSharedName(root.text) &&
                !indexedByParam(tokens, i, j, params))
                diagnose(root, "write to");
            i = j;
            continue;
        }
        if (chained && tokens[j - 1].kind == Token::Kind::Identifier &&
            isMutatingMember(tokens[j - 1].text) &&
            tokens[j].text == "(") {
            if (isSharedName(root.text) &&
                !indexedByParam(tokens, i, j, params))
                diagnose(root, "mutating call on");
            i = j;
            continue;
        }
    }
}

} // namespace

void
checkPoolConcurrency(const SourceFile &src,
                     std::vector<Diagnostic> &out)
{
    const TokenVec tokens = tokenize(src.code());
    const NameSet atomics = atomicNames(tokens);
    const NameSet consts = constDeclNames(tokens);
    LambdaScan scan{src, tokens, atomics, consts, out};

    for (const PoolLambda &lam : findPoolLambdas(tokens))
        analyzeLambda(scan, lam);
}

// ====================================================================
// Family 6: pool-escape (semantic, project-wide)
// ====================================================================

namespace
{

/** Escape analysis of one pool task body. */
class EscapeAnalysis
{
  public:
    EscapeAnalysis(const Project &project, int fileIndex,
                   const PoolLambda &lam,
                   std::vector<Diagnostic> &out)
        : project_(project), index_(project.index()),
          fileIndex_(fileIndex),
          src_(project.sources()[static_cast<std::size_t>(
              fileIndex)]),
          tokens_(project.tokens(fileIndex)), lam_(lam), out_(out)
    {
    }

    void
    run()
    {
        parseCaptures();
        for (std::size_t i = lam_.bodyBegin; i < lam_.bodyEnd; ++i)
            if (tokens_[i].kind == Token::Kind::Identifier &&
                isLockType(tokens_[i].text))
                return; // serialized body
        params_ = lam_.paramOpen < lam_.paramClose
                      ? paramNames(tokens_, lam_.paramOpen,
                                   lam_.paramClose)
                      : NameSet{};
        indexNames_ = indexAliasNames(tokens_, lam_.bodyBegin,
                                      lam_.bodyEnd, params_);
        locals_ = localNames(tokens_, lam_.bodyBegin, lam_.bodyEnd);
        enclosingClass_ = findEnclosingClass();

        const df::Cfg cfg =
            df::buildCfg(tokens_, lam_.bodyBegin, lam_.bodyEnd);
        for (const df::Block &block : cfg.blocks)
            for (const df::Stmt &stmt : block.stmts) {
                if (stmt.declares)
                    locals_.insert(stmt.defs.begin(),
                                   stmt.defs.end());
            }
        for (const df::Block &block : cfg.blocks)
            for (const df::Stmt &stmt : block.stmts)
                visitStmt(stmt);
    }

  private:
    enum class Kind
    {
        None,
        Capture,
        PointerCapture,
        Global,
        Field,
    };

    void
    parseCaptures()
    {
        for (std::size_t i = lam_.captBegin + 1; i < lam_.captEnd;
             ++i) {
            const std::string_view t = tokens_[i].text;
            if (t == "&") {
                if (i + 1 < lam_.captEnd &&
                    tokens_[i + 1].kind == Token::Kind::Identifier) {
                    refCaptures_.insert(
                        std::string(tokens_[i + 1].text));
                    ++i;
                } else {
                    defaultRef_ = true;
                }
                continue;
            }
            if (t == "=") {
                defaultCopy_ = true;
                continue;
            }
            if (t == "this") {
                capturesThis_ = true;
                continue;
            }
            if (tokens_[i].kind == Token::Kind::Identifier) {
                valueCaptures_.insert(std::string(t));
                // Init capture [p = expr]: skip the initializer.
                if (i + 1 < lam_.captEnd &&
                    tokens_[i + 1].text == "=") {
                    int depth = 0;
                    for (++i; i < lam_.captEnd; ++i) {
                        const std::string_view s = tokens_[i].text;
                        if (s == "(" || s == "[" || s == "{")
                            ++depth;
                        else if (s == ")" || s == "]" || s == "}")
                            --depth;
                        else if (s == "," && depth == 0)
                            break;
                    }
                }
            }
        }
        if (defaultRef_ || defaultCopy_)
            capturesThis_ = true; // [&]/[=] capture this implicitly
    }

    std::string
    findEnclosingClass() const
    {
        std::string cls;
        std::size_t best = 0;
        for (const FunctionDef &fn : index_.functions) {
            if (fn.fileIndex != fileIndex_)
                continue;
            if (fn.bodyBegin <= lam_.captBegin &&
                lam_.captBegin < fn.bodyEnd &&
                fn.bodyBegin >= best) {
                best = fn.bodyBegin;
                cls = fn.className;
            }
        }
        return cls;
    }

    bool
    isEnclosingField(const std::string &name) const
    {
        if (enclosingClass_.empty())
            return false;
        const auto it = index_.classFields.find(enclosingClass_);
        return it != index_.classFields.end() &&
               it->second.count(name) > 0;
    }

    /** Classify a write to @p name (through = indirect write). */
    Kind
    classify(const std::string &name, bool through) const
    {
        if (name == "this")
            return capturesThis_ ? Kind::Field : Kind::None;
        if (params_.count(name) || locals_.count(name) ||
            index_.atomics.count(name) ||
            index_.constNames.count(name))
            return Kind::None;
        if (capturesThis_ && isEnclosingField(name))
            return Kind::Field;
        if (index_.globals.count(name))
            return Kind::Global;
        if (refCaptures_.count(name))
            return Kind::Capture;
        if ((valueCaptures_.count(name) || defaultCopy_) &&
            index_.pointerNames.count(name) && through)
            return Kind::PointerCapture;
        if (defaultRef_)
            return Kind::Capture;
        return Kind::None;
    }

    void
    diagnose(std::size_t offset, const std::string &id,
             std::string message)
    {
        const int line = src_.lineOf(offset);
        if (src_.hasWaiver(line, "vsgpu-lint: shared-ok"))
            return;
        const std::string key =
            id + ":" + std::to_string(line) + ":" + message;
        if (!seen_.insert(key).second)
            return;
        out_.push_back({src_.display(), line, Check::PoolEscape,
                        std::move(message), id});
    }

    void
    diagnoseWrite(Kind kind, const std::string &name,
                  std::size_t offset, const std::string &how)
    {
        switch (kind) {
          case Kind::None:
            return;
          case Kind::Capture:
            diagnose(offset, "pool-escape.capture-write",
                     "pool task " + how + " captured '" + name +
                         "' shared across concurrent tasks — index "
                         "by the task parameter, guard with a lock, "
                         "or make it atomic");
            return;
          case Kind::PointerCapture:
            diagnose(offset, "pool-escape.pointer-capture-write",
                     "pool task " + how + " the pointee of '" +
                         name +
                         "' captured by value — the copied pointer "
                         "aliases the same object, so concurrent "
                         "tasks still race on it");
            return;
          case Kind::Global:
            diagnose(offset, "pool-escape.global-write",
                     "pool task " + how + " global '" + name +
                         "' — globals are shared across every "
                         "concurrent task without any capture");
            return;
          case Kind::Field:
            diagnose(offset, "pool-escape.field-write",
                     "pool task " + how + " member field '" + name +
                         "' through the captured this — fields are "
                         "shared across concurrent tasks");
            return;
        }
    }

    void
    visitStmt(const df::Stmt &stmt)
    {
        // Per-index slot: a subscript naming a task parameter (or
        // an integer local derived from one) on the WRITTEN lvalue
        // suppresses the write (the runSweep pattern).  Only the
        // left-hand side counts — `*ptr += samples[i]` still races
        // on the pointee even though the read is indexed.
        std::size_t lhsEnd = stmt.tokEnd;
        {
            int depth = 0;
            for (std::size_t i = stmt.tokBegin; i < stmt.tokEnd;
                 ++i) {
                const std::string_view t = tokens_[i].text;
                if (t == "(" || t == "[" || t == "{")
                    ++depth;
                else if (t == ")" || t == "]" || t == "}")
                    --depth;
                else if (depth == 0 && isAssignOp(t)) {
                    lhsEnd = i;
                    break;
                }
            }
        }
        const bool perIndex = indexedByParam(
            tokens_, stmt.tokBegin, lhsEnd, indexNames_);

        if (!stmt.declares && !perIndex)
            for (const std::string &def : stmt.defs)
                diagnoseWrite(classify(def, stmt.defThrough), def,
                              stmt.offset, "writes");

        for (const df::CallRef &call : stmt.calls) {
            // For a mutating member call the "lvalue" is the
            // receiver chain, which ends at the callee name.
            std::size_t callTok = stmt.tokEnd;
            for (std::size_t i = stmt.tokBegin; i < stmt.tokEnd;
                 ++i)
                if (tokens_[i].offset == call.nameOffset) {
                    callTok = i;
                    break;
                }
            const bool perIndexCall = indexedByParam(
                tokens_, stmt.tokBegin, callTok, indexNames_);
            if (!call.receiver.empty() &&
                isMutatingMember(call.callee) && !perIndexCall) {
                diagnoseWrite(classify(call.receiver, true),
                              call.receiver, call.nameOffset,
                              "mutates");
                continue;
            }
            if (locals_.count(call.callee) ||
                params_.count(call.callee))
                continue;
            visitCall(call);
        }
    }

    /** Transitive effects through the call graph. */
    void
    visitCall(const df::CallRef &call)
    {
        for (int id : project_.lookup(call.callee)) {
            const FunctionDef &callee =
                index_.functions[static_cast<std::size_t>(id)];
            if (callee.takesLock)
                continue;
            for (const std::string &g : callee.writesGlobals) {
                if (index_.atomics.count(g))
                    continue;
                const auto via = callee.effectVia.find(g);
                diagnose(call.nameOffset,
                         "pool-escape.global-write",
                         "pool task calls '" + callee.name +
                             "' which writes shared global '" + g +
                             "'" +
                             (via == callee.effectVia.end()
                                  ? std::string{}
                                  : " (" + via->second + ")") +
                             " — concurrent tasks race on it");
            }
            for (int p : callee.writesParams) {
                if (static_cast<std::size_t>(p) >=
                    call.args.size())
                    continue;
                for (const std::string &root :
                     call.args[static_cast<std::size_t>(p)]) {
                    if (classify(root, true) == Kind::None)
                        continue;
                    diagnose(
                        call.nameOffset,
                        "pool-escape.param-alias-write",
                        "pool task passes shared '" + root +
                            "' to '" + callee.name +
                            "', which writes through that "
                            "parameter — concurrent tasks race on "
                            "the shared object");
                }
            }
            if (!call.receiver.empty() && callee.writesFields &&
                !callee.className.empty() &&
                classify(call.receiver, true) != Kind::None) {
                diagnose(call.nameOffset,
                         "pool-escape.field-write",
                         "pool task calls '" + call.receiver + "." +
                             callee.name +
                             "()', which mutates the shared "
                             "object's fields — concurrent tasks "
                             "race on it");
            }
        }
    }

    const Project &project_;
    const SymbolIndex &index_;
    int fileIndex_;
    const SourceFile &src_;
    const TokenVec &tokens_;
    PoolLambda lam_;
    std::vector<Diagnostic> &out_;

    bool defaultRef_ = false;
    bool defaultCopy_ = false;
    bool capturesThis_ = false;
    NameSet refCaptures_;
    NameSet valueCaptures_;
    NameSet params_;
    NameSet indexNames_;
    NameSet locals_;
    std::string enclosingClass_;
    std::set<std::string> seen_;
};

} // namespace

void
checkPoolEscape(const Project &project, std::vector<Diagnostic> &out)
{
    for (std::size_t f = 0; f < project.sources().size(); ++f) {
        const TokenVec &tokens =
            project.tokens(static_cast<int>(f));
        for (const PoolLambda &lam : findPoolLambdas(tokens)) {
            EscapeAnalysis analysis(project, static_cast<int>(f),
                                    lam, out);
            analysis.run();
        }
    }
}

// ====================================================================
// Family: pool-happens-before (semantic, project-wide)
// ====================================================================

namespace
{

/**
 * "Submits to the pool" closure over the call graph, with the
 * strictest possible resolution: a function counts only when every
 * same-named candidate of one of its callees already counts.
 * Overload merging therefore cannot manufacture a nested-submit
 * finding — one non-submitting overload vetoes the whole name.
 */
struct SubmitClosure
{
    std::vector<char> reaches;
    std::vector<std::string> path; ///< "f -> g" provenance chain

    explicit SubmitClosure(const SymbolIndex &index)
    {
        const std::size_t n = index.functions.size();
        reaches.assign(n, 0);
        path.assign(n, {});
        for (std::size_t i = 0; i < n; ++i)
            reaches[i] = index.functions[i].submitsToPool ? 1 : 0;
        for (int round = 0; round < 8; ++round) {
            bool changed = false;
            for (std::size_t i = 0; i < n; ++i) {
                if (reaches[i])
                    continue;
                const FunctionDef &fn = index.functions[i];
                for (const std::string &callee : fn.calls) {
                    const auto it = index.byName.find(callee);
                    if (it == index.byName.end() ||
                        it->second.empty())
                        continue;
                    bool all = true;
                    int first = -1;
                    for (int id : it->second) {
                        if (static_cast<std::size_t>(id) == i ||
                            !reaches[static_cast<std::size_t>(id)]) {
                            all = false;
                            break;
                        }
                        if (first < 0)
                            first = id;
                    }
                    if (!all || first < 0)
                        continue;
                    reaches[i] = 1;
                    const std::string &sub =
                        path[static_cast<std::size_t>(first)];
                    path[i] = sub.empty() ? callee
                                          : callee + " -> " + sub;
                    changed = true;
                    break;
                }
            }
            if (!changed)
                break;
        }
    }
};

/** Analyze one pool task body for happens-before violations. */
void
analyzeHappensBefore(const Project &project, int fileIndex,
                     const PoolLambda &lam,
                     const SubmitClosure &closure,
                     std::vector<Diagnostic> &out)
{
    const SymbolIndex &index = project.index();
    const SourceFile &src =
        project.sources()[static_cast<std::size_t>(fileIndex)];
    const TokenVec &tokens = project.tokens(fileIndex);

    const NameSet taskParams =
        lam.paramOpen < lam.paramClose
            ? paramNames(tokens, lam.paramOpen, lam.paramClose)
            : NameSet{};
    const NameSet aliases = indexAliasNames(
        tokens, lam.bodyBegin, lam.bodyEnd, taskParams);
    const NameSet locals =
        localNames(tokens, lam.bodyBegin, lam.bodyEnd);

    auto diagnose = [&](std::size_t offset, const std::string &id,
                        std::string message) {
        const int line = src.lineOf(offset);
        if (src.hasWaiver(line, "vsgpu-lint: hb-ok"))
            return;
        out.push_back({src.display(), line,
                       Check::PoolHappensBefore, std::move(message),
                       id, cm::columnOf(src, offset)});
    };

    // --- nested-submit: direct tokens and strict call paths -------
    for (std::size_t i = lam.bodyBegin; i < lam.bodyEnd; ++i) {
        const Token &tok = tokens[i];
        if (tok.kind != Token::Kind::Identifier)
            continue;
        if (i + 1 >= lam.bodyEnd || tokens[i + 1].text != "(")
            continue;
        const std::string name(tok.text);
        if (cm::isPoolSubmitName(name)) {
            diagnose(tok.offset, "pool-happens-before.nested-submit",
                     "pool task submits '" + name +
                         "' to the pool from inside a task — "
                         "exec::Pool is not reentrant; a worker "
                         "blocking on the inner batch deadlocks the "
                         "outer one; hoist the inner submission out "
                         "of the task body");
            continue;
        }
        if (locals.count(name) || taskParams.count(name))
            continue;
        const auto it = index.byName.find(name);
        if (it == index.byName.end() || it->second.empty())
            continue;
        bool all = true;
        int first = -1;
        for (int id : it->second) {
            if (!closure.reaches[static_cast<std::size_t>(id)]) {
                all = false;
                break;
            }
            if (first < 0)
                first = id;
        }
        if (!all || first < 0)
            continue;
        const std::string &sub =
            closure.path[static_cast<std::size_t>(first)];
        diagnose(tok.offset, "pool-happens-before.nested-submit",
                 "pool task calls '" + name +
                     "', which submits to the pool" +
                     (sub.empty() ? std::string{}
                                  : " (via " + sub + ")") +
                     " — exec::Pool is not reentrant; the nested "
                     "batch deadlocks the outer one");
    }

    // --- cross-task-read: same-phase neighbour-slot access --------
    // First pass: container names written through a pure per-index
    // subscript (c[i] = ... / c[i] += ...).
    NameSet perIndexWritten;
    for (std::size_t i = lam.bodyBegin; i + 1 < lam.bodyEnd; ++i) {
        if (tokens[i].kind != Token::Kind::Identifier ||
            tokens[i + 1].text != "[")
            continue;
        const std::size_t close =
            skipBalanced(tokens, i + 1, "[", "]");
        if (close + 1 >= lam.bodyEnd ||
            !isAssignOp(tokens[close + 1].text))
            continue;
        bool pureIndex = close == i + 3 &&
                         tokens[i + 2].kind ==
                             Token::Kind::Identifier &&
                         aliases.count(tokens[i + 2].text) > 0;
        if (pureIndex && !locals.count(tokens[i].text))
            perIndexWritten.insert(std::string(tokens[i].text));
    }
    // Second pass: reads of those containers at an offset subscript
    // (c[i - 1], c[i + 1]) — the neighbour slot belongs to a
    // concurrently running task.  One finding per container is
    // enough: a stencil reads both neighbours on one line.
    NameSet reported;
    for (std::size_t i = lam.bodyBegin; i + 1 < lam.bodyEnd; ++i) {
        if (tokens[i].kind != Token::Kind::Identifier ||
            tokens[i + 1].text != "[")
            continue;
        const std::string base(tokens[i].text);
        const std::size_t close =
            skipBalanced(tokens, i + 1, "[", "]");
        if (!perIndexWritten.count(base) || reported.count(base)) {
            i = close;
            continue;
        }
        bool hasAlias = false;
        bool hasOffset = false;
        for (std::size_t j = i + 2; j < close; ++j) {
            if (tokens[j].kind == Token::Kind::Identifier &&
                aliases.count(tokens[j].text))
                hasAlias = true;
            if ((tokens[j].text == "+" || tokens[j].text == "-") &&
                j + 1 < close &&
                tokens[j + 1].kind == Token::Kind::Number)
                hasOffset = true;
        }
        if (hasAlias && hasOffset) {
            reported.insert(base);
            diagnose(
                tokens[i].offset,
                "pool-happens-before.cross-task-read",
                "pool task reads neighbour slot of '" + base +
                    "' that a concurrent task writes in the same "
                    "phase — no intra-batch ordering exists; split "
                    "into two pool phases (the join between them is "
                    "the happens-before edge) or double-buffer");
        }
        i = close;
    }
}

} // namespace

void
checkPoolHappensBefore(const Project &project,
                       std::vector<Diagnostic> &out)
{
    const SubmitClosure closure(project.index());
    for (std::size_t f = 0; f < project.sources().size(); ++f) {
        const TokenVec &tokens =
            project.tokens(static_cast<int>(f));
        for (const PoolLambda &lam : findPoolLambdas(tokens))
            analyzeHappensBefore(project, static_cast<int>(f), lam,
                                 closure, out);
    }
}

void
dedupeFamilyOverlap(std::vector<Diagnostic> &diags)
{
    // The token-level pool-concurrency family and the semantic pool
    // families intentionally overlap on the simple cases; when both
    // fire on the same line, the semantic finding (better message,
    // dotted id, provenance) wins and the token one is dropped.
    std::set<std::pair<std::string, int>> semanticAt;
    for (const Diagnostic &d : diags)
        if (d.check == Check::PoolEscape ||
            d.check == Check::PoolHappensBefore)
            semanticAt.insert({d.file, d.line});
    diags.erase(std::remove_if(
                    diags.begin(), diags.end(),
                    [&](const Diagnostic &d) {
                        return d.check == Check::PoolConcurrency &&
                               semanticAt.count({d.file, d.line}) >
                                   0;
                    }),
                diags.end());

    // The lifetime families overlap the same way: one malformed
    // statement (a moved-from container iterated, a view of an
    // erased element) often trips more than one model.  At one
    // file:line the most specific diagnosis wins: use-after-move
    // outranks iterator-invalidation outranks dangling-view.
    std::set<std::pair<std::string, int>> moveAt;
    std::set<std::pair<std::string, int>> iterAt;
    for (const Diagnostic &d : diags) {
        if (d.check == Check::UseAfterMove)
            moveAt.insert({d.file, d.line});
        else if (d.check == Check::IterInvalidation)
            iterAt.insert({d.file, d.line});
    }
    diags.erase(
        std::remove_if(
            diags.begin(), diags.end(),
            [&](const Diagnostic &d) {
                const std::pair<std::string, int> key{d.file,
                                                      d.line};
                if (d.check == Check::IterInvalidation)
                    return moveAt.count(key) > 0;
                if (d.check == Check::DanglingView)
                    return moveAt.count(key) > 0 ||
                           iterAt.count(key) > 0;
                return false;
            }),
        diags.end());
}

} // namespace vsgpu::lint
