/**
 * @file
 * `vsgpu_lint --explain <id>`: the rationale, a minimal
 * violating/fixed example pair, and the waiver syntax for a
 * diagnostic id or family name.
 *
 * The examples are distilled from the fixture corpus under
 * tests/lint/fixtures/ — each *_violate fixture is the smallest
 * program a family fires on and the *_clean twin the smallest fix —
 * so --explain stays in sync with what the analysis actually
 * accepts.  Explanations are keyed by family; asking for a dotted id
 * ("lock-discipline.order-cycle") prints the family entry with the
 * sub-rule's specifics first.
 */

#include "lint.hh"

#include <map>
#include <ostream>
#include <string>

namespace vsgpu::lint
{

namespace
{

struct SubRule
{
    std::string_view id; ///< suffix after the family dot
    std::string_view what;
};

struct Explanation
{
    std::string_view family;
    std::string_view rationale;
    std::string_view violating;
    std::string_view fixed;
    std::string_view waiver;
    std::initializer_list<SubRule> subRules;
};

// clang-format off
const Explanation kExplanations[] = {
    {"unit-safety",
     "Raw double/float in a converted public header defeats the "
     "Quantity type system: the compiler can no longer reject a "
     "volts-for-amps mixup at the call site.",
     "    struct Rail { double voltage; };     // in a src/pdn header",
     "    struct Rail { Volts voltage; };",
     "// vsgpu-lint: raw-ok(<reason>)",
     {}},
    {"determinism",
     "Wall-clock reads, global RNG, and unordered-container "
     "iteration make two identical runs diverge, breaking golden "
     "files and the sweep identity tests.",
     "    auto seed = std::chrono::steady_clock::now();",
     "    auto rng = common::seededEngine(config.seed);",
     "// vsgpu-lint: nondet-ok / unordered-ok / iostream-ok(<reason>)",
     {}},
    {"pool-concurrency",
     "A by-reference capture written inside a parallelFor/runSweep "
     "lambda races with the sibling tasks of the same batch.",
     "    pool.parallelFor(n, [&](std::size_t i) { sum += f(i); });",
     "    pool.parallelFor(n, [&](std::size_t i) { out[i] = f(i); });",
     "// vsgpu-lint: shared-ok(<reason>)",
     {}},
    {"contracts",
     "A function tagged VSGPU_CONTRACT must state VSGPU_REQUIRES or "
     "VSGPU_ENSURES in its definition; an empty contract is a "
     "promise nobody checks.",
     "    VSGPU_CONTRACT void step();  // body states neither",
     "    VSGPU_CONTRACT void step() { VSGPU_REQUIRES(dt > 0.0); }",
     "(no waiver: state a contract or drop the tag)",
     {}},
    {"raw-escape",
     "Quantity::raw() outside the numeric core reintroduces the "
     "unitless doubles the type system exists to eliminate.",
     "    double v = rail.voltage.raw();       // in src/control",
     "    Volts v = rail.voltage;",
     "// vsgpu-lint: raw-escape-ok(<reason>)",
     {}},
    {"pool-escape",
     "Project-wide escape analysis of pool task bodies: shared "
     "state reachable without a capture (globals, this, value-"
     "captured pointers, callee writes any number of calls deep) "
     "written without a lock, atomic, or per-index slot.",
     "    pool.parallelFor(n, [=](std::size_t i) { bump(); });\n"
     "    // where bump() writes a namespace-scope counter",
     "    pool.parallelFor(n, [&](std::size_t i) {\n"
     "        counts[i] = localCount(i); });  // reduce after join",
     "// vsgpu-lint: shared-ok(<reason>)",
     {{"pointer-capture-write", "a value-captured pointer's pointee "
       "is written; the copy aliases the same object"},
      {"global-write", "a global written directly or via callees"},
      {"field-write", "a member written through captured this"},
      {"capture-write", "a by-ref capture written in the body"},
      {"param-alias-write", "a shared object passed to a callee "
       "that writes through that parameter"}}},
    {"unit-flow",
     "Dataflow unit-tagging: a raw() value tagged with one unit "
     "must not flow into arithmetic or parameters expecting "
     "another.",
     "    double r = volts.raw(); solver.setCurrent(r);",
     "    solver.setCurrent(amps);  // keep the Quantity type",
     "// vsgpu-lint: raw-ok(<reason>)",
     {}},
    {"determinism-taint",
     "Taint tracking from nondeterminism sources (clock, RNG, "
     "pointer-as-value, unordered iteration) into observable "
     "outputs: stats, traces, summary JSON.",
     "    stats.set(\"elapsed\", clock::now() - t0);",
     "    stats.set(\"steps\", stepCount);  // logical time only",
     "// vsgpu-lint: nondet-ok(<reason>)",
     {}},
    {"lock-discipline",
     "Interprocedural lock-set analysis: every acquisition (RAII "
     "guard, manual lock(), VSGPU_ACQUIRES promise, or a callee's "
     "transitive lock-set) feeds one global lock-order graph; "
     "holding mutexes in inconsistent orders across translation "
     "units is the classic deadlock that only a whole-project view "
     "can see.",
     "    // a.cc: lock(mu1) then lock(mu2)\n"
     "    // b.cc: lock(mu2) then helper() which locks mu1",
     "    // pick one order project-wide; or merge the critical\n"
     "    // sections under a single mutex",
     "// vsgpu-lint: lock-ok(<reason>)",
     {{"order-cycle", "mutexes acquired in opposite nesting orders "
       "somewhere in the project (cycle cited edge by edge)"},
      {"double-lock", "acquiring a held non-recursive mutex, "
       "directly or via a helper's lock-set"},
      {"unlock-without-lock", "unlock() with no live acquisition "
       "on that path"},
      {"guarded-by", "a VSGPU_GUARDED_BY(mu) variable accessed "
       "without mu held (ctors/dtors exempt)"},
      {"acquires-unfulfilled", "VSGPU_ACQUIRES(mu) declared but mu "
       "never acquired, even transitively"},
      {"excludes-violation", "calling a VSGPU_EXCLUDES(mu) "
       "function while holding mu"}}},
    {"atomics-misuse",
     "The boundary between atomics, locks, and plain memory: "
     "mixing them on one variable compiles silently and miscompiles "
     "under contention.",
     "    // a.cc: std::atomic<bool> ready;  b.cc: bool ready;\n"
     "    done = true;            // plain write\n"
     "    flag.store(true, std::memory_order_relaxed);",
     "    // one declaration, one discipline:\n"
     "    flag.store(true, std::memory_order_release);",
     "// vsgpu-lint: atomics-ok(<reason>)",
     {{"mixed-declaration", "one name atomic in one TU, plain in "
       "another (both declaration sites cited)"},
      {"unguarded-read", "a global every writer mutates under a "
       "lock, read without it"},
      {"relaxed-publish", "a relaxed store publishing earlier "
       "unguarded plain writes (flag-then-data)"}}},
    {"pool-happens-before",
     "parallelFor/runSweep block until every task joins: writes "
     "before submission and reads after return are ordered and "
     "never flagged.  Inside a batch there is NO ordering — nested "
     "submission deadlocks the non-reentrant pool, and reading a "
     "neighbour's slot races with the task writing it.",
     "    pool.parallelFor(n, [&](std::size_t i) {\n"
     "        next[i] = 0.5 * (curr[i - 1] + curr[i + 1]);\n"
     "        curr[i] = next[i]; });          // same-phase stencil",
     "    pool.parallelFor(n, [&](std::size_t i) {\n"
     "        next[i] = 0.5 * (curr[i - 1] + curr[i + 1]); });\n"
     "    curr.swap(next);  // the join is the happens-before edge",
     "// vsgpu-lint: hb-ok(<reason>)",
     {{"nested-submit", "a task body reaching a pool submission, "
       "directly or through any call path"},
      {"cross-task-read", "a task writing slot i but reading slot "
       "i +/- k written by a concurrent sibling"}}},
    {"fp-determinism",
     "FP addition is not associative: a lock or atomic makes a "
     "reduction race-free but leaves its order up to the scheduler, "
     "silently breaking the jobs-1-vs-N bitwise-identity invariant "
     "the sweep tests enforce.",
     "    pool.parallelFor(n, [&](std::size_t i) {\n"
     "        std::lock_guard<std::mutex> g(mu);\n"
     "        total += contribution(i); });   // order = schedule",
     "    pool.parallelFor(n, [&](std::size_t i) {\n"
     "        part[i] = contribution(i); });\n"
     "    for (double p : part) total += p;   // index order, stable",
     "// vsgpu-lint: fp-order-ok(<reason>)",
     {{"locked-reduction", "a serialized FP accumulation from a "
       "pool task (lock or atomic; order still unstable)"},
      {"unordered-reduction", "an FP sum iterating a container "
       "whose unordered-ness is declared in another TU"}}},
    {"use-after-move",
     "A moved-from object holds a valid-but-unspecified value; "
     "reading it is a silent logic bug.  The forward may-move "
     "dataflow sees moves directly and through sink-parameter "
     "helpers any bounded number of calls deep; reassignment, "
     "clear()/reset()/assign(), or passing the variable to a "
     "callee that writes it ends the moved-from state.",
     "    consume(std::move(batch));\n"
     "    log(batch.size());               // unspecified value",
     "    const std::size_t n = batch.size();\n"
     "    consume(std::move(batch));       // read before the move",
     "// vsgpu-lint: move-ok(<reason>)",
     {{"use", "a local or parameter read after a path moved its "
       "value away, nothing reinitializing in between"},
      {"double-move", "a second move of an already moved-from "
       "variable (usually the same value moved every loop "
       "iteration)"}}},
    {"dangling-view",
     "A view (string_view/span/reference/pointer) borrows storage "
     "it does not own and is safe only while the referent's region "
     "outlives everywhere the view escapes to — the outlives "
     "lattice Temporary < Local < Param < Field < Global.",
     "    std::string_view name() {\n"
     "        std::string s = build();\n"
     "        return s; }                  // frame-local referent",
     "    std::string name() {\n"
     "        return build(); }            // hand back ownership",
     "// vsgpu-lint: view-ok(<reason>)",
     {{"return-local", "returning a reference or view into the "
       "function's own frame (by-value parameters included)"},
      {"bind-temporary", "a view bound to an owning value a call "
       "returns by value; the temporary dies with the statement"},
      {"escape-local", "the address or a view of a local stored "
       "into Field/Global-region storage or a long-lived registry, "
       "directly or through an escaping callee parameter"}}},
    {"iterator-invalidation",
     "Structural container mutation may reallocate or erase the "
     "element an iterator, reference, or pointer designates.  "
     "erase/clear/resize always invalidate; the insert family only "
     "on relocating (vector/string/deque) or rehashing "
     "(unordered_*) containers — inserting into a std::map never "
     "flags.  Helper calls that mutate their container parameter "
     "count, cross-TU.",
     "    auto it = ids.begin();\n"
     "    ids.push_back(next);             // may reallocate\n"
     "    use(*it);",
     "    ids.push_back(next);\n"
     "    auto it = ids.begin();           // acquire after mutating",
     "// vsgpu-lint: iter-ok(<reason>)",
     {{"use-after-mutate", "an iterator/reference/pointer into a "
       "container read after a may-mutate operation on it; "
       "reassigning the binding (it = v.insert(it, x)) ends its "
       "tracked state"},
      {"mutate-while-iterating", "a range-for body structurally "
       "mutating the container it iterates"}}},
    {"init-order",
     "Dynamic initialization order across translation units is "
     "unspecified (the static initialization order fiasco): an "
     "initializer reading another TU's dynamically initialized "
     "global may observe it zero-initialized, and link order "
     "decides.  Constant-initialized targets are immune and never "
     "flag.",
     "    // a.cc: Config g_config = loadDefaults();\n"
     "    // b.cc: int g_limit = g_config.limit;  // ran first?",
     "    // b.cc: int limitDefault() {\n"
     "    //   static int v = config().limit;  // first use\n"
     "    //   return v; }",
     "// vsgpu-lint: initorder-ok(<reason>)",
     {{"cross-tu", "a namespace-scope initializer directly reading "
       "a global dynamically initialized in another .cc"},
      {"via-call", "the read hides one call deep inside an "
       "unambiguous helper the initializer calls"}}},
};
// clang-format on

} // namespace

bool
explainDiagnostic(std::string_view idOrFamily, std::ostream &os)
{
    std::string_view family = idOrFamily;
    std::string_view sub;
    const std::size_t dot = idOrFamily.find('.');
    if (dot != std::string_view::npos) {
        family = idOrFamily.substr(0, dot);
        sub = idOrFamily.substr(dot + 1);
    }
    for (const Explanation &e : kExplanations) {
        if (e.family != family)
            continue;
        if (!sub.empty()) {
            bool known = false;
            for (const SubRule &rule : e.subRules)
                if (rule.id == sub)
                    known = true;
            if (!known)
                return false;
        }
        os << idOrFamily << "\n";
        for (std::size_t i = 0; i < idOrFamily.size(); ++i)
            os << '=';
        os << "\n\n";
        if (!sub.empty()) {
            for (const SubRule &rule : e.subRules)
                if (rule.id == sub)
                    os << "This rule: " << rule.what << ".\n\n";
        }
        os << e.rationale << "\n\nViolating:\n"
           << e.violating << "\n\nFixed:\n"
           << e.fixed << "\n\nWaiver (on the diagnosed line or the "
                         "line above):\n    "
           << e.waiver << "\n";
        if (sub.empty() && e.subRules.size() > 0) {
            os << "\nRules in this family:\n";
            for (const SubRule &rule : e.subRules)
                os << "    " << e.family << "." << rule.id << "  "
                   << rule.what << "\n";
        }
        return true;
    }
    return false;
}

} // namespace vsgpu::lint
