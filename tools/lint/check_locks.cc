/**
 * @file
 * Family: lock-discipline (semantic, project-wide).
 *
 * Interprocedural lock-set analysis over the symbol index and call
 * graph.  Every acquisition — RAII guards, manual lock(), and the
 * lock-sets functions inherit from their callees through
 * propagateEffects — feeds a single global lock-order graph whose
 * nodes are normalized mutex keys ("Pool::batchMutex_",
 * "WorkerQueue::mutex", or a bare global name).  The family reports:
 *
 *   lock-discipline.order-cycle          two (or more) mutexes
 *       acquired in opposite nesting orders somewhere in the project,
 *       possibly in different translation units — the classic
 *       deadlock shape.  Each cycle is reported once, at the edge
 *       that closes it, citing where every other edge was created.
 *   lock-discipline.double-lock          acquiring a mutex already
 *       held on the same path, directly or by calling a helper whose
 *       (transitive) lock-set contains it — self-deadlock for the
 *       non-recursive std mutexes this codebase uses.
 *   lock-discipline.unlock-without-lock  mu.unlock() with no live
 *       acquisition of mu on that path (double-release or release of
 *       a lock taken elsewhere).
 *   lock-discipline.guarded-by           access to a variable
 *       declared VSGPU_GUARDED_BY(mu) without mu held at the access
 *       and no VSGPU_ACQUIRES(mu) promise on the enclosing function.
 *       Constructors and destructors are exempt (no concurrent
 *       access before/after an object's lifetime).
 *   lock-discipline.acquires-unfulfilled a function annotated
 *       VSGPU_ACQUIRES(mu) that never acquires mu, directly or
 *       through any callee — the annotation lies to its callers.
 *   lock-discipline.excludes-violation   calling a function
 *       annotated VSGPU_EXCLUDES(mu) while holding mu — the callee
 *       acquires mu itself, so the call self-deadlocks.
 *
 * Waiver: // vsgpu-lint: lock-ok(<reason>).
 */

#include "concurrency_model.hh"
#include "semantic.hh"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace vsgpu::lint
{

namespace
{

using TokenVec = std::vector<Token>;
constexpr std::string_view kWaiver = "vsgpu-lint: lock-ok";

std::string
lastComponent(const std::string &key)
{
    const std::size_t pos = key.rfind("::");
    return pos == std::string::npos ? key : key.substr(pos + 2);
}

/** Keys match exactly, or by last component when one side could not
 *  be class-qualified ("mu" vs "Pool::mu" — the bare expression may
 *  well be some instance's mu).  Two keys qualified with DIFFERENT
 *  classes are distinct mutexes even when the member names collide
 *  ("Tracer::mutex_" vs "SetupCache::mutex_"). */
bool
keysMatch(const std::string &a, const std::string &b)
{
    if (a == b)
        return true;
    if (a.find("::") != std::string::npos &&
        b.find("::") != std::string::npos)
        return false;
    return lastComponent(a) == lastComponent(b);
}

bool
anyKeyMatches(const std::vector<std::string> &held,
              const std::string &key)
{
    for (const std::string &h : held)
        if (keysMatch(h, key))
            return true;
    return false;
}

/** Where one lock-order edge was created (for cycle provenance). */
struct EdgeSite
{
    std::string file;
    int line = 0;
    int column = 0;
    std::string note; ///< " (via helper ...)" or empty
};

/** Directed acquired-while-holding graph over normalized keys. */
using OrderGraph = std::map<std::string, std::map<std::string, EdgeSite>>;

/** Normalized keys of one lock scope, with the same manual-lock
 *  filter summarizeBody applies (lk.lock() on a guard object is a
 *  re-lock of an already-recorded mutex, not a new acquisition). */
std::vector<std::string>
scopeKeys(const SymbolIndex &index, const cm::LockScope &scope,
          const std::string &contextClass)
{
    std::vector<std::string> keys;
    for (const std::string &expr : scope.mutexes) {
        const std::string last = expr.substr(expr.rfind('.') + 1);
        if (scope.manual && !index.mutexNames.count(last))
            continue;
        keys.push_back(normalizeMutexKey(index, expr, contextClass));
    }
    return keys;
}

class LockAnalysis
{
  public:
    LockAnalysis(const Project &project, OrderGraph &order,
                 std::vector<Diagnostic> &out)
        : project_(project), index_(project.index()), order_(order),
          out_(out)
    {
    }

    void
    runFunction(const FunctionDef &fn)
    {
        const SourceFile &src =
            project_.sources()[static_cast<std::size_t>(
                fn.fileIndex)];
        const TokenVec &toks = project_.tokens(fn.fileIndex);
        const std::vector<cm::LockScope> scopes =
            cm::lockScopes(toks, fn.bodyBegin, fn.bodyEnd);
        std::vector<std::vector<std::string>> keys;
        keys.reserve(scopes.size());
        for (const cm::LockScope &scope : scopes)
            keys.push_back(scopeKeys(index_, scope, fn.className));

        nestingEdges(fn, src, toks, scopes, keys);
        callSites(fn, src, toks, scopes, keys);
        unlocks(fn, src, toks, scopes);
        guardedAccesses(fn, src, toks, scopes, keys);
        annotationPromises(fn, src);
    }

  private:
    /** Keys held at token @p tok from the in-body scopes. */
    std::vector<std::string>
    heldKeysAt(const std::vector<cm::LockScope> &scopes,
               const std::vector<std::vector<std::string>> &keys,
               std::size_t tok) const
    {
        std::vector<std::string> held;
        for (std::size_t s = 0; s < scopes.size(); ++s)
            if (scopes[s].begin <= tok && tok < scopes[s].end)
                held.insert(held.end(), keys[s].begin(),
                            keys[s].end());
        return held;
    }

    void
    diagnose(const SourceFile &src, std::size_t offset,
             const std::string &id, std::string message)
    {
        const int line = src.lineOf(offset);
        if (src.hasWaiver(line, kWaiver))
            return;
        const std::string key = id + "|" + src.display() + "|" +
                                std::to_string(line) + "|" + message;
        if (!seen_.insert(key).second)
            return;
        out_.push_back({src.display(), line, Check::LockDiscipline,
                        std::move(message), id,
                        cm::columnOf(src, offset)});
    }

    void
    addEdge(const std::string &from, const std::string &to,
            const SourceFile &src, std::size_t offset,
            std::string note)
    {
        auto &slot = order_[from][to];
        if (!slot.file.empty())
            return; // first site wins (deterministic: file order)
        slot = {src.display(), src.lineOf(offset),
                cm::columnOf(src, offset), std::move(note)};
    }

    /** Scope-nesting edges and direct double-lock. */
    void
    nestingEdges(const FunctionDef &fn, const SourceFile &src,
                 const TokenVec &toks,
                 const std::vector<cm::LockScope> &scopes,
                 const std::vector<std::vector<std::string>> &keys)
    {
        for (std::size_t b = 0; b < scopes.size(); ++b) {
            for (std::size_t a = 0; a < scopes.size(); ++a) {
                if (a == b ||
                    !(scopes[a].begin <= scopes[b].declTok &&
                      scopes[b].declTok < scopes[a].end))
                    continue;
                for (const std::string &ka : keys[a]) {
                    for (const std::string &kb : keys[b]) {
                        if (keysMatch(ka, kb)) {
                            diagnose(
                                src,
                                toks[scopes[b].declTok].offset,
                                "lock-discipline.double-lock",
                                "'" + kb +
                                    "' acquired while already held "
                                    "on this path — std::mutex is "
                                    "not recursive; this "
                                    "self-deadlocks");
                            continue;
                        }
                        addEdge(ka, kb, src,
                                toks[scopes[b].declTok].offset,
                                " in " +
                                    (fn.className.empty()
                                         ? fn.name
                                         : fn.className +
                                               "::" + fn.name));
                    }
                }
            }
        }
    }

    /** Call-site edges: calling into a (transitive) lock-set while
     *  holding locks, double-lock via helper, EXCLUDES violations. */
    void
    callSites(const FunctionDef &fn, const SourceFile &src,
              const TokenVec &toks,
              const std::vector<cm::LockScope> &scopes,
              const std::vector<std::vector<std::string>> &keys)
    {
        for (std::size_t i = fn.bodyBegin; i + 1 < fn.bodyEnd; ++i) {
            if (toks[i].kind != Token::Kind::Identifier ||
                toks[i + 1].text != "(")
                continue;
            const std::string name(toks[i].text);
            const std::vector<int> &cands = project_.lookup(name);
            if (cands.empty())
                continue;
            const std::vector<std::string> held =
                heldKeysAt(scopes, keys, i);
            if (held.empty())
                continue;
            // Strict resolution: only facts every same-named
            // candidate agrees on survive, so overload merging can
            // never manufacture a finding.
            std::set<std::string> acquires;
            std::set<std::string> excludes;
            bool first = true;
            bool recursion = false;
            for (int id : cands) {
                const FunctionDef &callee =
                    index_.functions[static_cast<std::size_t>(id)];
                if (&callee == &fn) {
                    recursion = true;
                    break; // recursion: no new facts
                }
                std::set<std::string> calleeAcq =
                    callee.locksAcquired;
                calleeAcq.insert(callee.annAcquires.begin(),
                                 callee.annAcquires.end());
                if (first) {
                    acquires = std::move(calleeAcq);
                    excludes = callee.annExcludes;
                    first = false;
                } else {
                    for (auto it = acquires.begin();
                         it != acquires.end();)
                        it = calleeAcq.count(*it)
                                 ? std::next(it)
                                 : acquires.erase(it);
                    for (auto it = excludes.begin();
                         it != excludes.end();)
                        it = callee.annExcludes.count(*it)
                                 ? std::next(it)
                                 : excludes.erase(it);
                }
            }
            if (recursion)
                continue;
            const FunctionDef &rep =
                index_.functions[static_cast<std::size_t>(
                    cands.front())];
            auto viaOf = [&](const std::string &k) {
                const auto vit = rep.lockVia.find(k);
                return vit == rep.lockVia.end()
                           ? "via " + name
                           : "via " + name + " " +
                                 vit->second.substr(4);
            };
            for (const std::string &k : acquires) {
                if (anyKeyMatches(held, k)) {
                    diagnose(
                        src, toks[i].offset,
                        "lock-discipline.double-lock",
                        "call to '" + name + "' acquires '" + k +
                            "' (" + viaOf(k) +
                            ") while it is already held — "
                            "self-deadlock via helper");
                } else {
                    for (const std::string &h : held)
                        addEdge(h, k, src, toks[i].offset,
                                " (" + viaOf(k) + ")");
                }
            }
            for (const std::string &k : excludes) {
                if (anyKeyMatches(held, k))
                    diagnose(
                        src, toks[i].offset,
                        "lock-discipline.excludes-violation",
                        "call to '" + name +
                            "' which declares VSGPU_EXCLUDES(" + k +
                            ") while '" + k +
                            "' is held — the callee acquires it "
                            "itself and would self-deadlock");
            }
        }
    }

    /** mu.unlock() with no live acquisition ending there. */
    void
    unlocks(const FunctionDef &fn, const SourceFile &src,
            const TokenVec &toks,
            const std::vector<cm::LockScope> &scopes)
    {
        for (std::size_t i = fn.bodyBegin; i + 3 < fn.bodyEnd; ++i) {
            if (toks[i].kind != Token::Kind::Identifier ||
                (toks[i + 1].text != "." &&
                 toks[i + 1].text != "->") ||
                toks[i + 2].text != "unlock" ||
                toks[i + 3].text != "(")
                continue;
            const std::string name(toks[i].text);
            bool guardName = false;
            bool live = false;
            for (const cm::LockScope &scope : scopes) {
                if (scope.guardVar == name ||
                    (scope.manual && !scope.mutexes.empty() &&
                     scope.mutexes.front() == name))
                    guardName = true;
                if (scope.end == i)
                    live = true; // the release that ends this scope
            }
            if (!guardName && !index_.mutexNames.count(name))
                continue; // not a lock object we track
            if (live)
                continue;
            const std::string key = normalizeMutexKey(
                index_, name, fn.className);
            const auto vit = fn.lockVia.find(key);
            diagnose(src, toks[i].offset,
                     "lock-discipline.unlock-without-lock",
                     "'" + name +
                         "' released here but no acquisition is "
                         "live on this path" +
                         (vit != fn.lockVia.end()
                              ? " (nearest acquisition is " +
                                    vit->second +
                                    ", invisible to this unlock)"
                              : "") +
                         " — double-release or release of a lock "
                         "taken elsewhere is undefined behaviour");
        }
    }

    /** VSGPU_GUARDED_BY enforcement. */
    void
    guardedAccesses(const FunctionDef &fn, const SourceFile &src,
                    const TokenVec &toks,
                    const std::vector<cm::LockScope> &scopes,
                    const std::vector<std::vector<std::string>>
                        &keys)
    {
        if (index_.guarded.empty())
            return;
        if (!fn.className.empty() && fn.name == fn.className)
            return; // ctor/dtor: no concurrent access in lifetime
        for (std::size_t i = fn.bodyBegin; i < fn.bodyEnd; ++i) {
            if (toks[i].kind != Token::Kind::Identifier)
                continue;
            if (i + 1 < fn.bodyEnd && toks[i + 1].text == "(")
                continue; // a call, not a variable access
            const std::string name(toks[i].text);
            const bool chained =
                i > fn.bodyBegin && (toks[i - 1].text == "." ||
                                     toks[i - 1].text == "->");
            const bool viaThis =
                chained && i >= 2 && toks[i - 2].text == "this";

            const GuardedVar *match = nullptr;
            if (!chained || viaThis) {
                for (const GuardedVar &gv : index_.guarded)
                    if (gv.name == name &&
                        (gv.className.empty() ||
                         gv.className == fn.className)) {
                        match = &gv;
                        break;
                    }
            } else {
                // x.name: enforceable only when exactly one guarded
                // declaration project-wide has this field name.
                const GuardedVar *only = nullptr;
                int count = 0;
                for (const GuardedVar &gv : index_.guarded)
                    if (gv.name == name) {
                        only = &gv;
                        ++count;
                    }
                if (count == 1)
                    match = only;
            }
            if (!match)
                continue;
            // The declaration itself is not an access.
            if (match->decl.fileIndex == fn.fileIndex &&
                src.lineOf(toks[i].offset) == match->decl.line)
                continue;
            std::vector<std::string> held =
                heldKeysAt(scopes, keys, i);
            held.insert(held.end(), fn.annAcquires.begin(),
                        fn.annAcquires.end());
            if (anyKeyMatches(held, match->mutexKey))
                continue;
            diagnose(src, toks[i].offset,
                     "lock-discipline.guarded-by",
                     "'" + name + "' is VSGPU_GUARDED_BY(" +
                         match->mutexKey +
                         ") but the mutex is not held here — "
                         "acquire it, or annotate this function "
                         "with VSGPU_ACQUIRES(" +
                         lastComponent(match->mutexKey) + ")");
        }
    }

    /** VSGPU_ACQUIRES promises the function never keeps. */
    void
    annotationPromises(const FunctionDef &fn, const SourceFile &src)
    {
        if (fn.annAcquires.empty())
            return;
        std::vector<std::string> acquired(fn.locksAcquired.begin(),
                                          fn.locksAcquired.end());
        for (const std::string &k : fn.annAcquires) {
            if (anyKeyMatches(acquired, k))
                continue;
            const TokenVec &toks = project_.tokens(fn.fileIndex);
            std::size_t offset = 0;
            if (fn.bodyBegin > 0 &&
                fn.bodyBegin <= toks.size())
                offset = toks[fn.bodyBegin - 1].offset;
            diagnose(src, offset,
                     "lock-discipline.acquires-unfulfilled",
                     "'" + fn.name + "' declares VSGPU_ACQUIRES(" +
                         lastComponent(k) +
                         ") but never acquires it, directly or "
                         "through a callee — callers relying on the "
                         "promise are unprotected");
        }
    }

    const Project &project_;
    const SymbolIndex &index_;
    OrderGraph &order_;
    std::vector<Diagnostic> &out_;
    std::set<std::string> seen_;
};

/** Enumerate each lock-order cycle once (smallest node first). */
void
reportCycles(const Project &project, const OrderGraph &order,
             std::vector<Diagnostic> &out)
{
    auto sourceFor =
        [&](const std::string &display) -> const SourceFile * {
        for (const SourceFile &src : project.sources())
            if (src.display() == display)
                return &src;
        return nullptr;
    };

    std::set<std::string> reported;
    for (const auto &[start, _] : order) {
        // DFS restricted to nodes >= start so every cycle is found
        // exactly once, rooted at its lexicographically smallest
        // mutex.  Depth-capped; lock chains deeper than 8 do not
        // occur in practice.
        std::vector<std::string> path{start};
        std::set<std::string> onPath{start};

        auto dfs = [&](auto &&self, const std::string &cur) -> void {
            const auto it = order.find(cur);
            if (it == order.end() || path.size() > 8)
                return;
            for (const auto &[next, site] : it->second) {
                if (next == start && path.size() >= 2) {
                    std::string cycleKey;
                    for (const std::string &node : path)
                        cycleKey += node + "->";
                    if (!reported.insert(cycleKey).second)
                        continue;
                    // Report at the first edge; cite the others.
                    const EdgeSite &head =
                        order.at(path[0]).at(path[1]);
                    std::string message =
                        "lock-order cycle: ";
                    for (const std::string &node : path)
                        message += node + " -> ";
                    message += start +
                               " (potential deadlock; two threads "
                               "taking opposite orders block "
                               "forever)";
                    for (std::size_t e = 0; e < path.size(); ++e) {
                        const std::string &from = path[e];
                        const std::string &to =
                            e + 1 < path.size() ? path[e + 1]
                                                : start;
                        const EdgeSite &es = order.at(from).at(to);
                        message += "; " + from + " -> " + to +
                                   " at " + es.file + ":" +
                                   std::to_string(es.line) +
                                   es.note;
                    }
                    const SourceFile *src = sourceFor(head.file);
                    if (src && src->hasWaiver(head.line, kWaiver))
                        continue;
                    out.push_back({head.file, head.line,
                                   Check::LockDiscipline,
                                   std::move(message),
                                   "lock-discipline.order-cycle",
                                   head.column});
                    continue;
                }
                if (next < start || onPath.count(next))
                    continue;
                path.push_back(next);
                onPath.insert(next);
                self(self, next);
                onPath.erase(next);
                path.pop_back();
            }
        };
        dfs(dfs, start);
    }
}

} // namespace

void
checkLockDiscipline(const Project &project,
                    std::vector<Diagnostic> &out)
{
    OrderGraph order;
    LockAnalysis analysis(project, order, out);
    for (const FunctionDef &fn : project.index().functions)
        analysis.runFunction(fn);
    reportCycles(project, order, out);
}

} // namespace vsgpu::lint
