/**
 * @file
 * Family 4: contracts.
 *
 * A function tagged VSGPU_CONTRACT (the [[vsgpu::contract]] vendor
 * attribute, spelled via the macro in src/common/check.hh) advertises
 * that it states explicit pre/postconditions.  This check makes the
 * advertisement binding: every tagged *definition* must contain at
 * least one VSGPU_REQUIRES or VSGPU_ENSURES in its body.  Tagged
 * declarations (ending in ';') are fine — the contract text lives
 * with the definition.
 *
 * The runtime half of the contract system is check.hh: REQUIRES /
 * ENSURES panic on violation in checked builds and compile to a
 * name-check in release.
 */

#include "lint.hh"

#include <string>

namespace vsgpu::lint
{

namespace
{

/** Find the matching '}' for the '{' at tokens[open]. */
std::size_t
matchBrace(const std::vector<Token> &tokens, std::size_t open)
{
    int depth = 0;
    for (std::size_t i = open; i < tokens.size(); ++i) {
        if (tokens[i].text == "{")
            ++depth;
        else if (tokens[i].text == "}" && --depth == 0)
            return i;
    }
    return tokens.size();
}

} // namespace

void
checkContracts(const SourceFile &src, std::vector<Diagnostic> &out)
{
    const std::vector<Token> tokens = tokenize(src.code());

    for (std::size_t i = 0; i < tokens.size(); ++i) {
        // Tag spellings: the VSGPU_CONTRACT macro, or the attribute
        // written out as [[vsgpu::contract]].
        bool tagged = false;
        std::size_t after = i;
        if (tokens[i].text == "VSGPU_CONTRACT") {
            tagged = true;
            after = i + 1;
        } else if (tokens[i].text == "vsgpu" &&
                   i + 2 < tokens.size() &&
                   tokens[i + 1].text == "::" &&
                   tokens[i + 2].text == "contract") {
            tagged = true;
            after = i + 3;
            while (after < tokens.size() &&
                   tokens[after].text == "]")
                ++after;
        }
        if (!tagged)
            continue;
        const int tagLine = src.lineOf(tokens[i].offset);

        // A tag on a preprocessor line is the macro machinery itself
        // (#define VSGPU_CONTRACT ... in check.hh), not a tagged
        // function.
        const std::string_view lineText = src.lineText(tagLine);
        const std::size_t firstNonSpace =
            lineText.find_first_not_of(" \t");
        if (firstNonSpace != std::string_view::npos &&
            lineText[firstNonSpace] == '#')
            continue;

        // Scan the declarator: stop at ';' (declaration only) or
        // the body '{' at zero paren depth.  Constructor member
        // initializers like ": a_(x), b_(y)" keep paren depth
        // bookkeeping honest because each initializer is balanced.
        int parenDepth = 0;
        std::size_t body = tokens.size();
        bool declarationOnly = false;
        for (std::size_t j = after; j < tokens.size(); ++j) {
            const std::string_view t = tokens[j].text;
            if (t == "(")
                ++parenDepth;
            else if (t == ")")
                --parenDepth;
            else if (t == ";" && parenDepth == 0) {
                declarationOnly = true;
                break;
            } else if (t == "{" && parenDepth == 0) {
                body = j;
                break;
            }
        }
        if (declarationOnly)
            continue;
        if (body == tokens.size()) {
            out.push_back({src.display(), tagLine, Check::Contracts,
                           "VSGPU_CONTRACT tag is not followed by a "
                           "function definition",
                           ""});
            continue;
        }
        const std::size_t bodyEnd = matchBrace(tokens, body);
        bool stated = false;
        for (std::size_t j = body; j < bodyEnd; ++j) {
            if (tokens[j].text == "VSGPU_REQUIRES" ||
                tokens[j].text == "VSGPU_ENSURES") {
                stated = true;
                break;
            }
        }
        if (!stated)
            out.push_back(
                {src.display(), tagLine, Check::Contracts,
                 "function tagged [[vsgpu::contract]] states no "
                 "VSGPU_REQUIRES / VSGPU_ENSURES in its definition "
                 "— add the contract or drop the tag "
                 "(src/common/check.hh)",
                 ""});
        i = body;
    }
}

} // namespace vsgpu::lint
