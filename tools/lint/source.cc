/**
 * @file
 * Source preparation for vsgpu_lint: comment/string scrubbing, line
 * mapping, waivers, tokenization, check names, and scope mapping.
 */

#include "lint.hh"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace vsgpu::lint
{

std::string_view
checkName(Check check)
{
    switch (check) {
      case Check::UnitSafety:
        return "unit-safety";
      case Check::Determinism:
        return "determinism";
      case Check::PoolConcurrency:
        return "pool-concurrency";
      case Check::Contracts:
        return "contracts";
      case Check::RawEscape:
        return "raw-escape";
      case Check::PoolEscape:
        return "pool-escape";
      case Check::UnitFlow:
        return "unit-flow";
      case Check::DeterminismTaint:
        return "determinism-taint";
      case Check::LockDiscipline:
        return "lock-discipline";
      case Check::AtomicsMisuse:
        return "atomics-misuse";
      case Check::PoolHappensBefore:
        return "pool-happens-before";
      case Check::FpDeterminism:
        return "fp-determinism";
      case Check::UseAfterMove:
        return "use-after-move";
      case Check::DanglingView:
        return "dangling-view";
      case Check::IterInvalidation:
        return "iterator-invalidation";
      case Check::InitOrder:
        return "init-order";
    }
    return "unknown";
}

bool
parseCheckName(std::string_view name, Check &out)
{
    for (Check c : kAllChecks) {
        if (checkName(c) == name) {
            out = c;
            return true;
        }
    }
    return false;
}

bool
isProjectCheck(Check check)
{
    return check == Check::PoolEscape || check == Check::UnitFlow ||
           check == Check::DeterminismTaint ||
           check == Check::LockDiscipline ||
           check == Check::AtomicsMisuse ||
           check == Check::PoolHappensBefore ||
           check == Check::FpDeterminism ||
           check == Check::UseAfterMove ||
           check == Check::DanglingView ||
           check == Check::IterInvalidation ||
           check == Check::InitOrder;
}

namespace
{

/**
 * Blank comments, string literals, and char literals with spaces,
 * preserving length and newlines so offsets and line numbers in the
 * scrubbed copy match the raw text exactly.  Raw strings are handled
 * well enough for this codebase (delimiter-less R"(...)" form).
 */
std::string
scrub(const std::string &text)
{
    std::string out(text);
    const std::size_t n = text.size();
    std::size_t i = 0;

    auto blank = [&](std::size_t from, std::size_t to) {
        for (std::size_t k = from; k < to && k < n; ++k)
            if (out[k] != '\n')
                out[k] = ' ';
    };

    while (i < n) {
        const char c = text[i];
        if (c == '/' && i + 1 < n && text[i + 1] == '/') {
            std::size_t j = text.find('\n', i);
            if (j == std::string::npos)
                j = n;
            blank(i, j);
            i = j;
        } else if (c == '/' && i + 1 < n && text[i + 1] == '*') {
            std::size_t j = text.find("*/", i + 2);
            j = (j == std::string::npos) ? n : j + 2;
            blank(i, j);
            i = j;
        } else if (c == 'R' && i + 1 < n && text[i + 1] == '"') {
            // Raw string: R"delim( ... )delim"
            const std::size_t open = text.find('(', i + 2);
            if (open == std::string::npos) {
                ++i;
                continue;
            }
            const std::string delim =
                ")" + text.substr(i + 2, open - (i + 2)) + "\"";
            std::size_t j = text.find(delim, open + 1);
            j = (j == std::string::npos) ? n : j + delim.size();
            blank(i, j);
            i = j;
        } else if (c == '"' ||
                   (c == '\'' &&
                    (i == 0 ||
                     (!std::isalnum(
                          static_cast<unsigned char>(text[i - 1])) &&
                      text[i - 1] != '_')))) {
            // The lookbehind keeps digit separators (1'000'000) from
            // being mistaken for character literals.
            const char quote = c;
            std::size_t j = i + 1;
            while (j < n && text[j] != quote) {
                if (text[j] == '\\')
                    ++j;
                ++j;
            }
            j = std::min(n, j + 1);
            // Keep the quotes themselves so adjacent tokens do not
            // merge; blank only the contents.
            blank(i + 1, j - 1);
            i = j;
        } else {
            ++i;
        }
    }
    return out;
}

} // namespace

SourceFile::SourceFile(std::string display, std::string text)
    : display_(std::move(display)), text_(std::move(text)),
      code_(scrub(text_))
{
    lineStarts_.push_back(0);
    for (std::size_t i = 0; i < text_.size(); ++i)
        if (text_[i] == '\n')
            lineStarts_.push_back(i + 1);
}

int
SourceFile::lineOf(std::size_t offset) const
{
    const auto it = std::upper_bound(lineStarts_.begin(),
                                     lineStarts_.end(), offset);
    return static_cast<int>(it - lineStarts_.begin());
}

std::string_view
SourceFile::lineText(int line) const
{
    if (line < 1 || line > static_cast<int>(lineStarts_.size()))
        return {};
    const std::size_t start =
        lineStarts_[static_cast<std::size_t>(line - 1)];
    std::size_t end = text_.find('\n', start);
    if (end == std::string::npos)
        end = text_.size();
    return std::string_view(text_).substr(start, end - start);
}

bool
SourceFile::hasWaiver(int line, std::string_view waiverTag) const
{
    for (int l : {line, line - 1}) {
        const std::string_view text = lineText(l);
        if (text.find(waiverTag) != std::string_view::npos)
            return true;
    }
    return false;
}

SourceFile
loadSource(const std::string &path, const std::string &display)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("vsgpu_lint: cannot open " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return SourceFile(display.empty() ? path : display, buf.str());
}

std::vector<Token>
tokenize(const std::string &code)
{
    // Multi-character operators that matter to the checks; longest
    // first so e.g. "<<=" never lexes as "<<" "=".
    static const std::string_view multi[] = {
        "<<=", ">>=", "->*", "...", "::", "->", "++", "--", "<<",
        ">>",  "<=",  ">=",  "==",  "!=", "&&", "||", "+=", "-=",
        "*=",  "/=",  "%=",  "&=",  "|=", "^=",
    };

    std::vector<Token> tokens;
    const std::size_t n = code.size();
    std::size_t i = 0;
    const std::string_view view(code);

    auto isIdentStart = [](char c) {
        return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
    };
    auto isIdentChar = [&](char c) {
        return isIdentStart(c) ||
               std::isdigit(static_cast<unsigned char>(c));
    };

    while (i < n) {
        const char c = code[i];
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        if (isIdentStart(c)) {
            std::size_t j = i + 1;
            while (j < n && isIdentChar(code[j]))
                ++j;
            tokens.push_back({Token::Kind::Identifier,
                              view.substr(i, j - i), i});
            i = j;
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            std::size_t j = i + 1;
            while (j < n && (isIdentChar(code[j]) || code[j] == '.' ||
                             ((code[j] == '+' || code[j] == '-') &&
                              (code[j - 1] == 'e' ||
                               code[j - 1] == 'E'))))
                ++j;
            tokens.push_back(
                {Token::Kind::Number, view.substr(i, j - i), i});
            i = j;
            continue;
        }
        bool matched = false;
        for (std::string_view op : multi) {
            if (view.substr(i, op.size()) == op) {
                tokens.push_back({Token::Kind::Punct, op.empty()
                                      ? op
                                      : view.substr(i, op.size()),
                                  i});
                i += op.size();
                matched = true;
                break;
            }
        }
        if (!matched) {
            tokens.push_back(
                {Token::Kind::Punct, view.substr(i, 1), i});
            ++i;
        }
    }
    return tokens;
}

namespace
{

bool
pathContains(std::string_view display, std::string_view needle)
{
    return display.find(needle) != std::string_view::npos;
}

bool
endsWith(std::string_view s, std::string_view suffix)
{
    return s.size() >= suffix.size() &&
           s.substr(s.size() - suffix.size()) == suffix;
}

} // namespace

bool
checkAppliesTo(Check check, std::string_view display)
{
    switch (check) {
      case Check::UnitSafety: {
        // Converted public headers only: the modules whose interfaces
        // the Quantity migration covers.
        if (!endsWith(display, ".hh"))
            return false;
        for (std::string_view mod :
             {"src/circuit/", "src/pdn/", "src/ivr/", "src/power/",
              "src/sim/", "src/control/", "src/hypervisor/",
              "src/common/units.hh"}) {
            if (pathContains(display, mod))
                return true;
        }
        return false;
      }
      case Check::Determinism:
        // Simulation code: everything under src/.  Benches and tests
        // may time themselves; the simulator must not.
        return pathContains(display, "src/");
      case Check::PoolConcurrency:
        return pathContains(display, "src/") ||
               pathContains(display, "bench/") ||
               pathContains(display, "tools/");
      case Check::Contracts:
        return true;
      case Check::RawEscape:
      case Check::UnitFlow: {
        // Simulation and modelling code only; the numeric core is
        // the legitimate home of raw() conversions.  cosim.cc and
        // pds_setup.cc sit at the solver boundary (they assemble the
        // per-step current vectors and netlist stamps), as do the
        // verifier and the circuit layer itself.  unit-flow polices
        // the same boundary from the dataflow side: where raw() is
        // legitimate, mixing raw doubles is the solver's business.
        if (!pathContains(display, "src/"))
            return false;
        for (std::string_view allowed :
             {"src/circuit/", "src/verify/",
              "src/common/quantity.hh", "src/common/check.hh",
              "src/sim/cosim.cc", "src/sim/pds_setup.cc"}) {
            if (pathContains(display, allowed))
                return false;
        }
        return true;
      }
      case Check::PoolEscape:
        // Same surface as the token-level pool-concurrency family.
        return pathContains(display, "src/") ||
               pathContains(display, "bench/") ||
               pathContains(display, "tools/");
      case Check::DeterminismTaint:
        // Observable outputs are produced by src/; benches and tests
        // route everything through the library sinks.
        return pathContains(display, "src/");
      case Check::LockDiscipline:
      case Check::AtomicsMisuse:
      case Check::PoolHappensBefore:
      case Check::FpDeterminism:
        // The concurrency-soundness families cover everything that
        // runs threaded code: the library, the scenario drivers,
        // and the tools.
        return pathContains(display, "src/") ||
               pathContains(display, "bench/") ||
               pathContains(display, "tools/");
      case Check::UseAfterMove:
      case Check::DanglingView:
      case Check::IterInvalidation:
      case Check::InitOrder:
        // The lifetime families additionally cover tests/ — test
        // helpers pass views and iterators across lambdas and
        // fixtures just like the library — but never the lint
        // fixture corpus, whose *_violate halves are intentionally
        // broken and only ever linted as explicit file arguments.
        if (pathContains(display, "tests/lint/fixtures/"))
            return false;
        return pathContains(display, "src/") ||
               pathContains(display, "bench/") ||
               pathContains(display, "tools/") ||
               pathContains(display, "tests/");
    }
    return false;
}

void
runChecks(const SourceFile &src, const std::vector<Check> &checks,
          const CheckOptions &opts, bool ignoreScope,
          std::vector<Diagnostic> &out)
{
    for (Check check : checks) {
        if (!ignoreScope && !checkAppliesTo(check, src.display()))
            continue;
        switch (check) {
          case Check::UnitSafety:
            checkUnitSafety(src, out);
            break;
          case Check::Determinism:
            checkDeterminism(src, opts, out);
            break;
          case Check::PoolConcurrency:
            checkPoolConcurrency(src, out);
            break;
          case Check::Contracts:
            checkContracts(src, out);
            break;
          case Check::RawEscape:
            checkRawEscape(src, out);
            break;
          case Check::PoolEscape:
          case Check::UnitFlow:
          case Check::DeterminismTaint:
          case Check::LockDiscipline:
          case Check::AtomicsMisuse:
          case Check::PoolHappensBefore:
          case Check::FpDeterminism:
          case Check::UseAfterMove:
          case Check::DanglingView:
          case Check::IterInvalidation:
          case Check::InitOrder:
            // Project-wide semantic families: runProjectChecks.
            break;
        }
    }
}

} // namespace vsgpu::lint
