/**
 * @file
 * Shared region/escape lifetime model for vsgpu_lint's lifetime
 * families (use-after-move, dangling-view, iterator-invalidation,
 * init-order).
 *
 * Every lvalue a function body touches lives in a storage region:
 *
 *   Temporary < Local < Param < Field < Global/Heap
 *
 * ordered by lifetime — the outlives lattice.  A view (string_view,
 * span, reference, pointer, iterator) is safe exactly while its
 * referent's region outlives every region the view itself escapes
 * to: returning a view of a Local hands a Temporary-or-longer caller
 * a dead referent; storing a pointer to a Local into a Field-region
 * registry outlives the frame that owns the pointee.
 *
 * On top of the region classification the model computes three
 * per-function parameter summaries, propagated through the call
 * graph's argument-forwarding records with "via helper" provenance
 * (bounded fixpoint, same discipline as propagateEffects):
 *
 *   movesParams    the body std::move()s from this parameter — a
 *                  caller's argument is moved-from after the call.
 *   escapesParams  the body stores this pointer/reference parameter
 *                  (or its address) into Field/Global/Param-region
 *                  storage — the argument must outlive the callee.
 *   mutatesParams  the body structurally mutates this container
 *                  parameter (push_back/erase/clear/...) —
 *                  iterators into the argument may be invalidated.
 *
 * Summaries merge across same-name overloads only when EVERY
 * candidate agrees (suppress-only merging): a misresolved overload
 * can hide a finding but never invent one.
 *
 * The model also indexes namespace-scope initializers per file with
 * a constant-vs-dynamic classification, the raw material of the
 * init-order family: only a *dynamically* initialized global read
 * from another TU's initializer is an ordering hazard.
 */

#ifndef VSGPU_TOOLS_LINT_LIFETIME_MODEL_HH
#define VSGPU_TOOLS_LINT_LIFETIME_MODEL_HH

#include "semantic.hh"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace vsgpu::lint::df
{
struct Cfg;
struct Stmt;
} // namespace vsgpu::lint::df

namespace vsgpu::lint::lm
{

using TokenVec = std::vector<Token>;

/** Storage regions, in outlives order (longer-lived = larger). */
enum class Region
{
    Temporary, ///< full-expression lifetime
    Local,     ///< automatic storage of the current frame
    Param,     ///< caller-owned storage seen through a parameter
    Field,     ///< member of *this — lives with the object
    Global,    ///< namespace scope / static storage
    Unknown,   ///< could not classify — suppresses findings
};

/** Lattice rank; Unknown ranks highest so it never flags. */
int regionRank(Region region);

/** True when storage in @p longer lives at least as long as
 *  storage in @p shorter (Unknown outlives everything). */
bool outlives(Region longer, Region shorter);

/** Human-readable region name ("local", "field", ...). */
std::string_view regionName(Region region);

/** View types whose instances borrow storage they do not own. */
bool isViewTypeName(std::string_view name);

/** Owning value types (string, vector, ...) — a function returning
 *  one BY VALUE hands back a temporary that dies with the
 *  full-expression. */
bool isOwnerTypeName(std::string_view name);

/** Container members that may reallocate or erase storage and so
 *  invalidate iterators/references/pointers into the container. */
bool isInvalidatingMemberName(std::string_view name);

/** Members that give back an iterator/reference/pointer INTO the
 *  receiver (begin, find, data, front, ...). */
bool isViewReturningMemberName(std::string_view name);

/** Members that reinitialize a moved-from object (clear, reset,
 *  assign) — they end the moved-from state. */
bool isReinitMemberName(std::string_view name);

/** Return-type summary of a function definition. */
struct ReturnInfo
{
    std::string type; ///< last type identifier ("", ctors/dtors)
    bool byRef = false;  ///< returns T& / T&&
    bool isView = false; ///< returns a view type by value
    bool isOwner = false; ///< returns an owning type by value
};

/** Per-function lifetime summary (direct + propagated). */
struct FunctionLifetime
{
    ReturnInfo ret;
    bool isConstexpr = false; ///< constexpr in the declaration head
    std::set<int> movesParams;
    std::set<int> escapesParams;
    std::set<int> mutatesParams;
    /** Call-path provenance for propagated entries ("via helper"). */
    std::map<int, std::string> moveVia;
    std::map<int, std::string> escapeVia;
    std::map<int, std::string> mutateVia;
};

/** One namespace-scope variable with an initializer. */
struct GlobalInit
{
    std::string name;
    int fileIndex = 0;
    int line = 0;
    std::size_t initBegin = 0; ///< token range of the initializer
    std::size_t initEnd = 0;   ///< (end exclusive)
    /** Initializer calls a function or reads another mutable
     *  global — runs at dynamic-initialization time, so its order
     *  against other TUs' dynamic initializers is unspecified. */
    bool dynamic = false;
};

/** The model: built once per Project, consumed by the families. */
class LifetimeModel
{
  public:
    static LifetimeModel build(
        const std::vector<SourceFile> &sources,
        const std::vector<TokenVec> &tokens,
        const SymbolIndex &index, int rounds = 4);

    const FunctionLifetime &of(int fnId) const
    {
        return fns_[static_cast<std::size_t>(fnId)];
    }
    const std::vector<GlobalInit> &globalInits() const
    {
        return inits_;
    }
    /** Indexes into globalInits() for @p name (may be empty). */
    const std::vector<int> &initsOf(const std::string &name) const;

  private:
    std::vector<FunctionLifetime> fns_;
    std::vector<GlobalInit> inits_;
    std::map<std::string, std::vector<int>> initByName_;
};

/** Locally declared names of @p cfg (skips static locals, which
 *  live in the Global region). */
std::set<std::string> localsOf(const TokenVec &toks,
                               const df::Cfg &cfg);

/** Classify @p name inside @p fn.  @p locals from localsOf(). */
Region regionOf(const SymbolIndex &index, const FunctionDef &fn,
                const std::set<std::string> &locals,
                const std::string &name);

/** One move event inside a statement. */
struct MoveEvent
{
    std::string name;       ///< the moved-from variable root
    std::size_t offset = 0; ///< byte offset of the event
    std::string via;        ///< "" direct, "via helper ..." else
};

/**
 * Moves performed by @p stmt: direct `std::move(x)` of a single
 * identifier, plus calls whose every same-name candidate moves from
 * the argument position @p stmt passes `x` in (sink parameters,
 * any bounded number of calls deep via the model's propagation).
 */
std::vector<MoveEvent> movesInStmt(const TokenVec &toks,
                                   const df::Stmt &stmt,
                                   const SymbolIndex &index,
                                   const LifetimeModel &model);

/** True when tokens [begin, end) contain `& name` with `&` used as
 *  address-of (not a binary operand or reference declarator). */
bool addressTakenIn(const TokenVec &toks, std::size_t begin,
                    std::size_t end, std::string_view name);

/** Token index in [begin, end) whose byte offset is @p offset;
 *  returns end when absent. */
std::size_t tokenAt(const TokenVec &toks, std::size_t begin,
                    std::size_t end, std::size_t offset);

/** Argument token ranges of the call whose '(' is at @p open. */
std::vector<std::pair<std::size_t, std::size_t>>
argTokenRanges(const TokenVec &toks, std::size_t open);

/** The sole identifier of an argument range — `x`, `& x`, or
 *  `std::move(x)` all yield "x"; anything structured yields "". */
std::string soleIdentArg(const TokenVec &toks, std::size_t begin,
                         std::size_t end);

/** Insertion members that store an argument into the receiver
 *  (push_back, insert, emplace, ...) — the escape-into-registry
 *  shapes, as opposed to erase/clear which only invalidate. */
bool isInsertingMemberName(std::string_view name);

} // namespace vsgpu::lint::lm

#endif // VSGPU_TOOLS_LINT_LIFETIME_MODEL_HH
