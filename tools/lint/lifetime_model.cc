/**
 * @file
 * Region/escape lifetime model (lifetime_model.hh): region
 * classification over the dataflow IR, per-function move/escape/
 * mutate parameter summaries with call-graph propagation, and the
 * namespace-scope initializer index for the init-order family.
 *
 * Same parsing discipline as the symbol index: a misparse degrades
 * to Unknown regions or missing summary entries, which SUPPRESS
 * findings — the model must never invent a lifetime fact.  Summary
 * propagation across overloads requires every same-name candidate
 * to agree, mirroring propagateEffects' strict FP resolution.
 */

#include "lifetime_model.hh"

#include "concurrency_model.hh"
#include "dataflow.hh"

#include <algorithm>

namespace vsgpu::lint::lm
{

namespace
{

using df::Cfg;
using df::Stmt;

constexpr std::size_t npos = static_cast<std::size_t>(-1);

bool
isQualifierWord(std::string_view t)
{
    return t == "const" || t == "constexpr" || t == "constinit" ||
           t == "static" || t == "inline" || t == "mutable" ||
           t == "extern" || t == "thread_local" ||
           t == "volatile" || t == "virtual" || t == "explicit" ||
           t == "friend" || t == "typename";
}

bool
isReservedLike(std::string_view t)
{
    return isQualifierWord(t) || t == "std" || t == "template" ||
           t == "operator" || t == "unsigned" || t == "signed" ||
           t == "using" || t == "namespace" || t == "struct" ||
           t == "class" || t == "union" || t == "enum" ||
           t == "return" || t == "typedef" || t == "decltype" ||
           t == "sizeof" || t == "new" || t == "delete" ||
           t == "true" || t == "false" || t == "nullptr" ||
           t == "this" || t == "if" || t == "else" || t == "for" ||
           t == "while" || t == "do" || t == "switch" ||
           t == "case" || t == "default" || t == "break" ||
           t == "continue" || t == "noexcept" || t == "override" ||
           t == "final" || t == "public" || t == "private" ||
           t == "protected" || t == "throw" || t == "try" ||
           t == "catch" || t == "goto" || t == "requires" ||
           t == "concept";
}

/** Statement start: walk back to the nearest ; { or }. */
std::size_t
stmtStartBack(const TokenVec &toks, std::size_t i)
{
    while (i > 0) {
        const std::string_view t = toks[i - 1].text;
        if (t == ";" || t == "{" || t == "}")
            break;
        --i;
    }
    return i;
}

/** First `;` at bracket depth 0 in [i, end). */
std::size_t
findSemiAt(const TokenVec &toks, std::size_t i, std::size_t end)
{
    int depth = 0;
    for (; i < end; ++i) {
        const std::string_view t = toks[i].text;
        if (t == "(" || t == "[" || t == "{")
            ++depth;
        else if (t == ")" || t == "]" || t == "}")
            --depth;
        else if (t == ";" && depth == 0)
            return i;
    }
    return end;
}

/** Return-type summary plus constexpr-ness from the tokens between
 *  the previous statement boundary and the function name. */
ReturnInfo
returnInfoOf(const SourceFile &src, const TokenVec &toks,
             const FunctionDef &fn, bool &isConstexpr)
{
    ReturnInfo info;
    isConstexpr = false;
    std::size_t end = fn.nameTok;
    if (end == 0 || end >= toks.size())
        return info;
    // Skip the `Class::` qualifier chain directly before the name.
    while (end >= 2 && toks[end - 1].text == "::")
        end -= 2;
    // Region start: back to ; { } or an access-specifier ':',
    // tracking template angle depth so `vector<int>` survives.
    std::size_t start = end;
    int depth = 0;
    while (start > 0) {
        const std::string_view t = toks[start - 1].text;
        if (t == ">")
            ++depth;
        else if (t == "<") {
            if (depth == 0)
                break;
            --depth;
        } else if (depth == 0 && (t == ";" || t == "{" ||
                                  t == "}" || t == ":" ||
                                  t == "#"))
            // `#` ends a preprocessor directive region: a function
            // right after an include block must not read
            // `#include <...>` tokens as its return type.
            break;
        --start;
    }
    // Directive tokens are not scrubbed; skip everything on the
    // directive's own line (`include <string_view>`, `pragma once`)
    // so the scan starts at the real return type.
    if (start > 0 && start < end && toks[start - 1].text == "#") {
        const int dline = src.lineOf(toks[start - 1].offset);
        while (start < end &&
               src.lineOf(toks[start].offset) == dline)
            ++start;
    }
    // Primary type = first depth-0 identifier after qualifiers; a
    // depth-0 & / && after it is a by-reference return.
    int d = 0;
    for (std::size_t i = start; i < end; ++i) {
        const std::string_view t = toks[i].text;
        if (t == "<") {
            ++d;
            continue;
        }
        if (t == ">") {
            if (d > 0)
                --d;
            continue;
        }
        if (t == "constexpr")
            isConstexpr = true;
        if (d != 0)
            continue;
        if ((t == "&" || t == "&&") && !info.type.empty())
            info.byRef = true;
        if (toks[i].kind != Token::Kind::Identifier ||
            isReservedLike(t))
            continue;
        // `std::string_view` — an identifier followed by `::` is a
        // namespace qualifier, not the type.
        if (i + 1 < end && toks[i + 1].text == "::")
            continue;
        if (info.type.empty())
            info.type = std::string(t);
    }
    info.isView = isViewTypeName(info.type);
    info.isOwner = isOwnerTypeName(info.type);
    return info;
}

/**
 * Namespace-scope initializers of one file.  A simplified brace
 * context (namespace vs anything else) suffices: function bodies,
 * class bodies, and stray initializer braces all push a
 * non-namespace frame, so only true namespace-scope declarations
 * with an `=`, brace, or paren initializer are recorded.
 */
/** Does the paren group opened at @p open look like a function
 *  parameter list (empty, or a depth-1 `Type name` pair) rather
 *  than a ctor-style initializer's argument expressions? */
bool
looksLikeParamList(const TokenVec &toks, std::size_t open,
                   std::size_t close)
{
    if (close <= open + 1)
        return true; // `name()` is a declaration, never an init
    int depth = 0;
    for (std::size_t k = open; k < close && k + 1 < toks.size();
         ++k) {
        const std::string_view t = toks[k].text;
        if (t == "(" || t == "[" || t == "{" || t == "<")
            ++depth;
        else if (t == ")" || t == "]" || t == "}" || t == ">")
            --depth;
        if (depth != 1 || k == open)
            continue;
        if (t == "const")
            return true;
        if (toks[k].kind == Token::Kind::Identifier &&
            !isReservedLike(t) &&
            toks[k + 1].kind == Token::Kind::Identifier &&
            !isReservedLike(toks[k + 1].text))
            return true; // `Benchmark b` — two adjacent identifiers
    }
    return false;
}

void
scanGlobalInits(int fileIndex, const SourceFile &src,
                const TokenVec &toks, const SymbolIndex &index,
                std::vector<GlobalInit> &out)
{
    std::vector<char> stack{1}; // 1 = namespace context
    bool pendingNamespace = false;

    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &tok = toks[i];
        const std::string_view t = tok.text;

        if (t == "{") {
            stack.push_back(pendingNamespace ? 1 : 0);
            pendingNamespace = false;
            continue;
        }
        if (t == "}") {
            if (stack.size() > 1)
                stack.pop_back();
            continue;
        }
        if (t == ";") {
            pendingNamespace = false;
            continue;
        }
        if (t == "namespace") {
            pendingNamespace = true;
            continue;
        }
        if (t == "class" || t == "struct" || t == "union" ||
            t == "enum") {
            pendingNamespace = false;
            continue;
        }
        if (!stack.back() || tok.kind != Token::Kind::Identifier ||
            isReservedLike(t))
            continue;

        const std::string_view prev =
            i > 0 ? toks[i - 1].text : std::string_view{};
        const std::string_view next =
            i + 1 < toks.size() ? toks[i + 1].text
                                : std::string_view{};
        const bool typeBefore =
            i > 0 && ((toks[i - 1].kind == Token::Kind::Identifier &&
                       !isReservedLike(prev)) ||
                      prev == ">" || prev == "&" || prev == "*" ||
                      prev == "double" || prev == "float" ||
                      prev == "int" || prev == "bool" ||
                      prev == "char" || prev == "long" ||
                      prev == "short" || prev == "auto" ||
                      prev == "unsigned" || prev == "signed");
        if (!typeBefore ||
            !(next == "=" || next == "{" || next == "("))
            continue;

        const std::size_t stmtBegin = stmtStartBack(toks, i);
        bool constish = false, skip = false;
        bool ownerTyped = false;
        for (std::size_t k = stmtBegin; k < i; ++k) {
            const std::string_view s = toks[k].text;
            if (s == "const" || s == "constexpr" ||
                s == "constinit")
                constish = true;
            if (s == "using" || s == "typedef" || s == "=" ||
                s == "." || s == "->" || s == "template" ||
                s == "operator" || s == "return" || s == "extern")
                skip = true;
            if (isOwnerTypeName(s))
                ownerTyped = true;
        }
        if (constish || skip)
            continue;

        GlobalInit init;
        init.name = std::string(t);
        init.fileIndex = fileIndex;
        init.line = src.lineOf(tok.offset);
        if (next == "=") {
            init.initBegin = i + 2;
            init.initEnd = findSemiAt(toks, i + 1, toks.size());
        } else if (next == "{") {
            init.initBegin = i + 2;
            init.initEnd =
                cm::skipBalanced(toks, i + 1, "{", "}");
        } else { // name(args); — ctor-init only when a ';' follows
            const std::size_t close =
                cm::skipBalanced(toks, i + 1, "(", ")");
            // A function declaration wears the same shape:
            // `WorkloadSpec benchWorkload(Benchmark b, int n = 4)`.
            // Skip PAST the parens either way — a default argument
            // inside a parameter list must never be scanned as a
            // namespace-scope initializer.
            if (close + 1 >= toks.size() ||
                toks[close + 1].text != ";" ||
                index.byName.count(init.name) ||
                looksLikeParamList(toks, i + 1, close)) {
                i = close;
                continue;
            }
            init.initBegin = i + 2;
            init.initEnd = close;
        }
        if (init.initEnd > toks.size())
            init.initEnd = toks.size();
        // Owner-typed globals (string, vector, ...) never have
        // constant initialization; dynamic-ness of the rest is
        // classified once every function is summarized (build()).
        init.dynamic = ownerTyped;
        const std::size_t resume = init.initEnd;
        out.push_back(std::move(init));
        i = resume;
    }
}

} // namespace

int
regionRank(Region region)
{
    switch (region) {
      case Region::Temporary:
        return 0;
      case Region::Local:
        return 1;
      case Region::Param:
        return 2;
      case Region::Field:
        return 3;
      case Region::Global:
        return 4;
      case Region::Unknown:
        return 5;
    }
    return 5;
}

bool
outlives(Region longer, Region shorter)
{
    return regionRank(longer) >= regionRank(shorter);
}

std::string_view
regionName(Region region)
{
    switch (region) {
      case Region::Temporary:
        return "temporary";
      case Region::Local:
        return "local";
      case Region::Param:
        return "param";
      case Region::Field:
        return "field";
      case Region::Global:
        return "global";
      case Region::Unknown:
        return "unknown";
    }
    return "unknown";
}

bool
isViewTypeName(std::string_view name)
{
    return name == "string_view" || name == "wstring_view" ||
           name == "basic_string_view" || name == "span" ||
           name == "Span";
}

bool
isOwnerTypeName(std::string_view name)
{
    return name == "string" || name == "basic_string" ||
           name == "wstring" || name == "vector" ||
           name == "deque" || name == "map" || name == "set" ||
           name == "multimap" || name == "multiset" ||
           name == "unordered_map" || name == "unordered_set" ||
           name == "unordered_multimap" ||
           name == "unordered_multiset" || name == "list" ||
           name == "ostringstream" || name == "istringstream" ||
           name == "stringstream";
}

bool
isInvalidatingMemberName(std::string_view name)
{
    return name == "push_back" || name == "emplace_back" ||
           name == "push_front" || name == "emplace_front" ||
           name == "insert" || name == "emplace" ||
           name == "erase" || name == "clear" ||
           name == "resize" || name == "reserve" ||
           name == "pop_back" || name == "pop_front" ||
           name == "assign" || name == "shrink_to_fit";
}

bool
isViewReturningMemberName(std::string_view name)
{
    return name == "begin" || name == "cbegin" ||
           name == "rbegin" || name == "crbegin" ||
           name == "end" || name == "cend" || name == "rend" ||
           name == "crend" || name == "find" ||
           name == "lower_bound" || name == "upper_bound" ||
           name == "equal_range" || name == "data";
}

bool
isReinitMemberName(std::string_view name)
{
    return name == "clear" || name == "reset" || name == "assign";
}

bool
isInsertingMemberName(std::string_view name)
{
    return name == "push_back" || name == "emplace_back" ||
           name == "push_front" || name == "emplace_front" ||
           name == "insert" || name == "emplace";
}

std::set<std::string>
localsOf(const TokenVec &toks, const df::Cfg &cfg)
{
    std::set<std::string> locals;
    for (const df::Block &block : cfg.blocks)
        for (const df::Stmt &stmt : block.stmts) {
            if (!stmt.declares)
                continue;
            bool isStatic = false;
            for (std::size_t k = stmt.tokBegin;
                 k < stmt.tokEnd && k < toks.size(); ++k)
                if (toks[k].text == "static" ||
                    toks[k].text == "thread_local")
                    isStatic = true;
            if (isStatic)
                continue;
            locals.insert(stmt.defs.begin(), stmt.defs.end());
        }
    return locals;
}

Region
regionOf(const SymbolIndex &index, const FunctionDef &fn,
         const std::set<std::string> &locals,
         const std::string &name)
{
    if (name == "this")
        return Region::Field;
    if (locals.count(name))
        return Region::Local;
    for (const ParamInfo &p : fn.params)
        if (p.name == name)
            // A by-value parameter is this frame's own storage; a
            // reference/pointer parameter sees caller-owned storage.
            return (p.byRef || p.isPointer) ? Region::Param
                                            : Region::Local;
    if (!fn.className.empty()) {
        const auto cit = index.classFields.find(fn.className);
        if (cit != index.classFields.end() &&
            cit->second.count(name))
            return Region::Field;
    }
    if (index.globals.count(name) || index.atomics.count(name) ||
        index.constNames.count(name) ||
        index.mutexNames.count(name))
        return Region::Global;
    return Region::Unknown;
}

bool
addressTakenIn(const TokenVec &toks, std::size_t begin,
               std::size_t end, std::string_view name)
{
    for (std::size_t i = begin; i + 1 < end && i + 1 < toks.size();
         ++i) {
        if (toks[i].text != "&" || toks[i + 1].text != name)
            continue;
        if (i == begin)
            return true;
        const Token &prev = toks[i - 1];
        // Binary & has a value operand on its left; address-of has
        // an operator, comma, or open bracket.
        if (prev.kind == Token::Kind::Identifier ||
            prev.kind == Token::Kind::Number ||
            prev.text == ")" || prev.text == "]")
            continue;
        return true;
    }
    return false;
}

std::size_t
tokenAt(const TokenVec &toks, std::size_t begin, std::size_t end,
        std::size_t offset)
{
    for (std::size_t i = begin; i < end && i < toks.size(); ++i)
        if (toks[i].offset == offset)
            return i;
    return end;
}

std::vector<std::pair<std::size_t, std::size_t>>
argTokenRanges(const TokenVec &toks, std::size_t open)
{
    std::vector<std::pair<std::size_t, std::size_t>> ranges;
    if (open >= toks.size() || toks[open].text != "(")
        return ranges;
    const std::size_t close =
        cm::skipBalanced(toks, open, "(", ")");
    std::size_t argBegin = open + 1;
    int depth = 0;
    for (std::size_t i = open; i <= close && i < toks.size(); ++i) {
        const std::string_view t = toks[i].text;
        if (t == "(" || t == "[" || t == "{")
            ++depth;
        else if (t == ")" || t == "]" || t == "}")
            --depth;
        const bool boundary = (t == "," && depth == 1) ||
                              (i == close && depth == 0);
        if (!boundary)
            continue;
        if (i > argBegin)
            ranges.push_back({argBegin, i});
        else if (t == ",")
            ranges.push_back({argBegin, argBegin});
        argBegin = i + 1;
    }
    return ranges;
}

std::string
soleIdentArg(const TokenVec &toks, std::size_t begin,
             std::size_t end)
{
    if (end > toks.size())
        return {};
    const std::size_t n = end - begin;
    if (n == 1 && toks[begin].kind == Token::Kind::Identifier &&
        !isReservedLike(toks[begin].text))
        return std::string(toks[begin].text);
    if (n == 2 && toks[begin].text == "&" &&
        toks[begin + 1].kind == Token::Kind::Identifier)
        return std::string(toks[begin + 1].text);
    // std :: move ( x )  /  move ( x )
    std::size_t i = begin;
    if (n >= 6 && toks[i].text == "std" &&
        toks[i + 1].text == "::")
        i += 2;
    if (end - i == 4 && toks[i].text == "move" &&
        toks[i + 1].text == "(" &&
        toks[i + 2].kind == Token::Kind::Identifier &&
        toks[i + 3].text == ")")
        return std::string(toks[i + 2].text);
    return {};
}

std::vector<MoveEvent>
movesInStmt(const TokenVec &toks, const df::Stmt &stmt,
            const SymbolIndex &index, const LifetimeModel &model)
{
    std::vector<MoveEvent> events;
    std::set<std::string> seen;

    // Direct `std::move(x)` of a single identifier.  Requiring the
    // `::` keeps a project function named `move` from matching.
    for (std::size_t i = stmt.tokBegin;
         i + 3 < stmt.tokEnd && i + 3 < toks.size(); ++i) {
        if (toks[i].text != "move" || i == 0 ||
            toks[i - 1].text != "::" || toks[i + 1].text != "(" ||
            toks[i + 2].kind != Token::Kind::Identifier ||
            toks[i + 3].text != ")")
            continue;
        const std::string name(toks[i + 2].text);
        if (seen.insert(name).second)
            events.push_back({name, toks[i + 2].offset, ""});
    }

    // Sink parameters: a call whose EVERY same-name candidate moves
    // from the by-reference parameter this statement passes a bare
    // lvalue in.
    for (const df::CallRef &call : stmt.calls) {
        const auto cit = index.byName.find(call.callee);
        if (cit == index.byName.end() || cit->second.empty())
            continue;
        const std::size_t nameIdx = tokenAt(
            toks, stmt.tokBegin, stmt.tokEnd, call.nameOffset);
        if (nameIdx + 1 >= stmt.tokEnd)
            continue;
        const auto args = argTokenRanges(toks, nameIdx + 1);
        for (std::size_t a = 0; a < args.size(); ++a) {
            if (args[a].second - args[a].first != 1)
                continue; // bare lvalue only
            const std::string arg =
                soleIdentArg(toks, args[a].first, args[a].second);
            if (arg.empty())
                continue;
            bool allMove = true;
            const FunctionLifetime *first = nullptr;
            for (int id : cit->second) {
                const FunctionDef &cand =
                    index.functions[static_cast<std::size_t>(id)];
                const FunctionLifetime &fl = model.of(id);
                if (a >= cand.params.size() ||
                    !cand.params[a].byRef ||
                    !fl.movesParams.count(static_cast<int>(a))) {
                    allMove = false;
                    break;
                }
                if (!first)
                    first = &fl;
            }
            if (!allMove || !first)
                continue;
            std::string via = "via " + call.callee;
            const auto vit =
                first->moveVia.find(static_cast<int>(a));
            if (vit != first->moveVia.end())
                via += " " + vit->second.substr(4);
            if (seen.insert(arg).second)
                events.push_back({arg, call.nameOffset, via});
        }
    }
    return events;
}

const std::vector<int> &
LifetimeModel::initsOf(const std::string &name) const
{
    static const std::vector<int> empty;
    const auto it = initByName_.find(name);
    return it == initByName_.end() ? empty : it->second;
}

LifetimeModel
LifetimeModel::build(const std::vector<SourceFile> &sources,
                     const std::vector<TokenVec> &tokens,
                     const SymbolIndex &index, int rounds)
{
    LifetimeModel model;
    model.fns_.resize(index.functions.size());

    // --- direct per-function summaries ---------------------------
    for (std::size_t f = 0; f < index.functions.size(); ++f) {
        const FunctionDef &fn = index.functions[f];
        const TokenVec &toks =
            tokens[static_cast<std::size_t>(fn.fileIndex)];
        FunctionLifetime &fl = model.fns_[f];
        fl.ret = returnInfoOf(
            sources[static_cast<std::size_t>(fn.fileIndex)], toks,
            fn, fl.isConstexpr);
        if (fn.bodyBegin >= fn.bodyEnd)
            continue;

        std::map<std::string, int> paramIndex;
        for (std::size_t p = 0; p < fn.params.size(); ++p)
            if (!fn.params[p].name.empty())
                paramIndex[fn.params[p].name] =
                    static_cast<int>(p);

        // Direct moves: std::move(p) of a by-reference parameter.
        for (std::size_t i = fn.bodyBegin;
             i + 3 < fn.bodyEnd && i + 3 < toks.size(); ++i) {
            if (toks[i].text != "move" || i == 0 ||
                toks[i - 1].text != "::" ||
                toks[i + 1].text != "(" ||
                toks[i + 2].kind != Token::Kind::Identifier ||
                toks[i + 3].text != ")")
                continue;
            const auto pit =
                paramIndex.find(std::string(toks[i + 2].text));
            if (pit == paramIndex.end())
                continue;
            const ParamInfo &p = fn.params[static_cast<std::size_t>(
                pit->second)];
            if (p.byRef)
                fl.movesParams.insert(pit->second);
        }

        const Cfg cfg =
            df::buildCfg(toks, fn.bodyBegin, fn.bodyEnd);
        const std::set<std::string> locals = localsOf(toks, cfg);

        // True when parameter @p idx escapes through the argument
        // range [b, e): the bare pointer, a by-reference view
        // parameter copied by value, or the address of a
        // by-reference parameter.
        auto paramEscapesAs = [&](std::size_t b, std::size_t e,
                                  int &idxOut) {
            const std::string arg = soleIdentArg(toks, b, e);
            if (arg.empty())
                return false;
            const auto pit = paramIndex.find(arg);
            if (pit == paramIndex.end())
                return false;
            const ParamInfo &p = fn.params[static_cast<std::size_t>(
                pit->second)];
            const bool addressed =
                e - b == 2 && toks[b].text == "&";
            const bool escapes =
                addressed ? p.byRef
                          : (p.isPointer ||
                             (p.byRef && isViewTypeName(p.type)));
            if (!escapes)
                return false;
            idxOut = pit->second;
            return true;
        };

        // Pool submission entry points (parallelFor / runSweep /
        // runIndexSweep) store the task body into the pool queue —
        // a Field-region store by the lattice — but BLOCK until
        // every task joins (the happens-before model of
        // concurrency_model.hh), so nothing they store outlives the
        // call.  Their escapes must not seed the summaries, or
        // every sweep driver's locals would flag.
        const bool joinsBeforeReturn =
            cm::isPoolSubmitName(fn.name);

        for (const df::Block &block : cfg.blocks) {
            for (const Stmt &stmt : block.stmts) {
                // Assignment escape: field/global = p  or  = &p.
                if (!joinsBeforeReturn && !stmt.defs.empty() &&
                    !stmt.declares) {
                    const Region target = regionOf(
                        index, fn, locals, stmt.defs.front());
                    if (regionRank(target) >=
                            regionRank(Region::Field) &&
                        target != Region::Unknown) {
                        std::size_t assignAt = npos;
                        int depth = 0;
                        for (std::size_t i = stmt.tokBegin;
                             i < stmt.tokEnd && i < toks.size();
                             ++i) {
                            const std::string_view t =
                                toks[i].text;
                            if (t == "(" || t == "[" || t == "{")
                                ++depth;
                            else if (t == ")" || t == "]" ||
                                     t == "}")
                                --depth;
                            else if (depth == 0 && t == "=" &&
                                     assignAt == npos)
                                assignAt = i;
                        }
                        int idx = 0;
                        if (assignAt != npos &&
                            paramEscapesAs(assignAt + 1,
                                           stmt.tokEnd, idx))
                            fl.escapesParams.insert(idx);
                    }
                }
                for (const df::CallRef &call : stmt.calls) {
                    // Insertion escape: outliving container keeps
                    // the pointer/view argument.
                    if (!joinsBeforeReturn &&
                        !call.receiver.empty() &&
                        isInsertingMemberName(call.callee)) {
                        const Region rec = regionOf(
                            index, fn, locals, call.receiver);
                        if (regionRank(rec) >
                                regionRank(Region::Local) &&
                            rec != Region::Unknown) {
                            const std::size_t nameIdx = tokenAt(
                                toks, stmt.tokBegin, stmt.tokEnd,
                                call.nameOffset);
                            for (const auto &[b, e] :
                                 argTokenRanges(toks,
                                                nameIdx + 1)) {
                                int idx = 0;
                                if (paramEscapesAs(b, e, idx))
                                    fl.escapesParams.insert(idx);
                            }
                        }
                    }
                    // Container mutation through a parameter.
                    if (!call.receiver.empty() &&
                        isInvalidatingMemberName(call.callee)) {
                        const auto pit =
                            paramIndex.find(call.receiver);
                        if (pit != paramIndex.end()) {
                            const ParamInfo &p =
                                fn.params[static_cast<std::size_t>(
                                    pit->second)];
                            if ((p.byRef || p.isPointer) &&
                                !p.isConst)
                                fl.mutatesParams.insert(
                                    pit->second);
                        }
                    }
                }
            }
        }
    }

    // --- namespace-scope initializers ----------------------------
    for (std::size_t f = 0; f < sources.size(); ++f)
        scanGlobalInits(static_cast<int>(f), sources[f], tokens[f],
                        index, model.inits_);
    for (std::size_t g = 0; g < model.inits_.size(); ++g)
        model.initByName_[model.inits_[g].name].push_back(
            static_cast<int>(g));

    // Dynamic classification: the initializer calls a non-constexpr
    // indexed function or reads a mutable global.  (Owner-typed
    // globals were classified during the scan.)
    for (GlobalInit &init : model.inits_) {
        if (init.dynamic)
            continue;
        const TokenVec &toks =
            tokens[static_cast<std::size_t>(init.fileIndex)];
        for (std::size_t i = init.initBegin;
             i < init.initEnd && i < toks.size() && !init.dynamic;
             ++i) {
            if (toks[i].kind != Token::Kind::Identifier ||
                isReservedLike(toks[i].text))
                continue;
            const std::string name(toks[i].text);
            const std::string_view prevT =
                i > 0 ? toks[i - 1].text : std::string_view{};
            const std::string_view nextT =
                i + 1 < toks.size() ? toks[i + 1].text
                                    : std::string_view{};
            if (nextT == "(") {
                const auto cit = index.byName.find(name);
                if (cit == index.byName.end())
                    continue;
                bool allConstexpr = true;
                for (int id : cit->second)
                    allConstexpr =
                        allConstexpr &&
                        model.of(id).isConstexpr;
                if (!allConstexpr)
                    init.dynamic = true;
                continue;
            }
            if (prevT == "." || prevT == "->" || prevT == "::" ||
                nextT == "::")
                continue;
            if (index.globals.count(name))
                init.dynamic = true;
        }
    }

    // --- call-graph propagation ----------------------------------
    // A caller forwarding parameter p as argument a inherits the
    // callee's move/escape/mutate of a — when EVERY candidate
    // sharing the callee's name agrees and p itself is a
    // reference/pointer (a by-value p is callee-frame storage; its
    // fate is invisible to callers).
    for (int round = 0; round < rounds; ++round) {
        bool changed = false;
        for (std::size_t f = 0; f < index.functions.size(); ++f) {
            const FunctionDef &fn = index.functions[f];
            FunctionLifetime &fl = model.fns_[f];
            for (const FunctionDef::ArgFlow &flow : fn.forwards) {
                if (static_cast<std::size_t>(flow.param) >=
                    fn.params.size())
                    continue;
                const ParamInfo &p = fn.params[
                    static_cast<std::size_t>(flow.param)];
                if (!p.byRef && !p.isPointer)
                    continue;
                const auto cit = index.byName.find(flow.callee);
                if (cit == index.byName.end() ||
                    cit->second.empty())
                    continue;
                struct Prop
                {
                    std::set<int> FunctionLifetime::*members;
                    std::map<int, std::string>
                        FunctionLifetime::*via;
                };
                static constexpr Prop kProps[] = {
                    {&FunctionLifetime::movesParams,
                     &FunctionLifetime::moveVia},
                    {&FunctionLifetime::escapesParams,
                     &FunctionLifetime::escapeVia},
                    {&FunctionLifetime::mutatesParams,
                     &FunctionLifetime::mutateVia},
                };
                for (const Prop &prop : kProps) {
                    bool all = true;
                    const FunctionLifetime *first = nullptr;
                    for (int id : cit->second) {
                        if (static_cast<std::size_t>(id) == f) {
                            all = false; // self-recursion
                            break;
                        }
                        const FunctionLifetime &cand =
                            model.fns_[static_cast<std::size_t>(
                                id)];
                        if (!(cand.*(prop.members))
                                 .count(flow.arg)) {
                            all = false;
                            break;
                        }
                        if (!first)
                            first = &cand;
                    }
                    if (!all || !first)
                        continue;
                    if ((fl.*(prop.members))
                            .insert(flow.param)
                            .second) {
                        const auto vit =
                            (first->*(prop.via)).find(flow.arg);
                        (fl.*(prop.via))[flow.param] =
                            vit == (first->*(prop.via)).end()
                                ? "via " + flow.callee
                                : "via " + flow.callee + " " +
                                      vit->second.substr(4);
                        changed = true;
                    }
                }
            }
        }
        if (!changed)
            break;
    }
    return model;
}

} // namespace vsgpu::lint::lm
