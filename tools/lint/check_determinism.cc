/**
 * @file
 * Family 2: determinism.
 *
 * The engine invariant "--jobs 1 and --jobs N are bitwise identical"
 * (docs/parallel_exec.md) only survives if simulation code never
 * consults ambient state.  Three sub-rules:
 *
 *  banned calls      std::rand/srand, std::time, std::random_device
 *                    (outside the seeded factory in common/random),
 *                    and argument-less <chrono> clock ::now() —
 *                    every one injects wall-clock or global-RNG
 *                    state that varies across runs and schedules.
 *
 *  unordered reads   iterating an unordered container while feeding
 *                    an accumulation (+=, push_back, insert, ...) or
 *                    a runSweep/runIndexSweep reduction makes the
 *                    result depend on hash-table ordering, which
 *                    varies across libstdc++ versions and ASLR.
 *
 *  direct stdio      std::cout/cerr/clog in src/ outside the
 *                    allowlisted writers (common/logging,
 *                    common/table, circuit/wave_writer).  Library
 *                    code printing directly bypasses the filterable
 *                    logging sink and interleaves with the tools'
 *                    structured output in pool-thread order.
 *
 * Waivers: // vsgpu-lint: nondet-ok(<reason>) for banned calls,
 *          // vsgpu-lint: unordered-ok(<reason>) for iteration,
 *          // vsgpu-lint: iostream-ok(<reason>) for direct stdio.
 */

#include "dataflow.hh"
#include "semantic.hh"

#include <algorithm>
#include <map>
#include <set>
#include <string>

namespace vsgpu::lint
{

namespace
{

bool
isBannedName(std::string_view name)
{
    return name == "rand" || name == "srand" || name == "time" ||
           name == "random_device";
}

/** Names whose presence in a loop body marks an accumulation. */
bool
isAccumulator(const Token &tok)
{
    if (tok.kind == Token::Kind::Punct)
        return tok.text == "+=" || tok.text == "-=" ||
               tok.text == "*=" || tok.text == "/=" ||
               tok.text == "|=" || tok.text == "&=" ||
               tok.text == "^=";
    return tok.text == "push_back" || tok.text == "emplace_back" ||
           tok.text == "insert" || tok.text == "emplace" ||
           tok.text == "append" || tok.text == "runSweep" ||
           tok.text == "runIndexSweep" || tok.text == "accumulate";
}

/** Index just past a balanced group opened by tokens[open]. */
std::size_t
skipBalanced(const std::vector<Token> &tokens, std::size_t open,
             std::string_view openText, std::string_view closeText)
{
    int depth = 0;
    for (std::size_t i = open; i < tokens.size(); ++i) {
        if (tokens[i].text == openText)
            ++depth;
        else if (tokens[i].text == closeText && --depth == 0)
            return i + 1;
    }
    return tokens.size();
}

} // namespace

void
checkDeterminism(const SourceFile &src, const CheckOptions &opts,
                 std::vector<Diagnostic> &out)
{
    const std::vector<Token> tokens = tokenize(src.code());

    const bool entropyAllowed = std::any_of(
        opts.entropyAllowlist.begin(), opts.entropyAllowlist.end(),
        [&](const std::string &suffix) {
            const std::string &d = src.display();
            return d.size() >= suffix.size() &&
                   d.compare(d.size() - suffix.size(),
                             suffix.size(), suffix) == 0;
        });

    auto report = [&](std::size_t offset, std::string message,
                      std::string_view waiver) {
        const int line = src.lineOf(offset);
        if (src.hasWaiver(line, waiver))
            return;
        out.push_back({src.display(), line, Check::Determinism,
                       std::move(message), ""});
    };

    // --- Sub-rule 1: banned calls -------------------------------
    for (std::size_t i = 0; i < tokens.size(); ++i) {
        const Token &tok = tokens[i];
        if (tok.kind != Token::Kind::Identifier)
            continue;

        const std::string_view prev =
            i > 0 ? tokens[i - 1].text : std::string_view{};

        if (tok.text == "random_device") {
            if (!entropyAllowed)
                report(tok.offset,
                       "std::random_device outside the seeded entropy "
                       "factory (common/random) — take an explicit "
                       "seed instead so runs are reproducible",
                       "vsgpu-lint: nondet-ok");
            continue;
        }

        if (tok.text == "now" && prev == "::" && i >= 2) {
            const std::string_view qual = tokens[i - 2].text;
            const bool chronoClock =
                qual.size() >= 6 &&
                qual.substr(qual.size() - 6) == "_clock";
            if (chronoClock &&
                i + 1 < tokens.size() && tokens[i + 1].text == "(") {
                report(tok.offset,
                       "std::chrono clock ::now() in simulation "
                       "code — wall-clock time varies per run; "
                       "derive timing from simulated cycles or pass "
                       "timestamps in",
                       "vsgpu-lint: nondet-ok");
            }
            continue;
        }

        if (!isBannedName(tok.text))
            continue;
        const bool called = i + 1 < tokens.size() &&
                            tokens[i + 1].text == "(";
        if (!called)
            continue;
        // Qualified call (std::rand / ::time) is always the banned
        // global; an unqualified name is a call only when it is not
        // a member access (sim.time()) and not a declaration
        // (double time() const).
        const bool qualified = prev == "::";
        const bool member = prev == "." || prev == "->";
        const bool declared =
            !qualified && !member && i > 0 &&
            tokens[i - 1].kind == Token::Kind::Identifier &&
            tokens[i - 1].text != "return";
        if (member || declared)
            continue;
        report(tok.offset,
               "call to '" + std::string(tok.text) +
                   "' — global RNG / wall-clock state breaks the "
                   "jobs=1 == jobs=N determinism contract; use the "
                   "per-task Rng stream (exec::TaskContext) or an "
                   "explicit seed",
               "vsgpu-lint: nondet-ok");
    }

    // --- Sub-rule 3: direct stdio in library code ---------------
    const bool iostreamAllowed = std::any_of(
        opts.iostreamAllowlist.begin(), opts.iostreamAllowlist.end(),
        [&](const std::string &suffix) {
            const std::string &d = src.display();
            return d.size() >= suffix.size() &&
                   d.compare(d.size() - suffix.size(),
                             suffix.size(), suffix) == 0;
        });
    if (!iostreamAllowed) {
        for (std::size_t i = 0; i < tokens.size(); ++i) {
            const Token &tok = tokens[i];
            if (tok.kind != Token::Kind::Identifier ||
                (tok.text != "cout" && tok.text != "cerr" &&
                 tok.text != "clog"))
                continue;
            const std::string_view prev =
                i > 0 ? tokens[i - 1].text : std::string_view{};
            if (prev == "." || prev == "->")
                continue; // member named cout/cerr, not the stream
            // "int cout = 0;" declares a member of that name.
            const bool declared =
                i > 0 &&
                tokens[i - 1].kind == Token::Kind::Identifier &&
                tokens[i - 1].text != "return";
            if (declared)
                continue;
            report(tok.offset,
                   "direct std::" + std::string(tok.text) +
                       " in library code — route output through "
                       "common/logging (filterable, pluggable sink) "
                       "or return data for the frontend to print",
                   "vsgpu-lint: iostream-ok");
        }
    }

    // --- Sub-rule 2: unordered-container iteration --------------
    // Pass A: names declared (or aliased) as unordered containers.
    std::set<std::string, std::less<>> unorderedTypes = {
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset"};
    std::set<std::string, std::less<>> unorderedVars;
    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
        if (tokens[i].kind != Token::Kind::Identifier ||
            unorderedTypes.count(tokens[i].text) == 0)
            continue;
        // Skip the template argument list, tolerating >> closers.
        std::size_t j = i + 1;
        if (j < tokens.size() && tokens[j].text == "<") {
            int depth = 0;
            for (; j < tokens.size(); ++j) {
                if (tokens[j].text == "<")
                    ++depth;
                else if (tokens[j].text == ">")
                    --depth;
                else if (tokens[j].text == ">>")
                    depth -= 2;
                if (depth <= 0) {
                    ++j;
                    break;
                }
            }
        }
        if (j < tokens.size() &&
            tokens[j].kind == Token::Kind::Identifier)
            unorderedVars.insert(std::string(tokens[j].text));
        // Alias: "using Foo = std::unordered_map<...>" makes Foo an
        // unordered type name.  Walk back over std:: qualification
        // to find the '=' and the alias name.
        std::size_t back = i;
        while (back >= 1 && (tokens[back - 1].text == "::" ||
                             tokens[back - 1].text == "std"))
            --back;
        if (back >= 3 && tokens[back - 1].text == "=" &&
            tokens[back - 2].kind == Token::Kind::Identifier &&
            tokens[back - 3].text == "using")
            unorderedTypes.insert(std::string(tokens[back - 2].text));
    }
    // Variables declared with an alias type: "Foo name".
    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
        if (tokens[i].kind != Token::Kind::Identifier ||
            unorderedTypes.count(tokens[i].text) == 0 ||
            tokens[i].text.substr(0, 10) == "unordered_")
            continue;
        if (tokens[i + 1].kind == Token::Kind::Identifier)
            unorderedVars.insert(std::string(tokens[i + 1].text));
    }

    if (unorderedVars.empty())
        return;

    // Pass B: range-for over an unordered variable feeding an
    // accumulation in the loop body.
    for (std::size_t i = 0; i + 2 < tokens.size(); ++i) {
        if (tokens[i].text != "for" || tokens[i + 1].text != "(")
            continue;
        const std::size_t closeParen =
            skipBalanced(tokens, i + 1, "(", ")");
        // Find the range-for ':' at depth 1.
        std::size_t colon = 0;
        int depth = 0;
        for (std::size_t j = i + 1; j < closeParen; ++j) {
            if (tokens[j].text == "(")
                ++depth;
            else if (tokens[j].text == ")")
                --depth;
            else if (tokens[j].text == ":" && depth == 1) {
                colon = j;
                break;
            }
        }
        if (colon == 0)
            continue;
        bool overUnordered = false;
        for (std::size_t j = colon + 1; j + 1 < closeParen; ++j)
            if (tokens[j].kind == Token::Kind::Identifier &&
                unorderedVars.count(tokens[j].text) > 0)
                overUnordered = true;
        if (!overUnordered)
            continue;

        // Loop body: balanced braces or a single statement.
        std::size_t bodyBegin = closeParen;
        std::size_t bodyEnd;
        if (bodyBegin < tokens.size() &&
            tokens[bodyBegin].text == "{") {
            bodyEnd = skipBalanced(tokens, bodyBegin, "{", "}");
        } else {
            bodyEnd = bodyBegin;
            while (bodyEnd < tokens.size() &&
                   tokens[bodyEnd].text != ";")
                ++bodyEnd;
        }
        const bool accumulates =
            std::any_of(tokens.begin() +
                            static_cast<std::ptrdiff_t>(bodyBegin),
                        tokens.begin() +
                            static_cast<std::ptrdiff_t>(bodyEnd),
                        [](const Token &t) {
                            return isAccumulator(t);
                        });
        if (!accumulates)
            continue;
        const int line = src.lineOf(tokens[i].offset);
        if (src.hasWaiver(line, "vsgpu-lint: unordered-ok"))
            continue;
        out.push_back(
            {src.display(), line, Check::Determinism,
             "iteration over an unordered container feeds an "
             "accumulation — the result depends on hash ordering; "
             "iterate a sorted copy, use std::map, or reduce by "
             "index",
             ""});
    }
}

// ====================================================================
// Family 8: determinism-taint (semantic, project-wide)
// ====================================================================
//
// The token family above bans the nondeterminism *sources* it can
// recognize syntactically.  This family instead tracks where a
// nondeterministic value actually GOES: wall-clock reads, RNG draws,
// addresses reinterpreted as values, and unordered-iteration order
// are taint sources; stats-registry writes, trace events, and
// JSON/golden/summary serialization calls are sinks.  Taint flows
// through assignments via the dataflow core and across function
// boundaries via two summary fixpoint rounds (tainted return values,
// parameters that reach a sink inside the callee).
//
//   determinism-taint.sink      a tainted value reaches a sink in
//                               the same function
//   determinism-taint.cross-fn  a tainted value is passed to a
//                               function whose parameter reaches a
//                               sink internally
//
// Waiver: // vsgpu-lint: det-taint-ok(<reason>).

namespace
{

using TokenVec = std::vector<Token>;

/** Pseudo-tag marking values derived from parameter k. */
std::string
paramTag(int k)
{
    return "param#" + std::to_string(k);
}

bool
isPseudoTag(const std::string &tag)
{
    return tag.rfind("param#", 0) == 0;
}

class DetTaint
{
  public:
    DetTaint(const Project &project, std::vector<Diagnostic> &out)
        : project_(project), out_(out)
    {
    }

    void
    run()
    {
        const auto &functions = project_.index().functions;
        // Two summary rounds (tainted returns / sink parameters
        // become visible one call deeper each round), then a final
        // emitting pass using the converged summaries.
        for (int round = 0; round < 3; ++round)
            for (std::size_t id = 0; id < functions.size(); ++id)
                analyze(static_cast<int>(id), round == 2);
    }

  private:
    df::TagSet
    realTags(const df::TagSet &tags) const
    {
        df::TagSet real;
        for (const std::string &t : tags)
            if (!isPseudoTag(t))
                real.insert(t);
        return real;
    }

    /** Source tags contributed by the statement's own tokens. */
    df::TagSet
    sourceTags(const df::Stmt &stmt, const TokenVec &toks,
               const std::set<std::string> &unordered) const
    {
        df::TagSet tags;
        for (std::size_t i = stmt.tokBegin; i < stmt.tokEnd; ++i) {
            const Token &tok = toks[i];
            if (tok.kind != Token::Kind::Identifier)
                continue;
            const std::string_view prev =
                i > stmt.tokBegin ? toks[i - 1].text
                                  : std::string_view{};
            const std::string_view next =
                i + 1 < stmt.tokEnd ? toks[i + 1].text
                                    : std::string_view{};
            if (tok.text == "now" && prev == "::" &&
                i >= stmt.tokBegin + 2 && next == "(") {
                const std::string_view qual = toks[i - 2].text;
                if (qual.size() >= 6 &&
                    qual.substr(qual.size() - 6) == "_clock")
                    tags.insert("wall-clock");
            }
            if ((tok.text == "rand" || tok.text == "srand" ||
                 tok.text == "random_device") &&
                (next == "(" || tok.text == "random_device"))
                tags.insert("rng");
            if (tok.text == "reinterpret_cast" ||
                (tok.text == "uintptr_t" && next == "("))
                tags.insert("address");
        }
        if (!stmt.rangeContainer.empty() &&
            unordered.count(stmt.rangeContainer))
            tags.insert("iteration-order");
        return tags;
    }

    /** Sink description for a call ("" when not a sink). */
    std::string
    sinkKind(const df::CallRef &call, const df::Stmt &stmt,
             const TokenVec &toks) const
    {
        if (call.callee == "set" || call.callee == "add") {
            for (std::size_t i = stmt.tokBegin; i < stmt.tokEnd;
                 ++i)
                if (toks[i].kind == Token::Kind::Identifier &&
                    (toks[i].text == "scalar" ||
                     toks[i].text == "counter" ||
                     toks[i].text == "distribution") &&
                    i + 1 < stmt.tokEnd &&
                    toks[i + 1].text == "(")
                    return "stats registry write";
            return {};
        }
        if (call.callee == "instant" || call.callee == "span")
            return "trace event";
        if (call.callee.find("Json") != std::string::npos ||
            call.callee.find("Golden") != std::string::npos ||
            call.callee.find("Summary") != std::string::npos ||
            call.callee.find("Manifest") != std::string::npos)
            return "serialized output";
        return {};
    }

    void
    analyze(int id, bool emit)
    {
        const SymbolIndex &index = project_.index();
        const FunctionDef &fn =
            index.functions[static_cast<std::size_t>(id)];
        const TokenVec &toks = project_.tokens(fn.fileIndex);
        const SourceFile &src =
            project_.sources()[static_cast<std::size_t>(
                fn.fileIndex)];

        std::map<std::string, int> paramIndex;
        for (std::size_t p = 0; p < fn.params.size(); ++p)
            if (!fn.params[p].name.empty())
                paramIndex[fn.params[p].name] =
                    static_cast<int>(p);

        std::set<std::string> unordered;
        const auto uit = index.unorderedVars.find(fn.fileIndex);
        if (uit != index.unorderedVars.end())
            unordered = uit->second;

        const df::Cfg cfg =
            df::buildCfg(toks, fn.bodyBegin, fn.bodyEnd);

        auto lookupTags = [&](const std::string &name,
                              const df::TaintEnv &env) {
            const auto it = env.find(name);
            if (it != env.end())
                return it->second;
            const auto pit = paramIndex.find(name);
            if (pit != paramIndex.end())
                return df::TagSet{paramTag(pit->second)};
            return df::TagSet{};
        };

        auto flowTags = [&](const df::Stmt &stmt,
                            const df::TaintEnv &env) {
            df::TagSet tags = sourceTags(stmt, toks, unordered);
            for (const std::string &use : stmt.uses) {
                const df::TagSet t = lookupTags(use, env);
                tags.insert(t.begin(), t.end());
            }
            for (const df::CallRef &call : stmt.calls)
                for (int cid : project_.lookup(call.callee)) {
                    const auto rit = returnTags_.find(cid);
                    if (rit != returnTags_.end())
                        tags.insert(rit->second.begin(),
                                    rit->second.end());
                }
            return tags;
        };

        df::TagSet newReturn;
        std::set<int> newSinkParams;

        df::solveTaint(
            cfg, flowTags,
            [&](const df::Stmt &stmt, const df::TaintEnv &env) {
                if (stmt.isReturn) {
                    const df::TagSet tags = flowTags(stmt, env);
                    const df::TagSet real = realTags(tags);
                    newReturn.insert(real.begin(), real.end());
                }
                for (const df::CallRef &call : stmt.calls) {
                    const std::string kind =
                        sinkKind(call, stmt, toks);
                    if (!kind.empty()) {
                        df::TagSet tags = sourceTags(stmt, toks,
                                                     unordered);
                        for (const auto &arg : call.args)
                            for (const std::string &root : arg) {
                                const df::TagSet t =
                                    lookupTags(root, env);
                                tags.insert(t.begin(), t.end());
                            }
                        for (const std::string &t : tags)
                            if (isPseudoTag(t))
                                newSinkParams.insert(std::stoi(
                                    t.substr(t.find('#') + 1)));
                        const df::TagSet real = realTags(tags);
                        if (emit && !real.empty())
                            diagnose(src, call.nameOffset,
                                     "determinism-taint.sink",
                                     joinTags(real) +
                                         " taint reaches a " +
                                         kind +
                                         " — observable outputs "
                                         "must not depend on "
                                         "wall-clock, RNG, "
                                         "addresses, or hash "
                                         "ordering");
                        continue;
                    }
                    // Cross-function: tainted argument into a
                    // parameter that reaches a sink in the callee.
                    if (!emit)
                        continue;
                    for (int cid : project_.lookup(call.callee)) {
                        const auto sit = sinkParams_.find(cid);
                        if (sit == sinkParams_.end())
                            continue;
                        for (int p : sit->second) {
                            if (static_cast<std::size_t>(p) >=
                                call.args.size())
                                continue;
                            df::TagSet tags;
                            for (const std::string &root :
                                 call.args[static_cast<
                                     std::size_t>(p)]) {
                                const df::TagSet t =
                                    lookupTags(root, env);
                                tags.insert(t.begin(), t.end());
                            }
                            const df::TagSet real =
                                realTags(tags);
                            if (!real.empty())
                                diagnose(
                                    src, call.nameOffset,
                                    "determinism-taint.cross-fn",
                                    joinTags(real) +
                                        " taint flows into '" +
                                        call.callee +
                                        "', whose parameter "
                                        "reaches a stats/trace/"
                                        "serialization sink");
                        }
                    }
                }
            });

        returnTags_[id] = std::move(newReturn);
        if (!newSinkParams.empty())
            sinkParams_[id] = std::move(newSinkParams);
    }

    static std::string
    joinTags(const df::TagSet &tags)
    {
        std::string joined;
        for (const std::string &t : tags) {
            if (!joined.empty())
                joined += "/";
            joined += t;
        }
        return joined;
    }

    void
    diagnose(const SourceFile &src, std::size_t offset,
             const std::string &id, std::string message)
    {
        const int line = src.lineOf(offset);
        if (src.hasWaiver(line, "vsgpu-lint: det-taint-ok"))
            return;
        const std::string key =
            src.display() + ":" + std::to_string(line) + ":" + id;
        if (!seen_.insert(key).second)
            return;
        out_.push_back({src.display(), line,
                        Check::DeterminismTaint, std::move(message),
                        id});
    }

    const Project &project_;
    std::vector<Diagnostic> &out_;
    std::map<int, df::TagSet> returnTags_;
    std::map<int, std::set<int>> sinkParams_;
    std::set<std::string> seen_;
};

} // namespace

void
checkDeterminismTaint(const Project &project,
                      std::vector<Diagnostic> &out)
{
    DetTaint taint(project, out);
    taint.run();
}

} // namespace vsgpu::lint
