/**
 * @file
 * Family 1: unit-safety.
 *
 * In the converted public headers (circuit, pdn, ivr, power, sim,
 * control, hypervisor), a raw double/float parameter, data member, or
 * return value whose name carries a unit suffix (loadOhms,
 * supplyVolts, freqHz, areaMm2, ...) is exactly the pattern the
 * Quantity type system exists to remove: the unit lives in the name
 * instead of the type, so the compiler cannot check it.  Declare the
 * entity as Volts/Amps/Ohms/... and call .raw() at the boundary to
 * dimension-unaware code instead.
 *
 * This is the successor of scripts/check_units.py (which now shells
 * out to this tool); the waiver comment is
 *   // vsgpu-lint: raw-ok(<reason>)
 * and the legacy "check_units:allow" spelling stays honoured so old
 * waivers do not break.
 */

#include "lint.hh"

#include <array>
#include <cctype>
#include <string>

namespace vsgpu::lint
{

namespace
{

/** Unit-ish suffixes, matched case-insensitively at name end. */
constexpr std::array suffixes = {
    "volts", "volt",  "amps",    "amp",    "ohms",   "ohm",
    "siemens", "farads", "farad", "henries", "henry", "watts",
    "watt",  "joules", "joule",  "hertz",  "mhz",    "ghz",
    "khz",   "hz",     "seconds", "second", "secs",  "sec",
    "mm2",   "m2",     "nf",     "uf",     "pf",     "nh",
    "ph",    "mv",     "ma",     "mw",     "nj",     "us",
    "ns",    "ps",
};

bool
hasUnitSuffix(std::string_view name)
{
    std::string lower;
    lower.reserve(name.size());
    for (char c : name)
        lower.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(c))));
    for (std::string_view suffix : suffixes) {
        if (lower.size() < suffix.size())
            continue;
        if (lower.compare(lower.size() - suffix.size(),
                          suffix.size(), suffix) != 0)
            continue;
        // Guard against e.g. "thesis" matching "sis": require the
        // character before the suffix (if any) to not extend a
        // same-word lowercase run only when the suffix starts
        // lowercase in the original spelling.  A camelCase boundary
        // ("loadOhms") or an exact match ("ohms") both qualify.
        const std::size_t at = name.size() - suffix.size();
        if (at == 0)
            return true;
        const char before = name[at - 1];
        const char first = name[at];
        if (std::isupper(static_cast<unsigned char>(first)) ||
            before == '_' ||
            std::isdigit(static_cast<unsigned char>(before)))
            return true;
    }
    return false;
}

bool
isWaived(const SourceFile &src, int line)
{
    return src.hasWaiver(line, "vsgpu-lint: raw-ok") ||
           src.hasWaiver(line, "check_units:allow");
}

} // namespace

void
checkUnitSafety(const SourceFile &src, std::vector<Diagnostic> &out)
{
    const std::vector<Token> tokens = tokenize(src.code());

    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
        const Token &type = tokens[i];
        if (type.kind != Token::Kind::Identifier ||
            (type.text != "double" && type.text != "float"))
            continue;

        // Skip cv/ref/pointer decoration between type and name.
        std::size_t j = i + 1;
        while (j < tokens.size() &&
               (tokens[j].text == "&" || tokens[j].text == "*" ||
                tokens[j].text == "const"))
            ++j;
        if (j >= tokens.size() ||
            tokens[j].kind != Token::Kind::Identifier)
            continue;
        const Token &name = tokens[j];
        if (!hasUnitSuffix(name.text))
            continue;

        // Parameter/member: followed by , ) ; = { [.  Function
        // returning raw double with a unit-suffixed name: followed
        // by ( — both are unit-in-the-name patterns.
        const std::string_view next =
            j + 1 < tokens.size() ? tokens[j + 1].text
                                  : std::string_view{};
        const bool decl = next == "," || next == ")" || next == ";" ||
                          next == "=" || next == "{" || next == "[";
        const bool fn = next == "(";
        if (!decl && !fn)
            continue;

        const int line = src.lineOf(name.offset);
        if (isWaived(src, line))
            continue;

        std::string message =
            fn ? "function '" + std::string(name.text) +
                     "' returns raw " + std::string(type.text) +
                     " but its name carries a unit suffix"
               : "raw " + std::string(type.text) + " '" +
                     std::string(name.text) +
                     "' carries a unit suffix";
        message += " — use the matching Quantity type "
                   "(src/common/quantity.hh) or waive with "
                   "'// vsgpu-lint: raw-ok(<reason>)'";
        out.push_back({src.display(), line, Check::UnitSafety,
                       std::move(message), ""});
    }
}

} // namespace vsgpu::lint
