/**
 * @file
 * vsgpu — command-line driver for the voltage-stacked GPU simulator.
 *
 * Subcommands:
 *   vsgpu list
 *       List benchmarks and PDS configurations.
 *   vsgpu run [options]
 *       Co-simulate a workload on a PDS configuration.
 *   vsgpu impedance [--area F]
 *       Effective-impedance sweep of the stacked PDN.
 *   vsgpu export-trace --benchmark NAME --out FILE [--sms N]
 *       Export a generated workload as a textual warp trace.
 *
 * run options:
 *   --pds vrm|ivr|vs|cross      PDS configuration  [cross]
 *   --benchmark NAME            paper benchmark    [hotspot]
 *   --trace FILE                replay a warp-trace file instead
 *   --instrs N                  instructions per warp [1500]
 *   --cycles N                  cycle budget       [200000]
 *   --area F                    CR-IVR area, x GPU [config default]
 *   --threshold V               smoothing trigger  [0.9]
 *   --halt-layer L@T            halt layer L at time T seconds
 *   --wave FILE.csv             dump layer-voltage trace as CSV
 *   --wave-out FILE             per-SM rail waveforms (VCD, or CSV
 *                               when FILE ends in .csv)
 *   --wave-stride N             record every Nth timestep [16]
 *   --stats-out FILE            stats registry dump as JSON, with
 *                               the run manifest
 *   --trace-out FILE            Chrome trace_event JSON (open in
 *                               Perfetto / chrome://tracing)
 *   --trace-categories LIST     comma list of phase,pool,ctl,hv,all
 *   --sample-every SEC          windowed time-series telemetry
 *                               cadence, simulated seconds
 *   --timeseries-out FILE       time-series dump as JSON
 *   --profile                   stage-cost self-profiler: report on
 *                               stdout, JSON inside --stats-out
 *   --flight-out FILE           write the flight-recorder crash dump
 *                               as JSON here (stderr text dump is
 *                               always on)
 *   --gate-watts W              power of a halted layer's SMs
 *                               (fault injection: 'nan' trips the
 *                               solver NaN guard)
 *   --no-verify                 skip the static model verifier
 *                               (see tools/vsgpu_verify)
 *   --solver KIND               MNA linear solver: sparse (default)
 *                               or dense (docs/sparse_solver.md)
 *
 *   vsgpu report --stats FILE [--timeseries FILE]
 *       Render stats / profile / time-series JSON dumps as a
 *       human-readable report.
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>

#include "circuit/solver.hh"
#include "circuit/wave_writer.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "exec/pool.hh"
#include "exec/setup_cache.hh"
#include "obs/flight_recorder.hh"
#include "obs/manifest.hh"
#include "obs/profile.hh"
#include "obs/report.hh"
#include "obs/stats_registry.hh"
#include "obs/timeseries.hh"
#include "obs/trace.hh"
#include "pdn/impedance.hh"
#include "sim/cosim.hh"
#include "sim/pds_setup.hh"
#include "sim/stats_export.hh"
#include "workloads/suite.hh"
#include "workloads/trace_file.hh"

using namespace vsgpu;

namespace
{

/** Minimal flag parser: --key value pairs after the subcommand. */
std::map<std::string, std::string>
parseFlags(int argc, char **argv, int first)
{
    std::map<std::string, std::string> flags;
    for (int i = first; i < argc; ++i) {
        const std::string key = argv[i];
        fatalIf(key.size() < 3 || key.substr(0, 2) != "--",
                "expected --flag, got '", key, "'");
        if (key == "--no-verify" || key == "--profile") {
            // Boolean flags, no value.
            flags.emplace(key.substr(2), "1");
            continue;
        }
        fatalIf(i + 1 >= argc, "flag ", key, " needs a value");
        flags[key.substr(2)] = argv[++i];
    }
    return flags;
}

std::string
flagOr(const std::map<std::string, std::string> &flags,
       const std::string &key, const std::string &fallback)
{
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
}

PdsKind
parsePds(const std::string &name)
{
    if (name == "vrm")
        return PdsKind::ConventionalVrm;
    if (name == "ivr")
        return PdsKind::SingleLayerIvr;
    if (name == "vs")
        return PdsKind::VsCircuitOnly;
    if (name == "cross")
        return PdsKind::VsCrossLayer;
    fatal("unknown PDS '", name, "' (vrm|ivr|vs|cross)");
}

Benchmark
parseBenchmark(const std::string &name)
{
    for (Benchmark b : allBenchmarks())
        if (name == benchmarkName(b))
            return b;
    fatal("unknown benchmark '", name, "' (try 'vsgpu list')");
}

int
cmdList()
{
    std::cout << "benchmarks:";
    for (Benchmark b : allBenchmarks())
        std::cout << " " << benchmarkName(b);
    std::cout << "\npds configurations: vrm (single-layer VRM), "
                 "ivr (single-layer IVR),\n  vs (VS circuit-only), "
                 "cross (VS cross-layer)\n";
    return 0;
}

int
cmdRun(const std::map<std::string, std::string> &flags)
{
    CosimConfig cfg;
    cfg.pds = defaultPds(parsePds(flagOr(flags, "pds", "cross")));
    cfg.maxCycles = static_cast<Cycle>(
        std::stoull(flagOr(flags, "cycles", "200000")));
    if (flags.count("area"))
        cfg.pds.ivrAreaFraction = std::stod(flags.at("area"));
    if (flags.count("threshold"))
        cfg.pds.controller.vThreshold =
            Volts{std::stod(flags.at("threshold"))};
    if (flags.count("no-verify"))
        cfg.verifyModel = false;
    if (flags.count("halt-layer")) {
        const std::string spec = flags.at("halt-layer");
        const auto at = spec.find('@');
        fatalIf(at == std::string::npos,
                "--halt-layer wants L@seconds, e.g. 0@3e-6");
        cfg.gatedLayer = std::stoi(spec.substr(0, at));
        cfg.gateLayerAtSec = Seconds{std::stod(spec.substr(at + 1))};
    }
    if (flags.count("gate-watts"))
        cfg.gatedLayerWatts = Watts{std::stod(flags.at("gate-watts"))};
    if (flags.count("sample-every"))
        cfg.sampleEvery = Seconds{std::stod(flags.at("sample-every"))};
    if (flags.count("flight-out"))
        obs::setFlightDumpPath(flags.at("flight-out"));
    const bool wantProfile = flags.count("profile") > 0;
    if (wantProfile)
        obs::setProfiling(true);
    const bool wantWave = flags.count("wave") > 0;
    if (wantWave)
        cfg.traceStride = 16;
    const std::string waveOutPath = flagOr(flags, "wave-out", "");
    if (!waveOutPath.empty())
        cfg.waveStride =
            std::stoi(flagOr(flags, "wave-stride", "16"));

    const std::string tracePath = flagOr(flags, "trace-out", "");
    if (!tracePath.empty())
        obs::Tracer::instance().enable(obs::parseTraceCategories(
            flagOr(flags, "trace-categories", "")));

    // Route through the exec layer (single-worker pool + setup
    // cache) so the exec.* stats describe a real code path and the
    // manifest fingerprint comes from the cache's key set.
    exec::SetupCache cache;
    exec::Pool pool(1);

    CosimResult result;
    std::uint64_t seed = 0;
    std::string subject;
    if (flags.count("trace")) {
        std::ifstream in(flags.at("trace"));
        fatalIf(!in, "cannot open trace '", flags.at("trace"), "'");
        TraceFileFactory factory(TraceFile::parse(in));
        subject = "run trace " + flags.at("trace");
        CoSimulator sim(cache.withSetup(cfg));
        pool.parallelFor(1, [&](int) {
            // vsgpu-lint: shared-ok(single task on a one-worker pool)
            result = sim.run(factory, 0.6);
        });
    } else {
        const Benchmark bench =
            parseBenchmark(flagOr(flags, "benchmark", "hotspot"));
        seed = benchmarkSeed(bench);
        subject = std::string("run ") + benchmarkName(bench);
        WorkloadSpec spec = workloadFor(bench);
        spec = scaledToInstrs(
            spec, std::stoi(flagOr(flags, "instrs", "1500")));
        CoSimulator sim(cache.withSetup(cfg));
        // vsgpu-lint: shared-ok(single task on a one-worker pool)
        pool.parallelFor(1, [&](int) { result = sim.run(spec); });
    }

    if (wantProfile)
        obs::setProfiling(false);

    const auto &e = result.energy;
    Table table("run summary");
    table.setHeader({"metric", "value"});
    table.beginRow().cell("pds").cell(pdsName(cfg.pds.kind)).endRow();
    table.beginRow()
        .cell("cycles")
        .cell(static_cast<long long>(result.cycles))
        .endRow();
    table.beginRow()
        .cell("instructions")
        .cell(static_cast<long long>(result.instructions))
        .endRow();
    table.beginRow()
        .cell("finished")
        .cell(result.finished ? "yes" : "NO (cycle budget)")
        .endRow();
    table.beginRow()
        .cell("avg load power (W)")
        .cell(result.avgLoadPower(), 2)
        .endRow();
    table.beginRow()
        .cell("PDE")
        .cell(formatPercent(e.pde()))
        .endRow();
    table.beginRow()
        .cell("mean rail (V)")
        .cell(result.meanVoltage, 3)
        .endRow();
    table.beginRow()
        .cell("min rail (V)")
        .cell(result.minVoltage, 3)
        .endRow();
    table.beginRow()
        .cell("throttle rate")
        .cell(formatPercent(result.throttleRate))
        .endRow();
    table.print(std::cout);

    if (wantWave) {
        std::ofstream out(flags.at("wave"));
        fatalIf(!out, "cannot open '", flags.at("wave"), "'");
        out << "time_s,min_sm,max_sm,layer0,layer1,layer2,layer3\n";
        for (const auto &s : result.trace) {
            out << s.timeSec.raw() << "," << s.minSmVolts.raw() << ","
                << s.maxSmVolts.raw();
            for (double v : s.layerVolts)
                out << "," << v;
            out << "\n";
        }
        std::cout << "\nwrote " << result.trace.size()
                  << " waveform samples to " << flags.at("wave")
                  << "\n";
    }

    if (!waveOutPath.empty()) {
        fatalIf(!result.wave, "run produced no waveform capture");
        std::ofstream out(waveOutPath);
        fatalIf(!out, "cannot open '", waveOutPath, "'");
        const bool csv =
            waveOutPath.size() >= 4 &&
            waveOutPath.substr(waveOutPath.size() - 4) == ".csv";
        if (csv)
            result.wave->writeCsv(out);
        else
            result.wave->writeVcd(out);
        std::cout << "wrote " << result.wave->numSamples()
                  << " samples x " << result.wave->numSignals()
                  << " rails to " << waveOutPath
                  << (csv ? " (CSV)" : " (VCD)") << "\n";
    }

    if (wantProfile && result.profile) {
        std::cout << "\n"
                  << obs::renderProfileReport(*result.profile);
    }

    if (flags.count("timeseries-out")) {
        obs::TimeSeriesDoc doc;
        doc.sampleEverySec = cfg.sampleEvery.raw();
        doc.dtSec = config::clockPeriod.raw();
        doc.windowCycles = obs::timeSeriesWindowCycles(
            config::clockPeriod.raw(), cfg.sampleEvery.raw());
        if (result.timeSeries) {
            result.timeSeries->label = subject;
            doc.runs.push_back(*result.timeSeries);
        }
        const std::string &path = flags.at("timeseries-out");
        std::ofstream out(path);
        fatalIf(!out, "cannot open '", path, "'");
        obs::writeTimeSeriesJson(doc, out);
        std::cout << "wrote " << doc.runs.size()
                  << " time-series runs to " << path << "\n";
    }

    if (flags.count("stats-out")) {
        obs::Manifest manifest = obs::makeManifest("vsgpu");
        manifest.subject = subject;
        manifest.configFingerprint =
            obs::configFingerprint(cache.cachedKeys());
        manifest.seed = seed;
        manifest.scale = 1.0;

        obs::StatsRegistry registry;
        registerRunStats(registry, result);
        registerExecStats(
            registry, pool.tasksRun(), pool.steals(),
            static_cast<std::uint64_t>(cache.setupsBuilt()),
            static_cast<std::uint64_t>(cache.setupHits()));
        if (wantProfile && result.profile) {
            registry.setProfileJson(
                obs::writeProfileJson(*result.profile, "  "));
        }
        registry.setManifest(manifest);

        const std::string &path = flags.at("stats-out");
        std::ofstream out(path);
        fatalIf(!out, "cannot open '", path, "'");
        registry.dumpJson(out);
        std::cout << "wrote " << registry.size() << " stats to "
                  << path << "\n";
    }

    if (!tracePath.empty()) {
        obs::Tracer &tracer = obs::Tracer::instance();
        tracer.disable();
        std::ofstream out(tracePath);
        fatalIf(!out, "cannot open '", tracePath, "'");
        tracer.writeJson(out);
        std::cout << "wrote " << tracer.numEvents() << " events to "
                  << tracePath << "\n";
    }
    return 0;
}

int
cmdReport(const std::map<std::string, std::string> &flags)
{
    fatalIf(!flags.count("stats"),
            "report needs --stats FILE (a --stats-out dump); "
            "--timeseries FILE is optional");
    std::ifstream statsIn(flags.at("stats"));
    fatalIf(!statsIn, "cannot open '", flags.at("stats"), "'");
    const obs::StatsSnapshot stats = obs::readStatsJson(statsIn);

    obs::TimeSeriesDoc series;
    const bool haveSeries = flags.count("timeseries") > 0;
    if (haveSeries) {
        std::ifstream seriesIn(flags.at("timeseries"));
        fatalIf(!seriesIn, "cannot open '", flags.at("timeseries"),
                "'");
        series = obs::readTimeSeriesJson(seriesIn);
    }

    obs::writeRunReport(std::cout, stats,
                        haveSeries ? &series : nullptr);
    return 0;
}

int
cmdImpedance(const std::map<std::string, std::string> &flags)
{
    VsPdnOptions options;
    const double area = std::stod(flagOr(flags, "area", "0.2"));
    if (area > 0.0) {
        const CrIvrDesign design(area * config::gpuDieArea);
        options.crIvrEffOhms = design.effOhmsPerCell();
        options.crIvrFlyCapF = design.flyCapPerCell();
    }
    VsPdn pdn(options);
    ImpedanceAnalyzer analyzer(pdn);
    Table table("effective impedance, CR-IVR " +
                formatFixed(area, 2) + "x GPU area");
    table.setHeader({"freq_MHz", "Z_G", "Z_ST", "Z_R_same",
                     "Z_R_diff"});
    for (const auto &p :
         analyzer.sweep(logFrequencyGrid(1.0_MHz, 500.0_MHz, 24))) {
        table.beginRow()
            .cell(p.freq / 1.0_MHz, 2)
            .cell(p.zGlobal.raw(), 4)
            .cell(p.zStack.raw(), 4)
            .cell(p.zResidualSameLayer.raw(), 4)
            .cell(p.zResidualDiffLayer.raw(), 4)
            .endRow();
    }
    table.print(std::cout);
    return 0;
}

int
cmdExportTrace(const std::map<std::string, std::string> &flags)
{
    fatalIf(!flags.count("benchmark") || !flags.count("out"),
            "export-trace needs --benchmark and --out");
    WorkloadSpec spec =
        workloadFor(parseBenchmark(flags.at("benchmark")));
    spec = scaledToInstrs(spec,
                          std::stoi(flagOr(flags, "instrs", "500")));
    const int sms = std::stoi(flagOr(flags, "sms", "2"));
    WorkloadFactory factory(spec);
    const TraceFile trace = recordTrace(factory, sms);
    std::ofstream out(flags.at("out"));
    fatalIf(!out, "cannot open '", flags.at("out"), "'");
    trace.write(out);
    std::cout << "wrote " << trace.totalInstrs()
              << " instructions (" << trace.numStreams()
              << " streams) to " << flags.at("out") << "\n";
    return 0;
}

void
usage()
{
    std::cout
        << "usage: vsgpu <list|run|report|impedance|export-trace> "
           "[--flag value ...]\n"
           "see the header of tools/vsgpu_cli.cc for all options\n";
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 1;
    }
    const std::string cmd = argv[1];
    const auto flags = parseFlags(argc, argv, 2);
    if (flags.count("solver")) {
        SolverKind kind;
        fatalIf(!parseSolverKind(flags.at("solver"), kind),
                "--solver wants sparse or dense");
        setDefaultSolver(kind);
    }
    if (cmd == "list")
        return cmdList();
    if (cmd == "run")
        return cmdRun(flags);
    if (cmd == "report")
        return cmdReport(flags);
    if (cmd == "impedance")
        return cmdImpedance(flags);
    if (cmd == "export-trace")
        return cmdExportTrace(flags);
    usage();
    return 1;
}
