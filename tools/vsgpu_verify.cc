/**
 * @file
 * vsgpu_verify — static model verification over every bench scenario
 * configuration and golden config (docs/model_verification.md).
 *
 * Runs the src/verify audits (netlist ERC, numeric conditioning,
 * control-loop stability) on each distinct electrical + control
 * configuration the paper scenarios construct, without any transient
 * simulation, and diffs the findings against a frozen baseline of
 * reviewed paper-faithful oddities.
 *
 * Usage:
 *   vsgpu_verify [--baseline file | --no-baseline]
 *                [--write-baseline] [--list] [--verbose]
 *                [--subject NAME]...
 *
 * With no --subject arguments every registered subject is verified,
 * and the golden summaries directory is cross-checked: every
 * tests/golden/<scenario>.json must be covered by at least one
 * subject tagged with that scenario.
 *
 * Exit status: 0 clean (or baselined), 1 new findings or uncovered
 * golden configs, 2 usage / I/O error.
 */

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "sim/model_verify.hh"

namespace fs = std::filesystem;
using namespace vsgpu;

namespace
{

/** One named configuration to audit. */
struct Subject
{
    std::string name;      ///< stable id used in baseline fingerprints
    std::string scenarios; ///< comma-joined scenario stems it covers
    std::function<CosimConfig()> build;
};

CosimConfig
pdsConfig(PdsKind kind)
{
    CosimConfig cfg;
    cfg.pds = defaultPds(kind);
    return cfg;
}

CosimConfig
crossAtThreshold(double volts)
{
    CosimConfig cfg = pdsConfig(PdsKind::VsCrossLayer);
    cfg.pds.controller.vThreshold = Volts{volts};
    return cfg;
}

CosimConfig
crossWithWeights(double w1, double w2, double w3)
{
    CosimConfig cfg = pdsConfig(PdsKind::VsCrossLayer);
    cfg.pds.controller.w1 = w1;
    cfg.pds.controller.w2 = w2;
    cfg.pds.controller.w3 = w3;
    return cfg;
}

CosimConfig
crossWithDetector(DetectorKind kind)
{
    CosimConfig cfg = pdsConfig(PdsKind::VsCrossLayer);
    cfg.pds.controller.detector = detectorSpec(kind);
    return cfg;
}

/**
 * Registry of every distinct electrical + control configuration the
 * bench scenarios construct.  Scenarios that reuse a default
 * configuration (fig14/fig15/fig17 run the table3 defaults, with
 * governors attached outside the electrical model) are covered by
 * tagging the shared subject with every scenario stem it backs.
 */
std::vector<Subject>
allSubjects()
{
    std::vector<Subject> subjects;
    const auto add = [&subjects](std::string name,
                                 std::string scenarios,
                                 std::function<CosimConfig()> build) {
        subjects.push_back(
            {std::move(name), std::move(scenarios), std::move(build)});
    };

    // Table III: the four PDS configurations at paper defaults.
    // fig13's conventional baseline, fig14/fig15's conventional and
    // cross-layer runs, and fig17's cross-layer runs use these same
    // electrical models (DFS/PG governors act on the workload side).
    add("conventional_vrm",
        "table3_pds_comparison,fig13_actuator_tradeoff,"
        "fig14_penalty_saving,fig15_dfs,fig16_pg",
        [] { return pdsConfig(PdsKind::ConventionalVrm); });
    add("single_layer_ivr", "table3_pds_comparison",
        [] { return pdsConfig(PdsKind::SingleLayerIvr); });
    add("vs_circuit_only", "table3_pds_comparison",
        [] { return pdsConfig(PdsKind::VsCircuitOnly); });
    add("vs_cross_layer",
        "table3_pds_comparison,fig14_penalty_saving,fig15_dfs,"
        "fig17_imbalance,table2_detectors",
        [] { return pdsConfig(PdsKind::VsCrossLayer); });

    // Fig. 12: smoothing-off baseline at 0.2x GPU CR-IVR area, and
    // the cross-layer stack at each trigger threshold.
    add("vs_circuit_only_area02", "fig12_threshold_sweep", [] {
        CosimConfig cfg = pdsConfig(PdsKind::VsCircuitOnly);
        cfg.pds.ivrAreaFraction = 0.2;
        return cfg;
    });
    add("vs_cross_layer_vth070", "fig12_threshold_sweep",
        [] { return crossAtThreshold(0.70); });
    add("vs_cross_layer_vth080", "fig12_threshold_sweep",
        [] { return crossAtThreshold(0.80); });
    add("vs_cross_layer_vth090", "fig12_threshold_sweep",
        [] { return crossAtThreshold(0.90); });
    add("vs_cross_layer_vth095", "fig12_threshold_sweep",
        [] { return crossAtThreshold(0.95); });

    // Fig. 13: actuator weight corners (pure single-actuator
    // settings plus the paper's mixed point).
    add("vs_cross_layer_diws", "fig13_actuator_tradeoff",
        [] { return crossWithWeights(1.0, 0.0, 0.0); });
    add("vs_cross_layer_fii", "fig13_actuator_tradeoff",
        [] { return crossWithWeights(0.0, 1.0, 0.0); });
    add("vs_cross_layer_dcc", "fig13_actuator_tradeoff",
        [] { return crossWithWeights(0.0, 0.0, 1.0); });
    add("vs_cross_layer_mixed", "fig13_actuator_tradeoff",
        [] { return crossWithWeights(0.4, 0.4, 0.2); });

    // Fig. 16: gated scheduler on the cross-layer stack (the gating
    // changes workload scheduling, not the netlist; verified anyway
    // so the subject list matches the scenario's configuration set).
    add("vs_cross_layer_gates", "fig16_pg", [] {
        CosimConfig cfg = pdsConfig(PdsKind::VsCrossLayer);
        cfg.gpu.sm.scheduler = SchedulerKind::Gates;
        return cfg;
    });

    // Table II: each detector implementation driving the loop.
    add("vs_cross_layer_oddd", "table2_detectors",
        [] { return crossWithDetector(DetectorKind::Oddd); });
    add("vs_cross_layer_cpm", "table2_detectors",
        [] { return crossWithDetector(DetectorKind::Cpm); });
    add("vs_cross_layer_adc", "table2_detectors",
        [] { return crossWithDetector(DetectorKind::Adc); });

    return subjects;
}

/** One finding, bound to the subject whose audit produced it. */
struct Finding
{
    std::string subject; ///< Subject::name
    verify::Diagnostic diag;
};

/**
 * Baseline fingerprint.  Deliberately message-free: messages carry
 * floating-point detail that shifts under benign model edits, while
 * (subject, severity, id, diagnostic subject) names the reviewed
 * oddity itself.  A severity upgrade therefore surfaces as a new
 * finding, which is the desired behaviour.
 */
std::string
fingerprint(const Finding &f)
{
    std::ostringstream os;
    os << f.subject << "|"
       << (f.diag.severity == verify::Severity::Error ? "error"
                                                      : "warning")
       << "|" << f.diag.id << "|" << f.diag.subject;
    return os.str();
}

/** Load baseline fingerprints (one per line, '#' comments). */
bool
loadBaseline(const std::string &path, std::vector<std::string> &out)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::string line;
    while (std::getline(in, line)) {
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        while (!line.empty() && std::isspace(static_cast<unsigned char>(
                                    line.back())))
            line.pop_back();
        std::size_t start = 0;
        while (start < line.size() &&
               std::isspace(static_cast<unsigned char>(line[start])))
            ++start;
        if (start > 0)
            line.erase(0, start);
        if (!line.empty())
            out.push_back(line);
    }
    return true;
}

/**
 * Cross-check the golden summaries: every recorded scenario must be
 * covered by at least one verified subject.  @return scenario stems
 * with no covering subject.
 */
std::vector<std::string>
uncoveredGoldens(const fs::path &goldenDir,
                 const std::vector<Subject> &subjects)
{
    std::vector<std::string> missing;
    if (!fs::is_directory(goldenDir))
        return missing;
    for (const auto &entry : fs::directory_iterator(goldenDir)) {
        if (entry.path().extension() != ".json")
            continue;
        const std::string stem = entry.path().stem().string();
        const auto covers = [&stem](const Subject &s) {
            // Exact comma-separated element match.
            std::size_t pos = 0;
            while (pos <= s.scenarios.size()) {
                std::size_t comma = s.scenarios.find(',', pos);
                if (comma == std::string::npos)
                    comma = s.scenarios.size();
                if (s.scenarios.substr(pos, comma - pos) == stem)
                    return true;
                pos = comma + 1;
            }
            return false;
        };
        if (std::none_of(subjects.begin(), subjects.end(), covers))
            missing.push_back(stem);
    }
    std::sort(missing.begin(), missing.end());
    return missing;
}

int
usage(std::ostream &os)
{
    os << "usage: vsgpu_verify [--baseline file | --no-baseline]\n"
          "                    [--write-baseline] [--list]\n"
          "                    [--verbose] [--subject NAME]...\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string baselinePath =
#ifdef VSGPU_VERIFY_BASELINE
        VSGPU_VERIFY_BASELINE;
#else
        "tools/verify/verify_baseline.txt";
#endif
    const fs::path goldenDir =
#ifdef VSGPU_GOLDEN_DIR
        VSGPU_GOLDEN_DIR;
#else
        "tests/golden";
#endif
    bool useBaseline = true;
    bool writeBaseline = false;
    bool verbose = false;
    std::vector<std::string> wanted;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--baseline") {
            const char *v = next();
            if (!v)
                return usage(std::cerr);
            baselinePath = v;
        } else if (arg == "--no-baseline") {
            useBaseline = false;
        } else if (arg == "--write-baseline") {
            writeBaseline = true;
        } else if (arg == "--verbose") {
            verbose = true;
        } else if (arg == "--subject") {
            const char *v = next();
            if (!v)
                return usage(std::cerr);
            wanted.push_back(v);
        } else if (arg == "--list") {
            for (const Subject &s : allSubjects())
                std::cout << s.name << "  (" << s.scenarios << ")\n";
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        } else {
            std::cerr << "vsgpu_verify: unknown argument " << arg
                      << "\n";
            return usage(std::cerr);
        }
    }

    // The audits report through their Report; the setup build under a
    // broken config must not spam the console mid-table.
    setLogQuiet(true);

    const std::vector<Subject> subjects = allSubjects();
    std::vector<const Subject *> selected;
    for (const Subject &s : subjects) {
        if (wanted.empty() ||
            std::find(wanted.begin(), wanted.end(), s.name) !=
                wanted.end())
            selected.push_back(&s);
    }
    for (const std::string &w : wanted) {
        if (std::none_of(subjects.begin(), subjects.end(),
                         [&w](const Subject &s) {
                             return s.name == w;
                         })) {
            std::cerr << "vsgpu_verify: unknown subject '" << w
                      << "' (see --list)\n";
            return 2;
        }
    }

    std::vector<Finding> findings;
    for (const Subject *s : selected) {
        if (verbose)
            std::cerr << "verify " << s->name << "\n";
        const verify::Report report = verifyModel(s->build());
        for (const verify::Diagnostic &d : report.diags)
            findings.push_back({s->name, d});
    }

    if (writeBaseline) {
        std::ofstream out(baselinePath);
        if (!out) {
            std::cerr << "vsgpu_verify: cannot write baseline "
                      << baselinePath << "\n";
            return 2;
        }
        out << "# vsgpu_verify baseline — reviewed paper-faithful "
               "findings.\n"
               "# Format: subject|severity|id|diagnostic-subject\n"
               "# Regenerate with: vsgpu_verify --write-baseline\n"
               "# Every entry must carry a rationale comment; see\n"
               "# docs/model_verification.md before freezing "
               "anything new.\n";
        std::vector<std::string> fps;
        for (const Finding &f : findings)
            fps.push_back(fingerprint(f));
        std::sort(fps.begin(), fps.end());
        for (const std::string &fp : fps)
            out << fp << "\n";
        std::cout << "vsgpu_verify: wrote " << fps.size()
                  << " baseline entr"
                  << (fps.size() == 1 ? "y" : "ies") << " to "
                  << baselinePath << "\n";
        return 0;
    }

    std::vector<std::string> baseline;
    if (useBaseline &&
        !loadBaseline(baselinePath, baseline)) {
        std::cerr << "vsgpu_verify: cannot read baseline "
                  << baselinePath << " (use --no-baseline to skip)\n";
        return 2;
    }

    // Each baseline entry absorbs any number of identical
    // fingerprints (unlike lint lines, the same reviewed oddity can
    // legitimately appear once per subject audit re-run).
    const std::set<std::string> frozen(baseline.begin(),
                                       baseline.end());
    std::vector<Finding> fresh;
    std::size_t baselined = 0;
    for (const Finding &f : findings) {
        if (frozen.count(fingerprint(f)) > 0)
            ++baselined;
        else
            fresh.push_back(f);
    }

    for (const Finding &f : fresh)
        std::cerr << f.subject << ": " << f.diag.id << " ["
                  << (f.diag.severity == verify::Severity::Error
                          ? "error"
                          : "warning")
                  << "] " << f.diag.subject << ": " << f.diag.message
                  << "\n";

    const std::vector<std::string> missing =
        wanted.empty() ? uncoveredGoldens(goldenDir, subjects)
                       : std::vector<std::string>{};
    for (const std::string &stem : missing)
        std::cerr << "vsgpu_verify: golden config '" << stem
                  << "' is covered by no subject\n";

    std::cout << "vsgpu_verify: " << selected.size()
              << " subject(s), " << fresh.size()
              << " new finding(s)";
    if (baselined > 0)
        std::cout << ", " << baselined << " baselined";
    if (!missing.empty())
        std::cout << ", " << missing.size()
                  << " uncovered golden config(s)";
    std::cout << "\n";
    return (fresh.empty() && missing.empty()) ? 0 : 1;
}
