/**
 * @file
 * Records golden summaries for the bench scenarios.
 *
 * Runs every registered scenario (bench/scenarios/) at the golden
 * scale and writes each Summary as tests/golden/<scenario>.json.
 * The tier-1 test_golden_benches suite replays the scenarios at the
 * same scale and fails if any metric moved by more than its recorded
 * tolerance — so refresh the goldens (and review the diff!) whenever
 * a change intentionally moves the paper-reproduction numbers:
 *
 *     build/tools/record_golden          # rewrite all goldens
 *     build/tools/record_golden fig15_dfs  # just one scenario
 *
 * Flags: --out DIR (default: the in-tree tests/golden), --scale X
 * (default: the golden scale — the tests only compare at that
 * scale), --jobs N.
 */

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <streambuf>
#include <string>
#include <vector>

#include "bench/scenarios/scenarios.hh"
#include "common/logging.hh"

using namespace vsgpu;

namespace
{

/** Discarding sink for the scenarios' human-readable tables. */
std::ostream &
nullStream()
{
    static struct NullBuf : std::streambuf
    {
        int
        overflow(int c) override
        {
            return c;
        }
    } buf;
    static std::ostream os(&buf);
    return os;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string outDir = VSGPU_GOLDEN_DIR;
    scen::ScenarioOptions opts;
    opts.scale = scen::goldenScale;
    std::vector<std::string> only;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool hasValue = i + 1 < argc;
        if (arg == "--out" && hasValue) {
            outDir = argv[++i];
        } else if (arg == "--scale" && hasValue) {
            opts.scale = std::atof(argv[++i]);
        } else if (arg == "--jobs" && hasValue) {
            opts.jobs = std::atoi(argv[++i]);
        } else if (arg == "--help" || arg == "-h") {
            std::cout << "usage: " << argv[0]
                      << " [--out DIR] [--scale X] [--jobs N] "
                         "[scenario...]\n";
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "unknown argument: " << arg
                      << " (try --help)\n";
            return 1;
        } else {
            only.push_back(arg);
        }
    }

    for (const std::string &name : only) {
        if (scen::findScenario(name) == nullptr) {
            std::cerr << "unknown scenario: " << name << "\n";
            return 1;
        }
    }

    setLogQuiet(true);
    int recorded = 0;
    for (const scen::ScenarioInfo &info : scen::allScenarios()) {
        if (!only.empty() &&
            std::find(only.begin(), only.end(), info.name) ==
                only.end())
            continue;
        const std::string path =
            outDir + "/" + info.name + ".json";
        std::cout << "recording " << info.name << " -> " << path
                  << " ..." << std::flush;
        const scen::Summary summary =
            scen::runScenario(info, opts, nullStream());
        std::ofstream out(path);
        if (!out.good()) {
            std::cerr << "\ncannot write " << path << "\n";
            return 1;
        }
        scen::writeSummaryJson(summary, out);
        std::cout << " " << summary.metrics.size() << " metrics\n";
        ++recorded;
    }
    std::cout << recorded << " golden summaries written to " << outDir
              << "\n";
    return 0;
}
