/**
 * @file
 * Thin frontend for the fig16_pg scenario (paper Fig. 16);
 * implementation in bench/scenarios/scenario_fig16.cc.  Supports
 * --jobs / --scale / --json (see scenarioMain()).
 */

#include "bench/scenarios/scenarios.hh"

int
main(int argc, char **argv)
{
    return vsgpu::scen::scenarioMain("fig16_pg", argc, argv);
}
