/**
 * @file
 * Regenerates paper Fig. 16: Warped-Gates-style power gating on the
 * conventional GPU versus the cross-layer voltage-stacked GPU.
 *
 * Expected shape (paper): the hypervisor's current-imbalance budget
 * slightly disturbs the optimal gating pattern, but the VS system's
 * higher PDE more than compensates — lower total energy overall.
 */

#include "bench/bench_util.hh"
#include "hypervisor/pg.hh"
#include "hypervisor/vs_hypervisor.hh"

using namespace vsgpu;

namespace
{

struct PgRun
{
    double wallJ = 0.0;
    Cycle cycles = 0;
};

PgRun
runPg(PdsKind kind, bool gating, bool useHypervisor)
{
    PgRun out;
    // Gating pays off on memory/latency-bound workloads with idle
    // blocks.
    for (Benchmark b : {Benchmark::Bfs, Benchmark::Pathfinder,
                        Benchmark::Simpleatomic,
                        Benchmark::Scalarprod}) {
        PgGovernor pg;
        VsAwareHypervisor hv;
        CosimConfig cfg;
        cfg.pds = defaultPds(kind);
        if (gating)
            cfg.gpu.sm.scheduler = SchedulerKind::Gates;
        cfg.maxCycles = 300000;
        CoSimulator sim(cfg);
        if (gating) {
            sim.attachPg(&pg);
            if (useHypervisor)
                sim.attachHypervisor(&hv);
        }
        const CosimResult r = sim.run(
            bench::benchWorkload(b, bench::sweepBenchInstrs));
        out.wallJ += r.energy.wall;
        out.cycles += r.cycles;
    }
    return out;
}

} // namespace

int
main()
{
    setLogQuiet(true);
    bench::banner("Fig. 16", "power gating on conventional vs "
                             "voltage-stacked GPU");

    const PgRun convPeak =
        runPg(PdsKind::ConventionalVrm, false, false);
    const PgRun convPg = runPg(PdsKind::ConventionalVrm, true, false);
    const PgRun vsPeak = runPg(PdsKind::VsCrossLayer, false, false);
    const PgRun vsPg = runPg(PdsKind::VsCrossLayer, true, true);

    Table table("total energy, normalized to conventional (no PG)");
    table.setHeader({"configuration", "energy", "cycles"});
    const auto addRow = [&](const char *name, const PgRun &r) {
        table.beginRow()
            .cell(name)
            .cell(r.wallJ / convPeak.wallJ, 3)
            .cell(static_cast<long long>(r.cycles))
            .endRow();
    };
    addRow("conventional, no PG", convPeak);
    addRow("conventional + Warped Gates", convPg);
    addRow("VS cross-layer, no PG", vsPeak);
    addRow("VS cross-layer + PG (hypervisor)", vsPg);
    table.print(std::cout);

    std::cout << "\n";
    bench::claim("PG saves energy on conventional (sign)", 1.0,
                 convPg.wallJ < convPeak.wallJ * 1.001 ? 1.0 : 0.0,
                 "");
    bench::claim(
        "VS+PG beats conventional+PG (paper: PDE compensates)", 1.0,
        vsPg.wallJ < convPg.wallJ ? 1.0 : 0.0, "");
    bench::claim("VS+PG total saving vs conventional+PG", 10.0,
                 (1.0 - vsPg.wallJ / convPg.wallJ) * 100.0, "%");
    return 0;
}
