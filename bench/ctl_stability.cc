/**
 * @file
 * Control-theoretic analysis bench (paper Section IV-A/B): stability
 * and disturbance-gain landscape of the discretized delayed
 * voltage-smoothing loop, plus the stability boundary as a function
 * of loop latency and boundary capacitance.  This is the ablation
 * study behind DESIGN.md decision 4.
 */

#include "bench/bench_util.hh"
#include "control/designer.hh"

using namespace vsgpu;

int
main()
{
    bench::banner("ctl_stability", "closed-loop stability and "
                                   "disturbance-gain analysis");

    const Farads cap{4.0 * 100e-9}; // per-boundary capacitance

    Table bound("stability boundary: max stable gain (W/V/layer)");
    bound.setHeader({"loop latency (cycles)", "max stable gain",
                     "gain x latency (W*cy/V)"});
    for (Cycle latency : {20ull, 30ull, 60ull, 90ull, 120ull,
                          180ull}) {
        const WattsPerVolt k = maxStableGain(cap, latency);
        bound.beginRow()
            .cell(static_cast<long long>(latency))
            .cell(k.raw(), 4)
            .cell(k.raw() * static_cast<double>(latency), 3)
            .endRow();
    }
    bound.print(std::cout);
    std::cout << "(the product is ~constant: the classic delayed-"
                 "integrator bound k < C/(3.41 T))\n\n";

    Table sweep("gain sweep at the paper's 60-cycle loop");
    sweep.setHeader({"gain (W/V)", "spectral radius", "stable",
                     "peak gain", "droop/0.1A (V)"});
    const WattsPerVolt kMax = maxStableGain(cap, 60);
    for (double frac : {0.1, 0.3, 0.5, 0.7, 0.9, 1.1, 2.0}) {
        ControlDesignSpec spec;
        spec.boundaryCapF = cap;
        spec.loopLatencyCycles = 60;
        spec.gainWattsPerVolt = frac * kMax;
        const ControlDesign d = designController(spec);
        sweep.beginRow()
            .cell(spec.gainWattsPerVolt.raw(), 4)
            .cell(d.spectralRadius, 4)
            .cell(d.stable ? "yes" : "NO")
            .cell(d.peakDisturbanceGain, 2)
            .cell(d.stable ? d.worstDroopVolts(Amps{0.1}).raw()
                           : 0.0, 3)
            .endRow();
    }
    sweep.print(std::cout);

    std::cout << "\nCapacitance scaling (CR-IVR flying caps raise "
                 "the boundary capacitance and the usable gain):\n";
    Table caps("max stable gain vs boundary capacitance @60cy");
    caps.setHeader({"capacitance (nF)", "max stable gain (W/V)"});
    for (double c : {100e-9, 400e-9, 1e-6, 4e-6}) {
        caps.beginRow()
            .cell(c * 1e9, 0)
            .cell(maxStableGain(Farads{c}, 60).raw(), 3)
            .endRow();
    }
    caps.print(std::cout);

    bench::claim("stability product C/(k*T) (theory: ~3.41)", 3.41,
                 cap.raw() / (maxStableGain(cap, 60).raw() * 60.0 *
                              config::clockPeriod.raw()),
                 "");
    return 0;
}
