/**
 * @file
 * Regenerates paper Fig. 9: transient layer-voltage waveforms under
 * the synthetic worst-case imbalance — one full layer of SMs is
 * halted at the 3 us mark.
 *
 * Expected shape (paper): circuit-only VS needs ~2x GPU area of
 * CR-IVR to hold the rail above 0.8 V; at 0.2x the rail collapses;
 * the cross-layer solution at only 0.2x dips briefly and recovers
 * above the margin.
 */

#include "bench/bench_util.hh"

using namespace vsgpu;

namespace
{

CosimResult
worstCase(PdsKind kind, double areaFraction)
{
    CosimConfig cfg;
    cfg.pds = defaultPds(kind);
    cfg.pds.ivrAreaFraction = areaFraction;
    cfg.maxCycles = 4200;
    cfg.gateLayerAtSec = 3.0_us;
    cfg.gatedLayer = 0;
    cfg.traceStride = 70;
    CoSimulator sim(cfg);
    return sim.run(WorkloadFactory(uniformWorkload(9000)), 0.9);
}

} // namespace

int
main()
{
    setLogQuiet(true);
    bench::banner("Fig. 9",
                  "transient waveforms under worst-case imbalance "
                  "(layer halted at 3 us)");

    struct Config
    {
        const char *label;
        PdsKind kind;
        double area;
    };
    const Config configs[] = {
        {"circuit-only 2.0x", PdsKind::VsCircuitOnly, 2.0},
        {"circuit-only 1.0x", PdsKind::VsCircuitOnly, 1.0},
        {"circuit-only 0.2x", PdsKind::VsCircuitOnly, 0.2},
        {"cross-layer  0.2x", PdsKind::VsCrossLayer, 0.2},
    };

    std::vector<CosimResult> results;
    for (const auto &c : configs)
        results.push_back(worstCase(c.kind, c.area));

    Table table("min SM voltage vs time");
    table.setHeader({"time_us", configs[0].label, configs[1].label,
                     configs[2].label, configs[3].label});
    const std::size_t samples = results[0].trace.size();
    for (std::size_t i = 0; i < samples; i += 3) {
        auto &row = table.beginRow().cell(
            results[0].trace[i].timeSec.raw() * 1e6, 2);
        for (const auto &r : results)
            row.cell(i < r.trace.size() ? r.trace[i].minSmVolts.raw() : 0.0,
                     3);
        row.endRow();
    }
    table.print(std::cout);

    std::cout << "\nPost-event minimum voltages:\n";
    for (std::size_t c = 0; c < results.size(); ++c)
        std::cout << "  " << configs[c].label << ": min "
                  << formatFixed(results[c].minVoltage, 3) << " V\n";

    bench::claim("circuit-only 2.0x stays above", 0.8,
                 results[0].minVoltage, " V");
    bench::claim("cross-layer 0.2x recovers to ~", 0.85,
                 results[3].trace.back().minSmVolts.raw(), " V");
    return 0;
}
