/**
 * @file
 * Regenerates paper Fig. 9: transient layer-voltage waveforms under
 * the synthetic worst-case imbalance — one full layer of SMs is
 * halted at the 3 us mark.
 *
 * Expected shape (paper): circuit-only VS needs ~2x GPU area of
 * CR-IVR to hold the rail above 0.8 V; at 0.2x the rail collapses;
 * the cross-layer solution at only 0.2x dips briefly and recovers
 * above the margin.
 *
 * Doubles as the sparse-solver benchmark (ROADMAP item 1,
 * BENCH_circuit.json): `--solver sparse|dense` selects the MNA
 * backend for the co-simulation lane, and `--json PATH` additionally
 * replays the worst-case transient through the circuit engine alone
 * with BOTH solvers, writing the wall-clock numbers so
 * scripts/check_bench.py can track the sparse speedup trajectory.
 * Solver results are bitwise-identical, so the claims below hold for
 * either backend.
 */

#include <chrono>
#include <fstream>

#include "bench/bench_util.hh"
#include "circuit/solver.hh"
#include "sim/pds_setup.hh"

using namespace vsgpu;

namespace
{

CosimResult
worstCase(PdsKind kind, double areaFraction)
{
    CosimConfig cfg;
    cfg.pds = defaultPds(kind);
    cfg.pds.ivrAreaFraction = areaFraction;
    cfg.maxCycles = 4200;
    cfg.gateLayerAtSec = 3.0_us;
    cfg.gatedLayer = 0;
    cfg.traceStride = 70;
    CoSimulator sim(cfg);
    return sim.run(WorkloadFactory(uniformWorkload(9000)), 0.9);
}

/**
 * The circuit-engine share of the worst case: replay the same
 * imbalance event (all SMs loaded, layer 0 dropped to zero half way
 * through) through TransientSim alone on the cross-layer 0.2x
 * netlist.  This isolates the MNA solver the co-simulation lane
 * above spends only part of its time in.
 *
 * @return wall-clock seconds for @p steps transient steps.
 */
double
circuitReplay(SolverKind kind, std::uint64_t steps)
{
    CosimConfig cfg;
    cfg.pds = defaultPds(PdsKind::VsCrossLayer);
    cfg.pds.ivrAreaFraction = 0.2;
    const std::shared_ptr<const PdsSetup> setup = buildPdsSetup(cfg);
    const VsPdn &pdn = *setup->vs;

    TransientSim sim(setup->netlist(), config::clockPeriod.raw(),
                     kind, setup->mnaPattern);
    sim.initFromDc(setup->dcNodeVolts);
    const double loadAmps = 5.0;
    for (int sm = 0; sm < config::numSMs; ++sm)
        sim.setCurrent(pdn.smCurrentSource(sm), loadAmps);

    const auto t0 = std::chrono::steady_clock::now(); // vsgpu-lint: nondet-ok(bench wall-clock timing is reporting-only)
    for (std::uint64_t i = 0; i < steps; ++i) {
        if (i == steps / 2) {
            // The fig09 event: one full layer of SMs halts.
            for (int sm = 0; sm < config::numSMs; ++sm)
                if (pdn.smLayer(sm) == 0)
                    sim.setCurrent(pdn.smCurrentSource(sm), 0.0);
        }
        sim.step();
    }
    const auto t1 = std::chrono::steady_clock::now(); // vsgpu-lint: nondet-ok(bench wall-clock timing is reporting-only)
    return std::chrono::duration<double>(t1 - t0).count();
}

} // namespace

int
main(int argc, char **argv)
{
    std::string jsonPath;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool hasValue = i + 1 < argc;
        if (arg == "--solver" && hasValue) {
            SolverKind kind;
            if (!parseSolverKind(argv[++i], kind)) {
                std::cerr << "--solver must be sparse or dense\n";
                return 1;
            }
            setDefaultSolver(kind);
        } else if (arg == "--json" && hasValue) {
            jsonPath = argv[++i];
        } else if (arg == "--help" || arg == "-h") {
            std::cout << "usage: " << argv[0]
                      << " [--solver sparse|dense] [--json PATH]\n";
            return 0;
        } else {
            std::cerr << "unknown argument: " << arg
                      << " (try --help)\n";
            return 1;
        }
    }

    setLogQuiet(true);
    bench::banner("Fig. 9",
                  "transient waveforms under worst-case imbalance "
                  "(layer halted at 3 us)");

    struct Config
    {
        const char *label;
        PdsKind kind;
        double area;
    };
    const Config configs[] = {
        {"circuit-only 2.0x", PdsKind::VsCircuitOnly, 2.0},
        {"circuit-only 1.0x", PdsKind::VsCircuitOnly, 1.0},
        {"circuit-only 0.2x", PdsKind::VsCircuitOnly, 0.2},
        {"cross-layer  0.2x", PdsKind::VsCrossLayer, 0.2},
    };

    // Wall-clock timing is reporting-only; it never feeds back into
    // the simulation, whose outputs stay deterministic.
    const auto t0 = std::chrono::steady_clock::now(); // vsgpu-lint: nondet-ok(bench wall-clock timing is reporting-only)
    std::vector<CosimResult> results;
    for (const auto &c : configs)
        results.push_back(worstCase(c.kind, c.area));
    const auto t1 = std::chrono::steady_clock::now(); // vsgpu-lint: nondet-ok(bench wall-clock timing is reporting-only)
    const double elapsedSec =
        std::chrono::duration<double>(t1 - t0).count();

    Table table("min SM voltage vs time");
    table.setHeader({"time_us", configs[0].label, configs[1].label,
                     configs[2].label, configs[3].label});
    const std::size_t samples = results[0].trace.size();
    for (std::size_t i = 0; i < samples; i += 3) {
        auto &row = table.beginRow().cell(
            results[0].trace[i].timeSec.raw() * 1e6, 2);
        for (const auto &r : results)
            row.cell(i < r.trace.size() ? r.trace[i].minSmVolts.raw() : 0.0,
                     3);
        row.endRow();
    }
    table.print(std::cout);

    std::cout << "\nPost-event minimum voltages:\n";
    for (std::size_t c = 0; c < results.size(); ++c)
        std::cout << "  " << configs[c].label << ": min "
                  << formatFixed(results[c].minVoltage, 3) << " V\n";

    std::uint64_t timesteps = 0;
    for (const auto &r : results)
        timesteps += r.counters.timesteps;
    const SolverKind solver = defaultSolver();
    std::cout << "\nSolver: " << solverName(solver) << ", "
              << timesteps << " timesteps in "
              << formatFixed(elapsedSec, 3) << " s\n";

    if (!jsonPath.empty()) {
        const double circuitSparse =
            circuitReplay(SolverKind::Sparse, timesteps);
        const double circuitDense =
            circuitReplay(SolverKind::Dense, timesteps);
        const double speedup = circuitDense / circuitSparse;
        std::cout << "Circuit-engine replay (" << timesteps
                  << " steps): sparse "
                  << formatFixed(circuitSparse, 3) << " s, dense "
                  << formatFixed(circuitDense, 3) << " s ("
                  << formatFixed(speedup, 1) << "x)\n";
        std::ofstream out(jsonPath);
        if (!out.good()) {
            std::cerr << "cannot write " << jsonPath << "\n";
            return 1;
        }
        out << "{\n"
            << "  \"bench\": \"fig09_worst_transient\",\n"
            << "  \"solver\": \"" << solverName(solver) << "\",\n"
            << "  \"timesteps\": " << timesteps << ",\n"
            << "  \"cosim_elapsed_sec\": " << elapsedSec << ",\n"
            << "  \"circuit_sparse_sec\": " << circuitSparse << ",\n"
            << "  \"circuit_dense_sec\": " << circuitDense << ",\n"
            << "  \"circuit_speedup\": " << speedup << "\n"
            << "}\n";
        std::cout << "wrote " << jsonPath << "\n";
    }

    bench::claim("circuit-only 2.0x stays above", 0.8,
                 results[0].minVoltage, " V");
    bench::claim("cross-layer 0.2x recovers to ~", 0.85,
                 results[3].trace.back().minSmVolts.raw(), " V");
    return 0;
}
