/**
 * @file
 * Thin frontend for the fig13_actuator_tradeoff scenario (paper
 * Fig. 13); implementation in bench/scenarios/scenario_fig13.cc.
 * Supports --jobs / --scale / --json (see scenarioMain()).
 */

#include "bench/scenarios/scenarios.hh"

int
main(int argc, char **argv)
{
    return vsgpu::scen::scenarioMain("fig13_actuator_tradeoff", argc,
                                     argv);
}
