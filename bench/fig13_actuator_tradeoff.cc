/**
 * @file
 * Regenerates paper Fig. 13: the energy-saving / performance-penalty
 * trade-off space spanned by the weighted actuation split (eq. (9))
 * across DIWS, FII, and DCC.
 *
 * Expected shape (paper): DIWS sits at the high-saving end of the
 * Pareto frontier while FII and DCC deliver lower performance
 * penalties; DCC is dominated by FII where FII has slack (extra
 * leakage and area).  In this reproduction FII's saving edges out
 * DIWS because our fake instructions are only injected during the
 * rare droop windows (cheap), while DIWS's throttling extends
 * runtime; the penalty ordering — the frontier's shape — matches.
 */

#include "bench/bench_util.hh"

using namespace vsgpu;

namespace
{

struct WeightPoint
{
    const char *label;
    double w1, w2, w3;
};

struct Outcome
{
    double penaltyPct;
    double netSavingPct;
};

Outcome
evaluate(const WeightPoint &w)
{
    // Benchmarks with actuation-sensitive structure.
    const Benchmark set[] = {Benchmark::Hotspot, Benchmark::Backprop,
                             Benchmark::Fastwalsh};
    double cyclesBase = 0.0, cyclesTest = 0.0;
    double wallBase = 0.0, wallTest = 0.0;
    double loadBase = 0.0;
    for (Benchmark b : set) {
        CosimConfig conv;
        conv.pds = defaultPds(PdsKind::ConventionalVrm);
        conv.maxCycles = 200000;
        const CosimResult rb = CoSimulator(conv).run(
            bench::benchWorkload(b, bench::sweepBenchInstrs));

        CosimConfig cfg;
        cfg.pds = defaultPds(PdsKind::VsCrossLayer);
        cfg.pds.controller.w1 = w.w1;
        cfg.pds.controller.w2 = w.w2;
        cfg.pds.controller.w3 = w.w3;
        cfg.maxCycles = 200000;
        const CosimResult rt = CoSimulator(cfg).run(
            bench::benchWorkload(b, bench::sweepBenchInstrs));

        cyclesBase += static_cast<double>(rb.cycles);
        cyclesTest += static_cast<double>(rt.cycles);
        wallBase += rb.energy.wall;
        wallTest += rt.energy.wall;
        loadBase += rb.energy.load;
    }
    (void)loadBase;
    Outcome o;
    o.penaltyPct = (cyclesTest / cyclesBase - 1.0) * 100.0;
    o.netSavingPct = (1.0 - wallTest / wallBase) * 100.0;
    return o;
}

} // namespace

int
main()
{
    setLogQuiet(true);
    bench::banner("Fig. 13", "energy saving vs performance penalty "
                             "across actuator weights");

    const WeightPoint points[] = {
        {"DIWS", 1.0, 0.0, 0.0},
        {"FII", 0.0, 1.0, 0.0},
        {"DCC", 0.0, 0.0, 1.0},
        {"0.8 DIWS + 0.2 FII", 0.8, 0.2, 0.0},
        {"0.8 DIWS + 0.2 DCC", 0.8, 0.0, 0.2},
        {"0.5 DIWS + 0.5 FII", 0.5, 0.5, 0.0},
        {"0.4 DIWS + 0.4 FII + 0.2 DCC", 0.4, 0.4, 0.2},
    };

    Table table("trade-off space (vs conventional VRM baseline)");
    table.setHeader({"weights", "perf penalty %", "net saving %"});
    Outcome diws{}, fii{};
    for (const auto &p : points) {
        const Outcome o = evaluate(p);
        table.beginRow()
            .cell(p.label)
            .cell(o.penaltyPct, 2)
            .cell(o.netSavingPct, 2)
            .endRow();
        if (std::string(p.label) == "DIWS")
            diws = o;
        if (std::string(p.label) == "FII")
            fii = o;
    }
    table.print(std::cout);

    std::cout << "\nPareto expectations (paper):\n"
              << "  - DIWS sits at the high-saving end\n"
              << "  - FII/DCC trade saving for a lower penalty\n";
    bench::claim("FII penalty below DIWS penalty (sign)", 1.0,
                 fii.penaltyPct <= diws.penaltyPct + 0.5 ? 1.0 : 0.0,
                 "");
    bench::claim("both DIWS and FII land in the 10-15% saving band",
                 1.0,
                 (diws.netSavingPct > 9.0 && fii.netSavingPct > 9.0)
                     ? 1.0
                     : 0.0,
                 "");
    return 0;
}
