/**
 * @file
 * Regenerates paper Fig. 3: effective impedance of the voltage-stacked
 * GPU (a) without and (b) with the on-chip CR-IVR.
 *
 * Expected shape (paper): without regulation, Z_R(same layer) shows a
 * high plateau (~0.2 ohm class) at low frequency and Z_G a resonance
 * peak near 70 MHz; the CR-IVR suppresses both peaks, more strongly
 * with more area.
 */

#include "bench/bench_util.hh"
#include "ivr/cr_ivr.hh"
#include "pdn/impedance.hh"

using namespace vsgpu;

namespace
{

void
printSweep(const std::string &title, const VsPdn &pdn)
{
    ImpedanceAnalyzer analyzer(pdn);
    Table table(title);
    table.setHeader({"freq_MHz", "Z_G", "Z_ST", "Z_R_same",
                     "Z_R_diff"});
    for (const auto &p :
         analyzer.sweep(logFrequencyGrid(1.0_MHz, 500.0_MHz, 28))) {
        table.beginRow()
            .cell(p.freq / 1.0_MHz, 2)
            .cell(p.zGlobal.raw(), 4)
            .cell(p.zStack.raw(), 4)
            .cell(p.zResidualSameLayer.raw(), 4)
            .cell(p.zResidualDiffLayer.raw(), 4)
            .endRow();
    }
    table.print(std::cout);
    std::cout << "\n";
}

Ohms
peakOver(const VsPdn &pdn, Hertz lo, Hertz hi,
         Ohms (ImpedanceAnalyzer::*fn)(Hertz) const)
{
    ImpedanceAnalyzer analyzer(pdn);
    Ohms peak{};
    for (Hertz f : logFrequencyGrid(lo, hi, 48))
        peak = std::max(peak, (analyzer.*fn)(f));
    return peak;
}

} // namespace

int
main()
{
    bench::banner("Fig. 3", "effective impedance of the VS GPU");

    VsPdn bare;
    printSweep("Fig. 3(a): no CR-IVR", bare);

    const CrIvrDesign crossLayer(0.2 * config::gpuDieArea);
    VsPdnOptions small;
    small.crIvrEffOhms = crossLayer.effOhmsPerCell();
    small.crIvrFlyCapF = crossLayer.flyCapPerCell();
    VsPdn regSmall(small);
    printSweep("Fig. 3(b): with CR-IVR (0.2x GPU area)", regSmall);

    const CrIvrDesign circuitOnly(config::circuitOnlyIvrArea);
    VsPdnOptions large;
    large.crIvrEffOhms = circuitOnly.effOhmsPerCell();
    large.crIvrFlyCapF = circuitOnly.flyCapPerCell();
    VsPdn regLarge(large);
    printSweep("Fig. 3(b'): with CR-IVR (1.72x GPU area)", regLarge);

    // Headline shape checks against the paper.
    Hertz peakF{};
    Ohms peakZ{};
    {
        ImpedanceAnalyzer analyzer(bare);
        for (Hertz f : logFrequencyGrid(5.0_MHz, 500.0_MHz, 96)) {
            const Ohms z = analyzer.globalImpedance(f);
            if (z > peakZ) {
                peakZ = z;
                peakF = f;
            }
        }
    }
    bench::claim("Z_G resonance frequency", 70.0, peakF / 1.0_MHz,
                 " MHz");
    bench::claim("Z_R(same) low-frequency plateau", 0.25,
                 ImpedanceAnalyzer(bare)
                     .residualImpedance(1.0_MHz, true)
                     .raw(),
                 " ohm");
    bench::claim("1.72x CR-IVR bounds all peaks below", 0.1,
                 peakOver(regLarge, 1.0_MHz, 500.0_MHz,
                          &ImpedanceAnalyzer::peakImpedance)
                     .raw(),
                 " ohm");
    return 0;
}
