/**
 * @file
 * Regenerates paper Fig. 3: effective impedance of the voltage-stacked
 * GPU (a) without and (b) with the on-chip CR-IVR.
 *
 * Expected shape (paper): without regulation, Z_R(same layer) shows a
 * high plateau (~0.2 ohm class) at low frequency and Z_G a resonance
 * peak near 70 MHz; the CR-IVR suppresses both peaks, more strongly
 * with more area.
 */

#include "bench/bench_util.hh"
#include "ivr/cr_ivr.hh"
#include "pdn/impedance.hh"

using namespace vsgpu;

namespace
{

void
printSweep(const std::string &title, const VsPdn &pdn)
{
    ImpedanceAnalyzer analyzer(pdn);
    Table table(title);
    table.setHeader({"freq_MHz", "Z_G", "Z_ST", "Z_R_same",
                     "Z_R_diff"});
    for (const auto &p :
         analyzer.sweep(logFrequencyGrid(1e6, 500e6, 28))) {
        table.beginRow()
            .cell(p.freqHz / 1e6, 2)
            .cell(p.zGlobal, 4)
            .cell(p.zStack, 4)
            .cell(p.zResidualSameLayer, 4)
            .cell(p.zResidualDiffLayer, 4)
            .endRow();
    }
    table.print(std::cout);
    std::cout << "\n";
}

double
peakOver(const VsPdn &pdn, double lo, double hi,
         double (ImpedanceAnalyzer::*fn)(double) const)
{
    ImpedanceAnalyzer analyzer(pdn);
    double peak = 0.0;
    for (double f : logFrequencyGrid(lo, hi, 48))
        peak = std::max(peak, (analyzer.*fn)(f));
    return peak;
}

} // namespace

int
main()
{
    bench::banner("Fig. 3", "effective impedance of the VS GPU");

    VsPdn bare;
    printSweep("Fig. 3(a): no CR-IVR", bare);

    const CrIvrDesign crossLayer(0.2 * config::gpuDieAreaMm2);
    VsPdnOptions small;
    small.crIvrEffOhms = crossLayer.effOhmsPerCell();
    small.crIvrFlyCapF = crossLayer.flyCapPerCellF();
    VsPdn regSmall(small);
    printSweep("Fig. 3(b): with CR-IVR (0.2x GPU area)", regSmall);

    const CrIvrDesign circuitOnly(config::circuitOnlyIvrAreaMm2);
    VsPdnOptions large;
    large.crIvrEffOhms = circuitOnly.effOhmsPerCell();
    large.crIvrFlyCapF = circuitOnly.flyCapPerCellF();
    VsPdn regLarge(large);
    printSweep("Fig. 3(b'): with CR-IVR (1.72x GPU area)", regLarge);

    // Headline shape checks against the paper.
    double peakF = 0.0, peakZ = 0.0;
    {
        ImpedanceAnalyzer analyzer(bare);
        for (double f : logFrequencyGrid(5e6, 5e8, 96)) {
            const double z = analyzer.globalImpedance(f);
            if (z > peakZ) {
                peakZ = z;
                peakF = f;
            }
        }
    }
    bench::claim("Z_G resonance frequency", 70.0, peakF / 1e6, " MHz");
    bench::claim(
        "Z_R(same) low-frequency plateau", 0.25,
        ImpedanceAnalyzer(bare).residualImpedance(1e6, true), " ohm");
    bench::claim("1.72x CR-IVR bounds all peaks below", 0.1,
                 peakOver(regLarge, 1e6, 5e8,
                          &ImpedanceAnalyzer::peakImpedance),
                 " ohm");
    return 0;
}
