/**
 * @file
 * Design-space ablation: stacking geometry.
 *
 * The paper fixes a 4x4 arrangement (four layers of four SMs).  This
 * ablation re-partitions the same 16 SMs into 2x8, 4x4, and 8x2
 * stacks and quantifies the trade the geometry makes:
 *
 *   - deeper stacks transport the same power at proportionally lower
 *     PDN current (supply current ~ 1/N, resistive loss ~ 1/N^2), but
 *   - the worst-case residual (vertical imbalance) impedance grows
 *     with depth and the input voltage N x 1.025 V stresses the
 *     level-shifted interfaces more.
 */

#include "bench/bench_util.hh"
#include "ivr/cr_ivr.hh"
#include "pdn/impedance.hh"

using namespace vsgpu;

namespace
{

struct Geometry
{
    int layers;
    int columns;
};

struct Outcome
{
    double supplyAmps = 0.0;
    double pdnLossW = 0.0;
    Ohms zResidualDc{};
    Ohms zGlobalPeak{};
};

Outcome
evaluate(const Geometry &g, double ivrAreaFraction)
{
    VsPdnOptions options;
    options.numLayers = g.layers;
    options.numColumns = g.columns;
    options.supplyVolts =
        static_cast<double>(g.layers) * config::pcbVoltage /
        static_cast<double>(config::numLayers);
    if (ivrAreaFraction > 0.0) {
        CrIvrTech tech;
        // One equalizer cell per adjacent layer pair per column.
        tech.numCells = (g.layers - 1) * g.columns;
        const CrIvrDesign design(
            ivrAreaFraction * config::gpuDieArea, tech);
        options.crIvrEffOhms = design.effOhmsPerCell();
        options.crIvrFlyCapF = design.flyCapPerCell();
    }
    VsPdn pdn(options);

    // Balanced nominal load: each SM draws its 7 W at ~1 V.
    TransientSim sim(pdn.netlist(), config::clockPeriod.raw());
    const double amps = (options.params.smNominalPower /
                         options.params.smNominalVoltage)
                            .raw();
    const double resAmps = (pdn.nominalLayerVolts() /
                            options.params.smLoadOhms())
                               .raw();
    for (int sm = 0; sm < pdn.numSms(); ++sm)
        sim.setCurrent(pdn.smCurrentSource(sm), amps - resAmps);
    sim.initToDc();
    for (int i = 0; i < 3000; ++i)
        sim.step();

    Outcome out;
    out.supplyAmps = sim.sourceCurrent(pdn.supplySource());
    double loadRes = 0.0;
    for (int idx : pdn.loadResistorIndices()) {
        const double i = sim.resistorCurrent(idx);
        loadRes += i * i *
                   pdn.netlist()
                       .resistors()[static_cast<std::size_t>(idx)]
                       .ohms;
    }
    out.pdnLossW = sim.totalResistivePower() - loadRes;

    ImpedanceAnalyzer analyzer(pdn);
    out.zResidualDc = analyzer.residualImpedance(1.0_MHz, true);
    for (Hertz f : logFrequencyGrid(5.0_MHz, 500.0_MHz, 40))
        out.zGlobalPeak =
            std::max(out.zGlobalPeak, analyzer.globalImpedance(f));
    return out;
}

} // namespace

int
main()
{
    setLogQuiet(true);
    bench::banner("ablation: stacking geometry",
                  "re-partitioning 16 SMs into 2x8 / 4x4 / 8x2");

    const Geometry geometries[] = {{2, 8}, {4, 4}, {8, 2}};

    for (double area : {0.0, 0.2}) {
        Table table(area > 0.0
                        ? "with 0.2x-GPU-area CR-IVR"
                        : "no on-chip regulation");
        table.setHeader({"geometry", "supply V", "supply A",
                         "PDN loss W", "Z_R(DC)", "Z_G peak"});
        for (const Geometry &g : geometries) {
            const Outcome o = evaluate(g, area);
            table.beginRow()
                .cell(std::to_string(g.layers) + " layers x " +
                      std::to_string(g.columns))
                .cell(static_cast<double>(g.layers) * 1.025, 2)
                .cell(o.supplyAmps, 1)
                .cell(o.pdnLossW, 2)
                .cell(o.zResidualDc.raw(), 4)
                .cell(o.zGlobalPeak.raw(), 4)
                .endRow();
        }
        table.print(std::cout);
        std::cout << "\n";
    }

    const Outcome shallow = evaluate({2, 8}, 0.0);
    const Outcome deep = evaluate({8, 2}, 0.0);
    bench::claim("supply current ratio 2-layer / 8-layer", 4.0,
                 shallow.supplyAmps / deep.supplyAmps, "x");
    bench::claim("residual impedance grows with depth (ratio)", 2.0,
                 deep.zResidualDc / shallow.zResidualDc, "x+");
    std::cout << "\nReading: deeper stacks buy PDN efficiency with "
                 "harder worst-case reliability —\nthe paper's 4x4 "
                 "choice balances the two for a 16-SM device.\n";
    return 0;
}
