/**
 * @file
 * Design-space ablation: VRM remote-sense / load-line regulation on
 * the single-layer baselines (paper Section II-C: "static IR-drop
 * ... can be effectively tamed by circuit techniques such as load
 * line regulation").
 *
 * With remote sense off, the VRM holds a fixed (pre-compensated)
 * setpoint and the die rail wanders with load; with it on, the
 * output servos so the mean rail tracks 1 V.  The voltage-stacked
 * configurations have no knob like this — inherent voltage division
 * sets the layer rails — which is why the paper needs the CR-IVR +
 * smoothing stack instead.
 */

#include "bench/bench_util.hh"

using namespace vsgpu;

namespace
{

struct Row
{
    double meanV;
    double minV;
    double pde;
};

Row
run(Benchmark b, bool remoteSense)
{
    CosimConfig cfg;
    cfg.pds = defaultPds(PdsKind::ConventionalVrm);
    cfg.vrmRemoteSense = remoteSense;
    cfg.maxCycles = 120000;
    const CosimResult r = CoSimulator(cfg).run(
        bench::benchWorkload(b, bench::sweepBenchInstrs));
    return {r.meanVoltage, r.minVoltage, r.energy.pde()};
}

} // namespace

int
main()
{
    setLogQuiet(true);
    bench::banner("ablation: VRM load-line regulation",
                  "remote-sense servo on the conventional baseline");

    Table table("per-benchmark rail regulation");
    table.setHeader({"benchmark", "mean V (fixed)", "mean V (servo)",
                     "min V (fixed)", "min V (servo)",
                     "PDE (servo)"});
    double fixedErr = 0.0, servoErr = 0.0;
    const Benchmark set[] = {Benchmark::Heartwall, Benchmark::Bfs,
                             Benchmark::Blackscholes,
                             Benchmark::Simpleatomic};
    for (Benchmark b : set) {
        const Row fixed = run(b, false);
        const Row servo = run(b, true);
        table.beginRow()
            .cell(benchmarkName(b))
            .cell(fixed.meanV, 3)
            .cell(servo.meanV, 3)
            .cell(fixed.minV, 3)
            .cell(servo.minV, 3)
            .cell(formatPercent(servo.pde))
            .endRow();
        fixedErr += std::abs(fixed.meanV - config::smVoltage.raw());
        servoErr += std::abs(servo.meanV - config::smVoltage.raw());
    }
    table.print(std::cout);

    std::cout << "\n";
    bench::claim("servo cuts the mean rail error (ratio fixed/servo)",
                 2.0, fixedErr / std::max(servoErr, 1e-6), "x+");
    std::cout << "Reading: remote sense pins the die rail at nominal "
                 "across light and heavy\nworkloads — the single-layer "
                 "answer to static IR drop.  A stacked design has\nno "
                 "equivalent knob per layer, which is why the paper "
                 "pairs CR-IVRs with\narchitectural smoothing instead.\n";
    return 0;
}
