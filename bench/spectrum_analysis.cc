/**
 * @file
 * Spectral analysis of the simulated layer-imbalance currents —
 * the quantitative basis for the paper's frequency split (Section
 * IV): architecture-level smoothing owns the band below the control
 * Nyquist (1/(2T) ≈ 5.8 MHz at the 60-cycle loop), the CR-IVR and
 * decap own everything above.
 *
 * For each benchmark we co-simulate the voltage-stacked GPU, record
 * the per-cycle residual (vertical imbalance) current of one column,
 * estimate its power spectral density, and report how much of the
 * disturbance energy falls inside the architecture loop's band.
 */

#include "bench/bench_util.hh"
#include "gpu/gpu.hh"
#include "numeric/fft.hh"
#include "power/power_model.hh"
#include "workloads/generator.hh"

using namespace vsgpu;

namespace
{

/**
 * Record the residual imbalance power of column 0 (layer 0's SM
 * against the column mean) for one benchmark.
 */
std::vector<double>
residualTrace(Benchmark b, Cycle cycles)
{
    WorkloadSpec spec =
        scaledToInstrs(workloadFor(b), bench::defaultBenchInstrs);
    GpuConfig cfg;
    cfg.memory.l1HitRate = spec.l1HitRate;
    Gpu gpu(cfg);
    SmPowerModel pm;
    WorkloadFactory factory(spec);
    gpu.launch(factory);

    std::vector<double> trace;
    trace.reserve(cycles);
    while (!gpu.done() && gpu.cycle() < cycles) {
        gpu.step();
        double column = 0.0;
        double top = 0.0;
        for (int layer = 0; layer < config::numLayers; ++layer) {
            const int sm = layer * config::smsPerLayer; // column 0
            const double w =
                pm.cyclePower(gpu.smEvents(sm), gpu.sm(sm),
                              gpu.cycle())
                    .raw();
            column += w;
            if (layer == 0)
                top = w;
        }
        // Residual watts at ~1 V ≈ residual amps.
        trace.push_back(top -
                        column / static_cast<double>(
                                     config::numLayers));
    }
    return trace;
}

} // namespace

int
main()
{
    setLogQuiet(true);
    bench::banner("spectrum", "spectral split of layer-imbalance "
                              "currents (basis of Section IV)");

    const double nyquistHz =
        0.5 /
        (config::defaultControlLatency * config::clockPeriod).raw();
    std::cout << "architecture-loop Nyquist at the 60-cycle latency: "
              << formatFixed(nyquistHz / 1e6, 2) << " MHz\n\n";

    Table table("residual-current spectral distribution");
    table.setHeader({"benchmark", "rms (A)", "< 1 MHz",
                     "< loop Nyquist", "< 50 MHz (filter)",
                     "> 50 MHz"});
    double meanBelowNyquist = 0.0;
    double maxBelowNyquist = 0.0;
    std::string maxName;
    int counted = 0;
    for (Benchmark b : allBenchmarks()) {
        const auto trace = residualTrace(b, 60000);
        if (trace.size() < 4096)
            continue;
        double rms = 0.0, mean = 0.0;
        for (double x : trace)
            mean += x;
        mean /= static_cast<double>(trace.size());
        for (double x : trace)
            rms += (x - mean) * (x - mean);
        rms = std::sqrt(rms / static_cast<double>(trace.size()));

        const auto psd =
            powerSpectrum(trace, config::smClockHz.raw(), 4096);
        const double below1M = spectralFractionBelow(psd, 1e6);
        const double belowNyq =
            spectralFractionBelow(psd, nyquistHz);
        const double below50M = spectralFractionBelow(psd, 50e6);
        table.beginRow()
            .cell(benchmarkName(b))
            .cell(rms, 3)
            .cell(formatPercent(below1M))
            .cell(formatPercent(belowNyq))
            .cell(formatPercent(below50M))
            .cell(formatPercent(1.0 - below50M))
            .endRow();
        meanBelowNyquist += belowNyq;
        if (belowNyq > maxBelowNyquist) {
            maxBelowNyquist = belowNyq;
            maxName = benchmarkName(b);
        }
        ++counted;
    }
    table.print(std::cout);
    meanBelowNyquist /= counted;

    std::cout << "\n";
    bench::claim("mean sub-Nyquist share of imbalance energy", 15.0,
                 meanBelowNyquist * 100.0, "%");
    std::cout << "  max sub-Nyquist share: " << maxName << " at "
              << formatPercent(maxBelowNyquist) << "\n";
    std::cout
        << "Reading: the residual current has real low-frequency "
           "content (the paper's\n\"hundreds to tens of thousands of "
           "clock cycles\") — largest exactly for the\nbarrier-heavy "
           "workloads that trigger the smoothing controller most — "
           "while the\nbulk of the high-frequency jitter is absorbed "
           "by decap and CR-IVR before it\never reaches the rails.\n";
    return 0;
}
