/**
 * @file
 * Regenerates paper Fig. 12: performance penalty as a function of
 * the controller's trigger threshold voltage.
 *
 * Expected shape (paper): penalties grow with the threshold (more
 * cycles spend throttled); at the default 0.9 V threshold penalties
 * sit in the low single-digit percents, and fewer than ~20% of
 * cycles are affected by smoothing.
 */

#include "bench/bench_util.hh"

using namespace vsgpu;

namespace
{

CosimResult
runAtThreshold(Benchmark b, double threshold)
{
    CosimConfig cfg;
    cfg.pds = defaultPds(PdsKind::VsCrossLayer);
    cfg.pds.controller.vThreshold = threshold;
    cfg.maxCycles = 200000;
    CoSimulator sim(cfg);
    return sim.run(bench::benchWorkload(b, bench::sweepBenchInstrs));
}

} // namespace

int
main()
{
    setLogQuiet(true);
    bench::banner("Fig. 12",
                  "performance penalty vs controller threshold");

    const double thresholds[] = {0.70, 0.80, 0.90, 0.95};

    Table table("penalty (%) per benchmark");
    std::vector<std::string> header = {"benchmark"};
    for (double t : thresholds)
        header.push_back("Vth=" + formatFixed(t, 2));
    header.push_back("throttle@0.9");
    table.setHeader(header);

    double meanPenaltyAtDefault = 0.0;
    for (Benchmark b : allBenchmarks()) {
        // Baseline: smoothing disabled entirely.
        CosimConfig base;
        base.pds = defaultPds(PdsKind::VsCircuitOnly);
        base.pds.ivrAreaFraction = 0.2;
        base.maxCycles = 200000;
        const CosimResult baseline = CoSimulator(base).run(
            bench::benchWorkload(b, bench::sweepBenchInstrs));

        auto &row = table.beginRow().cell(benchmarkName(b));
        double throttleAtDefault = 0.0;
        for (double t : thresholds) {
            const CosimResult r = runAtThreshold(b, t);
            const double penalty =
                (static_cast<double>(r.cycles) /
                     static_cast<double>(baseline.cycles) -
                 1.0) *
                100.0;
            row.cell(penalty, 2);
            if (t == 0.90) {
                throttleAtDefault = r.throttleRate;
                meanPenaltyAtDefault += penalty;
            }
        }
        row.cell(formatPercent(throttleAtDefault));
        row.endRow();
    }
    table.print(std::cout);

    meanPenaltyAtDefault /= allBenchmarks().size();
    std::cout << "\n";
    bench::claim("mean penalty at Vth=0.9 (paper: 2-4%)", 3.0,
                 meanPenaltyAtDefault, "%");
    return 0;
}
