/**
 * @file
 * Thin frontend for the fig12_threshold_sweep scenario (paper
 * Fig. 12); implementation in bench/scenarios/scenario_fig12.cc.
 * Supports --jobs / --scale / --json (see scenarioMain()).
 */

#include "bench/scenarios/scenarios.hh"

int
main(int argc, char **argv)
{
    return vsgpu::scen::scenarioMain("fig12_threshold_sweep", argc,
                                     argv);
}
