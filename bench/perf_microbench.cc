/**
 * @file
 * Google-benchmark micro-benchmarks of the simulation engines
 * themselves: transient step throughput, AC solve, SM cycle rate, and
 * the full co-simulation loop.  These guard the performance the
 * experiment harnesses depend on.
 */

#include <benchmark/benchmark.h>

#include "circuit/solver.hh"
#include "circuit/stamping.hh"
#include "numeric/matrix.hh"
#include "numeric/sparse.hh"
#include "obs/profile.hh"
#include "obs/trace.hh"
#include "pdn/impedance.hh"
#include "pdn/vs_pdn.hh"
#include "sim/cosim.hh"
#include "workloads/suite.hh"

namespace
{

using namespace vsgpu;

VsPdn &
benchPdn()
{
    static VsPdn pdn([] {
        VsPdnOptions options;
        options.crIvrEffOhms = 0.1_Ohm;
        options.crIvrFlyCapF = 50.0_nF;
        return options;
    }());
    return pdn;
}

/** Stamp the transient-step MNA values for the bench PDN. */
const std::vector<double> &
assembleTransient(MnaAssembler &assembler, const Netlist &nl)
{
    assembler.beginStep();
    assembler.stampResistors(nl);
    assembler.stampSwitches(nl, [&nl](std::size_t i) {
        return nl.switches()[i].initiallyClosed;
    });
    assembler.stampCapacitorsTrapezoidal(nl,
                                         config::clockPeriod.raw());
    assembler.stampInductorsTrapezoidal(nl,
                                        config::clockPeriod.raw());
    assembler.stampEqualizersScaled(nl);
    assembler.stampVoltageSources(nl);
    return assembler.commitStep();
}

void
stepBench(benchmark::State &state, SolverKind solver)
{
    VsPdn &pdn = benchPdn();
    TransientSim sim(pdn.netlist(), config::clockPeriod.raw(),
                     solver);
    for (int sm = 0; sm < config::numSMs; ++sm)
        sim.setCurrent(pdn.smCurrentSource(sm), 5.0);
    sim.initToDc();
    for (auto _ : state) {
        sim.step();
        benchmark::DoNotOptimize(sim.nodeVoltage(1));
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_TransientStep(benchmark::State &state)
{
    stepBench(state, SolverKind::Sparse);
}
BENCHMARK(BM_TransientStep);

void
BM_TransientStepDense(benchmark::State &state)
{
    stepBench(state, SolverKind::Dense);
}
BENCHMARK(BM_TransientStepDense);

/** Per-step element stamping into the CSC value vector. */
void
BM_SolverStamp(benchmark::State &state)
{
    const Netlist &nl = benchPdn().netlist();
    MnaAssembler assembler(MnaPattern::build(nl));
    for (auto _ : state) {
        const std::vector<double> &v = assembleTransient(assembler,
                                                         nl);
        benchmark::DoNotOptimize(v.data());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SolverStamp);

/** Symbolic analysis: union pattern build + slot resolution.  Runs
 *  once per topology in production (cached in PdsSetup). */
void
BM_SolverSymbolic(benchmark::State &state)
{
    const Netlist &nl = benchPdn().netlist();
    for (auto _ : state) {
        auto pattern = MnaPattern::build(nl);
        benchmark::DoNotOptimize(pattern->csc->nnz());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SolverSymbolic);

/** Sparse numeric refactorization (per switch-topology change). */
void
BM_SolverRefactorSparse(benchmark::State &state)
{
    const Netlist &nl = benchPdn().netlist();
    auto pattern = MnaPattern::build(nl);
    MnaAssembler assembler(pattern);
    const std::vector<double> &values = assembleTransient(assembler,
                                                          nl);
    SparseLu lu(pattern->csc);
    for (auto _ : state) {
        lu.factor(values);
        benchmark::DoNotOptimize(lu.factorNnz());
    }
    state.SetItemsProcessed(state.iterations());
    state.counters["unknowns"] =
        static_cast<double>(pattern->numUnknowns);
    state.counters["pattern_nnz"] =
        static_cast<double>(pattern->csc->nnz());
    state.counters["factor_nnz"] =
        static_cast<double>(lu.factorNnz());
}
BENCHMARK(BM_SolverRefactorSparse);

/** Dense LU refactorization over the same system, for the ratio. */
void
BM_SolverRefactorDense(benchmark::State &state)
{
    const Netlist &nl = benchPdn().netlist();
    auto pattern = MnaPattern::build(nl);
    MnaAssembler assembler(pattern);
    const std::vector<double> &values = assembleTransient(assembler,
                                                          nl);
    const auto n = static_cast<std::size_t>(pattern->numUnknowns);
    Matrix g(n, n);
    const CscPattern &csc = *pattern->csc;
    for (int col = 0; col < pattern->numUnknowns; ++col)
        for (std::int32_t t = csc.colPtr[static_cast<std::size_t>(col)];
             t < csc.colPtr[static_cast<std::size_t>(col) + 1]; ++t)
            g(static_cast<std::size_t>(
                  csc.rowIdx[static_cast<std::size_t>(t)]),
              static_cast<std::size_t>(col)) =
                values[static_cast<std::size_t>(t)];
    for (auto _ : state) {
        LuFactor<double> lu(g);
        benchmark::DoNotOptimize(&lu);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SolverRefactorDense);

/** Sparse triangular solve against a cached factorization — the
 *  per-timestep hot path. */
void
BM_SolverSolveSparse(benchmark::State &state)
{
    const Netlist &nl = benchPdn().netlist();
    auto pattern = MnaPattern::build(nl);
    MnaAssembler assembler(pattern);
    SparseLu lu(pattern->csc);
    lu.factor(assembleTransient(assembler, nl));
    std::vector<double> rhs(
        static_cast<std::size_t>(pattern->numUnknowns), 0.0);
    rhs[0] = 1.0;
    std::vector<double> x;
    for (auto _ : state) {
        lu.solve(rhs, x);
        benchmark::DoNotOptimize(x.data());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SolverSolveSparse);

/** Dense triangular solve against a cached factorization. */
void
BM_SolverSolveDense(benchmark::State &state)
{
    const Netlist &nl = benchPdn().netlist();
    auto pattern = MnaPattern::build(nl);
    MnaAssembler assembler(pattern);
    const std::vector<double> &values = assembleTransient(assembler,
                                                          nl);
    const auto n = static_cast<std::size_t>(pattern->numUnknowns);
    Matrix g(n, n);
    const CscPattern &csc = *pattern->csc;
    for (int col = 0; col < pattern->numUnknowns; ++col)
        for (std::int32_t t = csc.colPtr[static_cast<std::size_t>(col)];
             t < csc.colPtr[static_cast<std::size_t>(col) + 1]; ++t)
            g(static_cast<std::size_t>(
                  csc.rowIdx[static_cast<std::size_t>(t)]),
              static_cast<std::size_t>(col)) =
                values[static_cast<std::size_t>(t)];
    const LuFactor<double> lu(g);
    std::vector<double> rhs(n, 0.0);
    rhs[0] = 1.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(lu.solve(rhs).data());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SolverSolveDense);

void
BM_AcSolve(benchmark::State &state)
{
    VsPdn pdn;
    ImpedanceAnalyzer analyzer(pdn);
    Hertz f = 1.0_MHz;
    for (auto _ : state) {
        benchmark::DoNotOptimize(analyzer.globalImpedance(f));
        f = f < 400.0_MHz ? f * 1.1 : 1.0_MHz;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AcSolve);

void
BM_SmCycle(benchmark::State &state)
{
    GpuConfig cfg;
    Gpu gpu(cfg);
    WorkloadFactory factory(uniformWorkload(1 << 20));
    gpu.launch(factory);
    for (auto _ : state) {
        gpu.step();
        benchmark::DoNotOptimize(gpu.cycle());
    }
    // 16 SM-cycles per GPU step.
    state.SetItemsProcessed(state.iterations() * config::numSMs);
}
BENCHMARK(BM_SmCycle);

void
BM_CosimCycle(benchmark::State &state)
{
    // One full co-simulation cycle (GPU + power + circuit +
    // controller), measured via short batched runs.
    for (auto _ : state) {
        state.PauseTiming();
        CosimConfig cfg;
        cfg.pds = defaultPds(PdsKind::VsCrossLayer);
        cfg.maxCycles = 2000;
        CoSimulator sim(cfg);
        const WorkloadSpec wl = uniformWorkload(4000);
        state.ResumeTiming();
        benchmark::DoNotOptimize(sim.run(wl).cycles);
    }
    state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_CosimCycle)->Unit(benchmark::kMillisecond);

void
BM_WorkloadGeneration(benchmark::State &state)
{
    const WorkloadSpec spec = workloadFor(Benchmark::Hotspot);
    WorkloadFactory factory(spec);
    int sm = 0;
    for (auto _ : state) {
        auto prog = factory.makeProgram(sm, 0);
        int count = 0;
        while (prog->next().has_value())
            ++count;
        benchmark::DoNotOptimize(count);
        sm = (sm + 1) % config::numSMs;
    }
}
BENCHMARK(BM_WorkloadGeneration)->Unit(benchmark::kMicrosecond);

/**
 * The disabled-tracing fast path: one relaxed atomic load per
 * instrumentation point.  This pins the "near zero cost when
 * disabled" contract the hot loops (pool tasks, cosim cycles)
 * rely on — compare against BM_TraceScopeEnabled to see the gap.
 */
void
BM_TraceScopeDisabled(benchmark::State &state)
{
    obs::Tracer::instance().disable();
    for (auto _ : state) {
        VSGPU_TRACE_SCOPE(obs::CatPool, "bench.disabled");
        VSGPU_TRACE_INSTANT(obs::CatCtl, "bench.instant");
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceScopeDisabled);

void
BM_TraceScopeEnabled(benchmark::State &state)
{
    obs::Tracer &tracer = obs::Tracer::instance();
    tracer.enable(obs::CatPool);
    for (auto _ : state) {
        VSGPU_TRACE_SCOPE(obs::CatPool, "bench.enabled");
        benchmark::ClobberMemory();
        // Stay under the event cap however long the bench runs.
        if (tracer.numEvents() + 2 >= obs::Tracer::maxEvents())
            tracer.clear();
    }
    tracer.disable();
    tracer.clear();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceScopeEnabled);

/**
 * The disabled-profiling fast path: one relaxed atomic load (and a
 * null member left unset) per ProfileScope.  This pins the "near zero
 * cost when disabled" contract the cosim stage timers rely on, the
 * profiler analogue of BM_TraceScopeDisabled.
 */
void
BM_ProfileScopeDisabled(benchmark::State &state)
{
    obs::setProfiling(false);
    obs::Profile profile;
    for (auto _ : state) {
        obs::ProfileScope scope(&profile, obs::StageGpu);
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfileScopeDisabled);

void
BM_ProfileScopeEnabled(benchmark::State &state)
{
    obs::setProfiling(true);
    obs::Profile profile;
    for (auto _ : state) {
        obs::ProfileScope scope(&profile, obs::StageGpu);
        benchmark::ClobberMemory();
    }
    obs::setProfiling(false);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfileScopeEnabled);

} // namespace

BENCHMARK_MAIN();
