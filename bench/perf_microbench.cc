/**
 * @file
 * Google-benchmark micro-benchmarks of the simulation engines
 * themselves: transient step throughput, AC solve, SM cycle rate, and
 * the full co-simulation loop.  These guard the performance the
 * experiment harnesses depend on.
 */

#include <benchmark/benchmark.h>

#include "obs/trace.hh"
#include "pdn/impedance.hh"
#include "pdn/vs_pdn.hh"
#include "sim/cosim.hh"
#include "workloads/suite.hh"

namespace
{

using namespace vsgpu;

void
BM_TransientStep(benchmark::State &state)
{
    VsPdnOptions options;
    options.crIvrEffOhms = 0.1_Ohm;
    options.crIvrFlyCapF = 50.0_nF;
    VsPdn pdn(options);
    TransientSim sim(pdn.netlist(), config::clockPeriod.raw());
    for (int sm = 0; sm < config::numSMs; ++sm)
        sim.setCurrent(pdn.smCurrentSource(sm), 5.0);
    sim.initToDc();
    for (auto _ : state) {
        sim.step();
        benchmark::DoNotOptimize(sim.nodeVoltage(1));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TransientStep);

void
BM_AcSolve(benchmark::State &state)
{
    VsPdn pdn;
    ImpedanceAnalyzer analyzer(pdn);
    Hertz f = 1.0_MHz;
    for (auto _ : state) {
        benchmark::DoNotOptimize(analyzer.globalImpedance(f));
        f = f < 400.0_MHz ? f * 1.1 : 1.0_MHz;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AcSolve);

void
BM_SmCycle(benchmark::State &state)
{
    GpuConfig cfg;
    Gpu gpu(cfg);
    WorkloadFactory factory(uniformWorkload(1 << 20));
    gpu.launch(factory);
    for (auto _ : state) {
        gpu.step();
        benchmark::DoNotOptimize(gpu.cycle());
    }
    // 16 SM-cycles per GPU step.
    state.SetItemsProcessed(state.iterations() * config::numSMs);
}
BENCHMARK(BM_SmCycle);

void
BM_CosimCycle(benchmark::State &state)
{
    // One full co-simulation cycle (GPU + power + circuit +
    // controller), measured via short batched runs.
    for (auto _ : state) {
        state.PauseTiming();
        CosimConfig cfg;
        cfg.pds = defaultPds(PdsKind::VsCrossLayer);
        cfg.maxCycles = 2000;
        CoSimulator sim(cfg);
        const WorkloadSpec wl = uniformWorkload(4000);
        state.ResumeTiming();
        benchmark::DoNotOptimize(sim.run(wl).cycles);
    }
    state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_CosimCycle)->Unit(benchmark::kMillisecond);

void
BM_WorkloadGeneration(benchmark::State &state)
{
    const WorkloadSpec spec = workloadFor(Benchmark::Hotspot);
    WorkloadFactory factory(spec);
    int sm = 0;
    for (auto _ : state) {
        auto prog = factory.makeProgram(sm, 0);
        int count = 0;
        while (prog->next().has_value())
            ++count;
        benchmark::DoNotOptimize(count);
        sm = (sm + 1) % config::numSMs;
    }
}
BENCHMARK(BM_WorkloadGeneration)->Unit(benchmark::kMicrosecond);

/**
 * The disabled-tracing fast path: one relaxed atomic load per
 * instrumentation point.  This pins the "near zero cost when
 * disabled" contract the hot loops (pool tasks, cosim cycles)
 * rely on — compare against BM_TraceScopeEnabled to see the gap.
 */
void
BM_TraceScopeDisabled(benchmark::State &state)
{
    obs::Tracer::instance().disable();
    for (auto _ : state) {
        VSGPU_TRACE_SCOPE(obs::CatPool, "bench.disabled");
        VSGPU_TRACE_INSTANT(obs::CatCtl, "bench.instant");
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceScopeDisabled);

void
BM_TraceScopeEnabled(benchmark::State &state)
{
    obs::Tracer &tracer = obs::Tracer::instance();
    tracer.enable(obs::CatPool);
    for (auto _ : state) {
        VSGPU_TRACE_SCOPE(obs::CatPool, "bench.enabled");
        benchmark::ClobberMemory();
        // Stay under the event cap however long the bench runs.
        if (tracer.numEvents() + 2 >= obs::Tracer::maxEvents())
            tracer.clear();
    }
    tracer.disable();
    tracer.clear();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceScopeEnabled);

} // namespace

BENCHMARK_MAIN();
