/**
 * @file
 * Shared helpers for the per-figure/per-table benchmark harnesses.
 *
 * Every binary in bench/ regenerates one table or figure of the paper
 * and prints the same rows/series the paper reports, so output can be
 * compared side by side with the publication (EXPERIMENTS.md records
 * that comparison).
 */

#ifndef VSGPU_BENCH_BENCH_UTIL_HH
#define VSGPU_BENCH_BENCH_UTIL_HH

#include <iostream>
#include <string>

#include "common/logging.hh"
#include "common/table.hh"
#include "sim/cosim.hh"
#include "workloads/suite.hh"

namespace vsgpu::bench
{

/** Instructions per warp used for full benchmark runs. */
inline constexpr int defaultBenchInstrs = 1500;

/** Instructions per warp for sweeps with many configurations. */
inline constexpr int sweepBenchInstrs = 700;

/** Cycle cap for a single benchmark run. */
inline constexpr Cycle defaultMaxCycles = 120000;

/** Print a standard header for a bench binary. */
inline void
banner(const std::string &id, const std::string &what)
{
    std::cout << "=====================================================\n"
              << id << ": " << what << "\n"
              << "=====================================================\n";
}

/** Build a benchmark workload at sweep-friendly size. */
inline WorkloadSpec
benchWorkload(Benchmark b, int instrs = defaultBenchInstrs)
{
    return scaledToInstrs(workloadFor(b), instrs);
}

/** Run one benchmark against one PDS configuration. */
inline CosimResult
runOn(PdsKind kind, Benchmark b, int instrs = defaultBenchInstrs,
      Cycle maxCycles = defaultMaxCycles)
{
    CosimConfig cfg;
    cfg.pds = defaultPds(kind);
    cfg.maxCycles = maxCycles;
    CoSimulator sim(cfg);
    return sim.run(benchWorkload(b, instrs));
}

/** Print a paper-vs-measured claim line. */
inline void
claim(const std::string &what, double paper, double measured,
      const std::string &unit = "")
{
    std::cout << "  [claim] " << what << ": paper " << paper << unit
              << ", measured " << measured << unit << "\n";
}

} // namespace vsgpu::bench

#endif // VSGPU_BENCH_BENCH_UTIL_HH
