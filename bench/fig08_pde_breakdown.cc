/**
 * @file
 * Regenerates paper Fig. 8: power-delivery efficiency and the
 * normalized power breakdown for every benchmark under each PDS
 * configuration.
 *
 * Expected shape (paper): both VS configurations deliver ~92-93%
 * across benchmarks, versus 80% (VRM) and 85% (single-layer IVR);
 * conversion loss dominates the non-stacked configurations while the
 * VS losses are small and dominated by the CR-IVR's shuffled power.
 */

#include "bench/bench_util.hh"

using namespace vsgpu;

int
main()
{
    setLogQuiet(true);
    bench::banner("Fig. 8",
                  "PDE and power breakdown across benchmarks");

    const PdsKind kinds[] = {
        PdsKind::ConventionalVrm,
        PdsKind::SingleLayerIvr,
        PdsKind::VsCircuitOnly,
        PdsKind::VsCrossLayer,
    };

    for (PdsKind kind : kinds) {
        Table table(std::string("breakdown: ") + pdsName(kind));
        table.setHeader({"benchmark", "PDE", "load%", "pdn%", "conv%",
                         "cr-ivr%", "overhead%"});
        double loadJ = 0.0, wallJ = 0.0;
        for (Benchmark b : allBenchmarks()) {
            const CosimResult r =
                bench::runOn(kind, b, bench::sweepBenchInstrs);
            const auto &e = r.energy;
            table.beginRow()
                .cell(benchmarkName(b))
                .cell(formatPercent(e.pde()))
                .cell(formatPercent(e.load / e.wall))
                .cell(formatPercent(e.pdn / e.wall))
                .cell(formatPercent(e.conversion / e.wall))
                .cell(formatPercent(e.crIvr / e.wall))
                .cell(formatPercent(e.overhead / e.wall))
                .endRow();
            loadJ += e.load;
            wallJ += e.wall;
        }
        table.beginRow()
            .cell("AVERAGE")
            .cell(formatPercent(loadJ / wallJ))
            .cell("")
            .cell("")
            .cell("")
            .cell("")
            .cell("")
            .endRow();
        table.print(std::cout);
        std::cout << "\n";
    }
    return 0;
}
