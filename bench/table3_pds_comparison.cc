/**
 * @file
 * Regenerates paper Table III: PDE and die-area overhead of the four
 * power-delivery subsystems, averaged over all twelve benchmarks.
 *
 * Paper values: single-layer VRM 80% / no die area; single-layer IVR
 * 85% / 172.3 mm^2; VS circuit-only 93.0% / 912 mm^2 (1.72x GPU die);
 * VS cross-layer 92.3% / 105.8 mm^2 (0.2x GPU die).
 */

#include "bench/bench_util.hh"

using namespace vsgpu;

int
main()
{
    setLogQuiet(true);
    bench::banner("Table III", "comparison of power delivery "
                               "subsystems (all 12 benchmarks)");

    const PdsKind kinds[] = {
        PdsKind::ConventionalVrm,
        PdsKind::SingleLayerIvr,
        PdsKind::VsCircuitOnly,
        PdsKind::VsCrossLayer,
    };

    Table table("Table III");
    table.setHeader({"PDS configuration", "PDE", "die area (mm^2)",
                     "area (xGPU die)"});

    double pdeVrm = 0.0, pdeCross = 0.0, pdeCircuit = 0.0;
    for (PdsKind kind : kinds) {
        double loadJ = 0.0, wallJ = 0.0;
        for (Benchmark b : allBenchmarks()) {
            const CosimResult r =
                bench::runOn(kind, b, bench::sweepBenchInstrs);
            loadJ += r.energy.load;
            wallJ += r.energy.wall;
        }
        const double pde = loadJ / wallJ;
        const PdsOptions options = defaultPds(kind);
        const Area area = pdsAreaOverhead(options);
        table.beginRow()
            .cell(pdsName(kind))
            .cell(formatPercent(pde))
            .cell(area / 1.0_mm2, 1)
            .cell(area / config::gpuDieArea, 2)
            .endRow();
        if (kind == PdsKind::ConventionalVrm)
            pdeVrm = pde;
        if (kind == PdsKind::VsCircuitOnly)
            pdeCircuit = pde;
        if (kind == PdsKind::VsCrossLayer)
            pdeCross = pde;
    }
    table.print(std::cout);

    std::cout << "\nHeadline claims:\n";
    bench::claim("VS cross-layer PDE", 92.3, pdeCross * 100.0, "%");
    bench::claim("VS circuit-only PDE", 93.0, pdeCircuit * 100.0,
                 "%");
    bench::claim("conventional PDE", 80.0, pdeVrm * 100.0, "%");
    bench::claim("PDE improvement over conventional", 12.3,
                 (pdeCross - pdeVrm) * 100.0, " pts");
    bench::claim("PDS loss eliminated", 61.5,
                 (1.0 - (1.0 - pdeCross) / (1.0 - pdeVrm)) * 100.0,
                 "%");
    const Area areaCircuit =
        pdsAreaOverhead(defaultPds(PdsKind::VsCircuitOnly));
    const Area areaCross =
        pdsAreaOverhead(defaultPds(PdsKind::VsCrossLayer));
    bench::claim("area reduction vs circuit-only", 88.0,
                 (1.0 - areaCross / areaCircuit) * 100.0, "%");
    return 0;
}
