/**
 * @file
 * Thin frontend for the table3_pds_comparison scenario (paper
 * Table III); implementation in bench/scenarios/scenario_table3.cc.
 * Supports --jobs / --scale / --json (see scenarioMain()).
 */

#include "bench/scenarios/scenarios.hh"

int
main(int argc, char **argv)
{
    return vsgpu::scen::scenarioMain("table3_pds_comparison", argc,
                                     argv);
}
