/**
 * @file
 * Thin frontend for the fig15_dfs scenario (paper Fig. 15);
 * implementation in bench/scenarios/scenario_fig15.cc.  Supports
 * --jobs / --scale / --json (see scenarioMain()).
 */

#include "bench/scenarios/scenarios.hh"

int
main(int argc, char **argv)
{
    return vsgpu::scen::scenarioMain("fig15_dfs", argc, argv);
}
