/**
 * @file
 * Regenerates paper Fig. 15: GRAPE-style DFS on the conventional GPU
 * versus the cross-layer voltage-stacked GPU, at several performance
 * targets.  Energies are normalized by the conventional GPU's energy
 * at peak performance including power-delivery inefficiency.
 *
 * Expected shape (paper): the VS-aware hypervisor slightly perturbs
 * the optimal frequency settings (~1-2% computational energy), but
 * the superior PDE more than compensates — overall 7-13% lower total
 * energy than DFS on the conventional PDS.
 */

#include "bench/bench_util.hh"
#include "hypervisor/dfs.hh"
#include "hypervisor/vs_hypervisor.hh"

using namespace vsgpu;

namespace
{

struct DfsRun
{
    double wallJ = 0.0;
    double loadJ = 0.0;
    Cycle cycles = 0;
};

DfsRun
runDfs(PdsKind kind, double perfTarget, bool useHypervisor)
{
    DfsRun out;
    for (Benchmark b :
         {Benchmark::Heartwall, Benchmark::Srad, Benchmark::Hotspot,
          Benchmark::Scalarprod}) {
        DfsConfig dcfg;
        dcfg.perfTarget = perfTarget;
        DfsGovernor dfs(dcfg);
        VsAwareHypervisor hv;

        CosimConfig cfg;
        cfg.pds = defaultPds(kind);
        cfg.maxCycles = 300000;
        CoSimulator sim(cfg);
        sim.attachDfs(&dfs);
        if (useHypervisor)
            sim.attachHypervisor(&hv);
        const CosimResult r = sim.run(
            bench::benchWorkload(b, bench::sweepBenchInstrs));
        out.wallJ += r.energy.wall;
        out.loadJ += r.energy.load;
        out.cycles += r.cycles;
    }
    return out;
}

} // namespace

int
main()
{
    setLogQuiet(true);
    bench::banner("Fig. 15", "DFS on conventional vs voltage-stacked "
                             "GPU");

    // Normalization: conventional at peak performance (no DFS).
    const DfsRun peak = runDfs(PdsKind::ConventionalVrm, 1.0, false);

    Table table("total energy, normalized to conventional @ peak");
    table.setHeader({"perf target", "conventional+DFS", "VS+DFS",
                     "VS saving %"});
    double savingAt70 = 0.0;
    for (double target : {0.9, 0.7, 0.5}) {
        const DfsRun conv =
            runDfs(PdsKind::ConventionalVrm, target, false);
        const DfsRun vs = runDfs(PdsKind::VsCrossLayer, target, true);
        const double convNorm = conv.wallJ / peak.wallJ;
        const double vsNorm = vs.wallJ / peak.wallJ;
        const double saving = (1.0 - vsNorm / convNorm) * 100.0;
        table.beginRow()
            .cell(formatPercent(target, 0))
            .cell(convNorm, 3)
            .cell(vsNorm, 3)
            .cell(saving, 1)
            .endRow();
        if (target == 0.7)
            savingAt70 = saving;
    }
    table.print(std::cout);

    std::cout << "\n";
    bench::claim("VS energy saving under DFS (paper: 7-13%)", 10.0,
                 savingAt70, "%");
    return 0;
}
