/**
 * @file
 * Regenerates paper Fig. 17: the distribution of current imbalance
 * between vertically stacked SMs (normalized by peak SM current,
 * binned 0-10% / 10-20% / 20-40% / >40%) under no power management,
 * DFS at several performance targets, and power gating.
 *
 * Expected shape (paper): without PM, ~50% of windows fall in the
 * 0-10% bin and >90% under 40%; backprop is the most imbalanced,
 * heartwall the most uniform; DFS and PG do not fundamentally
 * disturb the balance.
 */

#include "bench/bench_util.hh"
#include "hypervisor/dfs.hh"
#include "hypervisor/pg.hh"
#include "hypervisor/vs_hypervisor.hh"

using namespace vsgpu;

namespace
{

enum class Pm
{
    None,
    Dfs,
    Pg,
};

std::array<double, 4>
imbalanceOf(Benchmark b, Pm pm, double dfsTarget)
{
    DfsConfig dcfg;
    dcfg.perfTarget = dfsTarget;
    DfsGovernor dfs(dcfg);
    PgGovernor pg;
    VsAwareHypervisor hv;

    CosimConfig cfg;
    cfg.pds = defaultPds(PdsKind::VsCrossLayer);
    if (pm == Pm::Pg)
        cfg.gpu.sm.scheduler = SchedulerKind::Gates;
    cfg.maxCycles = 200000;
    CoSimulator sim(cfg);
    if (pm == Pm::Dfs) {
        sim.attachDfs(&dfs);
        sim.attachHypervisor(&hv);
    } else if (pm == Pm::Pg) {
        sim.attachPg(&pg);
        sim.attachHypervisor(&hv);
    }
    return sim.run(bench::benchWorkload(b, bench::sweepBenchInstrs))
        .imbalanceBins;
}

std::array<double, 4>
averageBins(Pm pm, double dfsTarget)
{
    std::array<double, 4> acc{};
    for (Benchmark b : allBenchmarks()) {
        const auto bins = imbalanceOf(b, pm, dfsTarget);
        for (std::size_t i = 0; i < 4; ++i)
            acc[i] += bins[i];
    }
    for (auto &v : acc)
        v /= allBenchmarks().size();
    return acc;
}

void
addRow(Table &table, const std::string &name,
       const std::array<double, 4> &bins)
{
    table.beginRow()
        .cell(name)
        .cell(formatPercent(bins[0]))
        .cell(formatPercent(bins[1]))
        .cell(formatPercent(bins[2]))
        .cell(formatPercent(bins[3]))
        .endRow();
}

} // namespace

int
main()
{
    setLogQuiet(true);
    bench::banner("Fig. 17", "vertical-pair current-imbalance "
                             "distribution under power management");

    Table table("imbalance bins (fraction of windows)");
    table.setHeader({"scenario", "0-10%", "10-20%", "20-40%",
                     ">40%"});

    // No PM: worst / average / best benchmark plus suite average.
    addRow(table, "no PM: backprop (worst)",
           imbalanceOf(Benchmark::Backprop, Pm::None, 1.0));
    const auto noPmAvg = averageBins(Pm::None, 1.0);
    addRow(table, "no PM: average", noPmAvg);
    addRow(table, "no PM: heartwall (best)",
           imbalanceOf(Benchmark::Heartwall, Pm::None, 1.0));

    for (double target : {0.7, 0.5, 0.2}) {
        addRow(table,
               "DFS " + formatPercent(target, 0) + ": average",
               averageBins(Pm::Dfs, target));
    }
    addRow(table, "PG: average", averageBins(Pm::Pg, 1.0));
    table.print(std::cout);

    std::cout << "\n";
    bench::claim("no-PM windows under 10% imbalance (paper: ~50%)",
                 50.0, noPmAvg[0] * 100.0, "%");
    bench::claim("no-PM windows under 40% imbalance (paper: ~93%)",
                 93.0,
                 (noPmAvg[0] + noPmAvg[1] + noPmAvg[2]) * 100.0, "%");
    return 0;
}
