/**
 * @file
 * Thin frontend for the fig17_imbalance scenario (paper Fig. 17);
 * implementation in bench/scenarios/scenario_fig17.cc.  Supports
 * --jobs / --scale / --json (see scenarioMain()).
 */

#include "bench/scenarios/scenarios.hh"

int
main(int argc, char **argv)
{
    return vsgpu::scen::scenarioMain("fig17_imbalance", argc, argv);
}
