/**
 * @file
 * Thin frontend for the fig14_penalty_saving scenario (paper
 * Fig. 14); implementation in bench/scenarios/scenario_fig14.cc.
 * Supports --jobs / --scale / --json (see scenarioMain()).
 */

#include "bench/scenarios/scenarios.hh"

int
main(int argc, char **argv)
{
    return vsgpu::scen::scenarioMain("fig14_penalty_saving", argc,
                                     argv);
}
