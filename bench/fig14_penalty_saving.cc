/**
 * @file
 * Regenerates paper Fig. 14: per-benchmark performance penalty and
 * net energy saving of the cross-layer voltage-stacked GPU,
 * normalized against the conventional single-layer VRM system.
 *
 * Expected shape (paper): penalties within 2-4%; net energy savings
 * of 10-15% across benchmarks after accounting for the extended
 * execution time and extra leakage energy.
 *
 * Runs are kernel-sized: one generated workload corresponds to one
 * kernel launch.  Real kernels resynchronize the SMs at every launch
 * boundary; concatenating many iterations without that global resync
 * lets throttle-induced phase drift accumulate across SMs and
 * overstates the penalty relative to the paper's binaries.
 */

#include "bench/bench_util.hh"

using namespace vsgpu;

int
main()
{
    setLogQuiet(true);
    bench::banner("Fig. 14", "performance penalty and net energy "
                             "saving per benchmark");

    Table table("cross-layer VS vs conventional VRM");
    table.setHeader({"benchmark", "penalty %", "net saving %",
                     "throttle rate", "trigger rate"});

    double meanPenalty = 0.0, meanSaving = 0.0;
    for (Benchmark b : allBenchmarks()) {
        CosimConfig conv;
        conv.pds = defaultPds(PdsKind::ConventionalVrm);
        conv.maxCycles = 250000;
        const CosimResult rb = CoSimulator(conv).run(
            bench::benchWorkload(b, bench::sweepBenchInstrs));

        CosimConfig cross;
        cross.pds = defaultPds(PdsKind::VsCrossLayer);
        cross.maxCycles = 250000;
        const CosimResult rt = CoSimulator(cross).run(
            bench::benchWorkload(b, bench::sweepBenchInstrs));

        const double penalty =
            (static_cast<double>(rt.cycles) /
                 static_cast<double>(rb.cycles) -
             1.0) *
            100.0;
        // Net energy saving: wall energy for the same work, which
        // already charges the longer runtime's leakage and clocking.
        const double saving =
            (1.0 - rt.energy.wall / rb.energy.wall) * 100.0;

        table.beginRow()
            .cell(benchmarkName(b))
            .cell(penalty, 2)
            .cell(saving, 2)
            .cell(formatPercent(rt.throttleRate))
            .cell(formatPercent(rt.triggerRate))
            .endRow();
        meanPenalty += penalty;
        meanSaving += saving;
    }
    table.print(std::cout);

    meanPenalty /= allBenchmarks().size();
    meanSaving /= allBenchmarks().size();
    std::cout << "\n";
    bench::claim("mean performance penalty (paper: 2-4%)", 3.0,
                 meanPenalty, "%");
    bench::claim("mean net energy saving (paper: 10-15%)", 12.5,
                 meanSaving, "%");
    return 0;
}
