/**
 * @file
 * Registry of the paper's figure/table scenarios as library
 * functions.
 *
 * Each hot bench binary used to be a standalone main() with a serial
 * loop over co-simulation runs.  The scenario library factors those
 * loops into functions of a ScenarioContext, so the same code backs
 * three frontends:
 *   - the bench binaries (bench/fig12_threshold_sweep etc., now thin
 *     wrappers over scenarioMain()),
 *   - tools/record_golden, which dumps each scenario's Summary into
 *     tests/golden/<scenario>.json,
 *   - the tier-1 golden regression tests, which replay scenarios at
 *     reduced scale and compare against the recorded summaries.
 *
 * Scenarios shard their independent co-simulation runs across
 * ctx.pool (exec::runSweep) and share per-configuration electrical
 * setup through ctx.cache, so results are bitwise-identical for any
 * --jobs value; see docs/parallel_exec.md.
 *
 * The registry is an explicit list (no static self-registration —
 * linker-proof and greppable).
 */

#ifndef VSGPU_BENCH_SCENARIOS_SCENARIOS_HH
#define VSGPU_BENCH_SCENARIOS_SCENARIOS_HH

#include <algorithm>
#include <cmath>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "bench/scenarios/summary.hh"
#include "common/logging.hh"
#include "common/units.hh"
#include "exec/pool.hh"
#include "exec/progress.hh"
#include "exec/setup_cache.hh"
#include "exec/sweep.hh"
#include "obs/profile.hh"
#include "obs/stats_registry.hh"
#include "obs/timeseries.hh"
#include "sim/metrics.hh"

namespace vsgpu::scen
{

/** Frontend-facing knobs of one scenario invocation. */
struct ScenarioOptions
{
    /** Worker count; 0 = hardware concurrency. */
    int jobs = 0;

    /**
     * Workload scale: multiplies instruction counts and cycle caps.
     * 1.0 reproduces the paper-sized runs; the golden harness replays
     * at goldenScale to keep tier-1 wall-clock small.
     */
    double scale = 1.0;

    /**
     * Time-series sampling window for every co-simulation, in
     * *simulated* seconds (<= 0 disables; CosimConfig::sampleEvery).
     * Observability only: never perturbs results.
     */
    double sampleEverySec = 0.0;

    /** Enable the stage-cost self-profiler for the run. */
    bool profile = false;

    /** Render a live per-task progress line on stderr. */
    bool progress = false;
};

/** Optional observability artifacts harvested by runScenario(). */
struct ScenarioTelemetry
{
    /** Per-run windowed series (empty when sampling was off). */
    obs::TimeSeriesDoc series;

    /** Aggregated stage-cost profile (runs == 0 when off). */
    obs::Profile profile;

    /** Per-task progress records, sorted by (batch, task).  Wall
     *  timings are schedule-dependent: diagnostics only. */
    std::vector<exec::TaskRecord> taskRecords;
};

/** Scale used when recording and replaying golden summaries. */
inline constexpr double goldenScale = 0.15;

/** Everything a scenario needs to run. */
struct ScenarioContext
{
    exec::Pool &pool;
    exec::SetupCache &cache;
    double scale = 1.0;

    /** Sink for the human-readable tables. */
    std::ostream &out;

    /** Sampling window injected into every runPoint() config (sim
     *  seconds; <= 0 disables; ScenarioOptions::sampleEverySec). */
    double sampleEverySec = 0.0;

    /** Scale an instruction budget (>= 1). */
    int
    instrs(int base) const
    {
        return std::max(1, static_cast<int>(
                               std::lround(base * scale)));
    }

    /** Scale a cycle cap (floor keeps short runs meaningful). */
    Cycle
    cycles(Cycle base) const
    {
        const double scaled = static_cast<double>(base) * scale;
        return std::max<Cycle>(5000, static_cast<Cycle>(scaled));
    }

    /**
     * Accumulated event counters over every co-simulation the
     * scenario ran.  Counters are unsigned integers and record()
     * sums element-wise under the mutex, so the totals are exact
     * and independent of pool scheduling: stats dumps built from
     * them are bitwise identical for --jobs 1 and --jobs N.
     */
    CosimCounters counters{};
    std::mutex countersMutex{};

    /** Record one run's counters (thread-safe; call from tasks). */
    void
    record(const CosimCounters &c)
    {
        std::lock_guard<std::mutex> lock(countersMutex);
        counters.add(c);
    }

    /**
     * Per-run time series keyed by sweep-point label, and the
     * scenario-wide stage-cost profile.  The map keys order the
     * eventual dump, so it is identical for any --jobs value even
     * though tasks *finish* in schedule order.
     */
    std::map<std::string, std::shared_ptr<obs::TimeSeriesRun>>
        series{};
    obs::Profile profile{};

    /**
     * Record one run's counters plus its optional telemetry under
     * @p label (thread-safe; call from tasks).  Labels identify runs
     * in the time-series dump and must be unique per scenario —
     * duplicates panic rather than silently shadowing a run.
     */
    void
    recordObs(const std::string &label, const CosimResult &r)
    {
        std::lock_guard<std::mutex> lock(countersMutex);
        counters.add(r.counters);
        if (r.timeSeries) {
            r.timeSeries->label = label;
            panicIfNot(series.emplace(label, r.timeSeries).second,
                       "duplicate time-series label '", label, "'");
        }
        if (r.profile)
            profile.merge(*r.profile);
    }
};

using ScenarioFn = Summary (*)(ScenarioContext &ctx);

/** One registry entry. */
struct ScenarioInfo
{
    const char *name;  ///< stable id; golden file stem
    const char *title; ///< banner line
    ScenarioFn fn;
};

/** All registered scenarios, in paper order. */
const std::vector<ScenarioInfo> &allScenarios();

/** @return the named scenario, or nullptr. */
const ScenarioInfo *findScenario(const std::string &name);

/**
 * Run one scenario: builds the pool and setup cache, prints the
 * banner and tables to @p out, returns the summary.
 *
 * When @p stats is non-null, the scenario's aggregated counters
 * (gpu / sim / control / hypervisor) and exec-layer stats (pool,
 * setup cache) are registered into it after the run.  When
 * @p manifest is non-null it is filled with the run's provenance
 * (config fingerprint over every cached pdsSetupKey) and stamped
 * into the returned summary.  Both default to null so the golden
 * harness keeps producing manifest-free summaries byte-identical
 * to the recorded files.
 *
 * When @p telemetry is non-null it receives the time-series dump
 * (opts.sampleEverySec > 0), the aggregated stage-cost profile
 * (opts.profile), and the per-task progress records.
 */
Summary runScenario(const ScenarioInfo &info,
                    const ScenarioOptions &opts, std::ostream &out,
                    obs::StatsRegistry *stats = nullptr,
                    obs::Manifest *manifest = nullptr,
                    ScenarioTelemetry *telemetry = nullptr);

/**
 * Shared main() for the thin bench binaries.  Flags:
 *   --jobs N              worker threads (default: hw concurrency)
 *   --scale X             workload scale (default 1.0)
 *   --json PATH           also write the Summary as JSON to PATH
 *   --stats-out PATH      write the stats registry dump as JSON
 *   --trace-out PATH      write a Chrome trace_event JSON file
 *   --trace-categories C  comma list: phase,pool,ctl,hv,all
 *   --sample-every SEC    windowed time-series telemetry cadence
 *   --timeseries-out PATH write the time-series dump as JSON
 *   --profile             stage-cost self-profiler + report
 *   --progress            live per-task progress line on stderr
 *   --flight-out PATH     crash-dump flight recorder JSON here
 */
int scenarioMain(const char *name, int argc, char **argv);

// Scenario implementations (one translation unit each).
Summary runFig12ThresholdSweep(ScenarioContext &ctx);
Summary runFig13ActuatorTradeoff(ScenarioContext &ctx);
Summary runFig14PenaltySaving(ScenarioContext &ctx);
Summary runFig15Dfs(ScenarioContext &ctx);
Summary runFig16Pg(ScenarioContext &ctx);
Summary runFig17Imbalance(ScenarioContext &ctx);
Summary runTable2Detectors(ScenarioContext &ctx);
Summary runTable3PdsComparison(ScenarioContext &ctx);

} // namespace vsgpu::scen

#endif // VSGPU_BENCH_SCENARIOS_SCENARIOS_HH
