/**
 * @file
 * Paper Fig. 12: performance penalty as a function of the
 * controller's trigger threshold voltage.
 *
 * Expected shape (paper): penalties grow with the threshold (more
 * cycles spend throttled); at the default 0.9 V threshold penalties
 * sit in the low single-digit percents, and fewer than ~20% of
 * cycles are affected by smoothing.
 */

#include "bench/scenarios/scenario_util.hh"

namespace vsgpu::scen
{

namespace
{

constexpr double kThresholds[] = {0.70, 0.80, 0.90, 0.95};
constexpr int kNumThresholds = 4;

/** One run: the smoothing-off baseline or one threshold setting. */
struct Point
{
    Benchmark bench;
    int threshold; // -1 = baseline (smoothing disabled)
};

} // namespace

Summary
runFig12ThresholdSweep(ScenarioContext &ctx)
{
    const auto &benches = allBenchmarks();

    std::vector<Point> points;
    for (Benchmark b : benches) {
        points.push_back({b, -1});
        for (int t = 0; t < kNumThresholds; ++t)
            points.push_back({b, t});
    }

    const auto results = exec::runSweep(
        ctx.pool, points, /*sweepSeed=*/12,
        [&ctx](const Point &p, exec::TaskContext &) {
            CosimConfig cfg;
            if (p.threshold < 0) {
                // Baseline: smoothing disabled entirely.
                cfg.pds = defaultPds(PdsKind::VsCircuitOnly);
                cfg.pds.ivrAreaFraction = 0.2;
            } else {
                cfg.pds = defaultPds(PdsKind::VsCrossLayer);
                cfg.pds.controller.vThreshold =
                    Volts{kThresholds[p.threshold]};
            }
            cfg.maxCycles = ctx.cycles(200000);
            const std::string label =
                std::string(benchmarkName(p.bench)) +
                (p.threshold < 0
                     ? "/baseline"
                     : "/vth=" +
                           formatFixed(kThresholds[p.threshold], 2));
            return runPoint(ctx, cfg, p.bench, label);
        });

    Table table("penalty (%) per benchmark");
    std::vector<std::string> header = {"benchmark"};
    for (double t : kThresholds)
        header.push_back("Vth=" + formatFixed(t, 2));
    header.push_back("throttle@0.9");
    table.setHeader(header);

    Summary summary;
    const int runsPerBench = 1 + kNumThresholds;
    double meanPenaltyAtDefault = 0.0;
    double meanThrottleAtDefault = 0.0;
    for (std::size_t bi = 0; bi < benches.size(); ++bi) {
        const Benchmark b = benches[bi];
        const CosimResult &baseline =
            results[bi * runsPerBench];

        auto &row = table.beginRow().cell(benchmarkName(b));
        double throttleAtDefault = 0.0;
        for (int t = 0; t < kNumThresholds; ++t) {
            const CosimResult &r =
                results[bi * runsPerBench + 1 +
                        static_cast<std::size_t>(t)];
            const double penalty =
                (static_cast<double>(r.cycles) /
                     static_cast<double>(baseline.cycles) -
                 1.0) *
                100.0;
            row.cell(penalty, 2);
            if (kThresholds[t] == 0.90) {
                throttleAtDefault = r.throttleRate;
                meanPenaltyAtDefault += penalty;
                summary.add("penalty_pct_vth090_" +
                                std::string(benchmarkName(b)),
                            penalty, 2.0);
            }
        }
        row.cell(formatPercent(throttleAtDefault));
        row.endRow();
        meanThrottleAtDefault += throttleAtDefault;
    }
    table.print(ctx.out);

    meanPenaltyAtDefault /= static_cast<double>(benches.size());
    meanThrottleAtDefault /= static_cast<double>(benches.size());
    ctx.out << "\n";
    claim(ctx.out, "mean penalty at Vth=0.9 (paper: 2-4%)", 3.0,
          meanPenaltyAtDefault, "%");

    summary.add("mean_penalty_pct_vth090", meanPenaltyAtDefault, 1.0);
    summary.add("mean_throttle_rate_vth090", meanThrottleAtDefault,
                0.05);
    return summary;
}

} // namespace vsgpu::scen
