/**
 * @file
 * Paper Fig. 16: Warped-Gates-style power gating on the conventional
 * GPU versus the cross-layer voltage-stacked GPU.
 *
 * Expected shape (paper): the hypervisor's current-imbalance budget
 * slightly disturbs the optimal gating pattern, but the VS system's
 * higher PDE more than compensates — lower total energy overall.
 */

#include "bench/scenarios/scenario_util.hh"
#include "hypervisor/pg.hh"
#include "hypervisor/vs_hypervisor.hh"

namespace vsgpu::scen
{

namespace
{

// Gating pays off on memory/latency-bound workloads with idle
// blocks.
constexpr Benchmark kSet[] = {Benchmark::Bfs, Benchmark::Pathfinder,
                              Benchmark::Simpleatomic,
                              Benchmark::Scalarprod};
constexpr int kSetSize = 4;

struct Config
{
    const char *label;
    const char *id; // metric-name stem
    PdsKind kind;
    bool gating;
    bool useHypervisor;
};

constexpr Config kConfigs[] = {
    {"conventional, no PG", "conv_nopg", PdsKind::ConventionalVrm,
     false, false},
    {"conventional + Warped Gates", "conv_pg",
     PdsKind::ConventionalVrm, true, false},
    {"VS cross-layer, no PG", "vs_nopg", PdsKind::VsCrossLayer, false,
     false},
    {"VS cross-layer + PG (hypervisor)", "vs_pg",
     PdsKind::VsCrossLayer, true, true},
};
constexpr int kNumConfigs = 4;

struct Run
{
    int config; // index into kConfigs
    int bench;  // index into kSet
};

struct PgGroup
{
    double wallJ = 0.0;
    Cycle cycles = 0;
};

} // namespace

Summary
runFig16Pg(ScenarioContext &ctx)
{
    std::vector<Run> runs;
    for (int c = 0; c < kNumConfigs; ++c)
        for (int j = 0; j < kSetSize; ++j)
            runs.push_back({c, j});

    const auto results = exec::runSweep(
        ctx.pool, runs, /*sweepSeed=*/16,
        [&ctx](const Run &run, exec::TaskContext &) {
            const Config &c = kConfigs[run.config];
            PgGovernor pg;
            VsAwareHypervisor hv;
            CosimConfig cfg;
            cfg.pds = defaultPds(c.kind);
            if (c.gating)
                cfg.gpu.sm.scheduler = SchedulerKind::Gates;
            cfg.maxCycles = ctx.cycles(300000);
            cfg.sampleEvery = Seconds{ctx.sampleEverySec};
            CoSimulator sim(ctx.cache.withSetup(cfg));
            if (c.gating) {
                sim.attachPg(&pg);
                if (c.useHypervisor)
                    sim.attachHypervisor(&hv);
            }
            CosimResult r =
                sim.run(benchWorkload(ctx, kSet[run.bench]));
            ctx.recordObs(std::string(c.id) + "/" +
                              benchmarkName(kSet[run.bench]),
                          r);
            return r;
        });

    const auto groupOf = [&results](int c) {
        PgGroup out;
        for (int j = 0; j < kSetSize; ++j) {
            const CosimResult &r = results[static_cast<std::size_t>(
                c * kSetSize + j)];
            out.wallJ += r.energy.wall;
            out.cycles += r.cycles;
        }
        return out;
    };

    const PgGroup convPeak = groupOf(0);
    const PgGroup convPg = groupOf(1);
    const PgGroup vsPg = groupOf(3);

    Table table("total energy, normalized to conventional (no PG)");
    table.setHeader({"configuration", "energy", "cycles"});
    Summary summary;
    for (int c = 0; c < kNumConfigs; ++c) {
        const PgGroup g = groupOf(c);
        table.beginRow()
            .cell(kConfigs[c].label)
            .cell(g.wallJ / convPeak.wallJ, 3)
            .cell(static_cast<long long>(g.cycles))
            .endRow();
        summary.add(std::string("energy_norm_") + kConfigs[c].id,
                    g.wallJ / convPeak.wallJ, 0.05);
    }
    table.print(ctx.out);

    ctx.out << "\n";
    claim(ctx.out, "PG saves energy on conventional (sign)", 1.0,
          convPg.wallJ < convPeak.wallJ * 1.001 ? 1.0 : 0.0, "");
    claim(ctx.out,
          "VS+PG beats conventional+PG (paper: PDE compensates)", 1.0,
          vsPg.wallJ < convPg.wallJ ? 1.0 : 0.0, "");
    const double vsPgSaving =
        (1.0 - vsPg.wallJ / convPg.wallJ) * 100.0;
    claim(ctx.out, "VS+PG total saving vs conventional+PG", 10.0,
          vsPgSaving, "%");
    summary.add("vs_pg_saving_pct", vsPgSaving, 3.0);
    return summary;
}

} // namespace vsgpu::scen
