/**
 * @file
 * Paper Table III: PDE and die-area overhead of the four
 * power-delivery subsystems, averaged over all twelve benchmarks.
 *
 * Paper values: single-layer VRM 80% / no die area; single-layer IVR
 * 85% / 172.3 mm^2; VS circuit-only 93.0% / 912 mm^2 (1.72x GPU die);
 * VS cross-layer 92.3% / 105.8 mm^2 (0.2x GPU die).
 */

#include "bench/scenarios/scenario_util.hh"

namespace vsgpu::scen
{

namespace
{

struct KindRow
{
    PdsKind kind;
    const char *id; // metric-name stem
};

constexpr KindRow kKinds[] = {
    {PdsKind::ConventionalVrm, "conventional_vrm"},
    {PdsKind::SingleLayerIvr, "single_layer_ivr"},
    {PdsKind::VsCircuitOnly, "vs_circuit_only"},
    {PdsKind::VsCrossLayer, "vs_cross_layer"},
};
constexpr int kNumKinds = 4;

struct Run
{
    int kind; // index into kKinds
    Benchmark bench;
};

} // namespace

Summary
runTable3PdsComparison(ScenarioContext &ctx)
{
    const auto &benches = allBenchmarks();
    const int nb = static_cast<int>(benches.size());

    std::vector<Run> runs;
    for (int k = 0; k < kNumKinds; ++k)
        for (Benchmark b : benches)
            runs.push_back({k, b});

    const auto results = exec::runSweep(
        ctx.pool, runs, /*sweepSeed=*/3,
        [&ctx](const Run &run, exec::TaskContext &) {
            CosimConfig cfg;
            cfg.pds = defaultPds(kKinds[run.kind].kind);
            cfg.maxCycles = ctx.cycles(defaultMaxCycles);
            const std::string label =
                std::string(kKinds[run.kind].id) + "/" +
                benchmarkName(run.bench);
            return runPoint(ctx, cfg, run.bench, label);
        });

    Table table("Table III");
    table.setHeader({"PDS configuration", "PDE", "die area (mm^2)",
                     "area (xGPU die)"});

    Summary summary;
    double pdeVrm = 0.0, pdeCross = 0.0, pdeCircuit = 0.0;
    for (int k = 0; k < kNumKinds; ++k) {
        double loadJ = 0.0, wallJ = 0.0;
        for (int j = 0; j < nb; ++j) {
            const CosimResult &r =
                results[static_cast<std::size_t>(k * nb + j)];
            loadJ += r.energy.load;
            wallJ += r.energy.wall;
        }
        const double pde = loadJ / wallJ;
        const PdsKind kind = kKinds[k].kind;
        const PdsOptions options = defaultPds(kind);
        const Area area = pdsAreaOverhead(options);
        table.beginRow()
            .cell(pdsName(kind))
            .cell(formatPercent(pde))
            .cell(area / 1.0_mm2, 1)
            .cell(area / config::gpuDieArea, 2)
            .endRow();
        const std::string stem = kKinds[k].id;
        summary.add("pde_" + stem, pde, 0.02);
        summary.add("area_mm2_" + stem, area / 1.0_mm2, 1e-6);
        if (kind == PdsKind::ConventionalVrm)
            pdeVrm = pde;
        if (kind == PdsKind::VsCircuitOnly)
            pdeCircuit = pde;
        if (kind == PdsKind::VsCrossLayer)
            pdeCross = pde;
    }
    table.print(ctx.out);

    ctx.out << "\nHeadline claims:\n";
    claim(ctx.out, "VS cross-layer PDE", 92.3, pdeCross * 100.0, "%");
    claim(ctx.out, "VS circuit-only PDE", 93.0, pdeCircuit * 100.0,
          "%");
    claim(ctx.out, "conventional PDE", 80.0, pdeVrm * 100.0, "%");
    claim(ctx.out, "PDE improvement over conventional", 12.3,
          (pdeCross - pdeVrm) * 100.0, " pts");
    claim(ctx.out, "PDS loss eliminated", 61.5,
          (1.0 - (1.0 - pdeCross) / (1.0 - pdeVrm)) * 100.0, "%");
    const Area areaCircuit =
        pdsAreaOverhead(defaultPds(PdsKind::VsCircuitOnly));
    const Area areaCross =
        pdsAreaOverhead(defaultPds(PdsKind::VsCrossLayer));
    claim(ctx.out, "area reduction vs circuit-only", 88.0,
          (1.0 - areaCross / areaCircuit) * 100.0, "%");

    summary.add("pde_improvement_pts", (pdeCross - pdeVrm) * 100.0,
                2.0);
    summary.add("loss_eliminated_pct",
                (1.0 - (1.0 - pdeCross) / (1.0 - pdeVrm)) * 100.0,
                5.0);
    return summary;
}

} // namespace vsgpu::scen
