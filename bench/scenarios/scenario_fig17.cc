/**
 * @file
 * Paper Fig. 17: the distribution of current imbalance between
 * vertically stacked SMs (normalized by peak SM current, binned
 * 0-10% / 10-20% / 20-40% / >40%) under no power management, DFS at
 * several performance targets, and power gating.
 *
 * Expected shape (paper): without PM, ~50% of windows fall in the
 * 0-10% bin and >90% under 40%; backprop is the most imbalanced,
 * heartwall the most uniform; DFS and PG do not fundamentally
 * disturb the balance.
 */

#include <array>

#include "bench/scenarios/scenario_util.hh"
#include "hypervisor/dfs.hh"
#include "hypervisor/pg.hh"
#include "hypervisor/vs_hypervisor.hh"

namespace vsgpu::scen
{

namespace
{

enum class Pm
{
    None,
    Dfs,
    Pg,
};

constexpr double kDfsTargets[] = {0.7, 0.5, 0.2};
constexpr int kNumDfsTargets = 3;

struct Run
{
    Benchmark bench;
    Pm pm;
    double dfsTarget;
};

using Bins = std::array<double, 4>;

} // namespace

Summary
runFig17Imbalance(ScenarioContext &ctx)
{
    const auto &benches = allBenchmarks();
    const int nb = static_cast<int>(benches.size());

    // Groups of nb runs each: no-PM, DFS per target, PG.
    std::vector<Run> runs;
    const auto addGroup = [&](Pm pm, double target) {
        for (Benchmark b : benches)
            runs.push_back({b, pm, target});
    };
    addGroup(Pm::None, 1.0);
    for (double target : kDfsTargets)
        addGroup(Pm::Dfs, target);
    addGroup(Pm::Pg, 1.0);

    const auto results = exec::runSweep(
        ctx.pool, runs, /*sweepSeed=*/17,
        [&ctx](const Run &run, exec::TaskContext &) {
            DfsConfig dcfg;
            dcfg.perfTarget = run.dfsTarget;
            DfsGovernor dfs(dcfg);
            PgGovernor pg;
            VsAwareHypervisor hv;

            CosimConfig cfg;
            cfg.pds = defaultPds(PdsKind::VsCrossLayer);
            if (run.pm == Pm::Pg)
                cfg.gpu.sm.scheduler = SchedulerKind::Gates;
            cfg.maxCycles = ctx.cycles(200000);
            cfg.sampleEvery = Seconds{ctx.sampleEverySec};
            CoSimulator sim(ctx.cache.withSetup(cfg));
            if (run.pm == Pm::Dfs) {
                sim.attachDfs(&dfs);
                sim.attachHypervisor(&hv);
            } else if (run.pm == Pm::Pg) {
                sim.attachPg(&pg);
                sim.attachHypervisor(&hv);
            }
            const CosimResult r =
                sim.run(benchWorkload(ctx, run.bench));
            const char *pm = run.pm == Pm::None  ? "none"
                             : run.pm == Pm::Dfs ? "dfs"
                                                 : "pg";
            const std::string label =
                std::string(pm) + "/target=" +
                formatFixed(run.dfsTarget, 1) + "/" +
                benchmarkName(run.bench);
            ctx.recordObs(label, r);
            return r.imbalanceBins;
        });

    const auto averageOf = [&](int group) {
        Bins acc{};
        for (int j = 0; j < nb; ++j) {
            const Bins &bins = results[static_cast<std::size_t>(
                group * nb + j)];
            for (std::size_t i = 0; i < 4; ++i)
                acc[i] += bins[i];
        }
        for (auto &v : acc)
            v /= static_cast<double>(nb);
        return acc;
    };
    const auto binsOf = [&](int group, Benchmark b) {
        int idx = -1;
        for (int j = 0; j < nb; ++j)
            if (benches[static_cast<std::size_t>(j)] == b)
                idx = j;
        panicIfNot(idx >= 0, "benchmark not in suite");
        return results[static_cast<std::size_t>(group * nb + idx)];
    };

    Table table("imbalance bins (fraction of windows)");
    table.setHeader({"scenario", "0-10%", "10-20%", "20-40%",
                     ">40%"});
    const auto addRow = [&table](const std::string &name,
                                 const Bins &bins) {
        table.beginRow()
            .cell(name)
            .cell(formatPercent(bins[0]))
            .cell(formatPercent(bins[1]))
            .cell(formatPercent(bins[2]))
            .cell(formatPercent(bins[3]))
            .endRow();
    };

    // No PM: worst / average / best benchmark plus suite average.
    addRow("no PM: backprop (worst)", binsOf(0, Benchmark::Backprop));
    const Bins noPmAvg = averageOf(0);
    addRow("no PM: average", noPmAvg);
    addRow("no PM: heartwall (best)",
           binsOf(0, Benchmark::Heartwall));

    Summary summary;
    for (int t = 0; t < kNumDfsTargets; ++t) {
        const Bins avg = averageOf(1 + t);
        addRow("DFS " + formatPercent(kDfsTargets[t], 0) +
                   ": average",
               avg);
        summary.add("dfs_" + formatFixed(kDfsTargets[t], 1) +
                        "_avg_bin0",
                    avg[0], 0.10);
    }
    const Bins pgAvg = averageOf(1 + kNumDfsTargets);
    addRow("PG: average", pgAvg);
    table.print(ctx.out);

    ctx.out << "\n";
    claim(ctx.out, "no-PM windows under 10% imbalance (paper: ~50%)",
          50.0, noPmAvg[0] * 100.0, "%");
    claim(ctx.out, "no-PM windows under 40% imbalance (paper: ~93%)",
          93.0, (noPmAvg[0] + noPmAvg[1] + noPmAvg[2]) * 100.0, "%");

    for (std::size_t i = 0; i < 4; ++i)
        summary.add("nopm_avg_bin" + std::to_string(i), noPmAvg[i],
                    0.08);
    summary.add("nopm_under40_frac",
                noPmAvg[0] + noPmAvg[1] + noPmAvg[2], 0.08);
    summary.add("pg_avg_bin0", pgAvg[0], 0.10);
    return summary;
}

} // namespace vsgpu::scen
