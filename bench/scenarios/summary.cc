#include "bench/scenarios/summary.hh"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/check.hh"

namespace vsgpu::scen
{

const SummaryMetric *
Summary::find(const std::string &name) const
{
    for (const SummaryMetric &m : metrics)
        if (m.name == name)
            return &m;
    return nullptr;
}

namespace
{

/** Shortest round-trip-exact representation of a double. */
std::string
formatDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    // Prefer a shorter form when it round-trips exactly.
    for (int prec = 1; prec < 17; ++prec) {
        char shorter[40];
        std::snprintf(shorter, sizeof(shorter), "%.*g", prec, v);
        double back = 0.0;
        std::sscanf(shorter, "%lf", &back);
        if (back == v)
            return shorter;
    }
    return buf;
}

std::string
quote(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    out += '"';
    return out;
}

/** Minimal parser for the JSON subset writeSummaryJson emits. */
class Parser
{
  public:
    explicit Parser(std::istream &is)
    {
        std::ostringstream buf;
        buf << is.rdbuf();
        text_ = buf.str();
    }

    Summary
    parse()
    {
        Summary out;
        expect('{');
        bool first = true;
        while (peek() != '}') {
            if (!first)
                expect(',');
            first = false;
            const std::string key = parseString();
            expect(':');
            if (key == "scenario") {
                out.scenario = parseString();
            } else if (key == "scale") {
                out.scale = parseNumber();
            } else if (key == "manifest") {
                parseManifest(out.manifest);
            } else if (key == "metrics") {
                parseMetrics(out);
            } else if (key == "tasks") {
                parseTasks(out);
            } else {
                panic("summary JSON: unknown key '", key, "'");
            }
        }
        expect('}');
        return out;
    }

  private:
    void
    parseManifest(obs::Manifest &m)
    {
        m.valid = true;
        expect('{');
        bool first = true;
        while (peek() != '}') {
            if (!first)
                expect(',');
            first = false;
            const std::string key = parseString();
            expect(':');
            const std::string value = parseString();
            if (key == "tool")
                m.tool = value;
            else if (key == "version")
                m.version = value;
            else if (key == "build")
                m.build = value;
            else if (key == "subject")
                m.subject = value;
            else if (key == "config_fingerprint")
                m.configFingerprint = value;
            else if (key == "seed")
                m.seed = std::stoull(value);
            else if (key == "scale")
                m.scale = std::stod(value);
            else
                panic("summary JSON: unknown manifest key '", key,
                      "'");
        }
        expect('}');
    }

    void
    parseMetrics(Summary &out)
    {
        expect('[');
        while (peek() != ']') {
            if (!out.metrics.empty())
                expect(',');
            SummaryMetric m;
            expect('{');
            bool first = true;
            while (peek() != '}') {
                if (!first)
                    expect(',');
                first = false;
                const std::string key = parseString();
                expect(':');
                if (key == "name")
                    m.name = parseString();
                else if (key == "value")
                    m.value = parseNumber();
                else if (key == "tol")
                    m.tol = parseNumber();
                else
                    panic("summary JSON: unknown metric key '", key,
                          "'");
            }
            expect('}');
            out.metrics.push_back(std::move(m));
        }
        expect(']');
    }

    void
    parseTasks(Summary &out)
    {
        expect('[');
        while (peek() != ']') {
            if (!out.taskRecords.empty())
                expect(',');
            SummaryTask t;
            expect('{');
            bool first = true;
            while (peek() != '}') {
                if (!first)
                    expect(',');
                first = false;
                const std::string key = parseString();
                expect(':');
                if (key == "batch")
                    t.batch = static_cast<int>(parseNumber());
                else if (key == "task")
                    t.task = static_cast<int>(parseNumber());
                else if (key == "wall_ms")
                    t.wallMs = parseNumber();
                else
                    panic("summary JSON: unknown task key '", key,
                          "'");
            }
            expect('}');
            out.taskRecords.push_back(t);
        }
        expect(']');
    }

    char
    peek()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
        panicIfNot(pos_ < text_.size(),
                   "summary JSON: unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        panicIfNot(peek() == c, "summary JSON: expected '", c,
                   "' at byte ", pos_);
        ++pos_;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            if (text_[pos_] == '\\')
                ++pos_;
            panicIfNot(pos_ < text_.size(),
                       "summary JSON: unterminated string");
            out += text_[pos_++];
        }
        panicIfNot(pos_ < text_.size(),
                   "summary JSON: unterminated string");
        ++pos_; // closing quote
        return out;
    }

    double
    parseNumber()
    {
        peek(); // skip whitespace
        std::size_t used = 0;
        const double v = std::stod(text_.substr(pos_), &used);
        panicIfNot(used != 0, "summary JSON: expected number at byte ",
                   pos_);
        pos_ += used;
        return v;
    }

    std::string text_;
    std::size_t pos_ = 0;
};

} // namespace

void
writeSummaryJson(const Summary &summary, std::ostream &os)
{
    os << "{\n"
       << "  \"scenario\": " << quote(summary.scenario) << ",\n"
       << "  \"scale\": " << formatDouble(summary.scale) << ",\n";
    if (summary.manifest.valid) {
        os << "  \"manifest\": ";
        obs::writeManifestJson(summary.manifest, os, "  ");
        os << ",\n";
    }
    os << "  \"metrics\": [";
    for (std::size_t i = 0; i < summary.metrics.size(); ++i) {
        const SummaryMetric &m = summary.metrics[i];
        os << (i ? ",\n" : "\n")
           << "    {\"name\": " << quote(m.name)
           << ", \"value\": " << formatDouble(m.value)
           << ", \"tol\": " << formatDouble(m.tol) << "}";
    }
    os << "\n  ]";
    if (!summary.taskRecords.empty()) {
        os << ",\n  \"tasks\": [";
        for (std::size_t i = 0; i < summary.taskRecords.size(); ++i) {
            const SummaryTask &t = summary.taskRecords[i];
            os << (i ? ",\n" : "\n") << "    {\"batch\": " << t.batch
               << ", \"task\": " << t.task
               << ", \"wall_ms\": " << formatDouble(t.wallMs) << "}";
        }
        os << "\n  ]";
    }
    os << "\n}\n";
}

Summary
readSummaryJson(std::istream &is)
{
    Parser parser(is);
    return parser.parse();
}

Summary
readSummaryFile(const std::string &path)
{
    std::ifstream in(path);
    panicIfNot(in.good(), "cannot open summary file ", path);
    return readSummaryJson(in);
}

} // namespace vsgpu::scen
