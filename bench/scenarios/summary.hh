/**
 * @file
 * Machine-readable summary of a bench scenario run.
 *
 * Every scenario distills its tables into a flat list of named
 * headline metrics, each with an absolute comparison tolerance.  The
 * golden-trace harness records these summaries as JSON
 * (tests/golden/<scenario>.json) and later replays the scenario,
 * failing if any metric moved by more than its recorded tolerance.
 * Tolerances exist for cross-platform floating-point slack (libm,
 * FMA contraction) — on one machine replays are bitwise-identical.
 */

#ifndef VSGPU_BENCH_SCENARIOS_SUMMARY_HH
#define VSGPU_BENCH_SCENARIOS_SUMMARY_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/manifest.hh"

namespace vsgpu::scen
{

/** One headline metric of a scenario. */
struct SummaryMetric
{
    std::string name;
    double value = 0.0;

    /** Absolute tolerance for golden comparison. */
    double tol = 0.0;
};

/**
 * One completed pool task (mirrors exec::TaskRecord without the exec
 * dependency).  Wall times are schedule-dependent diagnostics; the
 * block is only emitted when progress tracking was on, so recorded
 * goldens and determinism-gated summaries never contain it.
 */
struct SummaryTask
{
    int batch = 0;
    int task = 0;
    double wallMs = 0.0;
};

/** All headline metrics of one scenario run. */
struct Summary
{
    std::string scenario;

    /** Workload scale the metrics were measured at (see
     *  ScenarioOptions::scale); goldens only compare at equal
     *  scale. */
    double scale = 1.0;

    /** Run provenance (obs/manifest.hh), stamped by scenarioMain.
     *  Omitted from JSON while !manifest.valid, so recorded goldens
     *  (which carry no manifest) stay byte-stable. */
    obs::Manifest manifest;

    std::vector<SummaryMetric> metrics;

    /** Per-task wall-clock diagnostics (empty unless --progress;
     *  omitted from JSON while empty). */
    std::vector<SummaryTask> taskRecords;

    /** Append one metric. */
    void
    add(std::string name, double value, double tol)
    {
        metrics.push_back({std::move(name), value, tol});
    }

    /** @return the named metric, or nullptr. */
    const SummaryMetric *find(const std::string &name) const;
};

/** Serialize a summary as pretty-printed JSON. */
void writeSummaryJson(const Summary &summary, std::ostream &os);

/**
 * Parse a summary previously written by writeSummaryJson().  Panics
 * on malformed input (goldens are repo-controlled files).
 */
Summary readSummaryJson(std::istream &is);

/** Convenience: read a summary from a file path. */
Summary readSummaryFile(const std::string &path);

} // namespace vsgpu::scen

#endif // VSGPU_BENCH_SCENARIOS_SUMMARY_HH
