/**
 * @file
 * Paper Table II: voltage detector options, plus a behavioural
 * demonstration of each detector tracking a droop event through the
 * 50 MHz front-end filter.
 */

#include <cmath>

#include "bench/scenarios/scenario_util.hh"
#include "control/detector.hh"

namespace vsgpu::scen
{

namespace
{

struct DetectorRow
{
    DetectorKind kind;
    const char *name;
    const char *id; // metric-name stem
    const char *output;
};

constexpr DetectorRow kRows[] = {
    {DetectorKind::Oddd, "ODDD", "oddd", "detect indicator"},
    {DetectorKind::Cpm, "CPM", "cpm", "timing variation"},
    {DetectorKind::Adc, "ADC", "adc", "N-bit digital"},
};
constexpr int kNumRows = 3;

struct StepResponse
{
    int cycles = 0;
    double resolvedVolts = 1.0;
};

} // namespace

Summary
runTable2Detectors(ScenarioContext &ctx)
{
    Table table("detector implementations");
    table.setHeader({"sensor", "latency_cycles", "power_mW",
                     "resolution_mV", "output"});
    Summary summary;
    for (const DetectorRow &row : kRows) {
        const DetectorSpec spec = detectorSpec(row.kind);
        table.beginRow()
            .cell(row.name)
            .cell(static_cast<long long>(spec.latency))
            .cell(spec.powerWatts.raw() * 1e3, 1)
            .cell(spec.resolutionVolts.raw() * 1e3, 1)
            .cell(row.output)
            .endRow();
        const std::string stem = row.id;
        summary.add(stem + "_latency_cycles",
                    static_cast<double>(spec.latency), 0.0);
        summary.add(stem + "_power_mW",
                    spec.powerWatts.raw() * 1e3, 1e-6);
        summary.add(stem + "_resolution_mV",
                    spec.resolutionVolts.raw() * 1e3, 1e-6);
    }
    table.print(ctx.out);

    // Behavioural check: a 100 mV droop step seen through each
    // detector (settling time and resolved value).  The three
    // detectors are independent, so they run as a (tiny) sweep.
    const auto responses = exec::runIndexSweep(
        ctx.pool, kNumRows, /*sweepSeed=*/2,
        [](int i, exec::TaskContext &) {
            const DetectorSpec spec = detectorSpec(kRows[i].kind);
            VoltageDetector det(spec);
            for (int k = 0; k < 200; ++k)
                det.sample(1.0_V);
            StepResponse r;
            Volts out = 1.0_V;
            for (; r.cycles < 500; ++r.cycles) {
                out = det.sample(0.90_V);
                if (vsgpu::abs(out - 0.90_V) <= spec.resolutionVolts)
                    break;
            }
            r.resolvedVolts = out.raw();
            return r;
        });

    ctx.out << "\nDroop-step response (1.00 V -> 0.90 V):\n";
    Table resp("step response");
    resp.setHeader({"sensor", "cycles_to_resolve", "resolved_V"});
    for (int i = 0; i < kNumRows; ++i) {
        const StepResponse &r =
            responses[static_cast<std::size_t>(i)];
        resp.beginRow()
            .cell(kRows[i].name)
            .cell(static_cast<long long>(r.cycles))
            .cell(r.resolvedVolts, 4)
            .endRow();
        const std::string stem = kRows[i].id;
        summary.add(stem + "_cycles_to_resolve",
                    static_cast<double>(r.cycles), 0.5);
        summary.add(stem + "_resolved_V", r.resolvedVolts, 2e-3);
    }
    resp.print(ctx.out);
    return summary;
}

} // namespace vsgpu::scen
