/**
 * @file
 * Paper Fig. 14: per-benchmark performance penalty and net energy
 * saving of the cross-layer voltage-stacked GPU, normalized against
 * the conventional single-layer VRM system.
 *
 * Expected shape (paper): penalties within 2-4%; net energy savings
 * of 10-15% across benchmarks after accounting for the extended
 * execution time and extra leakage energy.
 *
 * Runs are kernel-sized: one generated workload corresponds to one
 * kernel launch.  Real kernels resynchronize the SMs at every launch
 * boundary; concatenating many iterations without that global resync
 * lets throttle-induced phase drift accumulate across SMs and
 * overstates the penalty relative to the paper's binaries.
 */

#include "bench/scenarios/scenario_util.hh"

namespace vsgpu::scen
{

namespace
{

struct Run
{
    Benchmark bench;
    bool crossLayer;
};

} // namespace

Summary
runFig14PenaltySaving(ScenarioContext &ctx)
{
    const auto &benches = allBenchmarks();

    std::vector<Run> runs;
    for (Benchmark b : benches) {
        runs.push_back({b, false});
        runs.push_back({b, true});
    }

    const auto results = exec::runSweep(
        ctx.pool, runs, /*sweepSeed=*/14,
        [&ctx](const Run &run, exec::TaskContext &) {
            CosimConfig cfg;
            cfg.pds = defaultPds(run.crossLayer
                                     ? PdsKind::VsCrossLayer
                                     : PdsKind::ConventionalVrm);
            cfg.maxCycles = ctx.cycles(250000);
            const std::string label =
                std::string(benchmarkName(run.bench)) +
                (run.crossLayer ? "/vs" : "/conv");
            return runPoint(ctx, cfg, run.bench, label);
        });

    Table table("cross-layer VS vs conventional VRM");
    table.setHeader({"benchmark", "penalty %", "net saving %",
                     "throttle rate", "trigger rate"});

    Summary summary;
    double meanPenalty = 0.0, meanSaving = 0.0;
    for (std::size_t bi = 0; bi < benches.size(); ++bi) {
        const Benchmark b = benches[bi];
        const CosimResult &rb = results[bi * 2];
        const CosimResult &rt = results[bi * 2 + 1];

        const double penalty =
            (static_cast<double>(rt.cycles) /
                 static_cast<double>(rb.cycles) -
             1.0) *
            100.0;
        // Net energy saving: wall energy for the same work, which
        // already charges the longer runtime's leakage and clocking.
        const double saving =
            (1.0 - rt.energy.wall / rb.energy.wall) * 100.0;

        table.beginRow()
            .cell(benchmarkName(b))
            .cell(penalty, 2)
            .cell(saving, 2)
            .cell(formatPercent(rt.throttleRate))
            .cell(formatPercent(rt.triggerRate))
            .endRow();
        summary.add("penalty_pct_" + std::string(benchmarkName(b)),
                    penalty, 2.0);
        summary.add("saving_pct_" + std::string(benchmarkName(b)),
                    saving, 2.5);
        meanPenalty += penalty;
        meanSaving += saving;
    }
    table.print(ctx.out);

    meanPenalty /= static_cast<double>(benches.size());
    meanSaving /= static_cast<double>(benches.size());
    ctx.out << "\n";
    claim(ctx.out, "mean performance penalty (paper: 2-4%)", 3.0,
          meanPenalty, "%");
    claim(ctx.out, "mean net energy saving (paper: 10-15%)", 12.5,
          meanSaving, "%");

    summary.add("mean_penalty_pct", meanPenalty, 1.0);
    summary.add("mean_saving_pct", meanSaving, 1.5);
    return summary;
}

} // namespace vsgpu::scen
