#include "bench/scenarios/scenarios.hh"

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>

#include "circuit/solver.hh"
#include "common/logging.hh"
#include "obs/flight_recorder.hh"
#include "obs/trace.hh"
#include "sim/stats_export.hh"

namespace vsgpu::scen
{

const std::vector<ScenarioInfo> &
allScenarios()
{
    static const std::vector<ScenarioInfo> scenarios = {
        {"table2_detectors", "voltage detector options",
         &runTable2Detectors},
        {"table3_pds_comparison",
         "comparison of power delivery subsystems (all 12 benchmarks)",
         &runTable3PdsComparison},
        {"fig12_threshold_sweep",
         "performance penalty vs controller threshold",
         &runFig12ThresholdSweep},
        {"fig13_actuator_tradeoff",
         "energy saving vs performance penalty across actuator "
         "weights",
         &runFig13ActuatorTradeoff},
        {"fig14_penalty_saving",
         "performance penalty and net energy saving per benchmark",
         &runFig14PenaltySaving},
        {"fig15_dfs", "DFS on conventional vs voltage-stacked GPU",
         &runFig15Dfs},
        {"fig16_pg",
         "power gating on conventional vs voltage-stacked GPU",
         &runFig16Pg},
        {"fig17_imbalance",
         "vertical-pair current-imbalance distribution under power "
         "management",
         &runFig17Imbalance},
    };
    return scenarios;
}

const ScenarioInfo *
findScenario(const std::string &name)
{
    for (const ScenarioInfo &s : allScenarios())
        if (name == s.name)
            return &s;
    return nullptr;
}

Summary
runScenario(const ScenarioInfo &info, const ScenarioOptions &opts,
            std::ostream &out, obs::StatsRegistry *stats,
            obs::Manifest *manifest, ScenarioTelemetry *telemetry)
{
    exec::Pool pool(opts.jobs);
    exec::SetupCache cache;
    ScenarioContext ctx{pool, cache, opts.scale, out};
    ctx.sampleEverySec = opts.sampleEverySec;

    exec::ProgressTracker progress(opts.progress);
    if (opts.progress || telemetry != nullptr)
        pool.setHooks(progress.hooks());
    if (opts.profile)
        obs::setProfiling(true);

    out << "=====================================================\n"
        << info.name << ": " << info.title << "\n"
        << "  (jobs=" << pool.threads() << ", scale=" << opts.scale
        << ")\n"
        << "=====================================================\n";

    Summary summary = info.fn(ctx);
    summary.scenario = info.name;
    summary.scale = opts.scale;

    if (opts.profile)
        obs::setProfiling(false);
    progress.finish();

    if (telemetry != nullptr) {
        if (opts.sampleEverySec > 0.0) {
            telemetry->series.sampleEverySec = opts.sampleEverySec;
            telemetry->series.dtSec = config::clockPeriod.raw();
            telemetry->series.windowCycles =
                obs::timeSeriesWindowCycles(config::clockPeriod.raw(),
                                            opts.sampleEverySec);
            for (const auto &entry : ctx.series)
                telemetry->series.runs.push_back(*entry.second);
        }
        telemetry->profile = ctx.profile;
        telemetry->taskRecords = progress.records();
    }
    if (opts.progress) {
        for (const exec::TaskRecord &t : progress.records())
            summary.taskRecords.push_back(
                SummaryTask{t.batch, t.task, t.wallMs});
    }

    if (stats != nullptr) {
        registerCounters(*stats, ctx.counters);
        registerExecStats(
            *stats, pool.tasksRun(), pool.steals(),
            static_cast<std::uint64_t>(cache.setupsBuilt()),
            static_cast<std::uint64_t>(cache.setupHits()));
    }
    if (manifest != nullptr) {
        *manifest = obs::makeManifest(info.name);
        manifest->subject = info.name;
        manifest->configFingerprint =
            obs::configFingerprint(cache.cachedKeys());
        manifest->seed = 0; // scenarios derive seeds per sweep
        manifest->scale = opts.scale;
        summary.manifest = *manifest;
    }
    return summary;
}

int
scenarioMain(const char *name, int argc, char **argv)
{
    const ScenarioInfo *info = findScenario(name);
    if (info == nullptr) {
        std::cerr << "unknown scenario: " << name << "\n";
        return 1;
    }

    ScenarioOptions opts;
    std::string jsonPath;
    std::string statsPath;
    std::string tracePath;
    std::string traceCategories;
    std::string timeseriesPath;
    std::string flightPath;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool hasValue = i + 1 < argc;
        if (arg == "--jobs" && hasValue) {
            opts.jobs = std::atoi(argv[++i]);
        } else if (arg == "--scale" && hasValue) {
            opts.scale = std::atof(argv[++i]);
        } else if (arg == "--json" && hasValue) {
            jsonPath = argv[++i];
        } else if (arg == "--stats-out" && hasValue) {
            statsPath = argv[++i];
        } else if (arg == "--trace-out" && hasValue) {
            tracePath = argv[++i];
        } else if (arg == "--trace-categories" && hasValue) {
            traceCategories = argv[++i];
        } else if (arg == "--sample-every" && hasValue) {
            opts.sampleEverySec = std::atof(argv[++i]);
        } else if (arg == "--timeseries-out" && hasValue) {
            timeseriesPath = argv[++i];
        } else if (arg == "--profile") {
            opts.profile = true;
        } else if (arg == "--progress") {
            opts.progress = true;
        } else if (arg == "--flight-out" && hasValue) {
            flightPath = argv[++i];
        } else if (arg == "--solver" && hasValue) {
            SolverKind kind;
            if (!parseSolverKind(argv[++i], kind)) {
                std::cerr << "--solver must be sparse or dense\n";
                return 1;
            }
            setDefaultSolver(kind);
        } else if (arg == "--help" || arg == "-h") {
            std::cout
                << "usage: " << argv[0]
                << " [--jobs N] [--scale X] [--json PATH]\n"
                << "       [--stats-out PATH] [--trace-out PATH]\n"
                << "       [--trace-categories LIST]\n"
                << "  --jobs N     worker threads (default: hardware "
                   "concurrency)\n"
                << "  --scale X    workload scale (default 1.0)\n"
                << "  --json PATH  write the summary metrics as "
                   "JSON\n"
                << "  --stats-out PATH  write the stats registry "
                   "dump as JSON\n"
                << "  --trace-out PATH  write a Chrome trace_event "
                   "JSON file\n"
                << "  --trace-categories LIST  comma list of phase,"
                   "pool,ctl,hv,all\n"
                << "  --sample-every SEC  windowed time-series "
                   "telemetry cadence (sim seconds)\n"
                << "  --timeseries-out PATH  write the time-series "
                   "dump as JSON\n"
                << "  --profile    stage-cost self-profiler (report "
                   "on stdout, JSON in --stats-out)\n"
                << "  --progress   live per-task progress line on "
                   "stderr\n"
                << "  --flight-out PATH  crash-dump flight recorder "
                   "JSON here\n"
                << "  --solver KIND  MNA linear solver: sparse "
                   "(default) or dense\n";
            return 0;
        } else {
            std::cerr << "unknown argument: " << arg
                      << " (try --help)\n";
            return 1;
        }
    }
    if (opts.scale <= 0.0) {
        std::cerr << "--scale must be positive\n";
        return 1;
    }

    if (!tracePath.empty())
        obs::Tracer::instance().enable(
            obs::parseTraceCategories(traceCategories));
    if (!flightPath.empty())
        obs::setFlightDumpPath(flightPath);

    setLogQuiet(true);
    obs::StatsRegistry registry;
    obs::Manifest manifest;
    ScenarioTelemetry telemetry;
    const Summary summary =
        runScenario(*info, opts, std::cout, &registry, &manifest,
                    &telemetry);

    std::cout << "\nSummary metrics:\n";
    for (const SummaryMetric &m : summary.metrics)
        std::cout << "  " << m.name << " = " << m.value << "\n";

    if (opts.profile && telemetry.profile.runs > 0) {
        registry.setProfileJson(
            obs::writeProfileJson(telemetry.profile, "  "));
        std::cout << "\n"
                  << obs::renderProfileReport(telemetry.profile);
    }

    if (!jsonPath.empty()) {
        std::ofstream out(jsonPath);
        if (!out.good()) {
            std::cerr << "cannot write " << jsonPath << "\n";
            return 1;
        }
        writeSummaryJson(summary, out);
        std::cout << "\nwrote " << jsonPath << "\n";
    }
    if (!statsPath.empty()) {
        if (!tracePath.empty()) {
            registerTraceStats(
                registry, obs::Tracer::instance().numEvents(),
                obs::Tracer::instance().droppedEvents());
        }
        std::ofstream out(statsPath);
        if (!out.good()) {
            std::cerr << "cannot write " << statsPath << "\n";
            return 1;
        }
        registry.setManifest(manifest);
        registry.dumpJson(out);
        std::cout << "wrote " << statsPath << "\n";
    }
    if (!timeseriesPath.empty()) {
        std::ofstream out(timeseriesPath);
        if (!out.good()) {
            std::cerr << "cannot write " << timeseriesPath << "\n";
            return 1;
        }
        obs::writeTimeSeriesJson(telemetry.series, out);
        std::cout << "wrote " << timeseriesPath << " ("
                  << telemetry.series.runs.size() << " runs)\n";
    }
    if (!tracePath.empty()) {
        obs::Tracer::instance().disable();
        std::ofstream out(tracePath);
        if (!out.good()) {
            std::cerr << "cannot write " << tracePath << "\n";
            return 1;
        }
        obs::Tracer::instance().writeJson(out);
        std::cout << "wrote " << tracePath << " ("
                  << obs::Tracer::instance().numEvents()
                  << " events)\n";
    }
    return 0;
}

} // namespace vsgpu::scen
