/**
 * @file
 * Shared helpers for scenario implementations.
 *
 * Mirrors bench/bench_util.hh for code that runs inside a
 * ScenarioContext: workloads scale with ctx.scale, co-simulator
 * configurations pick up the shared electrical setup from ctx.cache,
 * and claim lines print to ctx.out instead of std::cout.
 *
 * Task functions passed to exec::runSweep may call benchWorkload()
 * and runPoint() concurrently (both are thread-safe); they must not
 * write to ctx.out — printing happens in the ordered reduction.
 */

#ifndef VSGPU_BENCH_SCENARIOS_SCENARIO_UTIL_HH
#define VSGPU_BENCH_SCENARIOS_SCENARIO_UTIL_HH

#include <ostream>
#include <string>

#include "bench/scenarios/scenarios.hh"
#include "common/table.hh"
#include "sim/cosim.hh"
#include "workloads/suite.hh"

namespace vsgpu::scen
{

/** Instructions per warp used for full benchmark runs. */
inline constexpr int defaultBenchInstrs = 1500;

/** Instructions per warp for sweeps with many configurations. */
inline constexpr int sweepBenchInstrs = 700;

/** Cycle cap for a single benchmark run. */
inline constexpr Cycle defaultMaxCycles = 120000;

/** Build a benchmark workload at ctx-scaled sweep size. */
inline WorkloadSpec
benchWorkload(const ScenarioContext &ctx, Benchmark b,
              int baseInstrs = sweepBenchInstrs)
{
    return scaledToInstrs(workloadFor(b), ctx.instrs(baseInstrs));
}

/**
 * Run one benchmark against one configuration, sharing the
 * electrical setup through the scenario's cache.  Bitwise-identical
 * to building the setup privately.  @p label names the run in the
 * time-series dump (unique per scenario); the context's telemetry
 * cadence is injected here, so scenario code never has to know
 * whether sampling is on.
 */
inline CosimResult
runPoint(ScenarioContext &ctx, const CosimConfig &cfg, Benchmark b,
         const std::string &label,
         int baseInstrs = sweepBenchInstrs)
{
    CosimConfig pointCfg = cfg;
    pointCfg.sampleEvery = Seconds{ctx.sampleEverySec};
    CoSimulator sim(ctx.cache.withSetup(pointCfg));
    CosimResult result = sim.run(benchWorkload(ctx, b, baseInstrs));
    ctx.recordObs(label, result);
    return result;
}

/** Print a paper-vs-measured claim line. */
inline void
claim(std::ostream &os, const std::string &what, double paper,
      double measured, const std::string &unit = "")
{
    os << "  [claim] " << what << ": paper " << paper << unit
       << ", measured " << measured << unit << "\n";
}

} // namespace vsgpu::scen

#endif // VSGPU_BENCH_SCENARIOS_SCENARIO_UTIL_HH
