/**
 * @file
 * Paper Fig. 15: GRAPE-style DFS on the conventional GPU versus the
 * cross-layer voltage-stacked GPU, at several performance targets.
 * Energies are normalized by the conventional GPU's energy at peak
 * performance including power-delivery inefficiency.
 *
 * Expected shape (paper): the VS-aware hypervisor slightly perturbs
 * the optimal frequency settings (~1-2% computational energy), but
 * the superior PDE more than compensates — overall 7-13% lower total
 * energy than DFS on the conventional PDS.
 */

#include "bench/scenarios/scenario_util.hh"
#include "hypervisor/dfs.hh"
#include "hypervisor/vs_hypervisor.hh"

namespace vsgpu::scen
{

namespace
{

constexpr Benchmark kSet[] = {Benchmark::Heartwall, Benchmark::Srad,
                              Benchmark::Hotspot,
                              Benchmark::Scalarprod};
constexpr int kSetSize = 4;

constexpr double kTargets[] = {0.9, 0.7, 0.5};
constexpr int kNumTargets = 3;

/** One DFS run: a (configuration, performance target, benchmark). */
struct Run
{
    PdsKind kind;
    double perfTarget;
    bool useHypervisor;
    int bench; // index into kSet
};

struct DfsGroup
{
    double wallJ = 0.0;
    double loadJ = 0.0;
    Cycle cycles = 0;
};

} // namespace

Summary
runFig15Dfs(ScenarioContext &ctx)
{
    // Groups of kSetSize runs, in reduction order: the conventional
    // peak normalization, then (conventional, VS) per target.
    std::vector<Run> runs;
    const auto addGroup = [&runs](PdsKind kind, double target,
                                  bool hv) {
        for (int j = 0; j < kSetSize; ++j)
            runs.push_back({kind, target, hv, j});
    };
    addGroup(PdsKind::ConventionalVrm, 1.0, false);
    for (double target : kTargets) {
        addGroup(PdsKind::ConventionalVrm, target, false);
        addGroup(PdsKind::VsCrossLayer, target, true);
    }

    const auto results = exec::runSweep(
        ctx.pool, runs, /*sweepSeed=*/15,
        [&ctx](const Run &run, exec::TaskContext &) {
            DfsConfig dcfg;
            dcfg.perfTarget = run.perfTarget;
            DfsGovernor dfs(dcfg);
            VsAwareHypervisor hv;

            CosimConfig cfg;
            cfg.pds = defaultPds(run.kind);
            cfg.maxCycles = ctx.cycles(300000);
            cfg.sampleEvery = Seconds{ctx.sampleEverySec};
            CoSimulator sim(ctx.cache.withSetup(cfg));
            sim.attachDfs(&dfs);
            if (run.useHypervisor)
                sim.attachHypervisor(&hv);
            CosimResult r =
                sim.run(benchWorkload(ctx, kSet[run.bench]));
            const std::string label =
                std::string(pdsName(run.kind)) +
                (run.useHypervisor ? "+hv" : "") + "/target=" +
                formatFixed(run.perfTarget, 1) + "/" +
                benchmarkName(kSet[run.bench]);
            ctx.recordObs(label, r);
            return r;
        });

    const auto groupOf = [&results](int g) {
        DfsGroup out;
        for (int j = 0; j < kSetSize; ++j) {
            const CosimResult &r = results[static_cast<std::size_t>(
                g * kSetSize + j)];
            out.wallJ += r.energy.wall;
            out.loadJ += r.energy.load;
            out.cycles += r.cycles;
        }
        return out;
    };

    // Normalization: conventional at peak performance (no DFS cap).
    const DfsGroup peak = groupOf(0);

    Table table("total energy, normalized to conventional @ peak");
    table.setHeader({"perf target", "conventional+DFS", "VS+DFS",
                     "VS saving %"});
    Summary summary;
    double savingAt70 = 0.0;
    for (int t = 0; t < kNumTargets; ++t) {
        const DfsGroup conv = groupOf(1 + 2 * t);
        const DfsGroup vs = groupOf(2 + 2 * t);
        const double convNorm = conv.wallJ / peak.wallJ;
        const double vsNorm = vs.wallJ / peak.wallJ;
        const double saving = (1.0 - vsNorm / convNorm) * 100.0;
        table.beginRow()
            .cell(formatPercent(kTargets[t], 0))
            .cell(convNorm, 3)
            .cell(vsNorm, 3)
            .cell(saving, 1)
            .endRow();
        const std::string stem =
            "target_" + formatFixed(kTargets[t], 1);
        summary.add(stem + "_conv_norm", convNorm, 0.05);
        summary.add(stem + "_vs_norm", vsNorm, 0.05);
        if (kTargets[t] == 0.7)
            savingAt70 = saving;
    }
    table.print(ctx.out);

    ctx.out << "\n";
    claim(ctx.out, "VS energy saving under DFS (paper: 7-13%)", 10.0,
          savingAt70, "%");
    summary.add("saving_pct_at_target_0.7", savingAt70, 3.0);
    return summary;
}

} // namespace vsgpu::scen
