/**
 * @file
 * Paper Fig. 13: the energy-saving / performance-penalty trade-off
 * space spanned by the weighted actuation split (eq. (9)) across
 * DIWS, FII, and DCC.
 *
 * Expected shape (paper): DIWS sits at the high-saving end of the
 * Pareto frontier while FII and DCC deliver lower performance
 * penalties; DCC is dominated by FII where FII has slack (extra
 * leakage and area).  In this reproduction FII's saving edges out
 * DIWS because our fake instructions are only injected during the
 * rare droop windows (cheap), while DIWS's throttling extends
 * runtime; the penalty ordering — the frontier's shape — matches.
 */

#include "bench/scenarios/scenario_util.hh"

namespace vsgpu::scen
{

namespace
{

struct WeightPoint
{
    const char *label;
    const char *id; // metric-name stem
    double w1, w2, w3;
};

constexpr WeightPoint kPoints[] = {
    {"DIWS", "diws", 1.0, 0.0, 0.0},
    {"FII", "fii", 0.0, 1.0, 0.0},
    {"DCC", "dcc", 0.0, 0.0, 1.0},
    {"0.8 DIWS + 0.2 FII", "diws08_fii02", 0.8, 0.2, 0.0},
    {"0.8 DIWS + 0.2 DCC", "diws08_dcc02", 0.8, 0.0, 0.2},
    {"0.5 DIWS + 0.5 FII", "diws05_fii05", 0.5, 0.5, 0.0},
    {"0.4 DIWS + 0.4 FII + 0.2 DCC", "diws04_fii04_dcc02", 0.4, 0.4,
     0.2},
};
constexpr int kNumPoints = 7;

// Benchmarks with actuation-sensitive structure.
constexpr Benchmark kSet[] = {Benchmark::Hotspot, Benchmark::Backprop,
                              Benchmark::Fastwalsh};
constexpr int kSetSize = 3;

/** One run: a conventional baseline or one (weights, benchmark). */
struct Run
{
    int weight; // -1 = conventional-VRM baseline
    int bench;  // index into kSet
};

struct Outcome
{
    double penaltyPct;
    double netSavingPct;
};

} // namespace

Summary
runFig13ActuatorTradeoff(ScenarioContext &ctx)
{
    // The serial binary re-ran the three conventional baselines for
    // every weight point; they are deterministic, so run them once
    // and reuse the results for every point's normalization.
    std::vector<Run> runs;
    for (int j = 0; j < kSetSize; ++j)
        runs.push_back({-1, j});
    for (int w = 0; w < kNumPoints; ++w)
        for (int j = 0; j < kSetSize; ++j)
            runs.push_back({w, j});

    const auto results = exec::runSweep(
        ctx.pool, runs, /*sweepSeed=*/13,
        [&ctx](const Run &run, exec::TaskContext &) {
            CosimConfig cfg;
            if (run.weight < 0) {
                cfg.pds = defaultPds(PdsKind::ConventionalVrm);
            } else {
                const WeightPoint &w = kPoints[run.weight];
                cfg.pds = defaultPds(PdsKind::VsCrossLayer);
                cfg.pds.controller.w1 = w.w1;
                cfg.pds.controller.w2 = w.w2;
                cfg.pds.controller.w3 = w.w3;
            }
            cfg.maxCycles = ctx.cycles(200000);
            const std::string label =
                std::string(benchmarkName(kSet[run.bench])) +
                (run.weight < 0
                     ? "/conv"
                     : "/w" + std::to_string(run.weight));
            return runPoint(ctx, cfg, kSet[run.bench], label);
        });

    const auto outcomeOf = [&results](int w) {
        double cyclesBase = 0.0, cyclesTest = 0.0;
        double wallBase = 0.0, wallTest = 0.0;
        for (int j = 0; j < kSetSize; ++j) {
            const CosimResult &rb =
                results[static_cast<std::size_t>(j)];
            const CosimResult &rt = results[static_cast<std::size_t>(
                kSetSize + w * kSetSize + j)];
            cyclesBase += static_cast<double>(rb.cycles);
            cyclesTest += static_cast<double>(rt.cycles);
            wallBase += rb.energy.wall;
            wallTest += rt.energy.wall;
        }
        Outcome o;
        o.penaltyPct = (cyclesTest / cyclesBase - 1.0) * 100.0;
        o.netSavingPct = (1.0 - wallTest / wallBase) * 100.0;
        return o;
    };

    Table table("trade-off space (vs conventional VRM baseline)");
    table.setHeader({"weights", "perf penalty %", "net saving %"});
    Summary summary;
    Outcome diws{}, fii{};
    for (int w = 0; w < kNumPoints; ++w) {
        const Outcome o = outcomeOf(w);
        table.beginRow()
            .cell(kPoints[w].label)
            .cell(o.penaltyPct, 2)
            .cell(o.netSavingPct, 2)
            .endRow();
        summary.add(std::string("penalty_pct_") + kPoints[w].id,
                    o.penaltyPct, 1.5);
        summary.add(std::string("saving_pct_") + kPoints[w].id,
                    o.netSavingPct, 1.5);
        if (w == 0)
            diws = o;
        if (w == 1)
            fii = o;
    }
    table.print(ctx.out);

    ctx.out << "\nPareto expectations (paper):\n"
            << "  - DIWS sits at the high-saving end\n"
            << "  - FII/DCC trade saving for a lower penalty\n";
    claim(ctx.out, "FII penalty below DIWS penalty (sign)", 1.0,
          fii.penaltyPct <= diws.penaltyPct + 0.5 ? 1.0 : 0.0, "");
    claim(ctx.out, "both DIWS and FII land in the 10-15% saving band",
          1.0,
          (diws.netSavingPct > 9.0 && fii.netSavingPct > 9.0) ? 1.0
                                                              : 0.0,
          "");
    return summary;
}

} // namespace vsgpu::scen
