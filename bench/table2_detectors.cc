/**
 * @file
 * Thin frontend for the table2_detectors scenario (paper Table II);
 * implementation in bench/scenarios/scenario_table2.cc.  Supports
 * --jobs / --scale / --json (see scenarioMain()).
 */

#include "bench/scenarios/scenarios.hh"

int
main(int argc, char **argv)
{
    return vsgpu::scen::scenarioMain("table2_detectors", argc, argv);
}
