/**
 * @file
 * Regenerates paper Table II: voltage detector options, plus a
 * behavioural demonstration of each detector tracking a droop event
 * through the 50 MHz front-end filter.
 */

#include <cmath>

#include "bench/bench_util.hh"
#include "control/detector.hh"

using namespace vsgpu;

int
main()
{
    bench::banner("Table II", "voltage detector options");

    Table table("detector implementations");
    table.setHeader({"sensor", "latency_cycles", "power_mW",
                     "resolution_mV", "output"});
    const struct
    {
        DetectorKind kind;
        const char *name;
        const char *output;
    } rows[] = {
        {DetectorKind::Oddd, "ODDD", "detect indicator"},
        {DetectorKind::Cpm, "CPM", "timing variation"},
        {DetectorKind::Adc, "ADC", "N-bit digital"},
    };
    for (const auto &row : rows) {
        const DetectorSpec spec = detectorSpec(row.kind);
        table.beginRow()
            .cell(row.name)
            .cell(static_cast<long long>(spec.latency))
            .cell(spec.powerWatts * 1e3, 1)
            .cell(spec.resolutionVolts * 1e3, 1)
            .cell(row.output)
            .endRow();
    }
    table.print(std::cout);

    // Behavioural check: a 100 mV droop step seen through each
    // detector (settling time and resolved value).
    std::cout << "\nDroop-step response (1.00 V -> 0.90 V):\n";
    Table resp("step response");
    resp.setHeader({"sensor", "cycles_to_resolve", "resolved_V"});
    for (const auto &row : rows) {
        VoltageDetector det(detectorSpec(row.kind));
        for (int i = 0; i < 200; ++i)
            det.sample(1.0);
        int cycles = 0;
        double out = 1.0;
        for (; cycles < 500; ++cycles) {
            out = det.sample(0.90);
            if (std::abs(out - 0.90) <=
                detectorSpec(row.kind).resolutionVolts)
                break;
        }
        resp.beginRow()
            .cell(row.name)
            .cell(static_cast<long long>(cycles))
            .cell(out, 4)
            .endRow();
    }
    resp.print(std::cout);
    return 0;
}
