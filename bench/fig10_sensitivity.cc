/**
 * @file
 * Regenerates paper Fig. 10: worst-case voltage droop as a function
 * of (a) CR-IVR area budget for several control latencies and (b)
 * control latency for several area budgets.
 *
 * Expected shape (paper): with latency > ~80 cycles the worst droop
 * becomes highly sensitive to area; with area < ~0.8x it becomes
 * highly sensitive to latency; the paper picks 0.2x + 60 cycles.
 */

#include "bench/bench_util.hh"

using namespace vsgpu;

namespace
{

double
worstVoltage(double areaFraction, Cycle latency)
{
    CosimConfig cfg;
    cfg.pds = defaultPds(PdsKind::VsCrossLayer);
    cfg.pds.ivrAreaFraction = areaFraction;
    cfg.pds.controller.loopLatency = latency;
    cfg.maxCycles = 4200;
    cfg.gateLayerAtSec = 2.0_us;
    CoSimulator sim(cfg);
    return sim.run(WorkloadFactory(uniformWorkload(9000)), 0.9)
        .minVoltage;
}

} // namespace

int
main()
{
    setLogQuiet(true);
    bench::banner("Fig. 10", "worst droop vs CR-IVR area and "
                             "control latency");

    const double areas[] = {0.2, 0.4, 0.8, 1.2, 1.6, 2.0};
    const Cycle latencies[] = {60, 80, 120, 140};

    Table a("Fig. 10(a): worst voltage vs area (per latency)");
    {
        std::vector<std::string> header = {"area_xGPU"};
        for (Cycle l : latencies)
            header.push_back("lat=" + std::to_string(l) + "cy");
        a.setHeader(header);
        for (double area : areas) {
            auto &row = a.beginRow().cell(area, 2);
            for (Cycle l : latencies)
                row.cell(worstVoltage(area, l), 3);
            row.endRow();
        }
    }
    a.print(std::cout);
    std::cout << "\n";

    const Cycle latSweep[] = {30, 60, 90, 120, 150};
    const double areaSweep[] = {2.0, 0.8, 0.4, 0.2};
    Table b("Fig. 10(b): worst voltage vs latency (per area)");
    {
        std::vector<std::string> header = {"latency_cycles"};
        for (double area : areaSweep)
            header.push_back(formatFixed(area, 1) + "x area");
        b.setHeader(header);
        for (Cycle l : latSweep) {
            auto &row = b.beginRow().cell(static_cast<long long>(l));
            for (double area : areaSweep)
                row.cell(worstVoltage(area, l), 3);
            row.endRow();
        }
    }
    b.print(std::cout);

    std::cout << "\nChosen operating point (paper): 0.2x area, "
                 "60-cycle latency -> worst voltage "
              << formatFixed(worstVoltage(0.2, 60), 3) << " V\n";
    std::cout
        << "\nNote: the area sensitivity reproduces the paper's "
           "knee (droop becomes\nacceptable above ~0.4-0.8x area).  "
           "Latency sensitivity is muted here because\nthe modeled "
           "worst-case event is a step whose uncontrolled droop does "
           "not\ndeepen while the loop is in flight; the paper's "
           "event appears to accumulate\ncharge loss during the "
           "control latency, which our linearized PDN settles\n"
           "faster than one loop period.\n";
    return 0;
}
