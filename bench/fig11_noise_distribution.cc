/**
 * @file
 * Regenerates paper Fig. 11: supply-noise distribution (box summary
 * over all 16 SM rails) for every benchmark plus the synthetic worst
 * case, comparing the circuit-only and cross-layer solutions at the
 * same 0.2x CR-IVR area.
 *
 * Expected shape (paper): most benchmarks see a modest noise
 * reduction from smoothing; a few outliers widen slightly but stay
 * bounded; only the cross-layer solution keeps the worst case above
 * the 0.8 V margin... (the worst-case box collapses for circuit-only).
 */

#include "bench/bench_util.hh"

using namespace vsgpu;

namespace
{

/** Pool all 16 SM box stats into one (approximate) summary row. */
void
addRow(Table &table, const std::string &name, const CosimResult &r)
{
    double minV = 1e9, maxV = -1e9, q1 = 0.0, med = 0.0, q3 = 0.0;
    for (const auto &b : r.smNoise) {
        minV = std::min(minV, b.min);
        maxV = std::max(maxV, b.max);
        q1 += b.q1;
        med += b.median;
        q3 += b.q3;
    }
    q1 /= config::numSMs;
    med /= config::numSMs;
    q3 /= config::numSMs;
    table.beginRow()
        .cell(name)
        .cell(minV, 3)
        .cell(q1, 3)
        .cell(med, 3)
        .cell(q3, 3)
        .cell(maxV, 3)
        .endRow();
}

CosimResult
run(PdsKind kind, const WorkloadSpec &wl, bool worstCase)
{
    CosimConfig cfg;
    cfg.pds = defaultPds(kind);
    cfg.pds.ivrAreaFraction = 0.2; // both at the SAME small area
    cfg.maxCycles = worstCase ? 6000 : 60000;
    if (worstCase) {
        cfg.gateLayerAtSec = 2.0_us;
        cfg.traceStride = 50;
    }
    CoSimulator sim(cfg);
    return sim.run(wl);
}

} // namespace

int
main()
{
    setLogQuiet(true);
    bench::banner("Fig. 11", "noise distribution across benchmarks "
                             "and the worst case (0.2x CR-IVR)");

    for (PdsKind kind :
         {PdsKind::VsCircuitOnly, PdsKind::VsCrossLayer}) {
        Table table(std::string("voltage boxes: ") + pdsName(kind));
        table.setHeader({"benchmark", "min", "q1", "median", "q3",
                         "max"});
        for (Benchmark b : allBenchmarks()) {
            const CosimResult r =
                run(kind, bench::benchWorkload(
                              b, bench::sweepBenchInstrs),
                    false);
            addRow(table, benchmarkName(b), r);
        }
        addRow(table, "worst-case",
               run(kind, uniformWorkload(9000), true));
        table.print(std::cout);
        std::cout << "\n";
    }

    const CosimResult worstBare =
        run(PdsKind::VsCircuitOnly, uniformWorkload(9000), true);
    const CosimResult worstSmooth =
        run(PdsKind::VsCrossLayer, uniformWorkload(9000), true);
    // The relevant guarantee is the settled (post-recovery) floor;
    // the controller needs one loop latency to engage, so a brief
    // transient dip precedes it (visible in Fig. 9's waveforms too).
    const auto settledFloor = [](const CosimResult &r) {
        double floor = 1e9;
        const std::size_t n = r.trace.size();
        for (std::size_t i = n > 20 ? n - 20 : 0; i < n; ++i)
            floor = std::min(floor, r.trace[i].minSmVolts.raw());
        return floor;
    };
    bench::claim("worst-case settled floor, circuit-only 0.2x "
                 "(fails)",
                 0.35, settledFloor(worstBare), " V");
    bench::claim("worst-case settled floor, cross-layer 0.2x "
                 "(holds)",
                 0.8, settledFloor(worstSmooth), " V");
    return 0;
}
