/**
 * @file
 * Design-space ablation: proportional vs proportional-integral
 * voltage smoothing.
 *
 * The paper uses a proportional controller "as an illustrative
 * example".  This ablation adds an integral path (with anti-windup)
 * and measures whether it helps.  Finding: it does not — under the
 * worst-case sustained imbalance the DIWS actuator already saturates
 * (issue width driven to zero by the proportional term alone), so
 * integral action cannot deepen the correction; the wound-up
 * integrator only slows release and adds a small limit-cycle ripple.
 * The worst-case floor is set by the actuation range, not by the
 * control law — supporting the paper's choice of plain P control.
 */

#include "bench/bench_util.hh"

using namespace vsgpu;

namespace
{

struct Outcome
{
    double worstFloor = 0.0;   ///< settled min V, halted-layer test
    double benchMinV = 0.0;    ///< min V on a real benchmark
    double throttleRate = 0.0; ///< benchmark throttle fraction
    Cycle benchCycles = 0;
};

Outcome
evaluate(double kP, double kI)
{
    Outcome out;
    {
        CosimConfig cfg;
        cfg.pds = defaultPds(PdsKind::VsCrossLayer);
        cfg.pds.controller.gainWattsPerVolt = WattsPerVolt{kP};
        cfg.pds.controller.integralGainWattsPerVolt = WattsPerVolt{kI};
        cfg.maxCycles = 6000;
        cfg.gateLayerAtSec = 2.0_us;
        cfg.traceStride = 50;
        const CosimResult r = CoSimulator(cfg).run(
            WorkloadFactory(uniformWorkload(10000)), 0.9);
        double floor = 1e9;
        const std::size_t n = r.trace.size();
        for (std::size_t i = n > 20 ? n - 20 : 0; i < n; ++i)
            floor = std::min(floor, r.trace[i].minSmVolts.raw());
        out.worstFloor = floor;
    }
    {
        CosimConfig cfg;
        cfg.pds = defaultPds(PdsKind::VsCrossLayer);
        cfg.pds.controller.gainWattsPerVolt = WattsPerVolt{kP};
        cfg.pds.controller.integralGainWattsPerVolt = WattsPerVolt{kI};
        cfg.maxCycles = 150000;
        const CosimResult r = CoSimulator(cfg).run(
            bench::benchWorkload(Benchmark::Hotspot,
                                 bench::sweepBenchInstrs));
        out.benchMinV = r.minVoltage;
        out.throttleRate = r.throttleRate;
        out.benchCycles = r.cycles;
    }
    return out;
}

} // namespace

int
main()
{
    setLogQuiet(true);
    bench::banner("ablation: P vs PI smoothing",
                  "integral action against sustained imbalance");

    Table table("controller variants");
    table.setHeader({"kP (W/V)", "kI (W/V/period)", "worst floor V",
                     "hotspot min V", "throttle", "cycles"});
    Outcome pOnly{}, pi{};
    const struct
    {
        double kP, kI;
    } variants[] = {
        {12.0, 0.0},  // the paper's proportional controller
        {12.0, 0.5},  // mild integral action
        {12.0, 2.0},  // strong integral action
        {6.0, 1.0},   // weaker P, integral carries steady state
    };
    for (const auto &v : variants) {
        const Outcome o = evaluate(v.kP, v.kI);
        table.beginRow()
            .cell(v.kP, 1)
            .cell(v.kI, 1)
            .cell(o.worstFloor, 3)
            .cell(o.benchMinV, 3)
            .cell(formatPercent(o.throttleRate))
            .cell(static_cast<long long>(o.benchCycles))
            .endRow();
        if (v.kP == 12.0 && v.kI == 0.0)
            pOnly = o;
        if (v.kP == 12.0 && v.kI == 2.0)
            pi = o;
    }
    table.print(std::cout);

    std::cout << "\n";
    bench::claim(
        "PI does not improve the saturated worst case (floors within "
        "0.06 V)",
        1.0,
        std::abs(pi.worstFloor - pOnly.worstFloor) < 0.06 ? 1.0 : 0.0,
        "");
    std::cout
        << "Reading: with the actuator saturated, integral action "
           "cannot deepen the\ncorrection; it only adds windup "
           "ripple.  The worst-case floor is an actuation-\nrange "
           "property, which supports the paper's plain proportional "
           "design.\n";
    return 0;
}
