/**
 * @file
 * Unit tests for the GPUWattch-style SM power model.
 */

#include <gtest/gtest.h>

#include "gpu/memory.hh"
#include "power/power_model.hh"

namespace vsgpu
{
namespace
{

SmCycleEvents
eventsWith(OpClass op, int count, int lanesEach = 32)
{
    SmCycleEvents ev;
    ev.issued[static_cast<std::size_t>(op)] = count;
    ev.lanesActive = count * lanesEach;
    ev.active = true;
    ev.clocked = true;
    return ev;
}

class PowerModelTest : public ::testing::Test
{
  protected:
    MemorySystem mem_;
    SmPowerModel model_;
};

TEST_F(PowerModelTest, IdleCycleHasNoDynamicEnergy)
{
    SmCycleEvents idle;
    EXPECT_DOUBLE_EQ(model_.dynamicEnergy(idle).raw(), 0.0);
}

TEST_F(PowerModelTest, EnergyScalesWithIssueCount)
{
    const Joules one =
        model_.dynamicEnergy(eventsWith(OpClass::FpAlu, 1));
    const Joules two =
        model_.dynamicEnergy(eventsWith(OpClass::FpAlu, 2));
    EXPECT_NEAR(two.raw(), 2.0 * one.raw(), 1e-15);
}

TEST_F(PowerModelTest, SfuCostsMoreThanIntAlu)
{
    EXPECT_GT(model_.dynamicEnergy(eventsWith(OpClass::Sfu, 1)),
              model_.dynamicEnergy(eventsWith(OpClass::IntAlu, 1)));
}

TEST_F(PowerModelTest, DivergenceReducesEnergy)
{
    const Joules full =
        model_.dynamicEnergy(eventsWith(OpClass::FpAlu, 1, 32));
    const Joules quarter =
        model_.dynamicEnergy(eventsWith(OpClass::FpAlu, 1, 8));
    EXPECT_LT(quarter, full);
    // Only the lane-dependent fraction scales.
    EXPECT_GT(quarter, full * (1.0 - model_.params().laneFraction));
}

TEST_F(PowerModelTest, FakeInstructionsCostEnergy)
{
    SmCycleEvents ev;
    ev.fakeIssued = 3;
    EXPECT_NEAR(model_.dynamicEnergy(ev).raw(),
                3.0 * model_.params().fakeEnergy.raw(), 1e-15);
}

TEST_F(PowerModelTest, LeakageDropsWhenUnitsGate)
{
    Sm sm(0, SmConfig{}, mem_);
    const Watts before = model_.leakagePower(sm, 100);
    sm.requestGate(ExecUnitKind::Sfu, 100);
    const Watts after = model_.leakagePower(sm, 101);
    EXPECT_NEAR((before - after).raw(),
                model_.params()
                    .unitLeakage[static_cast<std::size_t>(
                        ExecUnitKind::Sfu)]
                    .raw(),
                1e-12);
}

TEST_F(PowerModelTest, BaseLeakageNeverGates)
{
    Sm sm(0, SmConfig{}, mem_);
    for (int u = 0; u < numExecUnits; ++u)
        sm.requestGate(static_cast<ExecUnitKind>(u), 10);
    EXPECT_NEAR(model_.leakagePower(sm, 11).raw(),
                model_.params().baseLeakage.raw(), 1e-12);
}

TEST_F(PowerModelTest, ClockPowerOnlyWhenActiveAndClocked)
{
    Sm sm(0, SmConfig{}, mem_);
    SmCycleEvents idleUnclocked;
    idleUnclocked.active = true;
    idleUnclocked.clocked = false;
    SmCycleEvents idleClocked;
    idleClocked.active = true;
    idleClocked.clocked = true;
    const double unclocked =
        model_.cyclePower(idleUnclocked, sm, 0).raw();
    const double clocked =
        model_.cyclePower(idleClocked, sm, 0).raw();
    EXPECT_NEAR(clocked - unclocked, model_.params().clockPower.raw(),
                1e-12);
}

TEST_F(PowerModelTest, CyclePowerInPlausibleRange)
{
    Sm sm(0, SmConfig{}, mem_);
    // Peak-ish cycle: two FP issues.
    const Watts peak =
        model_.cyclePower(eventsWith(OpClass::FpAlu, 2), sm, 0);
    EXPECT_GT(peak, 5.0_W);
    EXPECT_LT(peak, 20.0_W);
    EXPECT_LE(peak, model_.peakPower() + Watts{1e-9});
}

TEST_F(PowerModelTest, PeakPowerNearFermiClass)
{
    // An SM should peak in the high single digits to low teens of
    // watts (paper Table I class machine).
    EXPECT_GT(model_.peakPower(), 6.0_W);
    EXPECT_LT(model_.peakPower(), 16.0_W);
}

TEST_F(PowerModelTest, TotalIssuedHelper)
{
    SmCycleEvents ev = eventsWith(OpClass::IntAlu, 1);
    ev.issued[static_cast<std::size_t>(OpClass::Load)] = 1;
    EXPECT_EQ(ev.totalIssued(), 2);
}

} // namespace
} // namespace vsgpu
