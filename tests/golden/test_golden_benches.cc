/**
 * @file
 * Golden-trace regression tests over the bench scenarios.
 *
 * Each registered scenario (bench/scenarios/) is replayed at the
 * recorded golden scale and its Summary metrics are compared against
 * tests/golden/<scenario>.json within the tolerances stored there.
 * On one machine replays are bitwise-identical, so any in-tolerance
 * slack only covers cross-platform floating-point differences; a
 * metric drifting past its tolerance means a behavioural change in
 * the simulator — either a regression, or an intentional change that
 * requires re-recording:
 *
 *     build/tools/record_golden
 *
 * and reviewing the resulting JSON diff like any other code change.
 */

#include <cmath>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "bench/scenarios/scenarios.hh"
#include "circuit/solver.hh"

namespace vsgpu
{
namespace
{

class GoldenBench
    : public ::testing::TestWithParam<const scen::ScenarioInfo *>
{
};

std::string
goldenPath(const std::string &scenario)
{
    return std::string(VSGPU_GOLDEN_DIR) + "/" + scenario + ".json";
}

TEST_P(GoldenBench, MatchesRecordedSummary)
{
    const scen::ScenarioInfo &info = *GetParam();

    // The goldens were recorded on the sparse default; replaying
    // them on another backend would silently weaken the check (the
    // backends are bitwise-identical by contract, but that contract
    // is what the differential suite — not this one — establishes).
    ASSERT_EQ(defaultSolver(), SolverKind::Sparse)
        << "golden replay must run on the default sparse solver";

    const std::string path = goldenPath(info.name);
    std::ifstream in(path);
    ASSERT_TRUE(in.good())
        << "missing golden summary " << path
        << " — record it with: build/tools/record_golden "
        << info.name;
    const scen::Summary golden = scen::readSummaryJson(in);
    ASSERT_EQ(golden.scenario, info.name);

    scen::ScenarioOptions opts;
    opts.scale = golden.scale; // compare like with like
    std::ostringstream tables; // rendered but unchecked
    const scen::Summary fresh =
        scen::runScenario(info, opts, tables);

    EXPECT_EQ(golden.metrics.size(), fresh.metrics.size())
        << "metric set changed — re-record the goldens";
    for (const scen::SummaryMetric &want : golden.metrics) {
        const scen::SummaryMetric *got = fresh.find(want.name);
        ASSERT_NE(got, nullptr)
            << "metric " << want.name
            << " disappeared — re-record the goldens";
        EXPECT_LE(std::abs(got->value - want.value), want.tol)
            << info.name << "/" << want.name << ": recorded "
            << want.value << " (tol " << want.tol << "), measured "
            << got->value;
    }
}

std::vector<const scen::ScenarioInfo *>
scenarioPointers()
{
    std::vector<const scen::ScenarioInfo *> out;
    for (const scen::ScenarioInfo &s : scen::allScenarios())
        out.push_back(&s);
    return out;
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, GoldenBench,
    ::testing::ValuesIn(scenarioPointers()),
    [](const ::testing::TestParamInfo<const scen::ScenarioInfo *>
           &info) { return std::string(info.param->name); });

} // namespace
} // namespace vsgpu
