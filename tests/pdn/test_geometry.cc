/**
 * @file
 * Tests for generalized stacking geometries (the design-space
 * extension beyond the paper's fixed 4x4 arrangement).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hh"
#include "pdn/impedance.hh"
#include "pdn/vs_pdn.hh"

namespace vsgpu
{
namespace
{

VsPdnOptions
geometry(int layers, int columns)
{
    VsPdnOptions options;
    options.numLayers = layers;
    options.numColumns = columns;
    options.supplyVolts = static_cast<double>(layers) * 1.025_V;
    return options;
}

TEST(VsGeometry, DefaultMatchesPaperConfig)
{
    VsPdn pdn;
    EXPECT_EQ(pdn.layers(), 4);
    EXPECT_EQ(pdn.columns(), 4);
    EXPECT_EQ(pdn.numSms(), 16);
}

TEST(VsGeometry, InstanceMappingConsistent)
{
    VsPdn pdn(geometry(2, 8));
    EXPECT_EQ(pdn.numSms(), 16);
    for (int layer = 0; layer < 2; ++layer) {
        for (int col = 0; col < 8; ++col) {
            const int sm = pdn.smIndexAt(layer, col);
            EXPECT_EQ(pdn.layerOf(sm), layer);
            EXPECT_EQ(pdn.columnOf(sm), col);
        }
    }
}

TEST(VsGeometry, AdjacentLayersShareBoundaries)
{
    VsPdn pdn(geometry(8, 2));
    for (int col = 0; col < 2; ++col)
        for (int layer = 0; layer + 1 < 8; ++layer)
            EXPECT_EQ(pdn.smBottomNode(pdn.smIndexAt(layer, col)),
                      pdn.smTopNode(pdn.smIndexAt(layer + 1, col)));
}

TEST(VsGeometry, NominalLayerVoltageScalesWithDepth)
{
    VsPdn two(geometry(2, 8));
    VsPdn eight(geometry(8, 2));
    EXPECT_NEAR(two.nominalLayerVolts().raw(), 1.025, 1e-9);
    EXPECT_NEAR(eight.nominalLayerVolts().raw(), 1.025, 1e-9);
}

TEST(VsGeometry, DcDividesEvenlyForAllGeometries)
{
    for (const auto &[layers, columns] :
         {std::pair{2, 8}, std::pair{4, 4}, std::pair{8, 2}}) {
        VsPdn pdn(geometry(layers, columns));
        TransientSim sim(pdn.netlist(), config::clockPeriod.raw());
        for (int sm = 0; sm < pdn.numSms(); ++sm)
            sim.setCurrent(pdn.smCurrentSource(sm), 5.0);
        sim.initToDc();
        for (int sm = 0; sm < pdn.numSms(); ++sm)
            EXPECT_NEAR(pdn.smVoltage(sim, sm).raw(), 1.025, 0.06)
                << layers << "x" << columns << " sm " << sm;
    }
}

TEST(VsGeometry, SupplyCurrentScalesInverselyWithDepth)
{
    const auto supplyAmps = [](int layers, int columns) {
        VsPdn pdn(geometry(layers, columns));
        TransientSim sim(pdn.netlist(), config::clockPeriod.raw());
        for (int sm = 0; sm < pdn.numSms(); ++sm)
            sim.setCurrent(pdn.smCurrentSource(sm), 6.0);
        sim.initToDc();
        for (int i = 0; i < 1500; ++i)
            sim.step();
        return sim.sourceCurrent(pdn.supplySource());
    };
    const double two = supplyAmps(2, 8);
    const double eight = supplyAmps(8, 2);
    EXPECT_NEAR(two / eight, 4.0, 0.3);
}

TEST(VsGeometry, ResidualImpedanceGrowsWithDepth)
{
    VsPdn shallow(geometry(2, 8));
    VsPdn deep(geometry(8, 2));
    ImpedanceAnalyzer sa(shallow), da(deep);
    EXPECT_GT(da.residualImpedance(1.0_MHz, true),
              sa.residualImpedance(1.0_MHz, true));
}

TEST(VsGeometry, EqualizerCountMatchesGeometry)
{
    VsPdnOptions options = geometry(8, 2);
    options.crIvrEffOhms = 0.1_Ohm;
    VsPdn pdn(options);
    // One cell per adjacent layer pair per column: 7 x 2.
    EXPECT_EQ(pdn.equalizerIndices().size(), 14u);
}

TEST(VsGeometryDeath, RejectsDegenerateStacks)
{
    setLogQuiet(true);
    VsPdnOptions flat;
    flat.numLayers = 1;
    flat.numColumns = 16;
    EXPECT_DEATH(VsPdn{flat}, "");
}

} // namespace
} // namespace vsgpu
