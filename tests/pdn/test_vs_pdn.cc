/**
 * @file
 * Unit tests for the 4x4 voltage-stacked PDN model.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hh"
#include "pdn/vs_pdn.hh"

namespace vsgpu
{
namespace
{

TEST(VsPdn, SmLayerColumnMapping)
{
    // Paper convention: SM0-3 occupy the top domain (VDD..3/4 VDD).
    EXPECT_EQ(VsPdn::smLayer(0), 0);
    EXPECT_EQ(VsPdn::smLayer(3), 0);
    EXPECT_EQ(VsPdn::smLayer(4), 1);
    EXPECT_EQ(VsPdn::smLayer(15), 3);
    EXPECT_EQ(VsPdn::smColumn(0), 0);
    EXPECT_EQ(VsPdn::smColumn(5), 1);
    EXPECT_EQ(VsPdn::smColumn(15), 3);
    for (int layer = 0; layer < config::numLayers; ++layer)
        for (int col = 0; col < config::smsPerLayer; ++col) {
            const int sm = VsPdn::smAt(layer, col);
            EXPECT_EQ(VsPdn::smLayer(sm), layer);
            EXPECT_EQ(VsPdn::smColumn(sm), col);
        }
}

TEST(VsPdn, TopLayerTouchesVddRail)
{
    VsPdn pdn;
    for (int col = 0; col < config::smsPerLayer; ++col) {
        EXPECT_EQ(pdn.smTopNode(VsPdn::smAt(0, col)),
                  pdn.boundaryNode(config::numLayers, col));
        EXPECT_EQ(pdn.smBottomNode(VsPdn::smAt(3, col)),
                  pdn.boundaryNode(0, col));
    }
}

TEST(VsPdn, AdjacentLayersShareBoundary)
{
    VsPdn pdn;
    for (int col = 0; col < config::smsPerLayer; ++col)
        for (int layer = 0; layer + 1 < config::numLayers; ++layer)
            EXPECT_EQ(pdn.smBottomNode(VsPdn::smAt(layer, col)),
                      pdn.smTopNode(VsPdn::smAt(layer + 1, col)));
}

TEST(VsPdn, NominalLayerVoltage)
{
    VsPdn pdn;
    EXPECT_NEAR(pdn.nominalLayerVolts().raw(),
                config::pcbVoltage.raw() / 4.0, 1e-12);
}

TEST(VsPdn, EqualizersOnlyWithCrIvr)
{
    VsPdn bare;
    EXPECT_TRUE(bare.equalizerIndices().empty());
    VsPdnOptions options;
    options.crIvrEffOhms = 0.1_Ohm;
    VsPdn reg(options);
    // 3 adjacent-layer cells per column x 4 columns.
    EXPECT_EQ(reg.equalizerIndices().size(), 12u);
}

TEST(VsPdn, LoadResistorsPresentByDefault)
{
    VsPdn pdn;
    EXPECT_EQ(pdn.loadResistorIndices().size(),
              static_cast<std::size_t>(config::numSMs));
    VsPdnOptions options;
    options.includeLoadResistors = false;
    VsPdn bare(options);
    EXPECT_TRUE(bare.loadResistorIndices().empty());
}

TEST(VsPdn, DcOperatingPointDividesEvenly)
{
    VsPdn pdn;
    TransientSim sim(pdn.netlist(), config::clockPeriod.raw());
    // Balanced nominal loads via the source-current setpoints.
    const double amps = 5.0;
    for (int sm = 0; sm < config::numSMs; ++sm)
        sim.setCurrent(pdn.smCurrentSource(sm), amps);
    sim.initToDc();
    for (int sm = 0; sm < config::numSMs; ++sm) {
        const Volts v = pdn.smVoltage(sim, sm);
        EXPECT_NEAR(v.raw(), pdn.nominalLayerVolts().raw(), 0.05)
            << "sm " << sm;
    }
}

TEST(VsPdn, BalancedTransientStaysQuiet)
{
    VsPdn pdn;
    TransientSim sim(pdn.netlist(), config::clockPeriod.raw());
    for (int sm = 0; sm < config::numSMs; ++sm)
        sim.setCurrent(pdn.smCurrentSource(sm), 5.0);
    sim.initToDc();
    for (int i = 0; i < 3000; ++i)
        sim.step();
    for (int sm = 0; sm < config::numSMs; ++sm)
        EXPECT_NEAR(pdn.smVoltage(sim, sm).raw(),
                    pdn.nominalLayerVolts().raw(), 0.05);
}

TEST(VsPdn, ImbalanceDisturbsOnlyWithoutRegulation)
{
    // One layer draws extra; the CR-IVR version should show a much
    // smaller deviation than the bare version.
    const auto runDeviation = [](double effOhms) {
        VsPdnOptions options;
        if (effOhms > 0.0)
            options.crIvrEffOhms = Ohms{effOhms};
        VsPdn pdn(options);
        TransientSim sim(pdn.netlist(), config::clockPeriod.raw());
        for (int sm = 0; sm < config::numSMs; ++sm)
            sim.setCurrent(pdn.smCurrentSource(sm),
                           VsPdn::smLayer(sm) == 1 ? 8.0 : 4.0);
        sim.initToDc();
        for (int i = 0; i < 5000; ++i)
            sim.step();
        double worst = 0.0;
        for (int sm = 0; sm < config::numSMs; ++sm)
            worst = std::max(
                worst, std::abs((pdn.smVoltage(sim, sm) -
                                 pdn.nominalLayerVolts())
                                    .raw()));
        return worst;
    };
    const double bare = runDeviation(0.0);
    const double regulated = runDeviation(0.02);
    EXPECT_GT(bare, 2.0 * regulated);
}

TEST(VsPdn, SupplyCurrentMatchesStackCurrent)
{
    // In steady state the board supply carries one stack's worth of
    // current (not the sum of all SM currents) — the VS benefit.
    VsPdn pdn;
    TransientSim sim(pdn.netlist(), config::clockPeriod.raw());
    const double amps = 6.0;
    double loadResAmps = 0.0;
    for (int sm = 0; sm < config::numSMs; ++sm)
        sim.setCurrent(pdn.smCurrentSource(sm), amps);
    sim.initToDc();
    for (int i = 0; i < 3000; ++i)
        sim.step();
    // Per-column stack current = SM source + load resistor current.
    loadResAmps = (pdn.nominalLayerVolts() /
                   pdn.options().params.smLoadOhms())
                      .raw();
    const double perColumn = amps + loadResAmps;
    const double expected = perColumn * config::smsPerLayer;
    EXPECT_NEAR(sim.sourceCurrent(pdn.supplySource()), expected,
                expected * 0.05);
}

TEST(VsPdnDeath, BadIndicesPanic)
{
    setLogQuiet(true);
    VsPdn pdn;
    EXPECT_DEATH(pdn.smTopNode(-1), "");
    EXPECT_DEATH(pdn.smTopNode(16), "");
    EXPECT_DEATH(pdn.boundaryNode(5, 0), "");
    EXPECT_DEATH(pdn.boundaryNode(0, 4), "");
    EXPECT_DEATH(pdn.smCurrentSource(99), "");
}

} // namespace
} // namespace vsgpu
