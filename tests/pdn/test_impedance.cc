/**
 * @file
 * Tests for the effective-impedance analysis (paper Section III-B and
 * Fig. 3): decomposition properties, the characteristic shapes, and
 * CR-IVR suppression.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "circuit/ac.hh"
#include "common/logging.hh"
#include "ivr/cr_ivr.hh"
#include "pdn/impedance.hh"

namespace vsgpu
{
namespace
{

TEST(LogFrequencyGrid, EndpointsAndMonotonicity)
{
    const auto grid = logFrequencyGrid(1.0_MHz, 1.0_GHz, 10);
    ASSERT_EQ(grid.size(), 10u);
    EXPECT_NEAR(grid.front().raw(), 1e6, 1.0);
    EXPECT_NEAR(grid.back().raw(), 1e9, 1e3);
    for (std::size_t i = 1; i < grid.size(); ++i)
        EXPECT_GT(grid[i], grid[i - 1]);
}

TEST(LogFrequencyGridDeath, RejectsBadRanges)
{
    setLogQuiet(true);
    EXPECT_DEATH(logFrequencyGrid(Hertz{}, 1.0_MHz, 5), "");
    EXPECT_DEATH(logFrequencyGrid(1.0_MHz, 1.0_kHz, 5), "");
    EXPECT_DEATH(logFrequencyGrid(1.0_kHz, 1.0_MHz, 1), "");
}

class ImpedanceShapes : public ::testing::Test
{
  protected:
    ImpedanceShapes() : pdn_(VsPdnOptions{}), analyzer_(pdn_) {}
    VsPdn pdn_;
    ImpedanceAnalyzer analyzer_;
};

TEST_F(ImpedanceShapes, ResidualDominatesAtLowFrequency)
{
    // Paper Fig. 3(a): Z_R (same layer) has the highest magnitude in
    // the low-frequency range.
    const Hertz f{2e6};
    const Ohms zR = analyzer_.residualImpedance(f, true);
    EXPECT_GT(zR, analyzer_.globalImpedance(f));
    EXPECT_GT(zR, analyzer_.stackImpedance(f));
    EXPECT_GT(zR, analyzer_.residualImpedance(f, false));
}

TEST_F(ImpedanceShapes, ResidualPlateauIsFlatNearDc)
{
    const Ohms z1 = analyzer_.residualImpedance(1.0_MHz, true);
    const Ohms z2 = analyzer_.residualImpedance(Hertz{1.4e6}, true);
    EXPECT_NEAR(z1 / z2, 1.0, 0.30);
    // And rolls off strongly at high frequency.
    EXPECT_LT(analyzer_.residualImpedance(300.0_MHz, true),
              0.3 * z1);
}

TEST_F(ImpedanceShapes, GlobalResonanceNear70MHz)
{
    // Paper Fig. 3(a): Z_G peaks around 70 MHz.
    Hertz peakF{};
    Ohms peakZ{};
    for (Hertz f : logFrequencyGrid(5.0_MHz, 500.0_MHz, 60)) {
        const Ohms z = analyzer_.globalImpedance(f);
        if (z > peakZ) {
            peakZ = z;
            peakF = f;
        }
    }
    EXPECT_GT(peakF, 40.0_MHz);
    EXPECT_LT(peakF, 130.0_MHz);
    // The peak clearly stands above the low-frequency global value.
    EXPECT_GT(peakZ, 5.0 * analyzer_.globalImpedance(2.0_MHz));
}

TEST_F(ImpedanceShapes, SameLayerResidualExceedsCrossLayer)
{
    for (Hertz f : {1.0_MHz, 10.0_MHz, 50.0_MHz})
        EXPECT_GT(analyzer_.residualImpedance(f, true),
                  analyzer_.residualImpedance(f, false));
}

TEST_F(ImpedanceShapes, StackImpedanceColumnSymmetry)
{
    // Columns 0 and 3 / 1 and 2 are mirror images in the chain grid.
    const Hertz f = 30.0_MHz;
    EXPECT_NEAR(analyzer_.stackImpedance(f, 0).raw(),
                analyzer_.stackImpedance(f, 3).raw(), 1e-9);
    EXPECT_NEAR(analyzer_.stackImpedance(f, 1).raw(),
                analyzer_.stackImpedance(f, 2).raw(), 1e-9);
}

TEST_F(ImpedanceShapes, PeakImpedanceIsUpperEnvelope)
{
    for (Hertz f : {1.0_MHz, 70.0_MHz, 300.0_MHz}) {
        const Ohms peak = analyzer_.peakImpedance(f);
        const Ohms eps{1e-12};
        EXPECT_GE(peak, analyzer_.globalImpedance(f) - eps);
        EXPECT_GE(peak, analyzer_.stackImpedance(f) - eps);
        EXPECT_GE(peak, analyzer_.residualImpedance(f, true) - eps);
    }
}

TEST(ImpedanceCrIvr, SuppressesResidualPlateau)
{
    // Paper Fig. 3(b): the CR-IVR reduces the impedance peaks.
    VsPdn bare;
    ImpedanceAnalyzer bareAn(bare);

    const CrIvrDesign design(0.2 * config::gpuDieArea);
    VsPdnOptions options;
    options.crIvrEffOhms = design.effOhmsPerCell();
    options.crIvrFlyCapF = design.flyCapPerCell();
    VsPdn reg(options);
    ImpedanceAnalyzer regAn(reg);

    for (Hertz f : {1.0_MHz, 4.0_MHz}) {
        EXPECT_LT(regAn.residualImpedance(f, true),
                  0.5 * bareAn.residualImpedance(f, true))
            << "f=" << f;
    }
    // The cell still helps, more weakly, into the middle band.
    EXPECT_LT(regAn.residualImpedance(20.0_MHz, true),
              0.8 * bareAn.residualImpedance(20.0_MHz, true));
}

TEST(ImpedanceCrIvr, SuppressionScalesWithArea)
{
    Ohms prev{1e9};
    for (double areaFraction : {0.1, 0.5, 2.0}) {
        const CrIvrDesign design(areaFraction * config::gpuDieArea);
        VsPdnOptions options;
        options.crIvrEffOhms = design.effOhmsPerCell();
        options.crIvrFlyCapF = design.flyCapPerCell();
        VsPdn pdn(options);
        ImpedanceAnalyzer analyzer(pdn);
        const Ohms z = analyzer.residualImpedance(2.0_MHz, true);
        EXPECT_LT(z, prev);
        prev = z;
    }
}

TEST(ImpedanceCrIvr, LargeAreaMeetsGuaranteeBound)
{
    // The circuit-only sizing (1.72x GPU area) must pull every
    // impedance below the 0.1-ohm bound the paper derives.
    const CrIvrDesign design(config::circuitOnlyIvrArea);
    VsPdnOptions options;
    options.crIvrEffOhms = design.effOhmsPerCell();
    options.crIvrFlyCapF = design.flyCapPerCell();
    VsPdn pdn(options);
    ImpedanceAnalyzer analyzer(pdn);
    for (Hertz f : logFrequencyGrid(1.0_MHz, 500.0_MHz, 25))
        EXPECT_LT(analyzer.peakImpedance(f), 0.1_Ohm) << "f=" << f;
}

TEST(ImpedanceSweepTest, SweepMatchesPointQueries)
{
    VsPdn pdn;
    ImpedanceAnalyzer analyzer(pdn);
    const std::vector<Hertz> freqs = {1.0_MHz, 10.0_MHz, 100.0_MHz};
    const auto sweep = analyzer.sweep(freqs);
    ASSERT_EQ(sweep.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_DOUBLE_EQ(sweep[i].freq.raw(), freqs[i].raw());
        EXPECT_DOUBLE_EQ(sweep[i].zGlobal.raw(),
                         analyzer.globalImpedance(freqs[i]).raw());
        EXPECT_DOUBLE_EQ(
            sweep[i].zResidualSameLayer.raw(),
            analyzer.residualImpedance(freqs[i], true).raw());
    }
}

TEST(ImpedanceDecomposition, ComponentsSumToSingleSmLoad)
{
    // The global + stack + residual patterns of a unit load at SM
    // (0,0) must reconstruct that load exactly — the decomposition
    // is a partition, not an approximation.
    std::vector<double> total(config::numSMs, 0.0);
    const double global = 1.0 / config::numSMs;
    for (int sm = 0; sm < config::numSMs; ++sm)
        total[static_cast<std::size_t>(sm)] += global;
    // Stack component of a unit load in column 0.
    for (int sm = 0; sm < config::numSMs; ++sm) {
        const double colMean =
            VsPdn::smColumn(sm) == 0
                ? 1.0 / config::numLayers
                : 0.0;
        total[static_cast<std::size_t>(sm)] += colMean - global;
    }
    // Residual.
    for (int layer = 0; layer < config::numLayers; ++layer) {
        const int sm = VsPdn::smAt(layer, 0);
        total[static_cast<std::size_t>(sm)] +=
            (layer == 0 ? 1.0 : 0.0) - 1.0 / config::numLayers;
    }
    for (int sm = 0; sm < config::numSMs; ++sm) {
        const double expected = sm == VsPdn::smAt(0, 0) ? 1.0 : 0.0;
        EXPECT_NEAR(total[static_cast<std::size_t>(sm)], expected,
                    1e-12)
            << "sm " << sm;
    }
}

TEST(ImpedanceDecomposition, LinearSuperpositionHolds)
{
    // The AC network is linear: the complex response to the full
    // single-SM load equals the sum of the responses to its three
    // components.  We verify through the public API by checking the
    // triangle inequality becomes equality-like for magnitudes of a
    // dominant component: |Z_single| <= |Z_G| + |Z_ST| + |Z_R|.
    VsPdn pdn;
    AcAnalysis ac(pdn.netlist());
    const double f = 5e6;
    const int sm = VsPdn::smAt(0, 0);
    const auto respond = [&](const std::vector<double> &loads) {
        std::vector<AcInjection> inj;
        for (int s = 0; s < config::numSMs; ++s) {
            const double a = loads[static_cast<std::size_t>(s)];
            if (a == 0.0)
                continue;
            inj.push_back({pdn.smTopNode(s), Complex{-a, 0.0}});
            inj.push_back({pdn.smBottomNode(s), Complex{a, 0.0}});
        }
        const auto v = ac.solve(f, inj);
        return v[static_cast<std::size_t>(pdn.smTopNode(sm))] -
               v[static_cast<std::size_t>(pdn.smBottomNode(sm))];
    };

    std::vector<double> single(config::numSMs, 0.0);
    single[static_cast<std::size_t>(sm)] = 1.0;
    std::vector<double> global(config::numSMs,
                               1.0 / config::numSMs);
    std::vector<double> stack(config::numSMs, 0.0);
    for (int s = 0; s < config::numSMs; ++s)
        stack[static_cast<std::size_t>(s)] =
            (VsPdn::smColumn(s) == 0 ? 1.0 / config::numLayers
                                     : 0.0) -
            1.0 / config::numSMs;
    std::vector<double> residual(config::numSMs, 0.0);
    for (int layer = 0; layer < config::numLayers; ++layer)
        residual[static_cast<std::size_t>(VsPdn::smAt(layer, 0))] =
            (layer == 0 ? 1.0 : 0.0) - 1.0 / config::numLayers;

    const Complex whole = respond(single);
    const Complex sum =
        respond(global) + respond(stack) + respond(residual);
    EXPECT_NEAR(std::abs(whole - sum), 0.0,
                1e-9 + 1e-6 * std::abs(whole));
}

} // namespace
} // namespace vsgpu
