/**
 * @file
 * Unit tests for the single-layer (conventional / IVR) PDN models.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hh"
#include "pdn/single_layer.hh"

namespace vsgpu
{
namespace
{

TEST(SingleLayerPdn, DcRailNearSupply)
{
    SingleLayerOptions options;
    options.supplyVolts = 1.05_V;
    SingleLayerPdn pdn(options);
    TransientSim sim(pdn.netlist(), config::clockPeriod.raw());
    for (int sm = 0; sm < config::numSMs; ++sm)
        sim.setCurrent(pdn.smCurrentSource(sm), 6.0);
    sim.initToDc();
    for (int sm = 0; sm < config::numSMs; ++sm) {
        const Volts v = pdn.smVoltage(sim, sm);
        EXPECT_GT(v, 0.9_V);
        EXPECT_LT(v, 1.05_V);
    }
}

TEST(SingleLayerPdn, IrDropGrowsWithLoad)
{
    SingleLayerPdn pdn;
    Volts prev{10.0};
    for (double amps : {1.0, 4.0, 8.0}) {
        TransientSim sim(pdn.netlist(), config::clockPeriod.raw());
        for (int sm = 0; sm < config::numSMs; ++sm)
            sim.setCurrent(pdn.smCurrentSource(sm), amps);
        sim.initToDc();
        const Volts v = pdn.smVoltage(sim, 0);
        EXPECT_LT(v, prev);
        prev = v;
    }
}

TEST(SingleLayerPdn, IvrPlacementReducesDrop)
{
    // Supply at the package (IVR) sees less series resistance than
    // the board-routed conventional supply.
    const auto railAt = [](bool atPackage) {
        SingleLayerOptions options;
        options.supplyAtPackage = atPackage;
        SingleLayerPdn pdn(options);
        TransientSim sim(pdn.netlist(), config::clockPeriod.raw());
        for (int sm = 0; sm < config::numSMs; ++sm)
            sim.setCurrent(pdn.smCurrentSource(sm), 6.0);
        sim.initToDc();
        return pdn.smVoltage(sim, 0);
    };
    EXPECT_GT(railAt(true), railAt(false));
}

TEST(SingleLayerPdn, AllSmsHaveDistinctNodes)
{
    SingleLayerPdn pdn;
    for (int a = 0; a < config::numSMs; ++a)
        for (int b = a + 1; b < config::numSMs; ++b)
            EXPECT_NE(pdn.smNode(a), pdn.smNode(b));
}

TEST(SingleLayerPdn, LoadResistorsTracked)
{
    SingleLayerPdn pdn;
    EXPECT_EQ(pdn.loadResistorIndices().size(),
              static_cast<std::size_t>(config::numSMs));
    SingleLayerOptions options;
    options.includeLoadResistors = false;
    SingleLayerPdn bare(options);
    EXPECT_TRUE(bare.loadResistorIndices().empty());
}

TEST(SingleLayerPdn, SupplyDeliversTotalCurrent)
{
    SingleLayerPdn pdn;
    TransientSim sim(pdn.netlist(), config::clockPeriod.raw());
    const double amps = 5.0;
    for (int sm = 0; sm < config::numSMs; ++sm)
        sim.setCurrent(pdn.smCurrentSource(sm), amps);
    sim.initToDc();
    for (int i = 0; i < 2000; ++i)
        sim.step();
    // All 16 loads' currents cross the single supply (plus the load
    // resistors' draw) — unlike voltage stacking.
    const double minExpected = amps * config::numSMs;
    EXPECT_GT(sim.sourceCurrent(pdn.supplySource()), minExpected);
}

TEST(SingleLayerPdnDeath, BadIndicesPanic)
{
    setLogQuiet(true);
    SingleLayerPdn pdn;
    EXPECT_DEATH(pdn.smNode(-1), "");
    EXPECT_DEATH(pdn.smNode(16), "");
    EXPECT_DEATH(pdn.smCurrentSource(16), "");
}

} // namespace
} // namespace vsgpu
