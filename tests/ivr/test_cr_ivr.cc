/**
 * @file
 * Unit tests for the CR-IVR area/strength design model.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "ivr/cr_ivr.hh"

namespace vsgpu
{
namespace
{

TEST(CrIvrDesign, CapacitanceScalesWithArea)
{
    const CrIvrDesign small(100.0_mm2);
    const CrIvrDesign large(200.0_mm2);
    EXPECT_NEAR(large.totalFlyCap() / small.totalFlyCap(), 2.0,
                1e-12);
}

TEST(CrIvrDesign, EffOhmsInverselyProportionalToArea)
{
    const CrIvrDesign small(100.0_mm2);
    const CrIvrDesign large(400.0_mm2);
    EXPECT_NEAR(small.effOhmsPerCell() / large.effOhmsPerCell(), 4.0,
                1e-9);
}

TEST(CrIvrDesign, KnownNumbers)
{
    CrIvrTech tech;
    const CrIvrDesign d(100.0_mm2, tech);
    const Farads expectedCap =
        100.0_mm2 * tech.capAreaFraction * tech.capDensity;
    EXPECT_NEAR(d.totalFlyCap().raw(), expectedCap.raw(), 1e-15);
    EXPECT_NEAR(d.flyCapPerCell().raw(), expectedCap.raw() / 12.0,
                1e-15);
    EXPECT_NEAR(d.effOhmsPerCell().raw(),
                (1.0 / (tech.switchingHz * (expectedCap / 12.0)))
                    .raw(),
                1e-9);
}

TEST(CrIvrDesign, AreaFractionOfGpu)
{
    const CrIvrDesign d(config::gpuDieArea / 2.0);
    EXPECT_NEAR(d.areaFractionOfGpu(), 0.5, 1e-12);
}

TEST(CrIvrDesign, SwitchingLossProportional)
{
    const CrIvrDesign d(100.0_mm2);
    EXPECT_NEAR(d.switchingLoss(10.0_W).raw(),
                d.tech().switchingLossFraction * 10.0, 1e-12);
    EXPECT_NEAR(d.switchingLoss(Watts{}).raw(), 0.0, 1e-15);
}

TEST(CrIvrDesign, AreaForEffOhmsInvertsDesign)
{
    const CrIvrDesign d(123.4_mm2);
    const Area area =
        CrIvrDesign::areaForEffOhms(d.effOhmsPerCell(), d.tech());
    EXPECT_NEAR(area / 1.0_mm2, 123.4, 1e-6);
}

TEST(CrIvrDesign, PaperSizings)
{
    // 0.2x and 1.72x GPU-area designs bracket a ~8.6x strength ratio.
    const CrIvrDesign crossLayer(0.2 * config::gpuDieArea);
    const CrIvrDesign circuitOnly(config::circuitOnlyIvrArea);
    EXPECT_NEAR(crossLayer.effOhmsPerCell() /
                    circuitOnly.effOhmsPerCell(),
                config::circuitOnlyIvrArea /
                    (0.2 * config::gpuDieArea),
                1e-9);
}

TEST(CrIvrDesignDeath, RejectsNonPositiveInputs)
{
    setLogQuiet(true);
    EXPECT_DEATH(CrIvrDesign(Area{}), "");
    EXPECT_DEATH(CrIvrDesign(-5.0_mm2), "");
    EXPECT_DEATH(CrIvrDesign::areaForEffOhms(Ohms{}), "");
}

} // namespace
} // namespace vsgpu
