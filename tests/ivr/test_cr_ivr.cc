/**
 * @file
 * Unit tests for the CR-IVR area/strength design model.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "ivr/cr_ivr.hh"

namespace vsgpu
{
namespace
{

TEST(CrIvrDesign, CapacitanceScalesWithArea)
{
    const CrIvrDesign small(100.0);
    const CrIvrDesign large(200.0);
    EXPECT_NEAR(large.totalFlyCapF() / small.totalFlyCapF(), 2.0,
                1e-12);
}

TEST(CrIvrDesign, EffOhmsInverselyProportionalToArea)
{
    const CrIvrDesign small(100.0);
    const CrIvrDesign large(400.0);
    EXPECT_NEAR(small.effOhmsPerCell() / large.effOhmsPerCell(), 4.0,
                1e-9);
}

TEST(CrIvrDesign, KnownNumbers)
{
    CrIvrTech tech;
    const CrIvrDesign d(100.0, tech);
    const double expectedCap =
        100.0 * tech.capAreaFraction * tech.capDensityPerMm2;
    EXPECT_NEAR(d.totalFlyCapF(), expectedCap, 1e-15);
    EXPECT_NEAR(d.flyCapPerCellF(), expectedCap / 12.0, 1e-15);
    EXPECT_NEAR(d.effOhmsPerCell(),
                1.0 / (tech.switchingHz * expectedCap / 12.0), 1e-9);
}

TEST(CrIvrDesign, AreaFractionOfGpu)
{
    const CrIvrDesign d(config::gpuDieAreaMm2 / 2.0);
    EXPECT_NEAR(d.areaFractionOfGpu(), 0.5, 1e-12);
}

TEST(CrIvrDesign, SwitchingLossProportional)
{
    const CrIvrDesign d(100.0);
    EXPECT_NEAR(d.switchingLoss(10.0),
                d.tech().switchingLossFraction * 10.0, 1e-12);
    EXPECT_NEAR(d.switchingLoss(0.0), 0.0, 1e-15);
}

TEST(CrIvrDesign, AreaForEffOhmsInvertsDesign)
{
    const CrIvrDesign d(123.4);
    const double area =
        CrIvrDesign::areaForEffOhms(d.effOhmsPerCell(), d.tech());
    EXPECT_NEAR(area, 123.4, 1e-6);
}

TEST(CrIvrDesign, PaperSizings)
{
    // 0.2x and 1.72x GPU-area designs bracket a ~8.6x strength ratio.
    const CrIvrDesign crossLayer(0.2 * config::gpuDieAreaMm2);
    const CrIvrDesign circuitOnly(config::circuitOnlyIvrAreaMm2);
    EXPECT_NEAR(crossLayer.effOhmsPerCell() /
                    circuitOnly.effOhmsPerCell(),
                config::circuitOnlyIvrAreaMm2 /
                    (0.2 * config::gpuDieAreaMm2),
                1e-9);
}

TEST(CrIvrDesignDeath, RejectsNonPositiveInputs)
{
    setLogQuiet(true);
    EXPECT_DEATH(CrIvrDesign(0.0), "");
    EXPECT_DEATH(CrIvrDesign(-5.0), "");
    EXPECT_DEATH(CrIvrDesign::areaForEffOhms(0.0), "");
}

} // namespace
} // namespace vsgpu
