/**
 * @file
 * Validation of the averaged equalizer against the detailed two-phase
 * switched-capacitor cell (DESIGN.md decision 1): the averaged model
 * must reproduce the switched cell's equalizing strength with an
 * effective resistance Reff = 1 / (fsw * Cfly).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "ivr/switched_cell.hh"

namespace vsgpu
{
namespace
{

/** Two stacked layers under a 2 V supply with an imbalanced load. */
struct Stack
{
    Netlist net;
    NodeId top = 0;
    NodeId mid = 0;
    int iTop = -1;
    int iBot = -1;

    Stack()
    {
        top = net.allocNode("top");
        mid = net.allocNode("mid");
        net.addVoltageSource(top, Netlist::ground, 2.0_V);
        net.addResistor(top, mid, 8.0_Ohm, "load_top");
        net.addResistor(mid, Netlist::ground, 8.0_Ohm, "load_bot");
        net.addCapacitor(top, mid, 50.0_nF, 1.0_V);
        net.addCapacitor(mid, Netlist::ground, 50.0_nF, 1.0_V);
        iTop = net.addCurrentSource(top, mid);
        iBot = net.addCurrentSource(mid, Netlist::ground);
    }
};

/** Run with an imbalanced load and return the settled mid voltage. */
double
settleSwitched(double flyCapF, double fswHz, double imbalanceAmps)
{
    Stack stack;
    const SwitchedCell cell = addSwitchedCell(
        stack.net, stack.top, stack.mid, Netlist::ground,
        Farads{flyCapF}, 2.0_mOhm, 1.0_V);
    const double dt = 1.0 / (fswHz * 40.0); // 20 steps per phase
    TransientSim sim(stack.net, dt);
    sim.setCurrent(stack.iTop, imbalanceAmps);
    sim.setCurrent(stack.iBot, 0.0);
    cell.setPhase(sim, true);
    sim.initToDc();
    const int phaseSteps = 20;
    bool phaseA = true;
    // Simulate many switching periods to reach the periodic steady
    // state, then average the mid voltage over one full period.
    for (int period = 0; period < 400; ++period) {
        for (int half = 0; half < 2; ++half) {
            cell.setPhase(sim, phaseA);
            for (int s = 0; s < phaseSteps; ++s)
                sim.step();
            phaseA = !phaseA;
        }
    }
    double acc = 0.0;
    int count = 0;
    for (int half = 0; half < 2; ++half) {
        cell.setPhase(sim, phaseA);
        for (int s = 0; s < phaseSteps; ++s) {
            sim.step();
            acc += sim.nodeVoltage(stack.mid);
            ++count;
        }
        phaseA = !phaseA;
    }
    return acc / count;
}

double
settleAveraged(double effOhms, double imbalanceAmps)
{
    Stack stack;
    stack.net.addEqualizer(stack.top, stack.mid, Netlist::ground,
                           Ohms{effOhms});
    TransientSim sim(stack.net, 1e-9);
    sim.setCurrent(stack.iTop, imbalanceAmps);
    sim.setCurrent(stack.iBot, 0.0);
    sim.initToDc();
    for (int i = 0; i < 40000; ++i)
        sim.step();
    return sim.nodeVoltage(stack.mid);
}

TEST(SwitchedCell, PhaseSwitchingMovesCharge)
{
    Stack stack;
    const SwitchedCell cell = addSwitchedCell(
        stack.net, stack.top, stack.mid, Netlist::ground, 50.0_nF);
    TransientSim sim(stack.net, 1e-9);
    sim.setCurrent(stack.iTop, 0.8);
    sim.initToDc();
    const double before = sim.nodeVoltage(stack.mid);
    bool phaseA = true;
    for (int period = 0; period < 200; ++period) {
        cell.setPhase(sim, phaseA);
        for (int s = 0; s < 10; ++s)
            sim.step();
        phaseA = !phaseA;
    }
    // The imbalanced top load pulls mid up; the cell must fight it
    // back toward 1 V relative to the unregulated settling point.
    const double after = sim.nodeVoltage(stack.mid);
    EXPECT_LT(std::abs(after - 1.0), std::abs(before - 1.0) + 0.25);
}

TEST(SwitchedCell, AveragedModelMatchesSwitchedCell)
{
    // Key validation: same Cfly and fsw, compare settled voltages.
    const double flyCap = 60e-9;
    const double fsw = 50e6;
    const double imbalance = 0.6;
    const double reff = 1.0 / (fsw * flyCap);

    const double vSwitched = settleSwitched(flyCap, fsw, imbalance);
    const double vAveraged = settleAveraged(reff, imbalance);

    // Both models deviate from the ideal 1.0 V midpoint by the
    // residual imbalance drop; they must agree within a modest
    // tolerance (the averaged model ignores switching ripple).
    EXPECT_NEAR(vSwitched, vAveraged,
                0.25 * std::abs(vAveraged - 1.0) + 0.02);
}

TEST(SwitchedCell, FasterSwitchingEqualizesHarder)
{
    const double v1 = settleSwitched(60e-9, 20e6, 0.6);
    const double v2 = settleSwitched(60e-9, 80e6, 0.6);
    EXPECT_LT(std::abs(v2 - 1.0), std::abs(v1 - 1.0));
}

TEST(SwitchedCell, HandlesReversedImbalance)
{
    Stack stack;
    const SwitchedCell cell = addSwitchedCell(
        stack.net, stack.top, stack.mid, Netlist::ground, 60.0_nF);
    const double dt = 1e-9;
    TransientSim sim(stack.net, dt);
    // Bottom layer draws more: mid rail sinks below 1 V; the cell
    // must pump it back up.
    sim.setCurrent(stack.iTop, 0.0);
    sim.setCurrent(stack.iBot, 0.8);
    sim.initToDc();
    bool phaseA = true;
    for (int period = 0; period < 600; ++period) {
        cell.setPhase(sim, phaseA);
        for (int s = 0; s < 10; ++s)
            sim.step();
        phaseA = !phaseA;
    }
    const double unregulated = settleAveraged(1e9, -0.8);
    (void)unregulated;
    EXPECT_GT(sim.nodeVoltage(stack.mid), 0.8);
}

} // namespace
} // namespace vsgpu
