/**
 * @file
 * Unit tests for the conversion-efficiency models.
 */

#include <gtest/gtest.h>

#include "ivr/efficiency.hh"

namespace vsgpu
{
namespace
{

TEST(VrmModel, EfficiencyPeaksAtMidLoad)
{
    const VrmModel vrm(0.90, 130.0_W);
    const double mid = vrm.efficiency(0.6 * 130.0_W);
    EXPECT_NEAR(mid, 0.90, 1e-12);
    EXPECT_LT(vrm.efficiency(10.0_W), mid);
    EXPECT_LT(vrm.efficiency(260.0_W), mid);
}

TEST(VrmModel, InputAlwaysExceedsOutput)
{
    const VrmModel vrm;
    for (Watts p : {5.0_W, 50.0_W, 100.0_W, 200.0_W}) {
        EXPECT_GT(vrm.inputPower(p), p);
        EXPECT_NEAR(vrm.conversionLoss(p).raw(),
                    (vrm.inputPower(p) - p).raw(), 1e-12);
    }
}

TEST(VrmModel, EfficiencyBounded)
{
    const VrmModel vrm;
    for (Watts p : {0.0_W, 1.0_W, 500.0_W, 5000.0_W}) {
        const double e = vrm.efficiency(p);
        EXPECT_GE(e, 0.4);
        EXPECT_LE(e, 0.95);
    }
}

TEST(SingleIvrModel, TwoToOneConversion)
{
    const SingleIvrModel ivr;
    EXPECT_DOUBLE_EQ(ivr.inputVolts().raw(), 2.0);
    EXPECT_GT(ivr.inputPower(100.0_W), 100.0_W);
}

TEST(SingleIvrModel, PaperAreaMatchesTableIII)
{
    // Table III: 172.3 mm^2 = 0.33 x GPU die.
    EXPECT_NEAR(SingleIvrModel::area() / 1.0_mm2, 172.3, 1e-9);
    EXPECT_NEAR(SingleIvrModel::area() / config::gpuDieArea,
                0.33, 0.01);
}

TEST(SingleIvrModel, MoreEfficientThanVrmAtTypicalLoad)
{
    // The single-layer IVR baseline beats the board VRM (85% vs 80%
    // system PDE in the paper) partly through conversion efficiency.
    const VrmModel vrm;
    const SingleIvrModel ivr;
    EXPECT_GT(ivr.efficiency(110.0_W), vrm.efficiency(110.0_W));
}

TEST(VsOverheadsTest, PaperConstants)
{
    const VsOverheads ov;
    EXPECT_NEAR(ov.controllerPower.raw(), 1.634e-3, 1e-9);
    EXPECT_NEAR(ov.controllerArea / 1.0_mm2, 3084e-6, 1e-12);
    EXPECT_NEAR(ov.filterArea / 1.0_mm2, 1120e-6, 1e-12);
    EXPECT_GT(ov.levelShifterFraction, 0.0);
    EXPECT_LT(ov.levelShifterFraction, 0.06);
}

} // namespace
} // namespace vsgpu
