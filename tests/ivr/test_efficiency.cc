/**
 * @file
 * Unit tests for the conversion-efficiency models.
 */

#include <gtest/gtest.h>

#include "ivr/efficiency.hh"

namespace vsgpu
{
namespace
{

TEST(VrmModel, EfficiencyPeaksAtMidLoad)
{
    const VrmModel vrm(0.90, 130.0);
    const double mid = vrm.efficiency(0.6 * 130.0);
    EXPECT_NEAR(mid, 0.90, 1e-12);
    EXPECT_LT(vrm.efficiency(10.0), mid);
    EXPECT_LT(vrm.efficiency(260.0), mid);
}

TEST(VrmModel, InputAlwaysExceedsOutput)
{
    const VrmModel vrm;
    for (double p : {5.0, 50.0, 100.0, 200.0}) {
        EXPECT_GT(vrm.inputPower(p), p);
        EXPECT_NEAR(vrm.conversionLoss(p),
                    vrm.inputPower(p) - p, 1e-12);
    }
}

TEST(VrmModel, EfficiencyBounded)
{
    const VrmModel vrm;
    for (double p : {0.0, 1.0, 500.0, 5000.0}) {
        const double e = vrm.efficiency(p);
        EXPECT_GE(e, 0.4);
        EXPECT_LE(e, 0.95);
    }
}

TEST(SingleIvrModel, TwoToOneConversion)
{
    const SingleIvrModel ivr;
    EXPECT_DOUBLE_EQ(ivr.inputVolts(), 2.0);
    EXPECT_GT(ivr.inputPower(100.0), 100.0);
}

TEST(SingleIvrModel, PaperAreaMatchesTableIII)
{
    // Table III: 172.3 mm^2 = 0.33 x GPU die.
    EXPECT_NEAR(SingleIvrModel::areaMm2(), 172.3, 1e-9);
    EXPECT_NEAR(SingleIvrModel::areaMm2() / config::gpuDieAreaMm2,
                0.33, 0.01);
}

TEST(SingleIvrModel, MoreEfficientThanVrmAtTypicalLoad)
{
    // The single-layer IVR baseline beats the board VRM (85% vs 80%
    // system PDE in the paper) partly through conversion efficiency.
    const VrmModel vrm;
    const SingleIvrModel ivr;
    EXPECT_GT(ivr.efficiency(110.0), vrm.efficiency(110.0));
}

TEST(VsOverheadsTest, PaperConstants)
{
    const VsOverheads ov;
    EXPECT_NEAR(ov.controllerWatts, 1.634e-3, 1e-9);
    EXPECT_NEAR(ov.controllerAreaMm2, 3084e-6, 1e-12);
    EXPECT_NEAR(ov.filterAreaMm2, 1120e-6, 1e-12);
    EXPECT_GT(ov.levelShifterFraction, 0.0);
    EXPECT_LT(ov.levelShifterFraction, 0.06);
}

} // namespace
} // namespace vsgpu
