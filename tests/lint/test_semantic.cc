/**
 * @file
 * Tests for the cross-TU semantic layer (tools/lint/semantic.hh):
 * symbol indexing, call-graph effect propagation, the three semantic
 * families over the fixture corpus, and — the point of the whole
 * layer — explicit proof that each seeded fixture bug is INVISIBLE
 * to the corresponding token-level family and caught only by the
 * semantic one.
 */

#include "lint.hh"
#include "semantic.hh"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

using namespace vsgpu::lint;

namespace
{

SourceFile
fixture(const std::string &name)
{
    const std::string path =
        std::string(VSGPU_LINT_FIXTURE_DIR) + "/" + name;
    return loadSource(path, "tests/lint/fixtures/" + name);
}

Project
projectOf(std::vector<std::pair<std::string, std::string>> files)
{
    std::vector<SourceFile> sources;
    sources.reserve(files.size());
    for (auto &[display, code] : files)
        sources.emplace_back(display, code);
    return Project(std::move(sources));
}

Project
fixtureProject(const std::string &name)
{
    std::vector<SourceFile> sources;
    sources.push_back(fixture(name));
    return Project(std::move(sources));
}

std::vector<std::string>
messages(const std::vector<Diagnostic> &diags)
{
    std::vector<std::string> out;
    out.reserve(diags.size());
    for (const Diagnostic &d : diags)
        out.push_back(d.message);
    return out;
}

const FunctionDef &
fn(const Project &project, const std::string &name)
{
    const auto &hits = project.lookup(name);
    EXPECT_EQ(hits.size(), 1U) << name;
    return project.index()
        .functions[static_cast<std::size_t>(hits.front())];
}

// ================= symbol index =================

TEST(SymbolIndex, FindsFunctionsParamsAndGlobals)
{
    const Project p = projectOf(
        {{"src/a.cc",
          "namespace { double gTotal = 0.0; }\n"
          "const int kLimit = 4;\n"
          "double scale(const Volts &v, double factor)\n"
          "{\n"
          "    return v.raw() * factor;\n"
          "}\n"}});
    const FunctionDef &f = fn(p, "scale");
    ASSERT_EQ(f.params.size(), 2U);
    EXPECT_EQ(f.params[0].name, "v");
    EXPECT_EQ(f.params[0].type, "Volts");
    EXPECT_TRUE(f.params[0].byRef);
    EXPECT_TRUE(f.params[0].isConst);
    EXPECT_EQ(f.params[1].name, "factor");
    EXPECT_EQ(f.params[1].type, "double");
    EXPECT_EQ(p.index().globals.count("gTotal"), 1U);
    EXPECT_EQ(p.index().globals.count("kLimit"), 0U)
        << "const globals are not mutable shared state";
    EXPECT_EQ(p.index().constNames.count("kLimit"), 1U);
}

TEST(SymbolIndex, MethodsRecordTheirClassAndFieldWrites)
{
    const Project p = projectOf(
        {{"src/a.cc",
          "class Meter\n"
          "{\n"
          "  public:\n"
          "    void tick() { count_ = count_ + 1; }\n"
          "  private:\n"
          "    long count_ = 0;\n"
          "};\n"}});
    const FunctionDef &f = fn(p, "tick");
    EXPECT_EQ(f.className, "Meter");
    EXPECT_TRUE(f.writesFields);
    EXPECT_EQ(p.index().classFields.at("Meter").count("count_"),
              1U);
}

TEST(SymbolIndex, DirectEffectSummaries)
{
    const Project p = projectOf(
        {{"src/a.cc",
          "namespace { double gLast = 0.0; }\n"
          "void record(double v) { gLast = v; }\n"
          "void bump(double &x) { x += 1.0; }\n"
          "void guarded(double v)\n"
          "{\n"
          "    std::lock_guard<std::mutex> lock(gMutex);\n"
          "    gLast = v;\n"
          "}\n"}});
    EXPECT_EQ(fn(p, "record").writesGlobals.count("gLast"), 1U);
    EXPECT_EQ(fn(p, "bump").writesParams.count(0), 1U);
    EXPECT_TRUE(fn(p, "guarded").takesLock);
}

// ================= call graph =================

TEST(CallGraph, EffectsPropagateTransitively)
{
    const Project p = projectOf(
        {{"src/a.cc",
          "namespace { double gLast = 0.0; }\n"
          "void sinkWrite(double v) { gLast = v; }\n"
          "void middle(double v) { sinkWrite(v); }\n"
          "void outer(double v) { middle(v); }\n"}});
    const FunctionDef &outer = fn(p, "outer");
    EXPECT_EQ(outer.writesGlobals.count("gLast"), 1U);
    // The via-path names the call chain for the diagnostic.
    const auto via = outer.effectVia.find("gLast");
    ASSERT_NE(via, outer.effectVia.end());
    EXPECT_NE(via->second.find("middle"), std::string::npos);
}

TEST(CallGraph, LockTakingCalleesAbsorbTheirWrites)
{
    const Project p = projectOf(
        {{"src/a.cc",
          "namespace { double gLast = 0.0; }\n"
          "void guarded(double v)\n"
          "{\n"
          "    std::lock_guard<std::mutex> lock(gMutex);\n"
          "    gLast = v;\n"
          "}\n"
          "void outer(double v) { guarded(v); }\n"}});
    EXPECT_EQ(fn(p, "outer").writesGlobals.count("gLast"), 0U)
        << "a serialized write is not a caller-visible race";
}

TEST(CallGraph, RefParamWritesFollowForwardedArguments)
{
    const Project p = projectOf(
        {{"src/a.cc",
          "void bump(double &x) { x += 1.0; }\n"
          "void outer(double &y) { bump(y); }\n"}});
    EXPECT_EQ(fn(p, "outer").writesParams.count(0), 1U);
}

TEST(CallGraph, CyclesTerminate)
{
    const Project p = projectOf(
        {{"src/a.cc",
          "namespace { double gPing = 0.0; }\n"
          "void even(int n);\n"
          "void odd(int n) { gPing = 1.0; even(n - 1); }\n"
          "void even(int n) { odd(n - 1); }\n"}});
    // Mutual recursion: the bounded closure and the effect fixpoint
    // must both terminate, and effects still cross the cycle.
    EXPECT_EQ(fn(p, "even").writesGlobals.count("gPing"), 1U);
}

TEST(CallGraph, CrossTranslationUnitEffects)
{
    const Project p = projectOf(
        {{"src/a.cc",
          "namespace { double gShared = 0.0; }\n"
          "void poke(double v) { gShared = v; }\n"},
         {"src/b.cc", "void relay(double v) { poke(v); }\n"}});
    // poke lives in a different TU than relay; the index is global.
    EXPECT_EQ(fn(p, "relay").writesGlobals.count("gShared"), 1U);
}

// ================= pool-escape =================

TEST(PoolEscape, ByValuePointerCaptureIsInvisibleToTokenFamily)
{
    // The seeded race: a pointer captured BY VALUE, written through
    // inside the task.  The token-level family bails out on by-value
    // captures — only the semantic family can see the alias.
    const SourceFile src = fixture("poolescape_ptr_violate.cc");
    std::vector<Diagnostic> token;
    checkPoolConcurrency(src, token);
    EXPECT_TRUE(token.empty())
        << "token family unexpectedly sees the by-value race: "
        << ::testing::PrintToString(messages(token));

    const Project p = fixtureProject("poolescape_ptr_violate.cc");
    std::vector<Diagnostic> semantic;
    checkPoolEscape(p, semantic);
    ASSERT_EQ(semantic.size(), 1U)
        << ::testing::PrintToString(messages(semantic));
    EXPECT_EQ(semantic[0].id, "pool-escape.pointer-capture-write");
}

TEST(PoolEscape, ReadOnlyByValueCapturesPass)
{
    const Project p = fixtureProject("poolescape_ptr_clean.cc");
    std::vector<Diagnostic> diags;
    checkPoolEscape(p, diags);
    EXPECT_TRUE(diags.empty())
        << ::testing::PrintToString(messages(diags));
}

TEST(PoolEscape, GlobalWriteTwoCallsDeepIsInvisibleToTokenFamily)
{
    const SourceFile src = fixture("poolescape_deep_violate.cc");
    std::vector<Diagnostic> token;
    checkPoolConcurrency(src, token);
    EXPECT_TRUE(token.empty())
        << "token family cannot see through calls: "
        << ::testing::PrintToString(messages(token));

    const Project p = fixtureProject("poolescape_deep_violate.cc");
    std::vector<Diagnostic> semantic;
    checkPoolEscape(p, semantic);
    ASSERT_EQ(semantic.size(), 1U)
        << ::testing::PrintToString(messages(semantic));
    EXPECT_EQ(semantic[0].id, "pool-escape.global-write");
    EXPECT_NE(semantic[0].message.find("via recordSample"),
              std::string::npos)
        << semantic[0].message;
}

TEST(PoolEscape, LockedAndAtomicHelperWritesPass)
{
    const Project p = fixtureProject("poolescape_deep_clean.cc");
    std::vector<Diagnostic> diags;
    checkPoolEscape(p, diags);
    EXPECT_TRUE(diags.empty())
        << ::testing::PrintToString(messages(diags));
}

TEST(PoolEscape, CrossTuHelperWriteIsCaught)
{
    // The helper that writes the global lives in a DIFFERENT file
    // than the pool task: only a project-wide index can connect the
    // two.
    const Project p = projectOf(
        {{"src/helper.cc",
          "namespace { double gSeen = 0.0; }\n"
          "void note(double v) { gSeen = v; }\n"},
         {"src/task.cc",
          "namespace exec { struct Pool {\n"
          "    template <typename F> void parallelFor(int, F &&);\n"
          "}; }\n"
          "void drive(exec::Pool &pool)\n"
          "{\n"
          "    pool.parallelFor(8, [](int i) {\n"
          "        note(static_cast<double>(i));\n"
          "    });\n"
          "}\n"}});
    std::vector<Diagnostic> diags;
    checkPoolEscape(p, diags);
    ASSERT_EQ(diags.size(), 1U)
        << ::testing::PrintToString(messages(diags));
    EXPECT_EQ(diags[0].id, "pool-escape.global-write");
    EXPECT_EQ(diags[0].file, "src/task.cc");
}

// ================= unit-flow =================

TEST(UnitFlow, MixedUnitsThroughIntermediatesInvisibleToTokenFamily)
{
    const SourceFile src = fixture("unitflow_mix_violate.cc");
    std::vector<Diagnostic> token;
    checkUnitSafety(src, token);
    EXPECT_TRUE(token.empty())
        << "no suffixed raw double exists for the token family: "
        << ::testing::PrintToString(messages(token));

    const Project p = fixtureProject("unitflow_mix_violate.cc");
    std::vector<Diagnostic> semantic;
    checkUnitFlow(p, semantic);
    ASSERT_EQ(semantic.size(), 1U)
        << ::testing::PrintToString(messages(semantic));
    EXPECT_EQ(semantic[0].id, "unit-flow.mixed-units");
}

TEST(UnitFlow, LikeUnitsAndDerivedProductsPass)
{
    const Project p = fixtureProject("unitflow_mix_clean.cc");
    std::vector<Diagnostic> diags;
    checkUnitFlow(p, diags);
    EXPECT_TRUE(diags.empty())
        << ::testing::PrintToString(messages(diags));
}

TEST(UnitFlow, TaggedArgumentIntoWrongUnitParameter)
{
    const Project p = fixtureProject("unitflow_arg_violate.cc");
    std::vector<Diagnostic> diags;
    checkUnitFlow(p, diags);
    ASSERT_EQ(diags.size(), 1U)
        << ::testing::PrintToString(messages(diags));
    EXPECT_EQ(diags[0].id, "unit-flow.arg-mismatch");
    EXPECT_NE(diags[0].message.find("'Amps'"), std::string::npos);
}

TEST(UnitFlow, MatchingArgumentTagsPass)
{
    const Project p = fixtureProject("unitflow_arg_clean.cc");
    std::vector<Diagnostic> diags;
    checkUnitFlow(p, diags);
    EXPECT_TRUE(diags.empty())
        << ::testing::PrintToString(messages(diags));
}

// ================= determinism-taint =================

TEST(DetTaint, AddressTaintAcrossFunctionsInvisibleToTokenFamily)
{
    const SourceFile src = fixture("dettaint_sink_violate.cc");
    std::vector<Diagnostic> token;
    checkDeterminism(src, CheckOptions{}, token);
    EXPECT_TRUE(token.empty())
        << "the token family has no address-as-value rule: "
        << ::testing::PrintToString(messages(token));

    const Project p = fixtureProject("dettaint_sink_violate.cc");
    std::vector<Diagnostic> semantic;
    checkDeterminismTaint(p, semantic);
    ASSERT_EQ(semantic.size(), 1U)
        << ::testing::PrintToString(messages(semantic));
    EXPECT_EQ(semantic[0].id, "determinism-taint.sink");
    EXPECT_NE(semantic[0].message.find("address"),
              std::string::npos);
}

TEST(DetTaint, SimulationDerivedStatsPass)
{
    const Project p = fixtureProject("dettaint_sink_clean.cc");
    std::vector<Diagnostic> diags;
    checkDeterminismTaint(p, diags);
    EXPECT_TRUE(diags.empty())
        << ::testing::PrintToString(messages(diags));
}

TEST(DetTaint, UnorderedIterationWithoutAccumulatorInvisibleToToken)
{
    // A plain assignment in the loop body defeats the token rule
    // (which requires an accumulator), but hash-order still decides
    // which element survives to the stats write.
    const SourceFile src = fixture("dettaint_iter_violate.cc");
    std::vector<Diagnostic> token;
    checkDeterminism(src, CheckOptions{}, token);
    EXPECT_TRUE(token.empty())
        << ::testing::PrintToString(messages(token));

    const Project p = fixtureProject("dettaint_iter_violate.cc");
    std::vector<Diagnostic> semantic;
    checkDeterminismTaint(p, semantic);
    ASSERT_EQ(semantic.size(), 1U)
        << ::testing::PrintToString(messages(semantic));
    EXPECT_EQ(semantic[0].id, "determinism-taint.sink");
    EXPECT_NE(semantic[0].message.find("iteration-order"),
              std::string::npos);
}

TEST(DetTaint, OrderedIterationPasses)
{
    const Project p = fixtureProject("dettaint_iter_clean.cc");
    std::vector<Diagnostic> diags;
    checkDeterminismTaint(p, diags);
    EXPECT_TRUE(diags.empty())
        << ::testing::PrintToString(messages(diags));
}

// ================= driver plumbing =================

TEST(ProjectChecks, ScopingFiltersFixturePaths)
{
    // Fixture displays live under tests/, which no semantic family
    // covers — a scoped sweep stays clean, explicit files fire.
    std::vector<SourceFile> sources;
    sources.push_back(fixture("poolescape_deep_violate.cc"));
    const Project p(std::move(sources));

    std::vector<Diagnostic> scoped;
    runProjectChecks(p, {Check::PoolEscape}, /*ignoreScope=*/false,
                     scoped);
    EXPECT_TRUE(scoped.empty());

    std::vector<Diagnostic> explicitRun;
    runProjectChecks(p, {Check::PoolEscape}, /*ignoreScope=*/true,
                     explicitRun);
    EXPECT_EQ(explicitRun.size(), 1U);
}

TEST(ProjectChecks, IndexDumpIsWellFormedEnough)
{
    const Project p = projectOf(
        {{"src/a.cc", "void f(double x) { g(x); }\n"}});
    std::ostringstream os;
    dumpIndexJson(p, os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"functions\""), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"f\""), std::string::npos);
}

} // namespace
