/**
 * @file
 * Tests for the cross-TU semantic layer (tools/lint/semantic.hh):
 * symbol indexing, call-graph effect propagation, the semantic
 * families (including the concurrency-soundness engine:
 * lock-discipline, atomics-misuse, pool-happens-before,
 * fp-determinism) over the fixture corpus, and — the point of the
 * whole layer — explicit proof that each seeded fixture bug is
 * INVISIBLE to the corresponding token-level family and caught only
 * by the semantic one.
 */

#include "lint.hh"
#include "semantic.hh"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

using namespace vsgpu::lint;

namespace
{

SourceFile
fixture(const std::string &name)
{
    const std::string path =
        std::string(VSGPU_LINT_FIXTURE_DIR) + "/" + name;
    return loadSource(path, "tests/lint/fixtures/" + name);
}

Project
projectOf(std::vector<std::pair<std::string, std::string>> files)
{
    std::vector<SourceFile> sources;
    sources.reserve(files.size());
    for (auto &[display, code] : files)
        sources.emplace_back(display, code);
    return Project(std::move(sources));
}

Project
fixtureProject(const std::string &name)
{
    std::vector<SourceFile> sources;
    sources.push_back(fixture(name));
    return Project(std::move(sources));
}

std::vector<std::string>
messages(const std::vector<Diagnostic> &diags)
{
    std::vector<std::string> out;
    out.reserve(diags.size());
    for (const Diagnostic &d : diags)
        out.push_back(d.message);
    return out;
}

const FunctionDef &
fn(const Project &project, const std::string &name)
{
    const auto &hits = project.lookup(name);
    EXPECT_EQ(hits.size(), 1U) << name;
    return project.index()
        .functions[static_cast<std::size_t>(hits.front())];
}

// ================= symbol index =================

TEST(SymbolIndex, FindsFunctionsParamsAndGlobals)
{
    const Project p = projectOf(
        {{"src/a.cc",
          "namespace { double gTotal = 0.0; }\n"
          "const int kLimit = 4;\n"
          "double scale(const Volts &v, double factor)\n"
          "{\n"
          "    return v.raw() * factor;\n"
          "}\n"}});
    const FunctionDef &f = fn(p, "scale");
    ASSERT_EQ(f.params.size(), 2U);
    EXPECT_EQ(f.params[0].name, "v");
    EXPECT_EQ(f.params[0].type, "Volts");
    EXPECT_TRUE(f.params[0].byRef);
    EXPECT_TRUE(f.params[0].isConst);
    EXPECT_EQ(f.params[1].name, "factor");
    EXPECT_EQ(f.params[1].type, "double");
    EXPECT_EQ(p.index().globals.count("gTotal"), 1U);
    EXPECT_EQ(p.index().globals.count("kLimit"), 0U)
        << "const globals are not mutable shared state";
    EXPECT_EQ(p.index().constNames.count("kLimit"), 1U);
}

TEST(SymbolIndex, MethodsRecordTheirClassAndFieldWrites)
{
    const Project p = projectOf(
        {{"src/a.cc",
          "class Meter\n"
          "{\n"
          "  public:\n"
          "    void tick() { count_ = count_ + 1; }\n"
          "  private:\n"
          "    long count_ = 0;\n"
          "};\n"}});
    const FunctionDef &f = fn(p, "tick");
    EXPECT_EQ(f.className, "Meter");
    EXPECT_TRUE(f.writesFields);
    EXPECT_EQ(p.index().classFields.at("Meter").count("count_"),
              1U);
}

TEST(SymbolIndex, DirectEffectSummaries)
{
    const Project p = projectOf(
        {{"src/a.cc",
          "namespace { double gLast = 0.0; }\n"
          "void record(double v) { gLast = v; }\n"
          "void bump(double &x) { x += 1.0; }\n"
          "void guarded(double v)\n"
          "{\n"
          "    std::lock_guard<std::mutex> lock(gMutex);\n"
          "    gLast = v;\n"
          "}\n"}});
    EXPECT_EQ(fn(p, "record").writesGlobals.count("gLast"), 1U);
    EXPECT_EQ(fn(p, "bump").writesParams.count(0), 1U);
    EXPECT_TRUE(fn(p, "guarded").takesLock);
}

// ================= call graph =================

TEST(CallGraph, EffectsPropagateTransitively)
{
    const Project p = projectOf(
        {{"src/a.cc",
          "namespace { double gLast = 0.0; }\n"
          "void sinkWrite(double v) { gLast = v; }\n"
          "void middle(double v) { sinkWrite(v); }\n"
          "void outer(double v) { middle(v); }\n"}});
    const FunctionDef &outer = fn(p, "outer");
    EXPECT_EQ(outer.writesGlobals.count("gLast"), 1U);
    // The via-path names the call chain for the diagnostic.
    const auto via = outer.effectVia.find("gLast");
    ASSERT_NE(via, outer.effectVia.end());
    EXPECT_NE(via->second.find("middle"), std::string::npos);
}

TEST(CallGraph, LockTakingCalleesAbsorbTheirWrites)
{
    const Project p = projectOf(
        {{"src/a.cc",
          "namespace { double gLast = 0.0; }\n"
          "void guarded(double v)\n"
          "{\n"
          "    std::lock_guard<std::mutex> lock(gMutex);\n"
          "    gLast = v;\n"
          "}\n"
          "void outer(double v) { guarded(v); }\n"}});
    EXPECT_EQ(fn(p, "outer").writesGlobals.count("gLast"), 0U)
        << "a serialized write is not a caller-visible race";
}

TEST(CallGraph, RefParamWritesFollowForwardedArguments)
{
    const Project p = projectOf(
        {{"src/a.cc",
          "void bump(double &x) { x += 1.0; }\n"
          "void outer(double &y) { bump(y); }\n"}});
    EXPECT_EQ(fn(p, "outer").writesParams.count(0), 1U);
}

TEST(CallGraph, CyclesTerminate)
{
    const Project p = projectOf(
        {{"src/a.cc",
          "namespace { double gPing = 0.0; }\n"
          "void even(int n);\n"
          "void odd(int n) { gPing = 1.0; even(n - 1); }\n"
          "void even(int n) { odd(n - 1); }\n"}});
    // Mutual recursion: the bounded closure and the effect fixpoint
    // must both terminate, and effects still cross the cycle.
    EXPECT_EQ(fn(p, "even").writesGlobals.count("gPing"), 1U);
}

TEST(CallGraph, CrossTranslationUnitEffects)
{
    const Project p = projectOf(
        {{"src/a.cc",
          "namespace { double gShared = 0.0; }\n"
          "void poke(double v) { gShared = v; }\n"},
         {"src/b.cc", "void relay(double v) { poke(v); }\n"}});
    // poke lives in a different TU than relay; the index is global.
    EXPECT_EQ(fn(p, "relay").writesGlobals.count("gShared"), 1U);
}

// ================= pool-escape =================

TEST(PoolEscape, ByValuePointerCaptureIsInvisibleToTokenFamily)
{
    // The seeded race: a pointer captured BY VALUE, written through
    // inside the task.  The token-level family bails out on by-value
    // captures — only the semantic family can see the alias.
    const SourceFile src = fixture("poolescape_ptr_violate.cc");
    std::vector<Diagnostic> token;
    checkPoolConcurrency(src, token);
    EXPECT_TRUE(token.empty())
        << "token family unexpectedly sees the by-value race: "
        << ::testing::PrintToString(messages(token));

    const Project p = fixtureProject("poolescape_ptr_violate.cc");
    std::vector<Diagnostic> semantic;
    checkPoolEscape(p, semantic);
    ASSERT_EQ(semantic.size(), 1U)
        << ::testing::PrintToString(messages(semantic));
    EXPECT_EQ(semantic[0].id, "pool-escape.pointer-capture-write");
}

TEST(PoolEscape, ReadOnlyByValueCapturesPass)
{
    const Project p = fixtureProject("poolescape_ptr_clean.cc");
    std::vector<Diagnostic> diags;
    checkPoolEscape(p, diags);
    EXPECT_TRUE(diags.empty())
        << ::testing::PrintToString(messages(diags));
}

TEST(PoolEscape, GlobalWriteTwoCallsDeepIsInvisibleToTokenFamily)
{
    const SourceFile src = fixture("poolescape_deep_violate.cc");
    std::vector<Diagnostic> token;
    checkPoolConcurrency(src, token);
    EXPECT_TRUE(token.empty())
        << "token family cannot see through calls: "
        << ::testing::PrintToString(messages(token));

    const Project p = fixtureProject("poolescape_deep_violate.cc");
    std::vector<Diagnostic> semantic;
    checkPoolEscape(p, semantic);
    ASSERT_EQ(semantic.size(), 1U)
        << ::testing::PrintToString(messages(semantic));
    EXPECT_EQ(semantic[0].id, "pool-escape.global-write");
    EXPECT_NE(semantic[0].message.find("via recordSample"),
              std::string::npos)
        << semantic[0].message;
}

TEST(PoolEscape, LockedAndAtomicHelperWritesPass)
{
    const Project p = fixtureProject("poolescape_deep_clean.cc");
    std::vector<Diagnostic> diags;
    checkPoolEscape(p, diags);
    EXPECT_TRUE(diags.empty())
        << ::testing::PrintToString(messages(diags));
}

TEST(PoolEscape, CrossTuHelperWriteIsCaught)
{
    // The helper that writes the global lives in a DIFFERENT file
    // than the pool task: only a project-wide index can connect the
    // two.
    const Project p = projectOf(
        {{"src/helper.cc",
          "namespace { double gSeen = 0.0; }\n"
          "void note(double v) { gSeen = v; }\n"},
         {"src/task.cc",
          "namespace exec { struct Pool {\n"
          "    template <typename F> void parallelFor(int, F &&);\n"
          "}; }\n"
          "void drive(exec::Pool &pool)\n"
          "{\n"
          "    pool.parallelFor(8, [](int i) {\n"
          "        note(static_cast<double>(i));\n"
          "    });\n"
          "}\n"}});
    std::vector<Diagnostic> diags;
    checkPoolEscape(p, diags);
    ASSERT_EQ(diags.size(), 1U)
        << ::testing::PrintToString(messages(diags));
    EXPECT_EQ(diags[0].id, "pool-escape.global-write");
    EXPECT_EQ(diags[0].file, "src/task.cc");
}

// ================= unit-flow =================

TEST(UnitFlow, MixedUnitsThroughIntermediatesInvisibleToTokenFamily)
{
    const SourceFile src = fixture("unitflow_mix_violate.cc");
    std::vector<Diagnostic> token;
    checkUnitSafety(src, token);
    EXPECT_TRUE(token.empty())
        << "no suffixed raw double exists for the token family: "
        << ::testing::PrintToString(messages(token));

    const Project p = fixtureProject("unitflow_mix_violate.cc");
    std::vector<Diagnostic> semantic;
    checkUnitFlow(p, semantic);
    ASSERT_EQ(semantic.size(), 1U)
        << ::testing::PrintToString(messages(semantic));
    EXPECT_EQ(semantic[0].id, "unit-flow.mixed-units");
}

TEST(UnitFlow, LikeUnitsAndDerivedProductsPass)
{
    const Project p = fixtureProject("unitflow_mix_clean.cc");
    std::vector<Diagnostic> diags;
    checkUnitFlow(p, diags);
    EXPECT_TRUE(diags.empty())
        << ::testing::PrintToString(messages(diags));
}

TEST(UnitFlow, TaggedArgumentIntoWrongUnitParameter)
{
    const Project p = fixtureProject("unitflow_arg_violate.cc");
    std::vector<Diagnostic> diags;
    checkUnitFlow(p, diags);
    ASSERT_EQ(diags.size(), 1U)
        << ::testing::PrintToString(messages(diags));
    EXPECT_EQ(diags[0].id, "unit-flow.arg-mismatch");
    EXPECT_NE(diags[0].message.find("'Amps'"), std::string::npos);
}

TEST(UnitFlow, MatchingArgumentTagsPass)
{
    const Project p = fixtureProject("unitflow_arg_clean.cc");
    std::vector<Diagnostic> diags;
    checkUnitFlow(p, diags);
    EXPECT_TRUE(diags.empty())
        << ::testing::PrintToString(messages(diags));
}

// ================= determinism-taint =================

TEST(DetTaint, AddressTaintAcrossFunctionsInvisibleToTokenFamily)
{
    const SourceFile src = fixture("dettaint_sink_violate.cc");
    std::vector<Diagnostic> token;
    checkDeterminism(src, CheckOptions{}, token);
    EXPECT_TRUE(token.empty())
        << "the token family has no address-as-value rule: "
        << ::testing::PrintToString(messages(token));

    const Project p = fixtureProject("dettaint_sink_violate.cc");
    std::vector<Diagnostic> semantic;
    checkDeterminismTaint(p, semantic);
    ASSERT_EQ(semantic.size(), 1U)
        << ::testing::PrintToString(messages(semantic));
    EXPECT_EQ(semantic[0].id, "determinism-taint.sink");
    EXPECT_NE(semantic[0].message.find("address"),
              std::string::npos);
}

TEST(DetTaint, SimulationDerivedStatsPass)
{
    const Project p = fixtureProject("dettaint_sink_clean.cc");
    std::vector<Diagnostic> diags;
    checkDeterminismTaint(p, diags);
    EXPECT_TRUE(diags.empty())
        << ::testing::PrintToString(messages(diags));
}

TEST(DetTaint, UnorderedIterationWithoutAccumulatorInvisibleToToken)
{
    // A plain assignment in the loop body defeats the token rule
    // (which requires an accumulator), but hash-order still decides
    // which element survives to the stats write.
    const SourceFile src = fixture("dettaint_iter_violate.cc");
    std::vector<Diagnostic> token;
    checkDeterminism(src, CheckOptions{}, token);
    EXPECT_TRUE(token.empty())
        << ::testing::PrintToString(messages(token));

    const Project p = fixtureProject("dettaint_iter_violate.cc");
    std::vector<Diagnostic> semantic;
    checkDeterminismTaint(p, semantic);
    ASSERT_EQ(semantic.size(), 1U)
        << ::testing::PrintToString(messages(semantic));
    EXPECT_EQ(semantic[0].id, "determinism-taint.sink");
    EXPECT_NE(semantic[0].message.find("iteration-order"),
              std::string::npos);
}

TEST(DetTaint, OrderedIterationPasses)
{
    const Project p = fixtureProject("dettaint_iter_clean.cc");
    std::vector<Diagnostic> diags;
    checkDeterminismTaint(p, diags);
    EXPECT_TRUE(diags.empty())
        << ::testing::PrintToString(messages(diags));
}

// Run every token-level family over @p src; the concurrency-
// soundness fixtures must be invisible to all of them.
std::vector<Diagnostic>
allTokenDiags(const SourceFile &src)
{
    std::vector<Diagnostic> diags;
    runChecks(src,
              {std::begin(kAllChecks), std::end(kAllChecks)},
              CheckOptions{}, /*ignoreScope=*/true, diags);
    return diags;
}

// Run the v2 semantic families (pre-concurrency-engine) over @p p.
std::vector<Diagnostic>
v2SemanticDiags(const Project &p)
{
    std::vector<Diagnostic> diags;
    checkPoolEscape(p, diags);
    checkUnitFlow(p, diags);
    checkDeterminismTaint(p, diags);
    return diags;
}

// ================= lock-discipline =================

TEST(LockDiscipline, CrossTuOrderCycleInvisibleToEveryV2Family)
{
    // Each TU nests the two mutexes consistently; only the merged
    // lock-order graph sees the ABBA cycle.
    const SourceFile a = fixture("lockorder_cycle_a_violate.cc");
    const SourceFile b = fixture("lockorder_cycle_b_violate.cc");
    EXPECT_TRUE(allTokenDiags(a).empty());
    EXPECT_TRUE(allTokenDiags(b).empty());

    std::vector<SourceFile> sources;
    sources.push_back(fixture("lockorder_cycle_a_violate.cc"));
    sources.push_back(fixture("lockorder_cycle_b_violate.cc"));
    const Project p(std::move(sources));
    EXPECT_TRUE(v2SemanticDiags(p).empty())
        << ::testing::PrintToString(messages(v2SemanticDiags(p)));

    std::vector<Diagnostic> diags;
    checkLockDiscipline(p, diags);
    ASSERT_EQ(diags.size(), 1U)
        << ::testing::PrintToString(messages(diags));
    EXPECT_EQ(diags[0].id, "lock-discipline.order-cycle");
    // Cross-TU provenance: the one diagnostic cites both edges.
    EXPECT_NE(diags[0].message.find("lockorder_cycle_a_violate"),
              std::string::npos)
        << diags[0].message;
    EXPECT_NE(diags[0].message.find("lockorder_cycle_b_violate"),
              std::string::npos)
        << diags[0].message;
    EXPECT_NE(diags[0].message.find("snapshotThenDrain"),
              std::string::npos)
        << diags[0].message;
}

TEST(LockDiscipline, ConsistentNestingOrderPasses)
{
    const Project p = fixtureProject("lockorder_cycle_clean.cc");
    std::vector<Diagnostic> diags;
    checkLockDiscipline(p, diags);
    EXPECT_TRUE(diags.empty())
        << ::testing::PrintToString(messages(diags));
}

TEST(LockDiscipline, DoubleLockThroughHelperNamesTheHelper)
{
    const Project p = projectOf(
        {{"src/a.cc",
          "std::mutex gMu;\n"
          "namespace { double gV = 0.0; }\n"
          "void helper(double v)\n"
          "{\n"
          "    std::lock_guard<std::mutex> lock(gMu);\n"
          "    gV = v;\n"
          "}\n"
          "void outer(double v)\n"
          "{\n"
          "    std::lock_guard<std::mutex> lock(gMu);\n"
          "    helper(v);\n"
          "}\n"}});
    std::vector<Diagnostic> diags;
    checkLockDiscipline(p, diags);
    ASSERT_EQ(diags.size(), 1U)
        << ::testing::PrintToString(messages(diags));
    EXPECT_EQ(diags[0].id, "lock-discipline.double-lock");
    EXPECT_NE(diags[0].message.find("helper"), std::string::npos)
        << diags[0].message;
}

TEST(LockDiscipline, GuardedByFieldReadWithoutTheMutex)
{
    const Project p = projectOf(
        {{"src/cache.cc",
          "class Cache\n"
          "{\n"
          "  public:\n"
          "    int peek() const { return hits_; }\n"
          "    void bump()\n"
          "    {\n"
          "        std::lock_guard<std::mutex> lock(mutex_);\n"
          "        hits_ = hits_ + 1;\n"
          "    }\n"
          "  private:\n"
          "    mutable std::mutex mutex_;\n"
          "    int hits_ VSGPU_GUARDED_BY(mutex_) = 0;\n"
          "};\n"}});
    std::vector<Diagnostic> diags;
    checkLockDiscipline(p, diags);
    ASSERT_EQ(diags.size(), 1U)
        << ::testing::PrintToString(messages(diags));
    EXPECT_EQ(diags[0].id, "lock-discipline.guarded-by");
    EXPECT_EQ(diags[0].line, 4);
}

TEST(LockDiscipline, ExcludesViolatedWhileHoldingTheMutex)
{
    const Project p = projectOf(
        {{"src/a.cc",
          "std::mutex gMu;\n"
          "void flush() VSGPU_EXCLUDES(gMu);\n"
          "void flush() VSGPU_EXCLUDES(gMu) {}\n"
          "void holder()\n"
          "{\n"
          "    std::lock_guard<std::mutex> lock(gMu);\n"
          "    flush();\n"
          "}\n"}});
    std::vector<Diagnostic> diags;
    checkLockDiscipline(p, diags);
    ASSERT_EQ(diags.size(), 1U)
        << ::testing::PrintToString(messages(diags));
    EXPECT_EQ(diags[0].id, "lock-discipline.excludes-violation");
}

// ================= atomics-misuse =================

TEST(AtomicsMisuse, RelaxedPublishInvisibleToTokenFamilies)
{
    const SourceFile src = fixture("atomics_publish_violate.cc");
    EXPECT_TRUE(allTokenDiags(src).empty())
        << ::testing::PrintToString(messages(allTokenDiags(src)));

    const Project p = fixtureProject("atomics_publish_violate.cc");
    EXPECT_TRUE(v2SemanticDiags(p).empty());
    std::vector<Diagnostic> diags;
    checkAtomicsMisuse(p, diags);
    ASSERT_EQ(diags.size(), 1U)
        << ::testing::PrintToString(messages(diags));
    EXPECT_EQ(diags[0].id, "atomics-misuse.relaxed-publish");
    EXPECT_NE(diags[0].message.find("gPayload"), std::string::npos);
}

TEST(AtomicsMisuse, ReleasePublishPasses)
{
    const Project p = fixtureProject("atomics_publish_clean.cc");
    std::vector<Diagnostic> diags;
    checkAtomicsMisuse(p, diags);
    EXPECT_TRUE(diags.empty())
        << ::testing::PrintToString(messages(diags));
}

TEST(AtomicsMisuse, MixedDeclarationAcrossTusCitesBothSites)
{
    const Project p = projectOf(
        {{"src/a.cc",
          "namespace { std::atomic<long> gHits{0}; }\n"
          "void bump() { gHits.store(1); }\n"},
         {"src/b.cc",
          "namespace { long gHits = 0; }\n"
          "void set(long v) { gHits = v; }\n"}});
    std::vector<Diagnostic> diags;
    checkAtomicsMisuse(p, diags);
    ASSERT_EQ(diags.size(), 1U)
        << ::testing::PrintToString(messages(diags));
    EXPECT_EQ(diags[0].id, "atomics-misuse.mixed-declaration");
    EXPECT_EQ(diags[0].file, "src/b.cc");
    EXPECT_NE(diags[0].message.find("src/a.cc"), std::string::npos)
        << diags[0].message;
}

TEST(AtomicsMisuse, UnguardedReadOfLockDisciplinedGlobal)
{
    const Project p = projectOf(
        {{"src/a.cc",
          "namespace { double gDepth = 0.0; std::mutex gMu; }\n"
          "void setDepth(double v)\n"
          "{\n"
          "    std::lock_guard<std::mutex> lock(gMu);\n"
          "    gDepth = v;\n"
          "}\n"
          "double peekDepth() { return gDepth; }\n"}});
    std::vector<Diagnostic> diags;
    checkAtomicsMisuse(p, diags);
    ASSERT_EQ(diags.size(), 1U)
        << ::testing::PrintToString(messages(diags));
    EXPECT_EQ(diags[0].id, "atomics-misuse.unguarded-read");
    EXPECT_EQ(diags[0].line, 7);
    EXPECT_NE(diags[0].message.find("gMu"), std::string::npos);
}

// ================= pool-happens-before =================

TEST(PoolHappensBefore, NestedSubmitThroughHelperIsCaught)
{
    const SourceFile src = fixture("poolhb_nested_violate.cc");
    EXPECT_TRUE(allTokenDiags(src).empty())
        << ::testing::PrintToString(messages(allTokenDiags(src)));

    const Project p = fixtureProject("poolhb_nested_violate.cc");
    EXPECT_TRUE(v2SemanticDiags(p).empty())
        << ::testing::PrintToString(messages(v2SemanticDiags(p)));
    std::vector<Diagnostic> diags;
    checkPoolHappensBefore(p, diags);
    ASSERT_EQ(diags.size(), 1U)
        << ::testing::PrintToString(messages(diags));
    EXPECT_EQ(diags[0].id, "pool-happens-before.nested-submit");
    EXPECT_NE(diags[0].message.find("refineCell"),
              std::string::npos)
        << diags[0].message;
}

TEST(PoolHappensBefore, SequentialBatchesPass)
{
    // Two batches in sequence: the join between them is the
    // happens-before edge, nothing nests, nothing races.
    const Project p = fixtureProject("poolhb_nested_clean.cc");
    std::vector<Diagnostic> diags;
    checkPoolHappensBefore(p, diags);
    EXPECT_TRUE(diags.empty())
        << ::testing::PrintToString(messages(diags));
}

TEST(PoolHappensBefore, SamePhaseStencilReadIsFlagged)
{
    const Project p = projectOf(
        {{"src/relax.cc",
          "namespace exec { struct Pool {\n"
          "    template <typename F> void parallelFor(int, F &&);\n"
          "}; }\n"
          "void relax(exec::Pool &pool, std::vector<double> &curr,\n"
          "           int n)\n"
          "{\n"
          "    pool.parallelFor(n, [&](int i) {\n"
          "        curr[i] = 0.5 * (curr[i - 1] + curr[i + 1]);\n"
          "    });\n"
          "}\n"}});
    std::vector<Diagnostic> diags;
    checkPoolHappensBefore(p, diags);
    ASSERT_EQ(diags.size(), 1U)
        << ::testing::PrintToString(messages(diags));
    EXPECT_EQ(diags[0].id, "pool-happens-before.cross-task-read");
}

// ================= fp-determinism =================

TEST(FpDeterminism, LockedReductionInvisibleToPoolFamilies)
{
    // The lock makes the accumulation race-free — pool-escape and
    // the token family rightly accept it — but the order of the +=
    // is the schedule's, which breaks bitwise sweep identity.
    const SourceFile src = fixture("fpdet_sched_violate.cc");
    EXPECT_TRUE(allTokenDiags(src).empty())
        << ::testing::PrintToString(messages(allTokenDiags(src)));

    const Project p = fixtureProject("fpdet_sched_violate.cc");
    EXPECT_TRUE(v2SemanticDiags(p).empty())
        << ::testing::PrintToString(messages(v2SemanticDiags(p)));
    std::vector<Diagnostic> diags;
    checkFpDeterminism(p, diags);
    ASSERT_EQ(diags.size(), 1U)
        << ::testing::PrintToString(messages(diags));
    EXPECT_EQ(diags[0].id, "fp-determinism.locked-reduction");
    EXPECT_NE(diags[0].message.find("gEnergyTotal"),
              std::string::npos);
}

TEST(FpDeterminism, PerIndexSlotsWithOrderedReducePass)
{
    const Project p = fixtureProject("fpdet_sched_clean.cc");
    std::vector<Diagnostic> diags;
    checkFpDeterminism(p, diags);
    EXPECT_TRUE(diags.empty())
        << ::testing::PrintToString(messages(diags));
}

TEST(FpDeterminism, UnorderedContainerSumDeclaredInAnotherTu)
{
    // The unordered-ness lives in registry.cc; the summing loop in
    // report.cc sees only an opaque container name, so the token
    // determinism family (same-file only) cannot object.
    const Project p = projectOf(
        {{"src/registry.cc",
          "std::unordered_map<int, double> gCellPower;\n"
          "void note(int cell, double w) { gCellPower[cell] = w; }\n"},
         {"src/report.cc",
          "double totalPower()\n"
          "{\n"
          "    double total = 0.0;\n"
          "    for (const auto &cell : gCellPower)\n"
          "        total += cell.second;\n"
          "    return total;\n"
          "}\n"}});
    std::vector<Diagnostic> token;
    checkDeterminism(p.sources()[1], CheckOptions{}, token);
    EXPECT_TRUE(token.empty())
        << ::testing::PrintToString(messages(token));

    std::vector<Diagnostic> diags;
    checkFpDeterminism(p, diags);
    ASSERT_EQ(diags.size(), 1U)
        << ::testing::PrintToString(messages(diags));
    EXPECT_EQ(diags[0].id, "fp-determinism.unordered-reduction");
    EXPECT_EQ(diags[0].file, "src/report.cc");
    EXPECT_NE(diags[0].message.find("src/registry.cc"),
              std::string::npos)
        << diags[0].message;
}

TEST(FpDeterminism, IntegerOverloadDoesNotInheritFpStateOfSameName)
{
    // The exact shape that poisoned the bench sweep: record() calls
    // the INTEGER Counters::add, but "add" also names the FP
    // RunningStats::add.  Name-level overload merging must only ever
    // suppress — propagation may not hand record() the FP summary of
    // the overload it never calls.
    const Project p = projectOf(
        {{"src/stats.cc",
          "struct RunningStats {\n"
          "    double m2_ = 0.0;\n"
          "    void add(double x) { m2_ += x * x; }\n"
          "};\n"},
         {"src/counters.cc",
          "struct Counters {\n"
          "    unsigned long total = 0;\n"
          "    void add(const Counters &o) { total += o.total; }\n"
          "};\n"
          "struct Ctx {\n"
          "    std::mutex mu;\n"
          "    Counters counters;\n"
          "    void record(const Counters &c)\n"
          "    {\n"
          "        std::lock_guard<std::mutex> lock(mu);\n"
          "        counters.add(c);\n"
          "    }\n"
          "};\n"},
         {"src/sweep.cc",
          "void runSweep(exec::Pool &pool, Ctx &ctx, int n)\n"
          "{\n"
          "    pool.parallelFor(n, [&](int i) {\n"
          "        Counters c;\n"
          "        ctx.record(c);\n"
          "    });\n"
          "}\n"}});
    std::vector<Diagnostic> diags;
    checkFpDeterminism(p, diags);
    EXPECT_TRUE(diags.empty())
        << ::testing::PrintToString(messages(diags));
}

TEST(FpDeterminism, UnambiguousHelperChainStillPropagates)
{
    // Positive control for the strict resolution above: when the
    // helper names are unique, the accumulation two calls deep still
    // reaches the task's call site, with the full via chain.
    const Project p = projectOf(
        {{"src/energy.cc",
          "double gEnergyTotal = 0.0;\n"
          "std::mutex gEnergyMutex;\n"
          "void bumpTotal(double x) { gEnergyTotal += x; }\n"
          "void recordEnergy(double x)\n"
          "{\n"
          "    std::lock_guard<std::mutex> lock(gEnergyMutex);\n"
          "    bumpTotal(x);\n"
          "}\n"
          "void sweep(exec::Pool &pool, int n)\n"
          "{\n"
          "    pool.parallelFor(n, [&](int i) {\n"
          "        recordEnergy(static_cast<double>(i));\n"
          "    });\n"
          "}\n"}});
    std::vector<Diagnostic> diags;
    checkFpDeterminism(p, diags);
    ASSERT_EQ(diags.size(), 1U)
        << ::testing::PrintToString(messages(diags));
    EXPECT_EQ(diags[0].id, "fp-determinism.locked-reduction");
    EXPECT_NE(diags[0].message.find("recordEnergy"),
              std::string::npos)
        << diags[0].message;
    EXPECT_NE(diags[0].message.find("bumpTotal"),
              std::string::npos)
        << diags[0].message;
}

// ================= family-overlap dedupe =================

TEST(FamilyOverlap, TokenAndSemanticSameLineReportOnce)
{
    // A by-ref capture write is visible to BOTH the token family and
    // pool-escape; the driver must keep exactly one diagnostic — the
    // semantic one, which carries interprocedural context.
    const SourceFile src = fixture("pool_overlap_violate.cc");
    const Project p = fixtureProject("pool_overlap_violate.cc");

    std::vector<Diagnostic> diags;
    checkPoolConcurrency(src, diags);
    ASSERT_EQ(diags.size(), 1U)
        << "token family must see the capture write";
    checkPoolEscape(p, diags);
    ASSERT_EQ(diags.size(), 2U)
        << "semantic family must see it too";
    ASSERT_EQ(diags[0].line, diags[1].line);

    dedupeFamilyOverlap(diags);
    ASSERT_EQ(diags.size(), 1U)
        << ::testing::PrintToString(messages(diags));
    EXPECT_EQ(diags[0].id, "pool-escape.capture-write");
}

// ================= call-graph fixpoint boundary =================

TEST(CallGraph, RecursiveChainEffectsReachTheDefaultRoundBound)
{
    // The writer is defined LAST, so each fixpoint round moves its
    // effect exactly one level up the chain: depth 4 is the last
    // caller the default rounds=4 can see.
    const Project p = projectOf(
        {{"src/chain.cc",
          "namespace { double gX = 0.0; }\n"
          "void f5(double v) { f4(v); }\n"
          "void f4(double v) { f3(v); }\n"
          "void f3(double v) { f2(v); }\n"
          "void f2(double v) { f1(v); }\n"
          "void f1(double v) { gX = v; }\n"}});
    EXPECT_EQ(fn(p, "f2").writesGlobals.count("gX"), 1U);
    EXPECT_EQ(fn(p, "f5").writesGlobals.count("gX"), 1U)
        << "4 calls deep is within the default fixpoint bound";
}

TEST(CallGraph, EffectsBeyondTheRoundBoundNeedMoreRounds)
{
    const std::string code =
        "namespace { double gX = 0.0; }\n"
        "void f6(double v) { f5(v); }\n"
        "void f5(double v) { f4(v); }\n"
        "void f4(double v) { f3(v); }\n"
        "void f3(double v) { f2(v); }\n"
        "void f2(double v) { f1(v); }\n"
        "void f1(double v) { gX = v; }\n";
    // Through the Project (rounds=4) the 5-deep top is invisible …
    const Project p = projectOf({{"src/chain.cc", code}});
    EXPECT_EQ(fn(p, "f6").writesGlobals.count("gX"), 0U)
        << "5 calls deep must be beyond the default bound";

    // … and becomes visible at rounds=5: the bound is the rounds
    // parameter, not an artifact of the graph construction.
    std::vector<SourceFile> sources;
    sources.emplace_back("src/chain.cc", code);
    std::vector<std::vector<Token>> tokens;
    tokens.push_back(tokenize(sources[0].code()));
    SymbolIndex index = buildSymbolIndex(sources, tokens);
    const CallGraph graph = buildCallGraph(index);
    propagateEffects(index, graph, /*rounds=*/5);
    bool found = false;
    for (const FunctionDef &f : index.functions)
        if (f.name == "f6")
            found = f.writesGlobals.count("gX") > 0;
    EXPECT_TRUE(found);
}

TEST(CallGraph, SelfRecursionKeepsEffectsAndTerminates)
{
    const Project p = projectOf(
        {{"src/a.cc",
          "namespace { double gAcc = 0.0; }\n"
          "void spin(int n)\n"
          "{\n"
          "    gAcc = gAcc + 1.0;\n"
          "    if (n > 0)\n"
          "        spin(n - 1);\n"
          "}\n"
          "void outer(int n) { spin(n); }\n"}});
    EXPECT_EQ(fn(p, "spin").writesGlobals.count("gAcc"), 1U);
    EXPECT_EQ(fn(p, "outer").writesGlobals.count("gAcc"), 1U);
}

TEST(CallGraph, MutualRecursionPropagatesLockSetsAndTerminates)
{
    const Project p = projectOf(
        {{"src/a.cc",
          "std::mutex gMu;\n"
          "void pong(int n);\n"
          "void ping(int n)\n"
          "{\n"
          "    std::lock_guard<std::mutex> lock(gMu);\n"
          "    pong(n - 1);\n"
          "}\n"
          "void pong(int n)\n"
          "{\n"
          "    if (n > 0)\n"
          "        ping(n);\n"
          "}\n"}});
    // The may-acquire lock-set crosses the cycle (ping locks, pong
    // calls ping), and the fixpoint over the cycle terminates.
    EXPECT_EQ(fn(p, "ping").locksAcquired.count("gMu"), 1U);
    EXPECT_EQ(fn(p, "pong").locksAcquired.count("gMu"), 1U);
}

// ================= --explain =================

TEST(Explain, FamilyDottedIdAndUnknownIds)
{
    std::ostringstream family;
    EXPECT_TRUE(explainDiagnostic("lock-discipline", family));
    EXPECT_NE(family.str().find("order-cycle"), std::string::npos);
    EXPECT_NE(family.str().find("Waiver"), std::string::npos);

    std::ostringstream dotted;
    EXPECT_TRUE(explainDiagnostic("pool-happens-before.nested-submit",
                                  dotted));
    EXPECT_NE(dotted.str().find("This rule:"), std::string::npos);

    std::ostringstream sink;
    EXPECT_FALSE(explainDiagnostic("lock-discipline.bogus", sink));
    EXPECT_FALSE(explainDiagnostic("no-such-family", sink));
}

// ================= SARIF determinism =================

TEST(Sarif, SortsDedupesAndEmitsColumns)
{
    // Out of order, with an exact duplicate: the log must come out
    // sorted by (ruleId, file, line, column) with the duplicate
    // collapsed and the column carried through.
    std::vector<Diagnostic> diags;
    diags.push_back({"src/b.cc", 9, Check::LockDiscipline, "m2",
                     "lock-discipline.double-lock", 7});
    diags.push_back({"src/a.cc", 3, Check::AtomicsMisuse, "m1",
                     "atomics-misuse.unguarded-read", 5});
    diags.push_back({"src/a.cc", 3, Check::AtomicsMisuse, "m1",
                     "atomics-misuse.unguarded-read", 5});
    std::ostringstream os;
    writeSarif(os, diags);
    const std::string sarif = os.str();
    const std::size_t first =
        sarif.find("atomics-misuse.unguarded-read\", \"level\"");
    const std::size_t second =
        sarif.find("lock-discipline.double-lock\", \"level\"");
    ASSERT_NE(first, std::string::npos);
    ASSERT_NE(second, std::string::npos);
    EXPECT_LT(first, second) << "results must sort by ruleId";
    EXPECT_EQ(sarif.find("atomics-misuse.unguarded-read\", "
                         "\"level\"",
                         first + 1),
              std::string::npos)
        << "identical locations must deduplicate";
    EXPECT_NE(sarif.find("\"startColumn\": 5"), std::string::npos);
}

// ================= driver plumbing =================

TEST(ProjectChecks, ScopingFiltersFixturePaths)
{
    // Fixture displays live under tests/, which no semantic family
    // covers — a scoped sweep stays clean, explicit files fire.
    std::vector<SourceFile> sources;
    sources.push_back(fixture("poolescape_deep_violate.cc"));
    const Project p(std::move(sources));

    std::vector<Diagnostic> scoped;
    runProjectChecks(p, {Check::PoolEscape}, /*ignoreScope=*/false,
                     scoped);
    EXPECT_TRUE(scoped.empty());

    std::vector<Diagnostic> explicitRun;
    runProjectChecks(p, {Check::PoolEscape}, /*ignoreScope=*/true,
                     explicitRun);
    EXPECT_EQ(explicitRun.size(), 1U);
}

TEST(ProjectChecks, IndexDumpIsWellFormedEnough)
{
    const Project p = projectOf(
        {{"src/a.cc", "void f(double x) { g(x); }\n"}});
    std::ostringstream os;
    dumpIndexJson(p, os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"functions\""), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"f\""), std::string::npos);
}

} // namespace
