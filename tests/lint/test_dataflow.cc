/**
 * @file
 * Tests for the intraprocedural dataflow core (tools/lint/dataflow).
 *
 * The lowering from tokens to the statement IR is approximate by
 * design; these tests pin down the contract the semantic families
 * rely on: def/use extraction, CFG shape over branches and loops,
 * strong-update kills vs through-write may-defs in reachingDefs, and
 * fixpoint convergence of the generic taint solver (including taint
 * carried around a loop back edge).
 */

#include "dataflow.hh"
#include "lint.hh"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

using namespace vsgpu::lint;
namespace df = vsgpu::lint::df;

namespace
{

df::Cfg
cfgOf(const std::string &body, std::vector<Token> &tokens)
{
    tokens = tokenize(body);
    return df::buildCfg(tokens, 0, tokens.size());
}

/** All statements of a CFG flattened in block order. */
std::vector<df::Stmt>
allStmts(const df::Cfg &cfg)
{
    std::vector<df::Stmt> out;
    for (const df::Block &block : cfg.blocks)
        for (const df::Stmt &stmt : block.stmts)
            out.push_back(stmt);
    return out;
}

bool
uses(const df::Stmt &stmt, const std::string &name)
{
    return std::find(stmt.uses.begin(), stmt.uses.end(), name) !=
           stmt.uses.end();
}

// ================= statement lowering =================

TEST(Dataflow, StraightLineDefsAndUses)
{
    std::vector<Token> tokens;
    const df::Cfg cfg = cfgOf("int a = 1;\n"
                              "a = c + d;\n"
                              "int b = a;\n",
                              tokens);
    ASSERT_EQ(cfg.blocks.size(), 1U);
    const auto stmts = allStmts(cfg);
    ASSERT_EQ(stmts.size(), 3U);

    EXPECT_EQ(stmts[0].defs, std::vector<std::string>{"a"});
    EXPECT_TRUE(stmts[0].declares);
    EXPECT_EQ(stmts[0].declType, "int");

    EXPECT_EQ(stmts[1].defs, std::vector<std::string>{"a"});
    EXPECT_FALSE(stmts[1].declares);
    EXPECT_TRUE(uses(stmts[1], "c"));
    EXPECT_TRUE(uses(stmts[1], "d"));

    EXPECT_EQ(stmts[2].defs, std::vector<std::string>{"b"});
    EXPECT_TRUE(stmts[2].declares);
    EXPECT_TRUE(uses(stmts[2], "a"));
}

TEST(Dataflow, MemberChainWritesAreThroughDefs)
{
    std::vector<Token> tokens;
    const df::Cfg cfg = cfgOf("p->field = 1;\n"
                              "*q = 2.0;\n"
                              "arr[k] = 3;\n",
                              tokens);
    const auto stmts = allStmts(cfg);
    ASSERT_EQ(stmts.size(), 3U);
    for (const df::Stmt &s : stmts)
        EXPECT_TRUE(s.defThrough)
            << "stmt defining " << s.defs.front();
    EXPECT_EQ(stmts[0].defs, std::vector<std::string>{"p"});
    EXPECT_EQ(stmts[1].defs, std::vector<std::string>{"q"});
    EXPECT_EQ(stmts[2].defs, std::vector<std::string>{"arr"});
}

TEST(Dataflow, CompoundAssignReadsItsTarget)
{
    std::vector<Token> tokens;
    const df::Cfg cfg = cfgOf("total += sample;\n", tokens);
    const auto stmts = allStmts(cfg);
    ASSERT_EQ(stmts.size(), 1U);
    EXPECT_EQ(stmts[0].defs, std::vector<std::string>{"total"});
    EXPECT_TRUE(uses(stmts[0], "total"));
    EXPECT_TRUE(uses(stmts[0], "sample"));
}

TEST(Dataflow, StructuredBindingDeclaresAllNames)
{
    std::vector<Token> tokens;
    const df::Cfg cfg = cfgOf("auto [lo, hi] = bounds(i);\n",
                              tokens);
    const auto stmts = allStmts(cfg);
    ASSERT_EQ(stmts.size(), 1U);
    EXPECT_TRUE(stmts[0].declares);
    const std::vector<std::string> expected = {"lo", "hi"};
    EXPECT_EQ(stmts[0].defs, expected);
}

TEST(Dataflow, CallExtractionWithReceiverAndArgRoots)
{
    std::vector<Token> tokens;
    const df::Cfg cfg =
        cfgOf("group.scalar(name).set(a + b.c);\n", tokens);
    const auto stmts = allStmts(cfg);
    ASSERT_EQ(stmts.size(), 1U);
    const auto &calls = stmts[0].calls;
    ASSERT_GE(calls.size(), 2U);
    // The chained .set call resolves its receiver to the chain root.
    const auto set = std::find_if(
        calls.begin(), calls.end(),
        [](const df::CallRef &c) { return c.callee == "set"; });
    ASSERT_NE(set, calls.end());
    EXPECT_EQ(set->receiver, "group");
    ASSERT_EQ(set->args.size(), 1U);
    const std::vector<std::string> roots = {"a", "b"};
    EXPECT_EQ(set->args[0], roots);
}

TEST(Dataflow, RangeForRecordsContainer)
{
    std::vector<Token> tokens;
    const df::Cfg cfg = cfgOf("for (const auto &kv : samples) {\n"
                              "    last = kv;\n"
                              "}\n",
                              tokens);
    bool found = false;
    for (const df::Stmt &s : allStmts(cfg))
        if (s.rangeContainer == "samples") {
            found = true;
            EXPECT_EQ(s.defs, std::vector<std::string>{"kv"});
        }
    EXPECT_TRUE(found);
}

// ================= CFG shape =================

TEST(Dataflow, IfElseForksAndJoins)
{
    std::vector<Token> tokens;
    const df::Cfg cfg = cfgOf("int x = 0;\n"
                              "if (c) { x = 1; } else { x = 2; }\n"
                              "int y = x;\n",
                              tokens);
    // entry, then, else, join at minimum; entry reaches two blocks.
    ASSERT_GE(cfg.blocks.size(), 4U);
    EXPECT_GE(cfg.blocks[0].succs.size(), 2U);
}

TEST(Dataflow, WhileLoopHasBackEdge)
{
    std::vector<Token> tokens;
    const df::Cfg cfg = cfgOf("int x = 0;\n"
                              "while (cond) { x = x + 1; }\n"
                              "int y = x;\n",
                              tokens);
    bool backEdge = false;
    for (std::size_t b = 0; b < cfg.blocks.size(); ++b)
        for (int succ : cfg.blocks[b].succs)
            if (succ <= static_cast<int>(b))
                backEdge = true;
    EXPECT_TRUE(backEdge);
}

// ================= reaching definitions =================

/**
 * Reaching-def sites of @p name on entry to the block containing
 * the (unique) statement that defines @p atDef.
 */
std::set<df::DefSite>
reachingAt(const df::Cfg &cfg, const std::string &name,
           const std::string &atDef)
{
    const std::vector<df::ReachEnv> envs = df::reachingDefs(cfg);
    for (std::size_t b = 0; b < cfg.blocks.size(); ++b)
        for (const df::Stmt &stmt : cfg.blocks[b].stmts)
            if (std::find(stmt.defs.begin(), stmt.defs.end(),
                          atDef) != stmt.defs.end()) {
                const auto it = envs[b].find(name);
                return it == envs[b].end() ? std::set<df::DefSite>{}
                                           : it->second;
            }
    ADD_FAILURE() << "no statement defines " << atDef;
    return {};
}

TEST(Dataflow, BranchDefsKillTheInitializer)
{
    std::vector<Token> tokens;
    const df::Cfg cfg = cfgOf("int x = 0;\n"
                              "if (c) { x = 1; } else { x = 2; }\n"
                              "int y = x;\n",
                              tokens);
    // Both arms assign x, so the initializer cannot reach y: exactly
    // the two arm definitions merge at the join.
    EXPECT_EQ(reachingAt(cfg, "x", "y").size(), 2U);
}

TEST(Dataflow, OneArmedBranchKeepsTheInitializer)
{
    std::vector<Token> tokens;
    const df::Cfg cfg = cfgOf("int x = 0;\n"
                              "if (c) { x = 1; }\n"
                              "int y = x;\n",
                              tokens);
    // The fall-through edge carries the initializer past the branch.
    EXPECT_EQ(reachingAt(cfg, "x", "y").size(), 2U);
}

TEST(Dataflow, ThroughWritesDoNotKill)
{
    std::vector<Token> tokens;
    const df::Cfg cfg = cfgOf("int x = 0;\n"
                              "if (c) { *x = 1; } else { *x = 2; }\n"
                              "int y = x;\n",
                              tokens);
    // A write through x may not overwrite the binding of x itself,
    // so all three definition sites survive to the join.
    EXPECT_EQ(reachingAt(cfg, "x", "y").size(), 3U);
}

TEST(Dataflow, LoopBodyDefsReachTheExit)
{
    std::vector<Token> tokens;
    const df::Cfg cfg = cfgOf("int x = 0;\n"
                              "while (c) { x = x + 1; }\n"
                              "int y = x;\n",
                              tokens);
    // Zero-trip (initializer) and one-or-more-trip (body def) both
    // reach past the loop.
    EXPECT_EQ(reachingAt(cfg, "x", "y").size(), 2U);
}

// ================= taint solver =================

/** Transfer: `source` seeds tag SRC; otherwise tags flow by use. */
df::TagSet
seedTransfer(const df::Stmt &stmt, const df::TaintEnv &env)
{
    df::TagSet tags = df::tagsOf(env, stmt.uses);
    if (std::find(stmt.uses.begin(), stmt.uses.end(), "source") !=
        stmt.uses.end())
        tags.insert("SRC");
    return tags;
}

/** Converged tags of @p name before the statement defining @p at. */
df::TagSet
taintAt(const df::Cfg &cfg, const std::string &name,
        const std::string &at)
{
    df::TagSet result;
    df::solveTaint(cfg, seedTransfer,
                   [&](const df::Stmt &stmt, const df::TaintEnv &env) {
                       if (std::find(stmt.defs.begin(),
                                     stmt.defs.end(),
                                     at) == stmt.defs.end())
                           return;
                       const auto it = env.find(name);
                       if (it != env.end())
                           result = it->second;
                   });
    return result;
}

TEST(Dataflow, TaintFlowsThroughAssignments)
{
    std::vector<Token> tokens;
    const df::Cfg cfg = cfgOf("double a = source;\n"
                              "double b = a;\n"
                              "double c = b;\n"
                              "double sink = c;\n",
                              tokens);
    EXPECT_EQ(taintAt(cfg, "c", "sink"), df::TagSet{"SRC"});
}

TEST(Dataflow, CleanValuesStayUntagged)
{
    std::vector<Token> tokens;
    const df::Cfg cfg = cfgOf("double a = input;\n"
                              "double b = a;\n"
                              "double sink = b;\n",
                              tokens);
    EXPECT_TRUE(taintAt(cfg, "b", "sink").empty());
}

TEST(Dataflow, ReassignmentClearsTaint)
{
    std::vector<Token> tokens;
    const df::Cfg cfg = cfgOf("double a = source;\n"
                              "a = input;\n"
                              "double sink = a;\n",
                              tokens);
    // The strong update replaces a's tags on the straight-line path.
    EXPECT_TRUE(taintAt(cfg, "a", "sink").empty());
}

TEST(Dataflow, TaintConvergesAroundLoopBackEdge)
{
    std::vector<Token> tokens;
    const df::Cfg cfg = cfgOf("double a = source;\n"
                              "double b = 0.0;\n"
                              "while (c) { b = a; }\n"
                              "double sink = b;\n",
                              tokens);
    // b is tainted only via the loop body; the fixpoint must carry
    // the tag around the back edge to the exit.
    EXPECT_EQ(taintAt(cfg, "b", "sink"), df::TagSet{"SRC"});
}

TEST(Dataflow, TagsOfUnionsAcrossNames)
{
    df::TaintEnv env;
    env["a"] = {"X"};
    env["b"] = {"Y", "Z"};
    const df::TagSet got = df::tagsOf(env, {"a", "b", "missing"});
    const df::TagSet expected = {"X", "Y", "Z"};
    EXPECT_EQ(got, expected);
}

} // namespace
