/**
 * @file
 * Tests for the lifetime layer (tools/lint/lifetime_model.hh) and
 * its four diagnostic families: the region classification and the
 * outlives lattice (table-driven), the per-function move/escape/
 * mutate summaries with "via helper" provenance, the dynamic-vs-
 * constant classification of namespace-scope initializers, and —
 * over the fixture corpus — proof that each seeded lifetime bug is
 * invisible to every one of the twelve v1–v3 families and caught
 * only by its lifetime family, with the expected dotted id.
 */

#include "dataflow.hh"
#include "lifetime_model.hh"
#include "lint.hh"
#include "semantic.hh"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

using namespace vsgpu::lint;

namespace
{

SourceFile
fixture(const std::string &name)
{
    const std::string path =
        std::string(VSGPU_LINT_FIXTURE_DIR) + "/" + name;
    return loadSource(path, "tests/lint/fixtures/" + name);
}

Project
fixtureProject(std::vector<std::string> names)
{
    std::vector<SourceFile> sources;
    sources.reserve(names.size());
    for (const std::string &name : names)
        sources.push_back(fixture(name));
    return Project(std::move(sources));
}

Project
projectOf(std::vector<std::pair<std::string, std::string>> files)
{
    std::vector<SourceFile> sources;
    sources.reserve(files.size());
    for (auto &[display, code] : files)
        sources.emplace_back(display, code);
    return Project(std::move(sources));
}

std::vector<std::string>
messages(const std::vector<Diagnostic> &diags)
{
    std::vector<std::string> out;
    out.reserve(diags.size());
    for (const Diagnostic &d : diags)
        out.push_back(d.message);
    return out;
}

const FunctionDef &
fn(const Project &project, const std::string &name)
{
    const auto &hits = project.lookup(name);
    EXPECT_EQ(hits.size(), 1U) << name;
    return project.index()
        .functions[static_cast<std::size_t>(hits.front())];
}

int
fnId(const Project &project, const std::string &name)
{
    const auto &hits = project.lookup(name);
    EXPECT_EQ(hits.size(), 1U) << name;
    return hits.front();
}

/** All four lifetime families over @p project. */
std::vector<Diagnostic>
lifetimeDiags(const Project &project)
{
    std::vector<Diagnostic> out;
    checkUseAfterMove(project, out);
    checkDanglingView(project, out);
    checkIterInvalidation(project, out);
    checkInitOrder(project, out);
    return out;
}

/** The twelve v1–v3 families (token + semantic) over @p project. */
std::vector<Diagnostic>
legacyDiags(const Project &project)
{
    const std::vector<Check> legacy = {
        Check::UnitSafety,        Check::Determinism,
        Check::PoolConcurrency,   Check::Contracts,
        Check::RawEscape,         Check::PoolEscape,
        Check::UnitFlow,          Check::DeterminismTaint,
        Check::LockDiscipline,    Check::AtomicsMisuse,
        Check::PoolHappensBefore, Check::FpDeterminism,
    };
    std::vector<Diagnostic> out;
    const CheckOptions opts;
    for (const SourceFile &src : project.sources())
        runChecks(src, legacy, opts, /*ignoreScope=*/true, out);
    runProjectChecks(project, legacy, /*ignoreScope=*/true, out);
    return out;
}

/** One fixture round-trip: every seeded bug invisible to the twelve
 *  legacy families, caught by its lifetime family with @p id. */
void
expectPair(const std::vector<std::string> &violate,
           const std::vector<std::string> &clean,
           const std::string &id)
{
    const Project bad = fixtureProject(violate);
    EXPECT_TRUE(legacyDiags(bad).empty())
        << id << ": a v1-v3 family already sees the seeded bug: "
        << ::testing::PrintToString(messages(legacyDiags(bad)));
    const std::vector<Diagnostic> found = lifetimeDiags(bad);
    ASSERT_EQ(found.size(), 1U)
        << id << ": "
        << ::testing::PrintToString(messages(found));
    EXPECT_EQ(found[0].id, id);

    const Project good = fixtureProject(clean);
    EXPECT_TRUE(lifetimeDiags(good).empty())
        << id << " clean twin: "
        << ::testing::PrintToString(messages(lifetimeDiags(good)));
}

// ================= region lattice =================

TEST(RegionLattice, RankOrderMatchesLifetimeOrder)
{
    struct Row
    {
        lm::Region region;
        int rank;
        std::string_view name;
    };
    const Row rows[] = {
        {lm::Region::Temporary, 0, "temporary"},
        {lm::Region::Local, 1, "local"},
        {lm::Region::Param, 2, "param"},
        {lm::Region::Field, 3, "field"},
        {lm::Region::Global, 4, "global"},
        {lm::Region::Unknown, 5, "unknown"},
    };
    for (const Row &row : rows) {
        EXPECT_EQ(lm::regionRank(row.region), row.rank) << row.name;
        EXPECT_EQ(lm::regionName(row.region), row.name);
    }
}

TEST(RegionLattice, OutlivesIsTheRankOrder)
{
    const lm::Region all[] = {
        lm::Region::Temporary, lm::Region::Local,
        lm::Region::Param,     lm::Region::Field,
        lm::Region::Global,    lm::Region::Unknown,
    };
    for (lm::Region longer : all)
        for (lm::Region shorter : all)
            EXPECT_EQ(lm::outlives(longer, shorter),
                      lm::regionRank(longer) >=
                          lm::regionRank(shorter))
                << lm::regionName(longer) << " vs "
                << lm::regionName(shorter);
    // The load-bearing corner: Unknown outlives everything, so a
    // name the model cannot place NEVER produces a finding.
    for (lm::Region r : all)
        EXPECT_TRUE(lm::outlives(lm::Region::Unknown, r));
}

TEST(RegionLattice, RegionOfClassifiesEveryStorageKind)
{
    const Project p = projectOf(
        {{"src/a.cc",
          "namespace { double gTotal = 0.0; }\n"
          "class Meter\n"
          "{\n"
          "  public:\n"
          "    double mix(const double &byRef, double byVal)\n"
          "    {\n"
          "        double local = byVal;\n"
          "        count_ = count_ + 1;\n"
          "        gTotal = gTotal + local;\n"
          "        return local + byRef + mystery;\n"
          "    }\n"
          "  private:\n"
          "    long count_ = 0;\n"
          "};\n"}});
    const FunctionDef &f = fn(p, "mix");
    const df::Cfg cfg = df::buildCfg(
        p.tokens(f.fileIndex), f.bodyBegin, f.bodyEnd);
    const std::set<std::string> locals =
        lm::localsOf(p.tokens(f.fileIndex), cfg);

    struct Row
    {
        std::string name;
        lm::Region region;
    };
    const Row rows[] = {
        {"local", lm::Region::Local},
        {"byVal", lm::Region::Local}, // by-value param = own frame
        {"byRef", lm::Region::Param},
        {"count_", lm::Region::Field},
        {"this", lm::Region::Field},
        {"gTotal", lm::Region::Global},
        {"mystery", lm::Region::Unknown},
    };
    for (const Row &row : rows)
        EXPECT_EQ(lm::regionOf(p.index(), f, locals, row.name),
                  row.region)
            << row.name;
}

TEST(RegionLattice, TypeNamePredicates)
{
    struct Row
    {
        std::string_view name;
        bool view, owner;
    };
    const Row rows[] = {
        {"string_view", true, false}, {"span", true, false},
        {"string", false, true},      {"vector", false, true},
        {"double", false, false},     {"Volts", false, false},
    };
    for (const Row &row : rows) {
        EXPECT_EQ(lm::isViewTypeName(row.name), row.view)
            << row.name;
        EXPECT_EQ(lm::isOwnerTypeName(row.name), row.owner)
            << row.name;
    }
    EXPECT_TRUE(lm::isInvalidatingMemberName("push_back"));
    EXPECT_TRUE(lm::isInvalidatingMemberName("erase"));
    EXPECT_FALSE(lm::isInvalidatingMemberName("size"));
    EXPECT_TRUE(lm::isReinitMemberName("clear"));
    EXPECT_FALSE(lm::isReinitMemberName("push_back"));
    EXPECT_TRUE(lm::isInsertingMemberName("push_back"));
    EXPECT_FALSE(lm::isInsertingMemberName("erase"));
}

// ================= function summaries =================

TEST(LifetimeModel, ReturnInfoSurvivesAnIncludeBlock)
{
    // Regression: directive tokens are not scrubbed, so the return
    // type of the FIRST function after an include block used to
    // parse as "include".
    const Project p = projectOf(
        {{"src/a.cc",
          "#include <string>\n"
          "#include <string_view>\n"
          "std::string_view viewer() { return {}; }\n"
          "std::string owner() { return {}; }\n"
          "const std::string &refer(const std::string &s)\n"
          "{ return s; }\n"
          "constexpr int answer() { return 42; }\n"}});
    const lm::FunctionLifetime &viewer =
        p.lifetime().of(fnId(p, "viewer"));
    EXPECT_EQ(viewer.ret.type, "string_view");
    EXPECT_TRUE(viewer.ret.isView);
    EXPECT_FALSE(viewer.ret.byRef);
    const lm::FunctionLifetime &owner =
        p.lifetime().of(fnId(p, "owner"));
    EXPECT_TRUE(owner.ret.isOwner);
    EXPECT_FALSE(owner.ret.byRef);
    const lm::FunctionLifetime &refer =
        p.lifetime().of(fnId(p, "refer"));
    EXPECT_TRUE(refer.ret.byRef);
    EXPECT_TRUE(p.lifetime().of(fnId(p, "answer")).isConstexpr);
}

TEST(LifetimeModel, MoveSummaryPropagatesWithProvenance)
{
    const Project p = projectOf(
        {{"src/a.cc",
          "#include <string>\n"
          "#include <utility>\n"
          "#include <vector>\n"
          "namespace { std::vector<std::string> gLog; }\n"
          "void sink(std::string &s)\n"
          "{ gLog.push_back(std::move(s)); }\n"
          "void relay(std::string &s) { sink(s); }\n"}});
    const lm::FunctionLifetime &sink =
        p.lifetime().of(fnId(p, "sink"));
    EXPECT_EQ(sink.movesParams.count(0), 1U);
    const lm::FunctionLifetime &relay =
        p.lifetime().of(fnId(p, "relay"));
    EXPECT_EQ(relay.movesParams.count(0), 1U);
    ASSERT_EQ(relay.moveVia.count(0), 1U);
    EXPECT_EQ(relay.moveVia.at(0), "via sink");
}

TEST(LifetimeModel, EscapeAndMutateSummaries)
{
    const Project p = projectOf(
        {{"src/a.cc",
          "#include <vector>\n"
          "namespace { std::vector<const double *> gSlots; }\n"
          "void keep(const double *slot)\n"
          "{ gSlots.push_back(slot); }\n"
          "void grow(std::vector<int> &v) { v.push_back(1); }\n"
          "void peek(const std::vector<int> &v) { v.size(); }\n"}});
    EXPECT_EQ(
        p.lifetime().of(fnId(p, "keep")).escapesParams.count(0),
        1U);
    EXPECT_EQ(
        p.lifetime().of(fnId(p, "grow")).mutatesParams.count(0),
        1U);
    const lm::FunctionLifetime &peek =
        p.lifetime().of(fnId(p, "peek"));
    EXPECT_TRUE(peek.mutatesParams.empty())
        << "const receiver must not count as mutation";
    EXPECT_TRUE(peek.escapesParams.empty());
}

TEST(LifetimeModel, GlobalInitDynamicClassification)
{
    const Project p = projectOf(
        {{"src/a.cc",
          "int plain = 8;\n"
          "constexpr int fold() { return 4; }\n"
          "int folded = fold();\n"
          "int runtime();\n"
          "int eager = runtime();\n"
          "int runtime() { return 5; }\n"}});
    struct Row
    {
        std::string name;
        bool dynamic;
    };
    const Row rows[] = {
        {"plain", false},  // literal: constant-initialized
        {"folded", false}, // constexpr call folds at compile time
        {"eager", true},   // non-constexpr call: dynamic init
    };
    for (const Row &row : rows) {
        const auto &idx = p.lifetime().initsOf(row.name);
        ASSERT_EQ(idx.size(), 1U) << row.name;
        EXPECT_EQ(p.lifetime()
                      .globalInits()[static_cast<std::size_t>(
                          idx.front())]
                      .dynamic,
                  row.dynamic)
            << row.name;
    }
}

TEST(LifetimeModel, DefaultArgumentsAreNotGlobalInits)
{
    // Regression: a default argument inside a function parameter
    // list (`int instrs = defaultInstrs`) used to be scanned as a
    // namespace-scope initializer, inventing init-order readers.
    const Project p = projectOf(
        {{"src/a.cc",
          "int defaultInstrs();\n"
          "double hash01(unsigned long seed, unsigned long a,\n"
          "              unsigned long b = 0);\n"
          "int spec(int instrs = defaultInstrs());\n"}});
    EXPECT_TRUE(p.lifetime().initsOf("b").empty());
    EXPECT_TRUE(p.lifetime().initsOf("instrs").empty());
    std::vector<Diagnostic> diags;
    checkInitOrder(p, diags);
    EXPECT_TRUE(diags.empty())
        << ::testing::PrintToString(messages(diags));
}

// ================= fixture corpus =================

TEST(LifetimeFixtures, UseAfterMoveThroughSinkParameter)
{
    expectPair({"uam_use_violate.cc"}, {"uam_use_clean.cc"},
               "use-after-move.use");
}

TEST(LifetimeFixtures, DoubleMoveAcrossLoopBackEdge)
{
    expectPair({"uam_double_violate.cc"}, {"uam_double_clean.cc"},
               "use-after-move.double-move");
}

TEST(LifetimeFixtures, ViewReturnOfLocalStorage)
{
    expectPair({"dview_return_violate.cc"},
               {"dview_return_clean.cc"},
               "dangling-view.return-local");
}

TEST(LifetimeFixtures, ViewBoundToOwningTemporary)
{
    expectPair({"dview_temp_violate.cc"}, {"dview_temp_clean.cc"},
               "dangling-view.bind-temporary");
}

TEST(LifetimeFixtures, LocalAddressEscapesThroughRegistry)
{
    expectPair({"dview_escape_violate.cc"},
               {"dview_escape_clean.cc"},
               "dangling-view.escape-local");
}

TEST(LifetimeFixtures, ReferenceStaleAfterCalleeMutation)
{
    expectPair({"iterinv_use_violate.cc"}, {"iterinv_use_clean.cc"},
               "iterator-invalidation.use-after-mutate");
}

TEST(LifetimeFixtures, RangeForBodyGrowsItsOwnRange)
{
    expectPair({"iterinv_loop_violate.cc"},
               {"iterinv_loop_clean.cc"},
               "iterator-invalidation.mutate-while-iterating");
}

TEST(LifetimeFixtures, CrossTuDynamicInitRead)
{
    expectPair({"initorder_a_violate.cc", "initorder_b_violate.cc"},
               {"initorder_a_clean.cc", "initorder_b_clean.cc"},
               "init-order.cross-tu");
}

TEST(LifetimeFixtures, CrossTuReadHiddenBehindACall)
{
    expectPair({"initorder_call_a_violate.cc",
                "initorder_call_b_violate.cc"},
               {"initorder_call_a_clean.cc",
                "initorder_call_b_clean.cc"},
               "init-order.via-call");
}

// ================= family mechanics =================

TEST(LifetimeFamilies, WaiversSuppressEachFamily)
{
    const Project p = projectOf(
        {{"src/a.cc",
          "#include <string>\n"
          "#include <string_view>\n"
          "std::string_view label()\n"
          "{\n"
          "    std::string buf = \"node\";\n"
          "    // vsgpu-lint: view-ok(caller copies immediately)\n"
          "    return buf;\n"
          "}\n"}});
    std::vector<Diagnostic> diags;
    checkDanglingView(p, diags);
    EXPECT_TRUE(diags.empty())
        << ::testing::PrintToString(messages(diags));
}

TEST(LifetimeFamilies, DedupeKeepsTheHighestPriorityFamily)
{
    std::vector<Diagnostic> diags = {
        {"src/a.cc", 7, Check::DanglingView, "view msg",
         "dangling-view.escape-local", 5},
        {"src/a.cc", 7, Check::UseAfterMove, "move msg",
         "use-after-move.use", 5},
        {"src/a.cc", 9, Check::DanglingView, "other line",
         "dangling-view.escape-local", 5},
    };
    dedupeFamilyOverlap(diags);
    std::set<std::string> ids;
    for (const Diagnostic &d : diags)
        ids.insert(d.id);
    EXPECT_EQ(ids.count("use-after-move.use"), 1U);
    EXPECT_EQ(diags.size(), 2U)
        << "same-line dangling-view must yield to use-after-move";
}

TEST(LifetimeFamilies, NewFamiliesAreRegistered)
{
    struct Row
    {
        Check check;
        std::string_view name;
    };
    const Row rows[] = {
        {Check::UseAfterMove, "use-after-move"},
        {Check::DanglingView, "dangling-view"},
        {Check::IterInvalidation, "iterator-invalidation"},
        {Check::InitOrder, "init-order"},
    };
    for (const Row &row : rows) {
        EXPECT_EQ(checkName(row.check), row.name);
        EXPECT_TRUE(isProjectCheck(row.check)) << row.name;
        Check parsed = Check::UnitSafety;
        EXPECT_TRUE(parseCheckName(row.name, parsed)) << row.name;
        EXPECT_EQ(parsed, row.check);
    }
}

} // namespace
