/**
 * @file
 * Tests for the vsgpu_lint core library (tools/lint).
 *
 * Two layers: fixture files under tests/lint/fixtures/ exercise each
 * check family end-to-end (one violating and one clean file per
 * family), and inline sources pin down the lexer, waiver, scoping,
 * baseline, and compile-database plumbing the driver relies on.
 */

#include "lint.hh"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace vsgpu::lint;

namespace
{

SourceFile
fixture(const std::string &name)
{
    const std::string path =
        std::string(VSGPU_LINT_FIXTURE_DIR) + "/" + name;
    return loadSource(path, "tests/lint/fixtures/" + name);
}

std::vector<std::string>
messages(const std::vector<Diagnostic> &diags)
{
    std::vector<std::string> out;
    out.reserve(diags.size());
    for (const Diagnostic &d : diags)
        out.push_back(d.message);
    return out;
}

bool
anyMentions(const std::vector<Diagnostic> &diags,
            std::string_view needle)
{
    return std::any_of(
        diags.begin(), diags.end(), [&](const Diagnostic &d) {
            return d.message.find(needle) != std::string::npos;
        });
}

// ================= fixture round-trips =================

TEST(LintUnitSafety, ViolatingFixture)
{
    const SourceFile src = fixture("unit_violate.hh");
    std::vector<Diagnostic> diags;
    checkUnitSafety(src, diags);
    EXPECT_EQ(diags.size(), 4U) << ::testing::PrintToString(
        messages(diags));
    EXPECT_TRUE(anyMentions(diags, "'supplyVolts'"));
    EXPECT_TRUE(anyMentions(diags, "'loadAmps'"));
    EXPECT_TRUE(anyMentions(diags, "'railOhms'"));
    EXPECT_TRUE(anyMentions(diags, "'freqHz'"));
    for (const Diagnostic &d : diags) {
        EXPECT_EQ(d.check, Check::UnitSafety);
        EXPECT_EQ(d.file, "tests/lint/fixtures/unit_violate.hh");
        EXPECT_GT(d.line, 0);
    }
}

TEST(LintUnitSafety, CleanFixture)
{
    const SourceFile src = fixture("unit_clean.hh");
    std::vector<Diagnostic> diags;
    checkUnitSafety(src, diags);
    EXPECT_TRUE(diags.empty()) << ::testing::PrintToString(
        messages(diags));
}

TEST(LintDeterminism, ViolatingFixture)
{
    const SourceFile src = fixture("det_violate.cc");
    std::vector<Diagnostic> diags;
    checkDeterminism(src, CheckOptions{}, diags);
    EXPECT_EQ(diags.size(), 4U) << ::testing::PrintToString(
        messages(diags));
    EXPECT_TRUE(anyMentions(diags, "'srand'"));
    EXPECT_TRUE(anyMentions(diags, "'rand'"));
    EXPECT_TRUE(anyMentions(diags, "now()"));
    EXPECT_TRUE(anyMentions(diags, "unordered container"));
}

TEST(LintDeterminism, CleanFixture)
{
    const SourceFile src = fixture("det_clean.cc");
    std::vector<Diagnostic> diags;
    checkDeterminism(src, CheckOptions{}, diags);
    EXPECT_TRUE(diags.empty()) << ::testing::PrintToString(
        messages(diags));
}

TEST(LintDeterminism, IostreamViolatingFixture)
{
    const SourceFile src = fixture("iostream_violate.cc");
    std::vector<Diagnostic> diags;
    checkDeterminism(src, CheckOptions{}, diags);
    // std::cout, std::cerr, the using-declaration of std::clog, and
    // the unqualified clog write.
    EXPECT_EQ(diags.size(), 4U) << ::testing::PrintToString(
        messages(diags));
    EXPECT_TRUE(anyMentions(diags, "std::cout"));
    EXPECT_TRUE(anyMentions(diags, "std::cerr"));
    EXPECT_TRUE(anyMentions(diags, "std::clog"));
    for (const Diagnostic &d : diags)
        EXPECT_EQ(d.check, Check::Determinism);
}

TEST(LintDeterminism, IostreamCleanFixture)
{
    const SourceFile src = fixture("iostream_clean.cc");
    std::vector<Diagnostic> diags;
    checkDeterminism(src, CheckOptions{}, diags);
    EXPECT_TRUE(diags.empty()) << ::testing::PrintToString(
        messages(diags));
}

TEST(LintDeterminism, IostreamAllowlistPermitsWriters)
{
    const std::string code = "void f() { std::cout << 1; }\n";
    std::vector<Diagnostic> diags;
    checkDeterminism(SourceFile("src/common/logging.cc", code),
                     CheckOptions{}, diags);
    EXPECT_TRUE(diags.empty());
    checkDeterminism(SourceFile("src/circuit/wave_writer.cc", code),
                     CheckOptions{}, diags);
    EXPECT_TRUE(diags.empty());
    checkDeterminism(SourceFile("src/sim/cosim.cc", code),
                     CheckOptions{}, diags);
    EXPECT_EQ(diags.size(), 1U);
}

TEST(LintPoolConcurrency, ViolatingFixture)
{
    const SourceFile src = fixture("pool_violate.cc");
    std::vector<Diagnostic> diags;
    checkPoolConcurrency(src, diags);
    EXPECT_EQ(diags.size(), 2U) << ::testing::PrintToString(
        messages(diags));
    EXPECT_TRUE(anyMentions(diags, "'total'"));
    EXPECT_TRUE(anyMentions(diags, "'events'"));
}

TEST(LintPoolConcurrency, CleanFixture)
{
    const SourceFile src = fixture("pool_clean.cc");
    std::vector<Diagnostic> diags;
    checkPoolConcurrency(src, diags);
    EXPECT_TRUE(diags.empty()) << ::testing::PrintToString(
        messages(diags));
}

TEST(LintPoolConcurrency, ConstByRefCapturesAreNotWrites)
{
    // False-positive regression: const locals captured by reference
    // and by-ref captures that are only read must stay quiet.
    const SourceFile src = fixture("pool_constref_clean.cc");
    std::vector<Diagnostic> diags;
    checkPoolConcurrency(src, diags);
    EXPECT_TRUE(diags.empty()) << ::testing::PrintToString(
        messages(diags));
}

TEST(LintPoolConcurrency, StructuredBindingsAndCommaDeclsAreLocal)
{
    // False-positive regression: `auto [lo, hi] = ...` and
    // `double a = 0, b = 0;` declare task-local names.
    const SourceFile src = fixture("pool_readonly_clean.cc");
    std::vector<Diagnostic> diags;
    checkPoolConcurrency(src, diags);
    EXPECT_TRUE(diags.empty()) << ::testing::PrintToString(
        messages(diags));
}

TEST(LintContracts, ViolatingFixture)
{
    const SourceFile src = fixture("contract_violate.cc");
    std::vector<Diagnostic> diags;
    checkContracts(src, diags);
    EXPECT_EQ(diags.size(), 2U) << ::testing::PrintToString(
        messages(diags));
}

TEST(LintContracts, CleanFixture)
{
    const SourceFile src = fixture("contract_clean.cc");
    std::vector<Diagnostic> diags;
    checkContracts(src, diags);
    EXPECT_TRUE(diags.empty()) << ::testing::PrintToString(
        messages(diags));
}

TEST(LintRawEscape, ViolatingFixture)
{
    const SourceFile src = fixture("raw_violate.cc");
    std::vector<Diagnostic> diags;
    checkRawEscape(src, diags);
    // leakByDot + leakByArrow fire; the waived call and the
    // near-miss shapes (free raw(), member raw(arg)) do not.
    EXPECT_EQ(diags.size(), 2U) << ::testing::PrintToString(
        messages(diags));
    for (const Diagnostic &d : diags) {
        EXPECT_EQ(d.check, Check::RawEscape);
        EXPECT_EQ(d.file, "tests/lint/fixtures/raw_violate.cc");
        EXPECT_GT(d.line, 0);
    }
}

TEST(LintRawEscape, CleanFixture)
{
    const SourceFile src = fixture("raw_clean.cc");
    std::vector<Diagnostic> diags;
    checkRawEscape(src, diags);
    EXPECT_TRUE(diags.empty()) << ::testing::PrintToString(
        messages(diags));
}

// ================= lexer =================

TEST(LintLexer, ScrubBlanksCommentsAndStrings)
{
    const SourceFile src(
        "scrub.cc",
        "int x = 1; // rand()\n"
        "const char *s = \"std::rand()\"; /* time(0) */\n");
    EXPECT_EQ(src.code().size(), src.text().size());
    EXPECT_EQ(src.code().find("rand"), std::string::npos);
    EXPECT_EQ(src.code().find("time"), std::string::npos);
    // Newlines survive so line numbers stay aligned.
    EXPECT_EQ(std::count(src.code().begin(), src.code().end(), '\n'),
              std::count(src.text().begin(), src.text().end(), '\n'));
}

TEST(LintLexer, DigitSeparatorIsNotACharLiteral)
{
    const SourceFile src("sep.cc",
                         "long n = 1'000'000; int y = rand();\n");
    // The separators must not swallow "rand" as char-literal text.
    EXPECT_NE(src.code().find("rand"), std::string::npos);
    std::vector<Diagnostic> diags;
    checkDeterminism(src, CheckOptions{}, diags);
    EXPECT_EQ(diags.size(), 1U);
}

TEST(LintLexer, MultiCharOperators)
{
    const std::vector<Token> toks = tokenize("a <<= b->c::d;");
    std::vector<std::string> texts;
    for (const Token &t : toks)
        texts.emplace_back(t.text);
    EXPECT_EQ(texts,
              (std::vector<std::string>{"a", "<<=", "b", "->", "c",
                                        "::", "d", ";"}));
}

// ================= waivers and scoping =================

TEST(LintWaiver, LineAboveApplies)
{
    const SourceFile src(
        "src/pdn/w.hh",
        "// vsgpu-lint: raw-ok(fixture)\n"
        "double busVolts = 1.0;\n"
        "double railVolts = 1.0;\n");
    std::vector<Diagnostic> diags;
    checkUnitSafety(src, diags);
    // Line 2 is waived by line 1; line 3 is not.
    ASSERT_EQ(diags.size(), 1U);
    EXPECT_EQ(diags[0].line, 3);
}

TEST(LintScope, FamiliesScopeByPath)
{
    // unit-safety polices converted headers only.
    EXPECT_TRUE(
        checkAppliesTo(Check::UnitSafety, "src/pdn/vs_pdn.hh"));
    EXPECT_FALSE(
        checkAppliesTo(Check::UnitSafety, "src/pdn/vs_pdn.cc"));
    EXPECT_FALSE(
        checkAppliesTo(Check::UnitSafety, "src/gpu/sm.hh"));
    // determinism polices all simulation sources.
    EXPECT_TRUE(
        checkAppliesTo(Check::Determinism, "src/gpu/sm.cc"));
    EXPECT_FALSE(
        checkAppliesTo(Check::Determinism, "bench/fig07.cc"));
    // pool-concurrency includes bench/ and tools/.
    EXPECT_TRUE(
        checkAppliesTo(Check::PoolConcurrency, "bench/fig07.cc"));
    // contracts apply everywhere.
    EXPECT_TRUE(
        checkAppliesTo(Check::Contracts, "tests/foo/bar.cc"));
    // raw-escape polices src/ outside the numeric core.
    EXPECT_TRUE(
        checkAppliesTo(Check::RawEscape, "src/control/controller.cc"));
    EXPECT_TRUE(checkAppliesTo(Check::RawEscape, "src/pdn/vs_pdn.cc"));
    EXPECT_FALSE(
        checkAppliesTo(Check::RawEscape, "src/circuit/transient.cc"));
    EXPECT_FALSE(checkAppliesTo(Check::RawEscape, "src/verify/erc.cc"));
    EXPECT_FALSE(
        checkAppliesTo(Check::RawEscape, "src/common/quantity.hh"));
    EXPECT_FALSE(
        checkAppliesTo(Check::RawEscape, "src/sim/cosim.cc"));
    EXPECT_FALSE(
        checkAppliesTo(Check::RawEscape, "bench/ctl_stability.cc"));
}

TEST(LintScope, EntropyAllowlistPermitsSeededFactory)
{
    const std::string code = "std::random_device rd;\n";
    std::vector<Diagnostic> diags;
    checkDeterminism(SourceFile("src/common/random.cc", code),
                     CheckOptions{}, diags);
    EXPECT_TRUE(diags.empty());
    checkDeterminism(SourceFile("src/sim/cosim.cc", code),
                     CheckOptions{}, diags);
    EXPECT_EQ(diags.size(), 1U);
}

// ================= baseline =================

TEST(LintBaseline, FingerprintSqueezesWhitespace)
{
    const Diagnostic d{"src/a.hh", 7, Check::UnitSafety, "msg", ""};
    EXPECT_EQ(fingerprint(d, "  double   x ;"),
              fingerprint(d, "double x ;"));
    EXPECT_EQ(fingerprint(d, "double x;").find("unit-safety|"), 0U);
}

TEST(LintBaseline, EachEntryAbsorbsOneDiagnostic)
{
    const SourceFile src("src/pdn/b.hh",
                         "double busVolts = 1.0;\n"
                         "double railVolts = 1.0;\n");
    std::vector<Diagnostic> diags;
    checkUnitSafety(src, diags);
    ASSERT_EQ(diags.size(), 2U);

    const std::vector<SourceFile> sources{src};
    // Baseline one of the two findings; the other stays fresh.
    const std::vector<std::string> baseline{
        fingerprint(diags[0], src.lineText(diags[0].line))};
    const auto fresh = subtractBaseline(diags, sources, baseline);
    ASSERT_EQ(fresh.size(), 1U);
    EXPECT_EQ(fresh[0].line, 2);
}

TEST(LintBaseline, StableAcrossLineShift)
{
    const SourceFile before("src/pdn/c.hh",
                            "double busVolts = 1.0;\n");
    std::vector<Diagnostic> diags;
    checkUnitSafety(before, diags);
    ASSERT_EQ(diags.size(), 1U);
    const std::vector<std::string> baseline{
        fingerprint(diags[0], before.lineText(diags[0].line))};

    // The same declaration two lines further down still matches.
    const SourceFile after("src/pdn/c.hh",
                           "// new comment\n\n"
                           "double busVolts = 1.0;\n");
    std::vector<Diagnostic> shifted;
    checkUnitSafety(after, shifted);
    ASSERT_EQ(shifted.size(), 1U);
    EXPECT_EQ(shifted[0].line, 3);
    const auto fresh = subtractBaseline(
        shifted, std::vector<SourceFile>{after}, baseline);
    EXPECT_TRUE(fresh.empty());
}

// ================= compile database =================

TEST(LintCompileDb, ParsesDirectoryAndFile)
{
    const std::string path =
        ::testing::TempDir() + "/vsgpu_lint_cdb_test.json";
    {
        std::ofstream out(path);
        out << "[{\"directory\": \"/tmp/build\",\n"
               "  \"command\": \"g++ -c a.cc -o a.o\",\n"
               "  \"file\": \"../src/a.cc\",\n"
               "  \"output\": \"a.o\"},\n"
               " {\"directory\": \"/tmp/build\",\n"
               "  \"arguments\": [\"g++\", \"-c\", \"b.cc\"],\n"
               "  \"file\": \"/abs/b.cc\"}]\n";
    }
    const auto commands = readCompileCommands(path);
    std::remove(path.c_str());
    ASSERT_EQ(commands.size(), 2U);
    EXPECT_EQ(commands[0].directory, "/tmp/build");
    EXPECT_EQ(commands[0].file, "../src/a.cc");
    EXPECT_EQ(commands[1].file, "/abs/b.cc");
}

TEST(LintCompileDb, ParseErrorNamesTheDatabase)
{
    const std::string path =
        ::testing::TempDir() + "/vsgpu_lint_bad_cdb.json";
    {
        std::ofstream out(path);
        out << "[{\"directory\": oops}]";
    }
    bool threw = false;
    try {
        readCompileCommands(path);
    } catch (const std::exception &err) {
        threw = true;
        EXPECT_NE(std::string(err.what()).find(path),
                  std::string::npos)
            << err.what();
    }
    std::remove(path.c_str());
    EXPECT_TRUE(threw);
}

TEST(LintChecks, NameRoundTrip)
{
    for (Check c : kAllChecks) {
        Check parsed{};
        ASSERT_TRUE(parseCheckName(checkName(c), parsed));
        EXPECT_EQ(parsed, c);
    }
    Check parsed{};
    EXPECT_FALSE(parseCheckName("no-such-check", parsed));
}

TEST(LintChecks, ProjectChecksAreTheSemanticFamilies)
{
    EXPECT_TRUE(isProjectCheck(Check::PoolEscape));
    EXPECT_TRUE(isProjectCheck(Check::UnitFlow));
    EXPECT_TRUE(isProjectCheck(Check::DeterminismTaint));
    EXPECT_FALSE(isProjectCheck(Check::UnitSafety));
    EXPECT_FALSE(isProjectCheck(Check::PoolConcurrency));
}

// ================= runChecks plumbing =================

TEST(LintRunChecks, ScopedSweepSkipsOutOfScopeFamilies)
{
    // A .cc path: unit-safety must not run in a scoped sweep...
    const SourceFile src("src/pdn/x.cc", "double busVolts = 1.0;\n");
    std::vector<Diagnostic> diags;
    runChecks(src,
              {Check::UnitSafety, Check::Determinism,
               Check::PoolConcurrency, Check::Contracts},
              CheckOptions{}, /*ignoreScope=*/false, diags);
    EXPECT_TRUE(diags.empty());
    // ...but explicit file arguments bypass scoping.
    runChecks(src, {Check::UnitSafety}, CheckOptions{},
              /*ignoreScope=*/true, diags);
    EXPECT_EQ(diags.size(), 1U);
}

// ================= semantic-family scoping =================

TEST(LintScope, SemanticFamiliesScopeByPath)
{
    EXPECT_TRUE(
        checkAppliesTo(Check::PoolEscape, "src/exec/pool.cc"));
    EXPECT_TRUE(checkAppliesTo(Check::PoolEscape, "bench/fig07.cc"));
    EXPECT_FALSE(
        checkAppliesTo(Check::PoolEscape, "tests/exec/t.cc"));
    // unit-flow shares the raw-escape scope: the numeric core is
    // allowed to work in raw doubles.
    EXPECT_TRUE(
        checkAppliesTo(Check::UnitFlow, "src/control/controller.cc"));
    EXPECT_FALSE(
        checkAppliesTo(Check::UnitFlow, "src/circuit/transient.cc"));
    EXPECT_TRUE(
        checkAppliesTo(Check::DeterminismTaint, "src/sim/engine.cc"));
    EXPECT_FALSE(
        checkAppliesTo(Check::DeterminismTaint, "bench/fig07.cc"));
}

// ================= SARIF output =================

TEST(LintSarif, EmitsRulesAndResults)
{
    const std::vector<Diagnostic> diags = {
        {"src/a.cc", 3, Check::PoolEscape, "race on 'x'",
         "pool-escape.capture-write"},
        {"src/b.cc", 9, Check::UnitSafety, "raw double", ""},
    };
    std::ostringstream os;
    writeSarif(os, diags);
    const std::string sarif = os.str();
    EXPECT_NE(sarif.find("\"version\": \"2.1.0\""),
              std::string::npos);
    // Rules: the diagnostic id when present, family name otherwise.
    EXPECT_NE(sarif.find("pool-escape.capture-write"),
              std::string::npos);
    EXPECT_NE(sarif.find("\"unit-safety\""), std::string::npos);
    EXPECT_NE(sarif.find("race on 'x'"), std::string::npos);
    EXPECT_NE(sarif.find("\"uri\": \"src/a.cc\""),
              std::string::npos);
    EXPECT_NE(sarif.find("\"startLine\": 3"), std::string::npos);
}

TEST(LintSarif, EscapesJsonSpecials)
{
    const std::vector<Diagnostic> diags = {
        {"src/a.cc", 1, Check::Determinism,
         "quote \" backslash \\ newline \n done", ""},
    };
    std::ostringstream os;
    writeSarif(os, diags);
    const std::string sarif = os.str();
    EXPECT_NE(sarif.find("quote \\\" backslash \\\\ newline \\n"),
              std::string::npos);
}

// ================= fingerprints with ids =================

TEST(LintBaseline, DiagnosticIdHeadsTheFingerprint)
{
    const Diagnostic d{"src/a.cc", 4, Check::PoolEscape, "msg",
                       "pool-escape.global-write"};
    EXPECT_EQ(fingerprint(d, "g = 1;")
                  .find("pool-escape.global-write|"),
              0U);
}

TEST(LintBaseline, FingerprintSurvivesWhitespaceRefactor)
{
    // Re-indenting a file must not invalidate baseline entries: the
    // fingerprint squeezes runs of whitespace in the quoted line and
    // never includes the line number.
    const Diagnostic before{"src/a.cc", 10, Check::UnitFlow, "m",
                            "unit-flow.mixed-units"};
    const Diagnostic after{"src/a.cc", 42, Check::UnitFlow, "m",
                           "unit-flow.mixed-units"};
    EXPECT_EQ(fingerprint(before, "total = r   + l;"),
              fingerprint(after, "    total = r + l;"));
}

} // namespace
