// vsgpu_lint fixture: two call sites nesting the same two mutexes in
// the SAME order project-wide — a chain, not a cycle, so the
// lock-order family stays quiet.
#include <mutex>

std::mutex gMuQueue;
std::mutex gMuStats;

namespace
{
double gDepth = 0.0;
double gSnapshot = 0.0;
} // namespace

void
drainAndCount(double d)
{
    std::lock_guard<std::mutex> queue(gMuQueue);
    std::lock_guard<std::mutex> stats(gMuStats);
    gDepth = d;
}

void
snapshotThenDrain(double d)
{
    std::lock_guard<std::mutex> queue(gMuQueue);
    std::lock_guard<std::mutex> stats(gMuStats);
    gSnapshot = d;
}
