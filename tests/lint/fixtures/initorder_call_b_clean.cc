// vsgpu_lint fixture (file B of a two-TU pair): the provider global
// is initialized from a literal — static initialization, no dynamic
// phase, no ordering hazard for cross-TU readers.
int gDepth = 8; // constant-initialized
