// vsgpu_lint fixture (file B of a two-TU pair): the provider TU.
// gWidth is DYNAMICALLY initialized (the call is not constexpr), so
// a cross-TU reader cannot assume it ran first.
int
defaultWidth()
{
    return 32;
}

int gWidth = defaultWidth(); // dynamic init: order is link-defined
