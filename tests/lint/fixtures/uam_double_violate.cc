// vsgpu_lint fixture: a loop body moves the SAME variable every
// iteration — after the first trip the move transfers an
// unspecified value (use-after-move.double-move).  The back edge of
// the CFG carries the moved-from state into the next iteration;
// straight-line token scanning cannot see the repeat.
#include <string>
#include <utility>
#include <vector>

void
drain(std::vector<std::string> &sink, std::string seed, int n)
{
    for (int i = 0; i < n; ++i)
        sink.push_back(std::move(seed)); // moved again next trip
}
