// vsgpu_lint fixture: determinism-clean patterns — explicit seeds,
// ordered containers, and a waived wall-clock read.
#include <chrono>
#include <cstdint>
#include <map>

std::uint64_t
splitSeed(std::uint64_t base, std::uint64_t index)
{
    return base ^ (index * 0x9E3779B97F4A7C15ULL);
}

double
orderedSum(const std::map<int, double> &weights)
{
    double total = 0.0;
    for (const auto &entry : weights)
        total += entry.second;
    return total;
}

long
benchTimestamp()
{
    // vsgpu-lint: nondet-ok(fixture: logged only, never simulated)
    return std::chrono::steady_clock::now().time_since_epoch().count();
}
