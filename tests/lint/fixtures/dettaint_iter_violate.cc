// vsgpu_lint fixture: iterating an unordered_map with a PLAIN
// assignment in the body — no accumulator, so the token-level
// unordered-iteration rule (which requires += / ++ in the loop) sees
// nothing.  Whichever element the hash order visits last wins, and
// that hash-ordered value then reaches a stats write: a flow only
// determinism-taint can follow.
#include <unordered_map>

struct ScalarStat
{
    void set(double v);
};
struct StatsGroup
{
    ScalarStat &scalar(const char *name);
};

void
exportLast(StatsGroup &group,
           const std::unordered_map<int, double> &samples)
{
    double last = 0.0;
    for (const auto &kv : samples) {
        last = kv.second;
    }
    group.scalar("last_sample").set(last);
}
