// vsgpu_lint fixture: each function below trips a determinism
// sub-rule.  tests/lint/test_lint.cc counts the findings.
#include <chrono>
#include <cstdlib>
#include <unordered_map>

int
jitterSeed()
{
    std::srand(42);
    return std::rand();
}

long
wallClockNs()
{
    return std::chrono::steady_clock::now().time_since_epoch().count();
}

double
hashOrderSum()
{
    std::unordered_map<int, double> weights;
    weights[1] = 0.5;
    double total = 0.0;
    for (const auto &entry : weights)
        total += entry.second;
    return total;
}
