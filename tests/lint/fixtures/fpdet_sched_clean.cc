// vsgpu_lint fixture: the deterministic reduction shape — each task
// writes its own slot, and the sum runs in index order after the
// join.  No lock, no schedule-dependent order, bitwise-identical at
// any job count.
#include <vector>

namespace exec
{
struct Pool
{
    template <typename F>
    void parallelFor(int n, F &&f);
};
} // namespace exec

double contribution(int i);

double
sumEnergy(exec::Pool &pool, int tasks)
{
    std::vector<double> part(static_cast<std::size_t>(tasks), 0.0);
    pool.parallelFor(tasks, [&part](int i) {
        part[static_cast<std::size_t>(i)] = contribution(i);
    });
    double total = 0.0;
    for (double p : part)
        total += p;
    return total;
}
