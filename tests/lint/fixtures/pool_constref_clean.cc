// vsgpu_lint fixture: false-positive regression for the token-level
// pool-concurrency family.  A const local captured by reference and
// a by-ref capture that is only ever READ are both safe — earlier
// versions of the checker flagged them as shared writes.
#include <vector>

struct Pool
{
    template <typename F>
    void parallelFor(int n, F &&f);
};

void
apply(Pool &pool, std::vector<double> &out,
      const std::vector<double> &in)
{
    const double gain = 1.5;
    double bias = 0.25;
    pool.parallelFor(static_cast<int>(out.size()), [&](int i) {
        const std::size_t k = static_cast<std::size_t>(i);
        out[k] = gain * in[k] + bias;
    });
}
