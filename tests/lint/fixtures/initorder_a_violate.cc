// vsgpu_lint fixture (file A of a two-TU pair): a namespace-scope
// global whose initializer READS a global that is dynamically
// initialized in ANOTHER translation unit — the read races the
// other TU's initializer, and the link order decides who wins
// (init-order.cross-tu, the static initialization order fiasco).
extern int gWidth;

int gArea = gWidth * gWidth; // may read gWidth before its init ran
