// vsgpu_lint fixture: a pointer address laundered through
// reinterpret_cast flows into a stats-registry write.  The
// token-level determinism family has no address rule and no flow
// tracking, so only determinism-taint can connect the source (in one
// function) to the sink (in another) via the return value.
#include <cstdint>

struct ScalarStat
{
    void set(double v);
};
struct StatsGroup
{
    ScalarStat &scalar(const char *name);
};

double
bufferKey(const int *buffer)
{
    double key = static_cast<double>(
        reinterpret_cast<std::uintptr_t>(buffer));
    return key;
}

void
exportKey(StatsGroup &group, const int *buffer)
{
    double key = bufferKey(buffer);
    group.scalar("buffer_key").set(key);
}
