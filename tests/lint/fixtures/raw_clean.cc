// vsgpu_lint fixture: raw-escape clean file.  Quantity values stay
// typed end to end; the only raw() spellings appear in comments and
// strings, which the scrubbed token scan must ignore: v.raw() here
// is commentary, not code.

struct Voltsish
{
    double value = 0.0;
};

Voltsish
add(Voltsish a, Voltsish b)
{
    const char *label = "sum without .raw() anywhere";
    (void)label;
    return Voltsish{a.value + b.value};
}
