// vsgpu_lint fixture: both operands reach the addition through
// UNSUFFIXED raw doubles, so the token-level unit-safety family sees
// nothing.  The unit-flow family tracks the Volts/Amps tags from the
// Quantity parameters through .raw() and the intermediates, and must
// flag the volts+amps meet.
struct Volts
{
    double raw() const;
};
struct Amps
{
    double raw() const;
};

double
headroom(Volts rail, Amps load)
{
    double r = rail.raw(); // vsgpu-lint: raw-escape-ok(fixture)
    double l = load.raw(); // vsgpu-lint: raw-escape-ok(fixture)
    double total = r + l;
    return total;
}
