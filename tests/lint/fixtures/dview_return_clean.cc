// vsgpu_lint fixture: returning the string BY VALUE transfers
// ownership to the caller; a view of a caller-owned parameter also
// outlives the frame.  Both shapes are silent.
#include <string>
#include <string_view>

std::string
label(int node)
{
    std::string buf = "node-";
    buf += std::to_string(node);
    return buf; // by value: ownership moves out
}

std::string_view
prefix(const std::string &text)
{
    std::string_view v = text; // borrows caller storage
    return v;
}
