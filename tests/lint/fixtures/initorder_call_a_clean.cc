// vsgpu_lint fixture (file A of a two-TU pair): the helper reads a
// CONSTANT-initialized foreign global — constant initialization
// completes before any dynamic initializer runs, so the call chain
// is ordered and silent.
extern int gDepth;

int
scaledDepth()
{
    return gDepth * 2;
}

int gScaled = scaledDepth(); // gDepth is constant-initialized: safe
