// vsgpu_lint fixture: the three sanctioned shared-write patterns —
// per-task-index slot, atomic target, and a lock held in the body.
#include <atomic>
#include <mutex>
#include <vector>

struct Pool
{
    template <typename F>
    void parallelFor(int n, F &&f);
};

void
gather(Pool &pool, int tasks)
{
    std::vector<double> results(static_cast<std::size_t>(tasks));
    std::atomic<long> done{0};
    std::mutex mu;
    double guarded = 0.0;
    pool.parallelFor(tasks, [&](int i) {
        results[i] = static_cast<double>(i);
        done += 1;
    });
    pool.parallelFor(tasks, [&](int i) {
        std::lock_guard<std::mutex> lock(mu);
        guarded += static_cast<double>(i);
    });
}
