// vsgpu_lint fixture: the same flag-then-data publication done
// right — a release store orders the payload write before the flag,
// so an acquire reader that sees the flag sees the data.
#include <atomic>

namespace
{
double gPayload = 0.0;
std::atomic<bool> gReady{false};
} // namespace

void
publish(double v)
{
    gPayload = v;
    gReady.store(true, std::memory_order_release);
}
