// vsgpu_lint fixture: the same move-sink helper, but the caller
// reinitializes the argument before reading it again — the
// moved-from state ends at the reassignment, so the family stays
// silent.
#include <string>
#include <utility>
#include <vector>

namespace
{
std::vector<std::string> gNames;
}

void
publishName(std::string &name)
{
    gNames.push_back(std::move(name));
}

std::size_t
record(std::string name)
{
    publishName(name);
    name = "sent";
    return name.size();
}
