// vsgpu_lint fixture: a reference obtained from a vector, then a
// helper IN ANOTHER FRAME grows the vector — reallocation moves the
// elements and the reference points at freed storage
// (iterator-invalidation.use-after-mutate).  The mutation is only
// visible through the callee's mutates-parameter summary.
#include <vector>

void
appendDefaults(std::vector<int> &v)
{
    v.push_back(1); // may reallocate
}

int
firstAfterGrow(std::vector<int> &v)
{
    int &slot = v.front();
    appendDefaults(v); // invalidates slot via reallocation
    return slot;       // read through a stale reference
}
