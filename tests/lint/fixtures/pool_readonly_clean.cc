// vsgpu_lint fixture: false-positive regression for the token-level
// pool-concurrency family.  Structured bindings and comma-form
// declarators inside the task body are task-LOCAL variables — writes
// to them are private to each task, not shared-state races.
#include <utility>
#include <vector>

struct Pool
{
    template <typename F>
    void parallelFor(int n, F &&f);
};

std::pair<double, double> bounds(int i);

void
spans(Pool &pool, std::vector<double> &out)
{
    pool.parallelFor(static_cast<int>(out.size()), [&](int i) {
        auto [lo, hi] = bounds(i);
        double mid = 0.0, width = 0.0;
        mid = (lo + hi) / 2.0;
        width = hi - lo;
        out[static_cast<std::size_t>(i)] = mid + width;
    });
}
