// vsgpu_lint fixture (file B of a two-TU pair): the provider TU with
// a dynamic initializer — computeDepth is not constexpr, so gDepth's
// value only exists once this TU's dynamic phase has run.
int
computeDepth()
{
    return 8;
}

int gDepth = computeDepth(); // dynamic init: order is link-defined
