// vsgpu_lint fixture: the pool task body looks clean — it only calls
// a helper.  Two calls down the chain, the helper writes a mutable
// global.  The token-level family never looks past the lambda body,
// so only the call-graph-aware pool-escape family can see the race.
namespace exec
{
struct Pool
{
    template <typename F>
    void parallelFor(int n, F &&f);
};
} // namespace exec

namespace
{
double gLastSample = 0.0;
} // namespace

void
recordSample(double v)
{
    gLastSample = v;
}

void
noteSample(int i)
{
    recordSample(static_cast<double>(i));
}

void
sweep(exec::Pool &pool, int tasks)
{
    pool.parallelFor(tasks, [](int i) { noteSample(i); });
}
