// vsgpu_lint fixture: the task calls helpers, but the only write two
// calls down is guarded by a lock, and the direct helper write goes
// to an atomic — both sanctioned patterns, so pool-escape stays
// quiet even through the call graph.
#include <atomic>
#include <mutex>

namespace exec
{
struct Pool
{
    template <typename F>
    void parallelFor(int n, F &&f);
};
} // namespace exec

namespace
{
std::atomic<long> gSampleCount{0};
double gGuardedTotal = 0.0;
std::mutex gTotalMutex;
} // namespace

void
addGuarded(double v)
{
    std::lock_guard<std::mutex> lock(gTotalMutex);
    gGuardedTotal += v;
}

void
noteSample(int i)
{
    gSampleCount += 1;
    addGuarded(static_cast<double>(i));
}

void
sweep(exec::Pool &pool, int tasks)
{
    pool.parallelFor(tasks, [](int i) { noteSample(i); });
}
