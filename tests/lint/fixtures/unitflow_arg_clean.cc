// vsgpu_lint fixture: argument tags that match the callee's
// expectation (amps into an amps parameter, untagged scale factor
// into an untagged parameter) pass unit-flow.
struct Amps
{
    double raw() const;
};

// vsgpu-lint: raw-ok(fixture: suffix carries the expectation tag)
double scaleCurrent(double loadAmps, double factor)
{
    return loadAmps * factor;
}

double
route(Amps load)
{
    double a = load.raw(); // vsgpu-lint: raw-escape-ok(fixture)
    return scaleCurrent(a, 2.0);
}
