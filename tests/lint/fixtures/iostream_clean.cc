// vsgpu_lint fixture: stdio-clean patterns — ostream parameters,
// members that merely share a stream's name, and a waived write.
#include <iostream>
#include <ostream>

void
printProgress(std::ostream &os, int step)
{
    os << "step " << step << "\n";
}

struct Channels
{
    int cout = 0; // a member named cout is not the stream
};

int
readMember(const Channels &c)
{
    return c.cout;
}

void
emergencyBanner()
{
    // vsgpu-lint: iostream-ok(fixture: pre-logging startup banner)
    std::cerr << "banner\n";
}
