// vsgpu_lint fixture: a function with a view return type hands back
// a LOCAL string — the view outlives the frame that owns the bytes
// (dangling-view.return-local).  No raw pointer appears anywhere, so
// the raw-resource token family has nothing to see.
#include <string>
#include <string_view>

std::string_view
label(int node)
{
    std::string buf = "node-";
    buf += std::to_string(node);
    return buf; // view into a dying frame
}
