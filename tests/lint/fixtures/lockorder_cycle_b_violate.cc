// vsgpu_lint fixture (pairs with lockorder_cycle_a_violate.cc): the
// opposite nesting order — gMuQueue taken while gMuStats is held.
// See the other file for why the pair deadlocks.
#include <mutex>

extern std::mutex gMuQueue;
extern std::mutex gMuStats;

namespace
{
double gSnapshot = 0.0;
} // namespace

void
snapshotThenDrain(double d)
{
    std::lock_guard<std::mutex> stats(gMuStats);
    std::lock_guard<std::mutex> queue(gMuQueue);
    gSnapshot = d;
}
