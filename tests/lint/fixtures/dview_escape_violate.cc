// vsgpu_lint fixture: a registry helper stores its pointer argument
// into a process-lived container; the caller hands it the address of
// a STACK local, which outlives nothing
// (dangling-view.escape-local).  The escape happens one call deep —
// only the interprocedural escape summary connects the two frames.
#include <vector>

namespace
{
std::vector<const double *> gSlots;
}

void
registerSlot(const double *slot)
{
    gSlots.push_back(slot); // parameter escapes to Global
}

double
sample()
{
    double local = 0.5;
    registerSlot(&local); // stack address outlives the frame? no.
    return local;
}
