// vsgpu_lint fixture: the reference is (re)obtained AFTER the
// growing call, so every read goes through a binding created after
// the last mutation.
#include <vector>

void
appendDefaults(std::vector<int> &v)
{
    v.push_back(1);
}

int
firstAfterGrow(std::vector<int> &v)
{
    appendDefaults(v);
    int &slot = v.front(); // bound after the mutation
    return slot;
}
