// vsgpu_lint fixture: the stats write only ever sees values derived
// from simulation inputs — no wall-clock, RNG, address, or hash
// ordering anywhere on the path — so determinism-taint stays quiet.
struct ScalarStat
{
    void set(double v);
};
struct StatsGroup
{
    ScalarStat &scalar(const char *name);
};

double
meanOf(double total, int count)
{
    double mean = total / static_cast<double>(count);
    return mean;
}

void
exportMean(StatsGroup &group, double total, int count)
{
    double mean = meanOf(total, count);
    group.scalar("mean").set(mean);
}
