// vsgpu_lint fixture: a pool task reaches a second parallelFor
// through a helper call.  The pool is not reentrant — the inner
// submission waits for workers that are all busy running the outer
// batch.  The task body itself contains no submit token, so only the
// interprocedural submit-closure can see the deadlock.
namespace exec
{
struct Pool
{
    template <typename F>
    void parallelFor(int n, F &&f);
};
} // namespace exec

void
refineCell(exec::Pool &pool, int cell)
{
    pool.parallelFor(cell, [](int) {});
}

void
refineGrid(exec::Pool &pool, int cells)
{
    pool.parallelFor(cells, [&pool](int i) { refineCell(pool, i); });
}
