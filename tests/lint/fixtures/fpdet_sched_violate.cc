// vsgpu_lint fixture: a lock makes the accumulation race-free, which
// is exactly why every other family accepts it — but the ORDER of
// the += operations is whatever the scheduler produced, and FP
// addition is not associative, so --jobs 1 and --jobs N no longer
// sum to bitwise-identical totals.
#include <mutex>

namespace exec
{
struct Pool
{
    template <typename F>
    void parallelFor(int n, F &&f);
};
} // namespace exec

namespace
{
double gEnergyTotal = 0.0;
std::mutex gTotalMutex;
} // namespace

double contribution(int i);

void
sumEnergy(exec::Pool &pool, int tasks)
{
    pool.parallelFor(tasks, [](int i) {
        std::lock_guard<std::mutex> lock(gTotalMutex);
        gEnergyTotal += contribution(i);
    });
}
