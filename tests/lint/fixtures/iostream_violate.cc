// vsgpu_lint fixture: direct stdio in library code — qualified and
// unqualified stream writes that bypass common/logging.
#include <iostream>

void
printProgress(int step)
{
    std::cout << "step " << step << "\n";
}

void
printError(const char *what)
{
    std::cerr << "error: " << what << "\n";
}

using std::clog;

void
printNote()
{
    clog << "note\n";
}
