// vsgpu_lint fixture: contract-tagged functions done right — a body
// stating its precondition, a body stating its postcondition, and a
// declaration (no body to check).
#define VSGPU_CONTRACT
#define VSGPU_REQUIRES(cond, ...) ((void)0)
#define VSGPU_ENSURES(cond, ...) ((void)0)

VSGPU_CONTRACT int
clampStep(int step)
{
    VSGPU_REQUIRES(step >= -8, "fixture");
    return step < 0 ? 0 : step;
}

[[vsgpu::contract]] double
scaleBy(double x)
{
    const double y = x * 2.0;
    VSGPU_ENSURES(y == y, "fixture");
    return y;
}

VSGPU_CONTRACT int declaredElsewhere(int step);
