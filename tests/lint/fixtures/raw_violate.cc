// vsgpu_lint fixture: raw-escape violations.  Each unwaived
// .raw() / ->raw() call below must be flagged; the waived one and
// the near-miss shapes must not.  tests/lint/test_lint.cc counts
// the findings.

struct Quantityish
{
    double
    raw() const
    {
        return value;
    }
    double value = 0.0;
};

double
leakByDot(const Quantityish &q)
{
    return q.raw();
}

double
leakByArrow(const Quantityish *q)
{
    return q->raw();
}

double
waivedLeak(const Quantityish &q)
{
    return q.raw(); // vsgpu-lint: raw-escape-ok(fixture waiver)
}

// Near misses: a free function named raw and a member raw(arg) are
// not the Quantity escape hatch.
double
raw()
{
    return 1.0;
}

struct Other
{
    double
    raw(int scale) const
    {
        return static_cast<double>(scale);
    }
};

double
nearMisses(const Other &o)
{
    return raw() + o.raw(2);
}
