// vsgpu_lint fixture: unit-correct flows stay quiet — like-units add
// freely, and a volts*amps product is a derived dimension (watts)
// that may combine with other derived values.
struct Volts
{
    double raw() const;
};
struct Amps
{
    double raw() const;
};

double
budget(Volts rail, Volts droop, Amps load)
{
    // vsgpu-lint: raw-escape-ok(fixture)
    double usable = rail.raw() - droop.raw();
    double power = usable * load.raw(); // vsgpu-lint: raw-escape-ok(fixture)
    double margin = power + 0.5;
    return margin;
}
