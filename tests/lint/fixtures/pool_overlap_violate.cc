// vsgpu_lint fixture: one seeded race that BOTH the token-level
// pool-concurrency family and the semantic pool-escape family can
// see — a by-reference capture written from a task body.  The driver
// must report it exactly once, under the semantic id (the one with
// interprocedural context); the regression test pins that down.
struct Pool
{
    template <typename F>
    void parallelFor(int n, F &&f);
};

void
tally(Pool &pool, int tasks)
{
    double total = 0.0;
    pool.parallelFor(tasks, [&](int i) {
        total += static_cast<double>(i);
    });
}
