// vsgpu_lint fixture: every declaration below must trip the
// unit-safety family.  tests/lint/test_lint.cc counts the findings,
// so keep additions in sync with LintUnitSafety.ViolatingFixture.
#pragma once

struct BadPdnConfig
{
    double supplyVolts = 1.6;
    float loadAmps = 0.0F;
};

double railOhms();
void setSwitchFreqHz(double freqHz);
