// vsgpu_lint fixture (pairs with lockorder_cycle_b_violate.cc): this
// translation unit nests gMuStats inside gMuQueue; the other one
// nests them the opposite way.  Each file is locally consistent —
// no single-TU rule can object — but together the two orders form
// the classic ABBA deadlock that only the project-wide lock-order
// graph can see.
#include <mutex>

std::mutex gMuQueue;
std::mutex gMuStats;

namespace
{
double gDepth = 0.0;
double gCount = 0.0;
} // namespace

void
drainAndCount(double d)
{
    std::lock_guard<std::mutex> queue(gMuQueue);
    std::lock_guard<std::mutex> stats(gMuStats);
    gDepth = d;
    gCount = gCount + 1.0;
}
