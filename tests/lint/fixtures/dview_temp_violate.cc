// vsgpu_lint fixture: a string_view bound to the TEMPORARY returned
// by an owner-returning call — the temporary dies at the semicolon
// and the view dangles immediately
// (dangling-view.bind-temporary).
#include <string>
#include <string_view>

std::string
makeName()
{
    return "cluster";
}

std::size_t
nameLen()
{
    std::string_view v = makeName(); // temporary dies here
    return v.size();
}
