// vsgpu_lint fixture: the loop appends to a DIFFERENT container and
// applies the changes after the walk finishes — the iterated range
// is never mutated mid-flight.
#include <vector>

void
mirrorNegatives(std::vector<int> &v)
{
    std::vector<int> mirrored;
    for (int x : v) {
        if (x < 0)
            mirrored.push_back(-x);
    }
    for (int m : mirrored)
        v.push_back(m);
}
