// vsgpu_lint fixture (file A of a two-TU pair): the global's
// initializer never touches the foreign global DIRECTLY — it calls a
// helper, and the helper's body reads a global that is dynamically
// initialized in another TU (init-order.via-call).  Only a
// call-graph walk can connect the initializer to the read.
extern int gDepth;

int
scaledDepth()
{
    return gDepth * 2; // the hidden cross-TU read
}

int gScaled = scaledDepth(); // initializer reaches gDepth via call
