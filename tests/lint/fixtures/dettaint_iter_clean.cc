// vsgpu_lint fixture: values drawn from an ordered std::map iterate
// in key order, so the exported value is deterministic and no taint
// reaches the stats write.
#include <map>

struct ScalarStat
{
    void set(double v);
};
struct StatsGroup
{
    ScalarStat &scalar(const char *name);
};

void
exportLast(StatsGroup &group,
           const std::map<int, double> &samples)
{
    double last = 0.0;
    for (const auto &kv : samples) {
        last = kv.second;
    }
    group.scalar("last_sample").set(last);
}
