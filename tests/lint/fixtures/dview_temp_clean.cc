// vsgpu_lint fixture: the owner is materialized into a named local
// FIRST; the view then borrows storage that outlives every use in
// this frame.
#include <string>
#include <string_view>

std::string
makeName()
{
    return "cluster";
}

std::size_t
nameLen()
{
    const std::string owned = makeName();
    std::string_view v = owned; // owner outlives the view
    return v.size();
}
