// vsgpu_lint fixture: contract-tagged functions whose bodies never
// state VSGPU_REQUIRES / VSGPU_ENSURES.  Both definitions below must
// be flagged by the contracts family.
#define VSGPU_CONTRACT

VSGPU_CONTRACT int
clampStep(int step)
{
    return step < 0 ? 0 : step;
}

[[vsgpu::contract]] double
scaleBy(double x)
{
    return x * 2.0;
}
