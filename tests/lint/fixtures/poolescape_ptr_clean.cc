// vsgpu_lint fixture: by-value captures that only READ are safe —
// each task gets its own copy (scale) or only dereferences the
// pointer without writing (base).  Writes land in a per-index slot.
#include <vector>

namespace exec
{
struct Pool
{
    template <typename F>
    void parallelFor(int n, F &&f);
};
} // namespace exec

void
scaleAll(exec::Pool &pool, std::vector<double> &out)
{
    const double scale = 2.0;
    const double offset = 1.0;
    const double *base = &offset;
    pool.parallelFor(static_cast<int>(out.size()), [&, scale,
                                                    base](int i) {
        out[static_cast<std::size_t>(i)] =
            scale * static_cast<double>(i) + *base;
    });
}
