// vsgpu_lint fixture: the two refinement levels run as SEQUENTIAL
// batches — the first parallelFor joins before the second starts, so
// the join is the happens-before edge and nothing nests.
namespace exec
{
struct Pool
{
    template <typename F>
    void parallelFor(int n, F &&f);
};
} // namespace exec

namespace
{
void markCell(int) {}
void refineMarked(int) {}
} // namespace

void
refineGrid(exec::Pool &pool, int cells)
{
    pool.parallelFor(cells, [](int i) { markCell(i); });
    pool.parallelFor(cells, [](int i) { refineMarked(i); });
}
