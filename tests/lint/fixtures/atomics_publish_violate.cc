// vsgpu_lint fixture: the flag-then-data publication idiom with a
// relaxed flag.  The plain write to gPayload is not ordered before
// the relaxed store, so a reader that observes gReady == true can
// still read the stale payload.  No token-level family sees this —
// both statements are individually idiomatic.
#include <atomic>

namespace
{
double gPayload = 0.0;
std::atomic<bool> gReady{false};
} // namespace

void
publish(double v)
{
    gPayload = v;
    gReady.store(true, std::memory_order_relaxed);
}
