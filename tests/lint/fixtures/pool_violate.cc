// vsgpu_lint fixture: by-reference captures written from a pool task
// without a lock, atomic, or per-index slot.  Both writes below must
// be flagged by the pool-concurrency family.
#include <vector>

struct Pool
{
    template <typename F>
    void parallelFor(int n, F &&f);
};

void
tally(Pool &pool, int tasks)
{
    double total = 0.0;
    std::vector<double> events;
    pool.parallelFor(tasks, [&](int i) {
        total += static_cast<double>(i);
        events.push_back(static_cast<double>(i));
    });
}
