// vsgpu_lint fixture: a range-for over a vector whose body grows the
// SAME vector — the hidden begin/end iterators are invalidated by
// the first reallocation
// (iterator-invalidation.mutate-while-iterating).
#include <vector>

void
mirrorNegatives(std::vector<int> &v)
{
    for (int x : v) {
        if (x < 0)
            v.push_back(-x); // grows the range being walked
    }
}
