// vsgpu_lint fixture: must produce zero unit-safety findings.
// Quantity-typed members, suffix-free names, and a waived raw double
// cover the three ways a declaration stays clean.
#pragma once

#include "common/quantity.hh"

struct GoodPdnConfig
{
    vsgpu::Volts supply{1.6};
    double ratio = 0.5;
    double busVolts = 1.6; // vsgpu-lint: raw-ok(fixture: CSV boundary)
};
