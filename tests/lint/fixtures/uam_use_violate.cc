// vsgpu_lint fixture: a helper whose every candidate std::move()s
// from its by-reference parameter is a MOVE SINK — the caller's
// argument is hollowed out even though no std::move appears at the
// call site.  Reading the argument afterwards is use-after-move.use;
// only the interprocedural lifetime model can see it.
#include <string>
#include <utility>
#include <vector>

namespace
{
std::vector<std::string> gNames;
}

void
publishName(std::string &name)
{
    gNames.push_back(std::move(name));
}

std::size_t
record(std::string name)
{
    publishName(name);
    return name.size(); // read of a moved-from value
}
