// vsgpu_lint fixture: a pool task captures a pointer BY VALUE and
// writes through it.  The token-level pool-concurrency family only
// inspects by-reference captures, so this race is invisible to it;
// the semantic pool-escape family must flag it (the copied pointer
// still aliases the caller's object, so tasks race on the pointee).
#include <vector>

namespace exec
{
struct Pool
{
    template <typename F>
    void parallelFor(int n, F &&f);
};
} // namespace exec

void
accumulate(exec::Pool &pool, const std::vector<double> &samples)
{
    double total = 0.0;
    double *slot = &total;
    pool.parallelFor(static_cast<int>(samples.size()), [=](int i) {
        *slot += samples[static_cast<std::size_t>(i)];
    });
}
