// vsgpu_lint fixture: the loop reinitializes the variable before
// each move, so every std::move transfers a specified value — the
// reassignment kills the moved-from state on the back edge.
#include <string>
#include <utility>
#include <vector>

void
drain(std::vector<std::string> &sink, std::string seed, int n)
{
    for (int i = 0; i < n; ++i) {
        seed = "batch";
        sink.push_back(std::move(seed));
    }
}
