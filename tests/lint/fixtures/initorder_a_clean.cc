// vsgpu_lint fixture (file A of a two-TU pair): the reader is
// identical to the violating twin, but the provider's initializer is
// constexpr — constant-initialized globals exist before ANY dynamic
// initialization runs, so the cross-TU read is ordered and silent.
extern int gWidth;

int gArea = gWidth * gWidth; // gWidth is constant-initialized: safe
