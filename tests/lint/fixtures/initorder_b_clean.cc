// vsgpu_lint fixture (file B of a two-TU pair): the provider uses a
// constexpr function, so gWidth is constant-initialized at compile
// time — no dynamic initializer, no ordering hazard.
constexpr int
defaultWidth()
{
    return 32;
}

int gWidth = defaultWidth(); // constant-initialized
