// vsgpu_lint fixture: a volts-tagged value is passed where the
// callee expects amps.  The value travels through an unsuffixed
// local, so no token-level suffix rule can see the mismatch — only
// tag propagation across the call boundary catches it.
struct Volts
{
    double raw() const;
};

// vsgpu-lint: raw-ok(fixture: suffix carries the expectation tag)
double scaleCurrent(double loadAmps, double factor)
{
    return loadAmps * factor;
}

double
misroute(Volts rail)
{
    double v = rail.raw(); // vsgpu-lint: raw-escape-ok(fixture)
    return scaleCurrent(v, 2.0);
}
