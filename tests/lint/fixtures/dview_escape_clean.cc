// vsgpu_lint fixture: the same registry helper, but callers only
// hand it addresses of storage that already outlives the registry
// entry — a namespace-scope global and a long-lived field.
#include <vector>

namespace
{
std::vector<const double *> gSlots;
double gSample = 0.5;
}

void
registerSlot(const double *slot)
{
    gSlots.push_back(slot);
}

struct Meter
{
    double value = 0.0;
    void attach() { registerSlot(&value); } // Field outlives Global? tie — silent
};

void
setup()
{
    registerSlot(&gSample); // Global storage: safe to retain
}
