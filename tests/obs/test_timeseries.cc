/**
 * @file
 * Unit tests for the deterministic windowed time-series recorder:
 * cadence arithmetic, window aggregation (min/max/mean/p99), the
 * partial-final-window flush, bounded p99 buffers, JSON/CSV dumps,
 * the schedule-dependent exclusion rule, and the strict parser
 * round trip.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/timeseries.hh"

namespace vsgpu::obs
{
namespace
{

TEST(TimeSeries, WindowCyclesRoundsAndClamps)
{
    // 2e-7 s window at a ~1.43e-9 s timestep: round(140.0) = 140.
    EXPECT_EQ(timeSeriesWindowCycles(2e-7 / 140.0, 2e-7), 140u);
    // A window shorter than one timestep clamps to one cycle.
    EXPECT_EQ(timeSeriesWindowCycles(1e-9, 1e-12), 1u);
    // Rounding, not truncation.
    EXPECT_EQ(timeSeriesWindowCycles(1.0, 2.6), 3u);
}

TEST(TimeSeries, AggregatesOneFullWindow)
{
    TimeSeriesRecorder rec(1.0, 4.0); // 4 cycles per window
    ASSERT_EQ(rec.windowCycles(), 4u);
    const int ch = rec.addChannel("v", "V", "test channel");
    const double values[] = {1.0, 3.0, 2.0, 4.0};
    for (double v : values) {
        rec.record(ch, v);
        rec.endCycle();
    }
    const auto run = rec.finish();
    ASSERT_NE(run, nullptr);
    ASSERT_EQ(run->windows(), 1u);
    ASSERT_EQ(run->channels.size(), 1u);
    const TimeSeriesChannel &c = run->channels[0];
    EXPECT_DOUBLE_EQ(c.min[0], 1.0);
    EXPECT_DOUBLE_EQ(c.max[0], 4.0);
    EXPECT_DOUBLE_EQ(c.mean[0], 2.5);
    EXPECT_DOUBLE_EQ(c.p99[0], 4.0);
    EXPECT_DOUBLE_EQ(run->timeSec[0], 4.0);
    EXPECT_EQ(run->cycles[0], 4u);
}

TEST(TimeSeries, PartialFinalWindowIsFlushed)
{
    TimeSeriesRecorder rec(1.0, 4.0);
    const int ch = rec.addChannel("v", "V", "test channel");
    for (int i = 0; i < 6; ++i) { // one full window + 2 cycles
        rec.record(ch, static_cast<double>(i));
        rec.endCycle();
    }
    const auto run = rec.finish();
    ASSERT_EQ(run->windows(), 2u);
    EXPECT_DOUBLE_EQ(run->channels[0].min[1], 4.0);
    EXPECT_DOUBLE_EQ(run->channels[0].max[1], 5.0);
    EXPECT_EQ(run->cycles[1], 6u);
}

TEST(TimeSeries, EmptyRecorderFinishesEmpty)
{
    TimeSeriesRecorder rec(1.0, 4.0);
    rec.addChannel("v", "V", "test channel");
    const auto run = rec.finish();
    ASSERT_NE(run, nullptr);
    EXPECT_EQ(run->windows(), 0u);
}

TEST(TimeSeries, WindowsWithoutRecordsAggregateToZero)
{
    // A window a sparse channel never recorded into emits 0.0 for
    // every aggregate (JSON has no NaN literal to round-trip).
    TimeSeriesRecorder rec(1.0, 2.0);
    const int ch = rec.addChannel("v", "V", "test channel");
    rec.record(ch, 7.0);
    rec.endCycle();
    rec.endCycle(); // closes window 0
    rec.endCycle();
    rec.endCycle(); // closes window 1 with no records
    const auto run = rec.finish();
    ASSERT_EQ(run->windows(), 2u);
    EXPECT_DOUBLE_EQ(run->channels[0].mean[0], 7.0);
    EXPECT_DOUBLE_EQ(run->channels[0].mean[1], 0.0);
    EXPECT_DOUBLE_EQ(run->channels[0].min[1], 0.0);
}

TEST(TimeSeries, P99BufferStaysBoundedOnHugeWindows)
{
    // One window of 10x the cap: exact min/max/mean must survive
    // the decimation, and p99 must stay within the value range.
    const double n = 10.0 * TimeSeriesRecorder::p99SampleCap;
    TimeSeriesRecorder rec(1.0, n);
    const int ch = rec.addChannel("v", "V", "test channel");
    for (double i = 0.0; i < n; i += 1.0) {
        rec.record(ch, i);
        rec.endCycle();
    }
    const auto run = rec.finish();
    ASSERT_EQ(run->windows(), 1u);
    const TimeSeriesChannel &c = run->channels[0];
    EXPECT_DOUBLE_EQ(c.min[0], 0.0);
    EXPECT_DOUBLE_EQ(c.max[0], n - 1.0);
    EXPECT_NEAR(c.mean[0], (n - 1.0) / 2.0, 1e-6);
    EXPECT_GE(c.p99[0], 0.9 * n);
    EXPECT_LE(c.p99[0], n - 1.0);
}

TEST(TimeSeries, DenseRecordKeepsExactAggregatesWithStridedP99)
{
    // recordDense() is called every cycle: min/max/mean must be
    // exact over all 100 values while the p99 buffer only holds the
    // on-stride subsample (cycles 0, 32, 64, 96 with stride 32).
    TimeSeriesRecorder rec(1.0, 100.0);
    ASSERT_EQ(rec.sampleStride(), 32u);
    const int ch = rec.addChannel("v", "V", "dense channel");
    for (int i = 0; i < 100; ++i) {
        rec.recordDense(ch, static_cast<double>(i));
        rec.endCycle();
    }
    const auto run = rec.finish();
    ASSERT_EQ(run->windows(), 1u);
    const TimeSeriesChannel &c = run->channels[0];
    EXPECT_DOUBLE_EQ(c.min[0], 0.0);
    EXPECT_DOUBLE_EQ(c.max[0], 99.0);
    EXPECT_DOUBLE_EQ(c.mean[0], 49.5);
    // Nearest-rank p99 of the subsample {0, 32, 64, 96}.
    EXPECT_DOUBLE_EQ(c.p99[0], 96.0);
}

TEST(TimeSeries, SampleStrideCoversWindow)
{
    // Strided recording (sampleThisCycle) still lands at least one
    // record per window for any cadence, and the per-window record
    // count stays bounded (the overhead budget).
    TimeSeriesRecorder rec(1.0, 5000.0);
    EXPECT_GE(rec.sampleStride(), 32u);
    EXPECT_LE(rec.windowCycles() / rec.sampleStride(),
              TimeSeriesRecorder::p99SampleCap);
    const int ch = rec.addChannel("v", "V", "test channel");
    int recorded = 0;
    for (int i = 0; i < 5000; ++i) {
        if (rec.sampleThisCycle()) {
            rec.record(ch, 1.0);
            ++recorded;
        }
        rec.endCycle();
    }
    EXPECT_GT(recorded, 0);
    EXPECT_LE(static_cast<std::size_t>(recorded),
              2 * TimeSeriesRecorder::p99SampleCap);

    // Even a window shorter than the stride floor samples its first
    // cycle.
    TimeSeriesRecorder tiny(1.0, 2.0);
    EXPECT_TRUE(tiny.sampleThisCycle());
    tiny.endCycle();
    tiny.endCycle(); // window closes; next window's first cycle...
    EXPECT_TRUE(tiny.sampleThisCycle());
}

TimeSeriesDoc
sampleDoc()
{
    TimeSeriesDoc doc;
    doc.sampleEverySec = 4.0;
    doc.dtSec = 1.0;
    doc.windowCycles = 4;
    for (const char *label : {"b/run", "a/run"}) {
        TimeSeriesRecorder rec(1.0, 4.0);
        const int v = rec.addChannel("rail.min", "V", "window min");
        const int w = rec.addChannel("wall.sample_us", "us",
                                     "wall clock per window",
                                     /*scheduleDependent=*/true);
        for (int i = 0; i < 8; ++i) {
            rec.record(v, 1.0 + 0.1 * i);
            rec.record(w, 42.0);
            rec.endCycle();
        }
        auto run = rec.finish();
        run->label = label;
        doc.runs.push_back(*run);
    }
    return doc;
}

TEST(TimeSeries, JsonDumpSortsRunsAndOmitsScheduleDependent)
{
    const TimeSeriesDoc doc = sampleDoc();
    std::ostringstream os;
    writeTimeSeriesJson(doc, os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"schema\": \"vsgpu-timeseries-v1\""),
              std::string::npos);
    // Runs sorted by label regardless of insertion order.
    EXPECT_LT(json.find("\"a/run\""), json.find("\"b/run\""));
    // Schedule-dependent channels are excluded by default...
    EXPECT_EQ(json.find("wall.sample_us"), std::string::npos);
    // ...and included on request.
    std::ostringstream all;
    writeTimeSeriesJson(doc, all, /*includeScheduleDependent=*/true);
    EXPECT_NE(all.str().find("wall.sample_us"), std::string::npos);
}

TEST(TimeSeries, JsonRoundTripsThroughParser)
{
    const TimeSeriesDoc doc = sampleDoc();
    std::ostringstream os;
    writeTimeSeriesJson(doc, os);
    std::istringstream is(os.str());
    const TimeSeriesDoc parsed = readTimeSeriesJson(is);
    std::ostringstream again;
    writeTimeSeriesJson(parsed, again);
    EXPECT_EQ(again.str(), os.str());
    ASSERT_EQ(parsed.runs.size(), 2u);
    EXPECT_EQ(parsed.windowCycles, 4u);
}

TEST(TimeSeries, CsvDumpHasHeaderAndRows)
{
    const TimeSeriesDoc doc = sampleDoc();
    std::ostringstream os;
    writeTimeSeriesCsv(doc, os);
    const std::string csv = os.str();
    EXPECT_NE(csv.find("label,window,time_sec,cycles"),
              std::string::npos);
    EXPECT_NE(csv.find("rail.min.min"), std::string::npos);
    EXPECT_EQ(csv.find("wall.sample_us"), std::string::npos);
    // Header + 2 runs x 2 windows.
    int lines = 0;
    for (char ch : csv)
        if (ch == '\n')
            ++lines;
    EXPECT_EQ(lines, 5);
}

} // namespace
} // namespace vsgpu::obs
