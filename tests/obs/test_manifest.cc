/**
 * @file
 * Unit tests for the run manifest: fingerprint stability, pair
 * ordering, and JSON rendering.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "obs/manifest.hh"

namespace vsgpu::obs
{
namespace
{

TEST(Manifest, Fnv1a64MatchesReferenceVectors)
{
    // Published FNV-1a 64 test vectors.
    EXPECT_EQ(fnv1a64Hex(""), "cbf29ce484222325");
    EXPECT_EQ(fnv1a64Hex("a"), "af63dc4c8601ec8c");
    EXPECT_EQ(fnv1a64Hex("foobar"), "85944171f73967e8");
}

TEST(Manifest, FingerprintIsOrderIndependent)
{
    const std::string ab = configFingerprint({"keyA", "keyB"});
    const std::string ba = configFingerprint({"keyB", "keyA"});
    EXPECT_EQ(ab, ba);
    EXPECT_EQ(ab.size(), 16U);
}

TEST(Manifest, FingerprintDeduplicatesKeys)
{
    EXPECT_EQ(configFingerprint({"k", "k", "k"}),
              configFingerprint({"k"}));
}

TEST(Manifest, FingerprintSeparatesKeyBoundaries)
{
    // "ab" + "c" must not collide with "a" + "bc".
    EXPECT_NE(configFingerprint({"ab", "c"}),
              configFingerprint({"a", "bc"}));
}

TEST(Manifest, MakeManifestFillsToolVersionBuild)
{
    const Manifest m = makeManifest("vsgpu");
    EXPECT_TRUE(m.valid);
    EXPECT_EQ(m.tool, "vsgpu");
    EXPECT_FALSE(m.version.empty());
    EXPECT_FALSE(m.build.empty());
}

TEST(Manifest, ToPairsKeepsStableOrder)
{
    Manifest m = makeManifest("t");
    m.subject = "s";
    m.configFingerprint = "f";
    m.seed = 7;
    m.scale = 0.5;
    const auto pairs = m.toPairs();
    ASSERT_EQ(pairs.size(), 7U);
    EXPECT_EQ(pairs[0].first, "tool");
    EXPECT_EQ(pairs[1].first, "version");
    EXPECT_EQ(pairs[2].first, "build");
    EXPECT_EQ(pairs[3].first, "subject");
    EXPECT_EQ(pairs[4].first, "config_fingerprint");
    EXPECT_EQ(pairs[5].first, "seed");
    EXPECT_EQ(pairs[5].second, "7");
    EXPECT_EQ(pairs[6].first, "scale");
}

TEST(Manifest, JsonContainsEveryPair)
{
    Manifest m = makeManifest("t");
    m.subject = "run x";
    m.configFingerprint = "deadbeefdeadbeef";
    std::ostringstream oss;
    writeManifestJson(m, oss, "  ");
    const std::string json = oss.str();
    for (const auto &kv : m.toPairs()) {
        EXPECT_NE(json.find("\"" + kv.first + "\""),
                  std::string::npos)
            << kv.first;
    }
}

} // namespace
} // namespace vsgpu::obs
