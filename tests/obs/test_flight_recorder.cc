/**
 * @file
 * Unit tests for the crash flight recorder: ring bounds and
 * oldest-eviction, chronological snapshots, the text/JSON dump
 * shapes, and the crash-hook death fixtures — a NaN-guard trip in
 * the co-simulation loop and a control-model verify-gate failure
 * must both dump the recorder to stderr before dying.
 */

#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <string>

#include "obs/flight_recorder.hh"
#include "sim/cosim.hh"
#include "workloads/suite.hh"

namespace vsgpu::obs
{
namespace
{

/** Fresh run context so tests do not see prior tests' records. */
FlightRecorder &
freshRecorder(const char *subject)
{
    FlightRecorder &fr = FlightRecorder::instance();
    fr.beginRun(subject, "deadbeefdeadbeef");
    return fr;
}

TEST(FlightRecorder, RecordsInChronologicalOrder)
{
    FlightRecorder &fr = freshRecorder("unit");
    for (int i = 0; i < 10; ++i)
        fr.record("rail", 1e-9 * i, static_cast<std::uint64_t>(i),
                  1.0, 2.0);
    EXPECT_EQ(fr.size(), 10u);
    EXPECT_EQ(fr.recorded(), 10u);
    const auto records = fr.records();
    ASSERT_EQ(records.size(), 10u);
    for (std::size_t i = 0; i < records.size(); ++i)
        EXPECT_EQ(records[i].cycle, i);
}

TEST(FlightRecorder, RingEvictsOldestPastCapacity)
{
    FlightRecorder &fr = freshRecorder("unit");
    const std::size_t n = FlightRecorder::capacity() + 100;
    for (std::size_t i = 0; i < n; ++i)
        fr.record("rail", 0.0, i, 0.0, 0.0);
    EXPECT_EQ(fr.size(), FlightRecorder::capacity());
    EXPECT_EQ(fr.recorded(), n);
    const auto records = fr.records();
    ASSERT_EQ(records.size(), FlightRecorder::capacity());
    // Oldest surviving record is the (n - capacity)-th; newest is
    // the last written.
    EXPECT_EQ(records.front().cycle, n - FlightRecorder::capacity());
    EXPECT_EQ(records.back().cycle, n - 1);
}

TEST(FlightRecorder, BeginRunResetsTheRing)
{
    FlightRecorder &fr = freshRecorder("first");
    fr.record("rail", 0.0, 7, 0.0, 0.0);
    fr.beginRun("second", "0123456789abcdef");
    EXPECT_EQ(fr.size(), 0u);
    EXPECT_EQ(fr.recorded(), 0u);
    EXPECT_EQ(fr.subject(), "second");
    EXPECT_EQ(fr.fingerprint(), "0123456789abcdef");
}

TEST(FlightRecorder, TextDumpHasBannerAndRows)
{
    FlightRecorder &fr = freshRecorder("text-run");
    fr.record("rail", 1.5e-9, 1, 0.95, 1.05);
    fr.record("kernel.launch", 0.0, 0, 0.0, 0.0);
    std::ostringstream os;
    fr.writeText(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("==== vsgpu flight recorder ===="),
              std::string::npos);
    EXPECT_NE(text.find("==== end flight recorder ===="),
              std::string::npos);
    EXPECT_NE(text.find("text-run"), std::string::npos);
    EXPECT_NE(text.find("deadbeefdeadbeef"), std::string::npos);
    EXPECT_NE(text.find("kernel.launch"), std::string::npos);
}

TEST(FlightRecorder, JsonDumpHasSchemaAndRecords)
{
    FlightRecorder &fr = freshRecorder("json-run");
    fr.record("rail", 1.5e-9, 1, 0.95, 1.05);
    std::ostringstream os;
    fr.writeJson(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"schema\": \"vsgpu-flight-v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"subject\": \"json-run\""),
              std::string::npos);
    EXPECT_NE(json.find("\"tag\": \"rail\""), std::string::npos);
    EXPECT_NE(json.find("\"recorded\": 1"), std::string::npos);
}

// ---------------- crash-dump death fixtures ----------------

WorkloadSpec
smallBench()
{
    return scaledToInstrs(workloadFor(Benchmark::Hotspot), 300);
}

/** A gated layer whose SMs "draw" NaN watts poisons the rail solve;
 *  the always-on NaN guard must panic and dump the flight recorder's
 *  recent rail history. */
TEST(FlightRecorderDeath, NanGuardTripDumpsRecorder)
{
    CosimConfig cfg;
    cfg.pds = defaultPds(PdsKind::VsCrossLayer);
    cfg.maxCycles = 20000;
    cfg.gateLayerAtSec = Seconds{1e-6};
    cfg.gatedLayerWatts =
        Watts{std::numeric_limits<double>::quiet_NaN()};
    EXPECT_DEATH(
        {
            CoSimulator sim(cfg);
            sim.run(smallBench());
        },
        "vsgpu flight recorder");
}

/** A config the static control audit rejects (zero decision period)
 *  dies through fatal(); the crash hook still dumps the recorder's
 *  run banner so sweep logs identify the failing configuration. */
TEST(FlightRecorderDeath, VerifyGateFailureDumpsRecorder)
{
    CosimConfig cfg;
    cfg.pds = defaultPds(PdsKind::VsCrossLayer);
    cfg.pds.controller.period = 0;
    cfg.maxCycles = 8000;
    EXPECT_DEATH(
        {
            CoSimulator sim(cfg);
            sim.run(smallBench());
        },
        "vsgpu flight recorder");
}

} // namespace
} // namespace vsgpu::obs
