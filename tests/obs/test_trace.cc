/**
 * @file
 * Unit tests for the Chrome trace_event tracer: category parsing,
 * the disabled fast path, span nesting by timestamp containment, and
 * the emitted JSON document shape.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/trace.hh"

namespace vsgpu::obs
{
namespace
{

/** RAII: each test starts and ends with a clean, disabled tracer. */
class TracerFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        Tracer::instance().disable();
        Tracer::instance().clear();
    }

    void
    TearDown() override
    {
        Tracer::instance().disable();
        Tracer::instance().clear();
    }
};

using TraceTest = TracerFixture;

TEST_F(TraceTest, CategoryParsing)
{
    EXPECT_EQ(parseTraceCategories(""), CatAll);
    EXPECT_EQ(parseTraceCategories("all"), CatAll);
    EXPECT_EQ(parseTraceCategories("phase"), CatPhase);
    EXPECT_EQ(parseTraceCategories("phase,pool"),
              CatPhase | CatPool);
    EXPECT_EQ(parseTraceCategories("ctl,hv"), CatCtl | CatHv);
}

TEST_F(TraceTest, CategoryParsingRejectsUnknownNames)
{
    EXPECT_DEATH(parseTraceCategories("phase,bogus"), "");
}

TEST_F(TraceTest, CategoryNames)
{
    EXPECT_STREQ(traceCategoryName(CatPhase), "phase");
    EXPECT_STREQ(traceCategoryName(CatPool), "pool");
    EXPECT_STREQ(traceCategoryName(CatCtl), "ctl");
    EXPECT_STREQ(traceCategoryName(CatHv), "hv");
}

TEST_F(TraceTest, DisabledRecordsNothing)
{
    {
        VSGPU_TRACE_SCOPE(CatPhase, "should.not.appear");
        VSGPU_TRACE_INSTANT(CatCtl, "neither.this");
    }
    EXPECT_EQ(Tracer::instance().numEvents(), 0U);
}

TEST_F(TraceTest, DisabledCategoryIsFilteredWhileOthersRecord)
{
    Tracer::instance().enable(CatPhase);
    {
        VSGPU_TRACE_SCOPE(CatPhase, "kept");
        VSGPU_TRACE_INSTANT(CatCtl, "filtered");
    }
    const auto events = Tracer::instance().events();
    ASSERT_EQ(events.size(), 1U);
    EXPECT_STREQ(events[0].name, "kept");
    EXPECT_EQ(events[0].phase, 'X');
}

TEST_F(TraceTest, NestedSpansAreContainedInTime)
{
    Tracer::instance().enable(CatAll);
    {
        VSGPU_TRACE_SCOPE(CatPhase, "outer");
        {
            VSGPU_TRACE_SCOPE(CatPhase, "inner");
        }
    }
    const auto events = Tracer::instance().events();
    ASSERT_EQ(events.size(), 2U);
    // Inner finishes (and records) first.
    const TraceEvent &inner = events[0];
    const TraceEvent &outer = events[1];
    EXPECT_STREQ(inner.name, "inner");
    EXPECT_STREQ(outer.name, "outer");
    EXPECT_GE(inner.tsUs, outer.tsUs);
    EXPECT_LE(inner.tsUs + inner.durUs, outer.tsUs + outer.durUs);
}

TEST_F(TraceTest, EarlyEndIsIdempotent)
{
    Tracer::instance().enable(CatAll);
    {
        ScopedSpan span(CatPhase, "early");
        EXPECT_TRUE(span.live());
        span.end();
        EXPECT_FALSE(span.live());
        span.end(); // second end and the destructor are no-ops
    }
    EXPECT_EQ(Tracer::instance().numEvents(), 1U);
}

TEST_F(TraceTest, JsonDocumentShape)
{
    Tracer::instance().enable(CatAll);
    {
        ScopedSpan span(CatPool, "pool.task");
        span.setArg("task", "3");
    }
    VSGPU_TRACE_INSTANT(CatHv, "dfs.transition");
    Tracer::instance().disable();

    std::ostringstream oss;
    Tracer::instance().writeJson(oss);
    const std::string json = oss.str();
    EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\": \"pool\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\": \"hv\""), std::string::npos);
    EXPECT_NE(json.find("\"task\": \"3\""), std::string::npos);
    EXPECT_NE(json.find("\"pid\": 1"), std::string::npos);
}

TEST_F(TraceTest, ClearDropsEvents)
{
    Tracer::instance().enable(CatAll);
    VSGPU_TRACE_INSTANT(CatCtl, "x");
    EXPECT_EQ(Tracer::instance().numEvents(), 1U);
    Tracer::instance().clear();
    EXPECT_EQ(Tracer::instance().numEvents(), 0U);
    EXPECT_EQ(Tracer::instance().droppedEvents(), 0U);
}

TEST_F(TraceTest, BufferWrapsAroundEvictingOldest)
{
    Tracer &tracer = Tracer::instance();
    tracer.enable(CatAll);
    // Fill past the cap: the buffer must become a ring that keeps
    // the newest maxEvents() events and counts the evictions.
    const std::size_t extra = 50;
    const std::size_t total = Tracer::maxEvents() + extra;
    for (std::size_t i = 0; i < total; ++i) {
        if (i < extra)
            VSGPU_TRACE_INSTANT(CatCtl, "early");
        else
            VSGPU_TRACE_INSTANT(CatPool, "late");
    }
    EXPECT_EQ(tracer.numEvents(), Tracer::maxEvents());
    EXPECT_EQ(tracer.droppedEvents(), extra);

    // The first `extra` events are exactly the ones evicted, so no
    // "early" events survive and the snapshot is all post-wrap
    // "late" events in chronological order.
    const auto events = tracer.events();
    ASSERT_EQ(events.size(), Tracer::maxEvents());
    for (const TraceEvent &e : {events.front(), events.back()})
        EXPECT_STREQ(e.name, "late");
    EXPECT_LE(events.front().tsUs, events.back().tsUs);

    // The wrapped buffer still renders valid, loadable JSON.
    std::ostringstream oss;
    tracer.writeJson(oss);
    const std::string json = oss.str();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_EQ(json.find("\"early\""), std::string::npos);
}

} // namespace
} // namespace vsgpu::obs
