/**
 * @file
 * Unit tests for the hierarchical stats registry: registration,
 * grouping, snapshot ordering, the schedule-dependent exclusion, the
 * text dump format, and the JSON round-trip contract
 * writeStatsJson(readStatsJson(x)) == x.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "obs/stats_registry.hh"

namespace vsgpu::obs
{
namespace
{

TEST(StatsRegistry, GroupsQualifyAndNest)
{
    StatsRegistry registry;
    StatsGroup control = registry.group("control");
    control.counter("trips", "trips", "detector trips");
    StatsGroup inner = control.group("diws");
    inner.counter("cuts", "cuts", "issue cuts");
    EXPECT_NE(registry.find("control.trips"), nullptr);
    EXPECT_NE(registry.find("control.diws.cuts"), nullptr);
    EXPECT_EQ(registry.find("missing"), nullptr);
}

TEST(StatsRegistryDeath, DuplicateNamePanics)
{
    StatsRegistry registry;
    registry.addCounter("sim.steps", "steps", "timesteps");
    EXPECT_DEATH(
        registry.addCounter("sim.steps", "steps", "again"), "");
}

TEST(StatsRegistry, SnapshotSortsByName)
{
    StatsRegistry registry;
    registry.addCounter("z.last", "n", "last");
    registry.addScalar("a.first", "V", "first");
    registry.addCounter("m.mid", "n", "mid");
    const StatsSnapshot snap = registry.snapshot();
    ASSERT_EQ(snap.entries.size(), 3U);
    EXPECT_EQ(snap.entries[0].name, "a.first");
    EXPECT_EQ(snap.entries[1].name, "m.mid");
    EXPECT_EQ(snap.entries[2].name, "z.last");
}

TEST(StatsRegistry, ScheduleDependentExcludedByDefault)
{
    StatsRegistry registry;
    registry.addCounter("exec.pool.tasks_run", "tasks", "tasks");
    CounterStat &steals = registry.addCounter(
        "exec.pool.steals", "steals", "steals",
        /*scheduleDependent=*/true);
    steals.add(3);
    EXPECT_EQ(registry.snapshot().entries.size(), 1U);
    const StatsSnapshot all =
        registry.snapshot(/*includeScheduleDependent=*/true);
    ASSERT_EQ(all.entries.size(), 2U);
    EXPECT_EQ(all.entries[0].count, 3U);
}

TEST(StatsRegistry, FormulaEvaluatesAtSnapshotTime)
{
    StatsRegistry registry;
    ScalarStat &load = registry.addScalar("e.load", "J", "load");
    ScalarStat &wall = registry.addScalar("e.wall", "J", "wall");
    registry.addFormula("e.pde", "ratio", "delivery efficiency",
                        [&load, &wall] {
                            return wall.value() > 0.0
                                       ? load.value() / wall.value()
                                       : 0.0;
                        });
    load.set(8.0);
    wall.set(10.0);
    const SnapshotEntry *pde = registry.find("e.pde");
    ASSERT_NE(pde, nullptr);
    EXPECT_DOUBLE_EQ(pde->value, 0.8);
}

TEST(StatsRegistry, DistributionTracksMoments)
{
    StatsRegistry registry;
    DistributionStat &d =
        registry.addDistribution("gpu.vmin", "V", "rail minima");
    d.add(0.9);
    d.add(1.1);
    EXPECT_EQ(d.count(), 2U);
    EXPECT_DOUBLE_EQ(d.mean(), 1.0);
    EXPECT_DOUBLE_EQ(d.min(), 0.9);
    EXPECT_DOUBLE_EQ(d.max(), 1.1);
}

TEST(StatsRegistry, TextDumpHasBannersAndUnits)
{
    StatsRegistry registry;
    CounterStat &c =
        registry.addCounter("sim.timesteps", "steps",
                            "transient solver timesteps");
    c.add(42);
    std::ostringstream oss;
    registry.dumpText(oss);
    const std::string text = oss.str();
    EXPECT_NE(text.find("Begin Simulation Statistics"),
              std::string::npos);
    EXPECT_NE(text.find("End Simulation Statistics"),
              std::string::npos);
    EXPECT_NE(text.find("sim.timesteps"), std::string::npos);
    EXPECT_NE(text.find("42"), std::string::npos);
    EXPECT_NE(text.find("(steps)"), std::string::npos);
}

TEST(StatsRegistry, JsonRoundTripIsByteExact)
{
    StatsRegistry registry;
    Manifest manifest = makeManifest("test");
    manifest.subject = "round trip";
    manifest.configFingerprint = "0123456789abcdef";
    manifest.seed = 99;
    manifest.scale = 0.15;
    registry.setManifest(manifest);

    registry.addCounter("control.trips", "trips", "trips").add(7);
    registry.addScalar("gpu.min_voltage", "V", "minimum rail")
        .set(0.843251234);
    DistributionStat &d = registry.addDistribution(
        "gpu.rail_samples", "V", "per-step rail voltages");
    d.add(1.0);
    d.add(0.97);
    d.add(1.03);
    registry.addFormula("gpu.two", "n", "constant",
                        [] { return 2.0; });

    std::ostringstream first;
    registry.dumpJson(first);

    std::istringstream in(first.str());
    const StatsSnapshot parsed = readStatsJson(in);
    std::ostringstream second;
    writeStatsJson(parsed, second);
    EXPECT_EQ(first.str(), second.str());
    EXPECT_EQ(parsed.manifest.seed, 99U);
    EXPECT_EQ(parsed.entries.size(), 4U);
}

TEST(StatsRegistryDeath, UnknownJsonKeyPanics)
{
    std::istringstream in(
        "{\n  \"stats\": [\n    {\"name\": \"x\", \"kind\": "
        "\"counter\", \"unit\": \"n\", \"desc\": \"d\", \"value\": 1, "
        "\"bogus\": 2}\n  ]\n}\n");
    EXPECT_DEATH(readStatsJson(in), "");
}

TEST(StatsRegistry, UnitNamesComeFromQuantityAliases)
{
    EXPECT_STREQ(unitName<Volts>(), "V");
    EXPECT_STREQ(unitName<Watts>(), "W");
    EXPECT_STREQ(unitName<Joules>(), "J");
    EXPECT_STREQ(unitName<Hertz>(), "Hz");
}

} // namespace
} // namespace vsgpu::obs
