/**
 * @file
 * Cross-layer observability integration tests: stats dumps must be
 * bitwise identical for --jobs 1 and --jobs 8 (the schedule-
 * dependent stats are excluded by default), the run manifest must
 * not vary with the job count, and enabling tracing must not perturb
 * simulation results.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "bench/scenarios/scenarios.hh"
#include "obs/timeseries.hh"
#include "obs/trace.hh"

namespace vsgpu::scen
{
namespace
{

/** Smallest useful scale: keeps each co-simulation short. */
constexpr double kScale = 0.05;

struct ScenarioDump
{
    std::string statsJson;
    std::string statsText;
    std::string summaryJson;
    std::string seriesJson;
    obs::Manifest manifest;
    ScenarioTelemetry telemetry;
};

ScenarioDump
runWithJobs(const char *scenario, int jobs,
            double sampleEverySec = 0.0, bool profile = false)
{
    const ScenarioInfo *info = findScenario(scenario);
    EXPECT_NE(info, nullptr);
    ScenarioOptions opts;
    opts.jobs = jobs;
    opts.scale = kScale;
    opts.sampleEverySec = sampleEverySec;
    opts.profile = profile;

    std::ostringstream tables;
    obs::StatsRegistry registry;
    ScenarioDump dump;
    const Summary summary =
        runScenario(*info, opts, tables, &registry, &dump.manifest,
                    &dump.telemetry);
    std::ostringstream seriesJson;
    obs::writeTimeSeriesJson(dump.telemetry.series, seriesJson);
    dump.seriesJson = seriesJson.str();

    registry.setManifest(dump.manifest);
    std::ostringstream statsJson;
    registry.dumpJson(statsJson);
    dump.statsJson = statsJson.str();
    std::ostringstream statsText;
    registry.dumpText(statsText);
    dump.statsText = statsText.str();
    std::ostringstream summaryJson;
    writeSummaryJson(summary, summaryJson);
    dump.summaryJson = summaryJson.str();
    return dump;
}

TEST(ObsDeterminism, StatsDumpsIdenticalAcrossJobCounts)
{
    const ScenarioDump one = runWithJobs("fig12_threshold_sweep", 1);
    const ScenarioDump eight =
        runWithJobs("fig12_threshold_sweep", 8);
    EXPECT_EQ(one.statsJson, eight.statsJson);
    EXPECT_EQ(one.statsText, eight.statsText);
    EXPECT_EQ(one.summaryJson, eight.summaryJson);
    EXPECT_EQ(one.manifest.configFingerprint,
              eight.manifest.configFingerprint);
}

TEST(ObsDeterminism, StatsDumpCoversEveryLayer)
{
    const ScenarioDump dump = runWithJobs("fig12_threshold_sweep", 4);
    for (const char *needle :
         {"\"gpu.", "\"sim.", "\"control.", "\"hypervisor.",
          "\"exec."}) {
        EXPECT_NE(dump.statsJson.find(needle), std::string::npos)
            << needle;
    }
    EXPECT_NE(dump.statsJson.find("\"manifest\""),
              std::string::npos);
    EXPECT_NE(dump.summaryJson.find("\"manifest\""),
              std::string::npos);
}

TEST(ObsDeterminism, TracingDoesNotPerturbResults)
{
    const ScenarioDump quiet = runWithJobs("fig12_threshold_sweep", 2);

    obs::Tracer::instance().enable(obs::CatAll);
    const ScenarioDump traced =
        runWithJobs("fig12_threshold_sweep", 2);
    obs::Tracer::instance().disable();
    EXPECT_GT(obs::Tracer::instance().numEvents(), 0U);
    obs::Tracer::instance().clear();

    EXPECT_EQ(quiet.summaryJson, traced.summaryJson);
    EXPECT_EQ(quiet.statsJson, traced.statsJson);
}

TEST(ObsDeterminism, TimeSeriesDumpsIdenticalAcrossJobCounts)
{
    // The sampling cadence derives from simulated time only, so the
    // windowed dumps must be bitwise identical for any --jobs value.
    constexpr double kSampleEvery = 2e-7;
    const ScenarioDump one =
        runWithJobs("fig14_penalty_saving", 1, kSampleEvery);
    const ScenarioDump eight =
        runWithJobs("fig14_penalty_saving", 8, kSampleEvery);
    EXPECT_FALSE(one.telemetry.series.runs.empty());
    EXPECT_EQ(one.seriesJson, eight.seriesJson);
}

TEST(ObsDeterminism, SeriesChannelsCoverEveryLayer)
{
    const ScenarioDump dump =
        runWithJobs("fig14_penalty_saving", 4, 2e-7);
    // fig14 runs both PDS kinds with no DFS/PG attached, so the
    // electrical, power, circuit, and control channels must appear
    // (the hv.* channels only exist when a governor is attached).
    for (const char *needle :
         {"rail.min", "rail.max", "rail.sm0", "power.load",
          "circuit.lu_builds", "ctl.margin", "ctl.triggered"}) {
        EXPECT_NE(dump.seriesJson.find(needle), std::string::npos)
            << needle;
    }
    // The wall-clock channel is schedule-dependent and must stay out
    // of the default (determinism-gated) dump.
    EXPECT_EQ(dump.seriesJson.find("wall.sample_us"),
              std::string::npos);
}

TEST(ObsDeterminism, SamplingAndProfilingDoNotPerturbResults)
{
    const ScenarioDump quiet =
        runWithJobs("fig14_penalty_saving", 2);
    const ScenarioDump observed = runWithJobs(
        "fig14_penalty_saving", 2, 2e-7, /*profile=*/true);
    EXPECT_EQ(quiet.summaryJson, observed.summaryJson);
    EXPECT_EQ(quiet.statsJson, observed.statsJson);
    EXPECT_GT(observed.telemetry.profile.runs, 0u);
    EXPECT_GT(observed.telemetry.profile.sampledCycles, 0u);
}

TEST(ObsDeterminism, StatsJsonRoundTripsThroughParser)
{
    const ScenarioDump dump = runWithJobs("fig12_threshold_sweep", 2);
    std::istringstream in(dump.statsJson);
    const obs::StatsSnapshot parsed = obs::readStatsJson(in);
    std::ostringstream out;
    obs::writeStatsJson(parsed, out);
    EXPECT_EQ(out.str(), dump.statsJson);
}

} // namespace
} // namespace vsgpu::scen
