/**
 * @file
 * Cross-layer observability integration tests: stats dumps must be
 * bitwise identical for --jobs 1 and --jobs 8 (the schedule-
 * dependent stats are excluded by default), the run manifest must
 * not vary with the job count, and enabling tracing must not perturb
 * simulation results.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "bench/scenarios/scenarios.hh"
#include "obs/trace.hh"

namespace vsgpu::scen
{
namespace
{

/** Smallest useful scale: keeps each co-simulation short. */
constexpr double kScale = 0.05;

struct ScenarioDump
{
    std::string statsJson;
    std::string statsText;
    std::string summaryJson;
    obs::Manifest manifest;
};

ScenarioDump
runWithJobs(const char *scenario, int jobs)
{
    const ScenarioInfo *info = findScenario(scenario);
    EXPECT_NE(info, nullptr);
    ScenarioOptions opts;
    opts.jobs = jobs;
    opts.scale = kScale;

    std::ostringstream tables;
    obs::StatsRegistry registry;
    ScenarioDump dump;
    const Summary summary =
        runScenario(*info, opts, tables, &registry, &dump.manifest);

    registry.setManifest(dump.manifest);
    std::ostringstream statsJson;
    registry.dumpJson(statsJson);
    dump.statsJson = statsJson.str();
    std::ostringstream statsText;
    registry.dumpText(statsText);
    dump.statsText = statsText.str();
    std::ostringstream summaryJson;
    writeSummaryJson(summary, summaryJson);
    dump.summaryJson = summaryJson.str();
    return dump;
}

TEST(ObsDeterminism, StatsDumpsIdenticalAcrossJobCounts)
{
    const ScenarioDump one = runWithJobs("fig12_threshold_sweep", 1);
    const ScenarioDump eight =
        runWithJobs("fig12_threshold_sweep", 8);
    EXPECT_EQ(one.statsJson, eight.statsJson);
    EXPECT_EQ(one.statsText, eight.statsText);
    EXPECT_EQ(one.summaryJson, eight.summaryJson);
    EXPECT_EQ(one.manifest.configFingerprint,
              eight.manifest.configFingerprint);
}

TEST(ObsDeterminism, StatsDumpCoversEveryLayer)
{
    const ScenarioDump dump = runWithJobs("fig12_threshold_sweep", 4);
    for (const char *needle :
         {"\"gpu.", "\"sim.", "\"control.", "\"hypervisor.",
          "\"exec."}) {
        EXPECT_NE(dump.statsJson.find(needle), std::string::npos)
            << needle;
    }
    EXPECT_NE(dump.statsJson.find("\"manifest\""),
              std::string::npos);
    EXPECT_NE(dump.summaryJson.find("\"manifest\""),
              std::string::npos);
}

TEST(ObsDeterminism, TracingDoesNotPerturbResults)
{
    const ScenarioDump quiet = runWithJobs("fig12_threshold_sweep", 2);

    obs::Tracer::instance().enable(obs::CatAll);
    const ScenarioDump traced =
        runWithJobs("fig12_threshold_sweep", 2);
    obs::Tracer::instance().disable();
    EXPECT_GT(obs::Tracer::instance().numEvents(), 0U);
    obs::Tracer::instance().clear();

    EXPECT_EQ(quiet.summaryJson, traced.summaryJson);
    EXPECT_EQ(quiet.statsJson, traced.statsJson);
}

TEST(ObsDeterminism, StatsJsonRoundTripsThroughParser)
{
    const ScenarioDump dump = runWithJobs("fig12_threshold_sweep", 2);
    std::istringstream in(dump.statsJson);
    const obs::StatsSnapshot parsed = obs::readStatsJson(in);
    std::ostringstream out;
    obs::writeStatsJson(parsed, out);
    EXPECT_EQ(out.str(), dump.statsJson);
}

} // namespace
} // namespace vsgpu::scen
