/**
 * @file
 * Unit tests for the stage-cost self-profiler: the global gate and
 * its disabled fast path, ProfileScope / StageTimer accounting,
 * order-independent merging, the JSON round trip, and the rendered
 * report's coverage lines.
 */

#include <gtest/gtest.h>

#include <string>

#include "obs/profile.hh"

namespace vsgpu::obs
{
namespace
{

/** RAII: each test starts and ends with profiling off, default stride. */
class ProfileFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        setProfiling(false);
        setProfilingStride(32);
    }

    void
    TearDown() override
    {
        setProfiling(false);
        setProfilingStride(32);
    }
};

using ProfileTest = ProfileFixture;

TEST_F(ProfileTest, StageNamesAreDotted)
{
    EXPECT_STREQ(profileStageName(StageGpu), "gpu");
    EXPECT_STREQ(profileStageName(StageCircuit), "circuit");
    EXPECT_STREQ(profileStageName(StageCircuitSolve),
                 "circuit.solve");
}

TEST_F(ProfileTest, DisabledScopeRecordsNothing)
{
    Profile profile;
    {
        ProfileScope scope(&profile, StageGpu);
    }
    EXPECT_EQ(profile.stages[StageGpu].samples, 0u);
    EXPECT_EQ(profile.stages[StageGpu].ns, 0u);
}

TEST_F(ProfileTest, EnabledScopeRecordsOneSample)
{
    setProfiling(true);
    Profile profile;
    {
        ProfileScope scope(&profile, StageGpu);
    }
    EXPECT_EQ(profile.stages[StageGpu].samples, 1u);
}

TEST_F(ProfileTest, NullProfileScopeIsSafe)
{
    setProfiling(true);
    ProfileScope scope(nullptr, StageGpu);
}

TEST_F(ProfileTest, StageTimerSamplesOnStride)
{
    Profile profile;
    StageTimer timer(&profile, /*strideCycles=*/3);
    for (int i = 0; i < 9; ++i) {
        timer.beginCycle();
        EXPECT_EQ(timer.sampling() != nullptr, i % 3 == 0);
        timer.mark(StageGpu);
        timer.mark(StagePower);
        timer.endCycle();
    }
    EXPECT_EQ(profile.cycles, 9u);
    EXPECT_EQ(profile.sampledCycles, 3u);
    EXPECT_EQ(profile.stages[StageGpu].samples, 3u);
    EXPECT_EQ(profile.stages[StagePower].samples, 3u);
    // Fence-post marks cover the sampled loop gap-free.
    EXPECT_EQ(profile.loopNs, profile.stages[StageGpu].ns +
                                  profile.stages[StagePower].ns);
}

TEST_F(ProfileTest, NullStageTimerNoops)
{
    StageTimer timer(nullptr, 4);
    timer.beginCycle();
    EXPECT_EQ(timer.sampling(), nullptr);
    timer.mark(StageGpu);
    timer.endCycle();
}

TEST_F(ProfileTest, HistogramPercentileBracketsSamples)
{
    StageTotals totals;
    totals.add(100); // bucket 6: [64, 128)
    totals.add(100);
    totals.add(100);
    totals.add(5000); // bucket 12: [4096, 8192)
    const double p50 = totals.percentileNs(0.50);
    EXPECT_GE(p50, 64.0);
    EXPECT_LT(p50, 128.0);
    const double p99 = totals.percentileNs(0.99);
    EXPECT_GE(p99, 4096.0);
    EXPECT_LT(p99, 8192.0);
}

Profile
syntheticProfile()
{
    Profile p;
    p.cycles = 100;
    p.sampledCycles = 25;
    p.loopNs = 5000;
    p.wallNs = 6000;
    p.runs = 1;
    p.strideCycles = 4;
    for (int i = 0; i < 25; ++i) {
        p.stages[StageGpu].add(120);
        p.stages[StagePower].add(30);
        p.stages[StageCircuit].add(40);
        p.stages[StageControl].add(7);
        p.stages[StageHypervisor].add(1);
        p.stages[StageObserve].add(1);
        p.stages[StageBookkeeping].add(1);
        p.stages[StageCircuitSolve].add(25);
        p.stages[StageCircuitAssemble].add(10);
        p.stages[StageCircuitUpdate].add(5);
    }
    p.stages[StageSetup].add(500);
    return p;
}

TEST_F(ProfileTest, MergeSumsAndIsOrderIndependent)
{
    const Profile a = syntheticProfile();
    Profile b = syntheticProfile();
    b.stages[StageGpu].add(999);
    ++b.runs;

    Profile ab = a;
    ab.merge(b);
    Profile ba = b;
    ba.merge(a);
    EXPECT_EQ(ab.cycles, 200u);
    EXPECT_EQ(ab.runs, 3u);
    EXPECT_EQ(ab.stages[StageGpu].ns, ba.stages[StageGpu].ns);
    EXPECT_EQ(ab.stages[StageGpu].samples,
              a.stages[StageGpu].samples +
                  b.stages[StageGpu].samples);
    EXPECT_EQ(writeProfileJson(ab, ""), writeProfileJson(ba, ""));
}

TEST_F(ProfileTest, JsonRoundTripsThroughParser)
{
    const Profile p = syntheticProfile();
    const std::string json = writeProfileJson(p, "  ");
    EXPECT_NE(json.find("\"schema\": \"vsgpu-profile-v1\""),
              std::string::npos);
    const Profile parsed = parseProfileJson(json);
    EXPECT_EQ(writeProfileJson(parsed, "  "), json);
    EXPECT_EQ(parsed.cycles, p.cycles);
    EXPECT_EQ(parsed.stages[StageGpu].ns, p.stages[StageGpu].ns);
}

TEST_F(ProfileTest, ReportCoversLoopAndNamesStages)
{
    const std::string report =
        renderProfileReport(syntheticProfile());
    for (const char *needle :
         {"gpu", "circuit.solve", "serial critical path",
          "loop coverage", "wall attribution"}) {
        EXPECT_NE(report.find(needle), std::string::npos) << needle;
    }
    // The fence-post timer attributes all sampled loop time, so the
    // synthetic profile (stages sum exactly to loopNs) reports 100%.
    EXPECT_NE(report.find("100.0% of sampled loop time"),
              std::string::npos);
}

} // namespace
} // namespace vsgpu::obs
