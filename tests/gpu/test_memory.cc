/**
 * @file
 * Unit and property tests for the shared memory hierarchy.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/logging.hh"
#include "gpu/memory.hh"

namespace vsgpu
{
namespace
{

TEST(MemorySystem, SharedMemoryHasFixedLatency)
{
    MemorySystem mem;
    for (Cycle now : {0ull, 100ull, 12345ull})
        EXPECT_EQ(mem.access(OpClass::SharedMem, true, now),
                  now + mem.config().sharedLatency);
}

TEST(MemorySystem, AlwaysHitGoesToL1)
{
    MemoryConfig cfg;
    cfg.l1HitRate = 1.0;
    MemorySystem mem(cfg);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(mem.access(OpClass::Load, true, 10), 10 + cfg.l1Latency);
    EXPECT_EQ(mem.l1Hits(), 100u);
    EXPECT_EQ(mem.dramAccesses(), 0u);
}

TEST(MemorySystem, AlwaysMissReachesDram)
{
    MemoryConfig cfg;
    cfg.l1HitRate = 0.0;
    cfg.l2HitRate = 0.0;
    MemorySystem mem(cfg);
    const Cycle done = mem.access(OpClass::Load, true, 0);
    EXPECT_GE(done, cfg.dramRowHitLatency);
    EXPECT_EQ(mem.dramAccesses(), 1u);
}

TEST(MemorySystem, RowMissCostsMore)
{
    MemoryConfig cfg;
    cfg.l1HitRate = 0.0;
    cfg.l2HitRate = 0.0;
    MemorySystem hit(cfg), miss(cfg);
    EXPECT_LT(hit.access(OpClass::Load, true, 0),
              miss.access(OpClass::Load, false, 0));
}

TEST(MemorySystem, AtomicsBypassCachesAndPayExtra)
{
    MemoryConfig cfg;
    cfg.l1HitRate = 1.0; // would hit if it were a load
    cfg.l2HitRate = 1.0;
    MemorySystem mem(cfg);
    const Cycle done = mem.access(OpClass::Atomic, true, 0);
    EXPECT_GE(done, cfg.dramRowHitLatency + cfg.atomicExtraLatency);
    EXPECT_EQ(mem.l1Hits(), 0u);
}

TEST(MemorySystem, BandwidthQueueingDelaysBursts)
{
    MemoryConfig cfg;
    cfg.l1HitRate = 0.0;
    cfg.l2HitRate = 0.0;
    cfg.dramRequestsPerCycle = 1.0;
    MemorySystem mem(cfg);
    // 100 simultaneous requests: the last must wait ~100 slots.
    Cycle last = 0;
    for (int i = 0; i < 100; ++i)
        last = std::max(last, mem.access(OpClass::Load, true, 0));
    EXPECT_GE(last, 99 + cfg.dramRowHitLatency);
    EXPECT_GT(mem.avgDramQueueing(), 10.0);
}

TEST(MemorySystem, HitRateStatisticsConverge)
{
    MemoryConfig cfg;
    cfg.l1HitRate = 0.7;
    MemorySystem mem(cfg);
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        mem.access(OpClass::Load, true, static_cast<Cycle>(i * 10));
    const double measured =
        static_cast<double>(mem.l1Hits()) / n;
    EXPECT_NEAR(measured, 0.7, 0.02);
}

TEST(MemorySystem, SetL1HitRateTakesEffect)
{
    MemorySystem mem;
    mem.setL1HitRate(0.0);
    for (int i = 0; i < 50; ++i)
        mem.access(OpClass::Load, true, 1000000);
    EXPECT_EQ(mem.l1Hits(), 0u);
}

TEST(MemorySystem, ResetClearsState)
{
    MemorySystem mem;
    mem.access(OpClass::Load, true, 0);
    mem.reset();
    EXPECT_EQ(mem.accesses(), 0u);
    EXPECT_EQ(mem.dramAccesses(), 0u);
    EXPECT_EQ(mem.avgDramQueueing(), 0.0);
}

TEST(MemorySystemDeath, RejectsNonMemoryOps)
{
    setLogQuiet(true);
    MemorySystem mem;
    EXPECT_DEATH(mem.access(OpClass::IntAlu, true, 0), "");
}

TEST(MemorySystemDeath, RejectsBadHitRate)
{
    setLogQuiet(true);
    MemorySystem mem;
    EXPECT_DEATH(mem.setL1HitRate(1.5), "");
}

/** Property: completion is never before issue plus the L1 latency. */
class MemoryLatencySweep
    : public ::testing::TestWithParam<std::tuple<double, double>>
{
};

TEST_P(MemoryLatencySweep, CompletionMonotoneAndBounded)
{
    MemoryConfig cfg;
    cfg.l1HitRate = std::get<0>(GetParam());
    cfg.l2HitRate = std::get<1>(GetParam());
    MemorySystem mem(cfg);
    for (Cycle now = 0; now < 3000; now += 3) {
        const Cycle done = mem.access(OpClass::Load, (now % 2) == 0,
                                      now);
        ASSERT_GE(done, now + cfg.l1Latency);
        ASSERT_LE(done, now + cfg.dramRowMissLatency + 4000);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Rates, MemoryLatencySweep,
    ::testing::Values(std::make_tuple(0.0, 0.0),
                      std::make_tuple(0.3, 0.5),
                      std::make_tuple(0.8, 0.2),
                      std::make_tuple(1.0, 1.0)));

} // namespace
} // namespace vsgpu
