/**
 * @file
 * Unit tests for the 16-SM GPU wrapper and DFS clock masking.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/logging.hh"
#include "gpu/gpu.hh"

namespace vsgpu
{
namespace
{

class CountFactory : public ProgramFactory
{
  public:
    CountFactory(int instrs, int warps) : instrs_(instrs), warps_(warps)
    {
    }

    int warpsPerSm() const override { return warps_; }

    std::unique_ptr<WarpProgram>
    makeProgram(int, int) const override
    {
        std::vector<WarpInstr> v(static_cast<std::size_t>(instrs_));
        return std::make_unique<TraceProgram>(std::move(v));
    }

  private:
    int instrs_;
    int warps_;
};

TEST(GpuTest, HasSixteenSMs)
{
    Gpu gpu;
    EXPECT_EQ(gpu.numSMs(), 16);
    EXPECT_TRUE(gpu.done());
}

TEST(GpuTest, AllSMsDrain)
{
    Gpu gpu;
    CountFactory factory(30, 4);
    gpu.launch(factory);
    EXPECT_FALSE(gpu.done());
    while (!gpu.done() && gpu.cycle() < 10000)
        gpu.step();
    EXPECT_TRUE(gpu.done());
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(gpu.sm(i).retired(), 120u);
}

TEST(GpuTest, CycleCounterAdvances)
{
    Gpu gpu;
    gpu.step();
    gpu.step();
    EXPECT_EQ(gpu.cycle(), 2u);
}

TEST(GpuTest, ClockMaskSlowsAnSm)
{
    Gpu full, masked;
    CountFactory factory(200, 4);
    full.launch(factory);
    masked.launch(factory);
    masked.setSmFrequencyFraction(0, 0.5);
    while (!full.done() && full.cycle() < 20000)
        full.step();
    while (!masked.done() && masked.cycle() < 40000)
        masked.step();
    EXPECT_TRUE(full.done());
    EXPECT_TRUE(masked.done());
    EXPECT_GT(masked.cycle(), full.cycle() * 3 / 2);
}

TEST(GpuTest, MaskedCyclesReportUnclocked)
{
    Gpu gpu;
    CountFactory factory(1000, 4);
    gpu.launch(factory);
    gpu.setSmFrequencyFraction(3, 0.25);
    int clocked = 0;
    const int steps = 400;
    for (int i = 0; i < steps; ++i) {
        gpu.step();
        if (gpu.smEvents(3).clocked)
            ++clocked;
    }
    EXPECT_NEAR(static_cast<double>(clocked) / steps, 0.25, 0.05);
}

TEST(GpuTest, ZeroFrequencyHaltsSm)
{
    Gpu gpu;
    CountFactory factory(10, 1);
    gpu.launch(factory);
    gpu.setSmFrequencyFraction(5, 0.0);
    for (int i = 0; i < 2000; ++i)
        gpu.step();
    EXPECT_FALSE(gpu.sm(5).done());
    EXPECT_EQ(gpu.sm(5).retired(), 0u);
    // Other SMs completed.
    EXPECT_TRUE(gpu.sm(0).done());
}

TEST(GpuTest, FrequencyFractionClamped)
{
    Gpu gpu;
    gpu.setSmFrequencyFraction(0, 2.0);
    EXPECT_DOUBLE_EQ(gpu.smFrequencyFraction(0), 1.0);
    gpu.setSmFrequencyFraction(0, -1.0);
    EXPECT_DOUBLE_EQ(gpu.smFrequencyFraction(0), 0.0);
}

TEST(GpuTest, SharedMemorySystemIsCommon)
{
    Gpu gpu;
    CountFactory factory(5, 1);
    gpu.launch(factory);
    EXPECT_EQ(&gpu.memory(), &gpu.memory());
}

TEST(GpuDeath, BadSmIndexPanics)
{
    setLogQuiet(true);
    Gpu gpu;
    EXPECT_DEATH(gpu.sm(16), "");
    EXPECT_DEATH(gpu.sm(-1), "");
    EXPECT_DEATH(gpu.setSmFrequencyFraction(99, 1.0), "");
    EXPECT_DEATH(gpu.smEvents(16), "");
}

TEST(GpuStats, DumpContainsCoreCounters)
{
    Gpu gpu;
    CountFactory factory(20, 2);
    gpu.launch(factory);
    while (!gpu.done() && gpu.cycle() < 5000)
        gpu.step();
    std::ostringstream oss;
    gpu.dumpStats(oss);
    const std::string stats = oss.str();
    EXPECT_NE(stats.find("gpu.cycles"), std::string::npos);
    EXPECT_NE(stats.find("gpu.instructions"), std::string::npos);
    EXPECT_NE(stats.find("gpu.sm0.retired"), std::string::npos);
    EXPECT_NE(stats.find("gpu.sm15.issue_rate"), std::string::npos);
    EXPECT_NE(stats.find("gpu.mem.accesses"), std::string::npos);
    EXPECT_NE(stats.find("sp0.utilization"), std::string::npos);
}

TEST(GpuStats, SmSnapshotMatchesCounters)
{
    Gpu gpu;
    CountFactory factory(30, 3);
    gpu.launch(factory);
    while (!gpu.done() && gpu.cycle() < 5000)
        gpu.step();
    const SmStats s = gpu.sm(0).stats();
    EXPECT_EQ(s.retired, gpu.sm(0).retired());
    EXPECT_EQ(s.retired, 90u);
    EXPECT_DOUBLE_EQ(s.avgIssueRate, gpu.sm(0).avgIssueRate());
    std::uint64_t byClass = 0;
    for (std::uint64_t n : s.issuedByClass)
        byClass += n;
    EXPECT_EQ(byClass, s.retired);
    // All trace instructions are IntAlu: SP blocks carried them.
    EXPECT_GT(s.unitBusyCycles[static_cast<std::size_t>(
                  ExecUnitKind::Sp0)],
              0u);
}

} // namespace
} // namespace vsgpu
