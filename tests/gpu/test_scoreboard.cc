/**
 * @file
 * Unit tests for the register scoreboard.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "gpu/scoreboard.hh"

namespace vsgpu
{
namespace
{

WarpInstr
instr(std::uint8_t dest, std::uint8_t src0 = noReg,
      std::uint8_t src1 = noReg)
{
    WarpInstr i;
    i.dest = dest;
    i.src0 = src0;
    i.src1 = src1;
    return i;
}

TEST(Scoreboard, FreshBoardIsReady)
{
    Scoreboard sb(4);
    EXPECT_TRUE(sb.ready(0, instr(5, 6, 7), 0));
}

TEST(Scoreboard, RawHazardBlocksUntilReady)
{
    Scoreboard sb(4);
    sb.recordIssue(0, instr(5), 10);
    EXPECT_FALSE(sb.ready(0, instr(8, 5), 3));
    EXPECT_FALSE(sb.ready(0, instr(8, noReg, 5), 9));
    EXPECT_TRUE(sb.ready(0, instr(8, 5), 10));
}

TEST(Scoreboard, WawHazardBlocks)
{
    Scoreboard sb(4);
    sb.recordIssue(0, instr(5), 10);
    EXPECT_FALSE(sb.ready(0, instr(5), 5));
    EXPECT_TRUE(sb.ready(0, instr(5), 10));
}

TEST(Scoreboard, WarpsAreIndependent)
{
    Scoreboard sb(4);
    sb.recordIssue(0, instr(5), 100);
    EXPECT_FALSE(sb.ready(0, instr(9, 5), 1));
    EXPECT_TRUE(sb.ready(1, instr(9, 5), 1));
    EXPECT_TRUE(sb.ready(3, instr(5), 1));
}

TEST(Scoreboard, NoRegIsAlwaysFree)
{
    Scoreboard sb(2);
    sb.recordIssue(0, instr(5), 100);
    EXPECT_TRUE(sb.ready(0, instr(noReg, noReg, noReg), 0));
}

TEST(Scoreboard, NoDestRecordsNothing)
{
    Scoreboard sb(2);
    sb.recordIssue(0, instr(noReg, 5), 100);
    EXPECT_TRUE(sb.ready(0, instr(6, 5), 0));
}

TEST(Scoreboard, ReleaseWarpClearsPending)
{
    Scoreboard sb(2);
    sb.recordIssue(0, instr(5), 1000);
    sb.releaseWarp(0);
    EXPECT_TRUE(sb.ready(0, instr(9, 5), 0));
    EXPECT_EQ(sb.pendingUntil(0, 5), 0u);
}

TEST(Scoreboard, PendingUntilReportsDeadline)
{
    Scoreboard sb(2);
    sb.recordIssue(1, instr(7), 42);
    EXPECT_EQ(sb.pendingUntil(1, 7), 42u);
    EXPECT_EQ(sb.pendingUntil(1, 8), 0u);
}

TEST(Scoreboard, MultipleOutstandingWrites)
{
    Scoreboard sb(2);
    sb.recordIssue(0, instr(1), 10);
    sb.recordIssue(0, instr(2), 20);
    sb.recordIssue(0, instr(3), 30);
    EXPECT_FALSE(sb.ready(0, instr(9, 1, 2), 15));
    EXPECT_TRUE(sb.ready(0, instr(9, 1, 2), 25));
    EXPECT_FALSE(sb.ready(0, instr(9, 3), 25));
}

TEST(ScoreboardDeath, BadWarpPanics)
{
    setLogQuiet(true);
    Scoreboard sb(2);
    EXPECT_DEATH(sb.ready(5, instr(1), 0), "");
    EXPECT_DEATH(sb.recordIssue(-1, instr(1), 0), "");
    EXPECT_DEATH(sb.releaseWarp(2), "");
}

TEST(ScoreboardDeath, OutOfRangeRegisterPanics)
{
    setLogQuiet(true);
    Scoreboard sb(2, 16);
    EXPECT_DEATH(sb.recordIssue(0, instr(200), 1), "");
}

} // namespace
} // namespace vsgpu
