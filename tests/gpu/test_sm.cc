/**
 * @file
 * Unit tests for the SM pipeline: issue, scheduling, barriers,
 * DIWS/FII actuation, and power gating interplay.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/logging.hh"
#include "gpu/sm.hh"

namespace vsgpu
{
namespace
{

WarpInstr
alu(std::uint8_t dest = noReg, std::uint8_t src = noReg)
{
    WarpInstr i;
    i.op = OpClass::IntAlu;
    i.dest = dest;
    i.src0 = src;
    return i;
}

WarpInstr
sync()
{
    WarpInstr i;
    i.op = OpClass::Sync;
    i.dest = noReg;
    return i;
}

/** Factory producing the same fixed trace for every warp. */
class FixedFactory : public ProgramFactory
{
  public:
    FixedFactory(std::vector<WarpInstr> instrs, int warps)
        : instrs_(std::move(instrs)), warps_(warps)
    {
    }

    int warpsPerSm() const override { return warps_; }

    std::unique_ptr<WarpProgram>
    makeProgram(int, int) const override
    {
        return std::make_unique<TraceProgram>(instrs_);
    }

  private:
    std::vector<WarpInstr> instrs_;
    int warps_;
};

/** Run an SM until drained; @return cycles taken. */
Cycle
drain(Sm &sm, Cycle limit = 100000)
{
    Cycle now = 0;
    while (!sm.done() && now < limit) {
        sm.step(now);
        ++now;
    }
    return now;
}

TEST(SmTest, DrainsIndependentWork)
{
    MemorySystem mem;
    Sm sm(0, SmConfig{}, mem);
    FixedFactory factory(std::vector<WarpInstr>(20, alu()), 4);
    sm.launch(factory);
    EXPECT_FALSE(sm.done());
    const Cycle cycles = drain(sm);
    EXPECT_TRUE(sm.done());
    EXPECT_EQ(sm.retired(), 80u);
    // 80 instructions at up to 2/cycle on 2 SP pipes.
    EXPECT_GE(cycles, 40u);
    EXPECT_LE(cycles, 120u);
}

TEST(SmTest, DualIssueSustainsTwoPerCycle)
{
    MemorySystem mem;
    Sm sm(0, SmConfig{}, mem);
    FixedFactory factory(std::vector<WarpInstr>(100, alu()), 8);
    sm.launch(factory);
    drain(sm);
    EXPECT_GT(sm.avgIssueRate(), 1.5);
}

TEST(SmTest, DependenceChainSerializes)
{
    // Every instruction depends on the previous one: issue rate is
    // bounded by the ALU latency.
    std::vector<WarpInstr> chain;
    for (int i = 0; i < 50; ++i)
        chain.push_back(alu(static_cast<std::uint8_t>(10 + (i % 2)),
                            static_cast<std::uint8_t>(
                                i == 0 ? noReg : 10 + ((i - 1) % 2))));
    MemorySystem mem;
    Sm sm(0, SmConfig{}, mem);
    FixedFactory factory(chain, 1);
    sm.launch(factory);
    const Cycle cycles = drain(sm);
    // ~latency per instruction for a single serialized warp.
    EXPECT_GT(cycles, 49u * 10u);
}

TEST(SmTest, BarrierSynchronizesWarps)
{
    // Two warps: one short prefix, one long prefix, then a barrier,
    // then work.  All warps must finish; retired counts the syncs.
    std::vector<WarpInstr> prog;
    for (int i = 0; i < 10; ++i)
        prog.push_back(alu());
    prog.push_back(sync());
    for (int i = 0; i < 5; ++i)
        prog.push_back(alu());
    MemorySystem mem;
    Sm sm(0, SmConfig{}, mem);
    FixedFactory factory(prog, 6);
    sm.launch(factory);
    drain(sm);
    EXPECT_TRUE(sm.done());
    EXPECT_EQ(sm.retired(), 6u * 16u);
}

TEST(SmTest, BarrierOnlyProgramCompletes)
{
    MemorySystem mem;
    Sm sm(0, SmConfig{}, mem);
    FixedFactory factory({sync(), sync()}, 3);
    sm.launch(factory);
    const Cycle cycles = drain(sm, 1000);
    EXPECT_TRUE(sm.done()) << "deadlock after " << cycles;
}

TEST(SmTest, DiwsReducesIssueRate)
{
    MemorySystem mem;
    Sm full(0, SmConfig{}, mem), half(1, SmConfig{}, mem);
    FixedFactory factory(std::vector<WarpInstr>(200, alu()), 8);
    full.launch(factory);
    half.launch(factory);
    half.setIssueWidthLimit(0.5);
    const Cycle fullCycles = drain(full);
    const Cycle halfCycles = drain(half);
    EXPECT_GT(halfCycles, 2 * fullCycles);
    EXPECT_GT(half.throttledCycles(), 0u);
    EXPECT_LE(half.avgIssueRate(), 0.55);
}

TEST(SmTest, DiwsZeroStallsCompletely)
{
    MemorySystem mem;
    Sm sm(0, SmConfig{}, mem);
    FixedFactory factory(std::vector<WarpInstr>(10, alu()), 2);
    sm.launch(factory);
    sm.setIssueWidthLimit(0.0);
    for (Cycle now = 0; now < 100; ++now)
        sm.step(now);
    EXPECT_FALSE(sm.done());
    EXPECT_EQ(sm.retired(), 0u);
    // Restore and drain.
    sm.setIssueWidthLimit(2.0);
    Cycle now = 100;
    while (!sm.done() && now < 1000)
        sm.step(now++);
    EXPECT_TRUE(sm.done());
}

TEST(SmTest, FractionalDiwsAveragesOut)
{
    MemorySystem mem;
    Sm sm(0, SmConfig{}, mem);
    FixedFactory factory(std::vector<WarpInstr>(1700, alu()), 8);
    sm.launch(factory);
    sm.setIssueWidthLimit(1.7);
    drain(sm);
    // Token-bucket averaging with warp-drain tail effects.
    EXPECT_GT(sm.avgIssueRate(), 1.45);
    EXPECT_LT(sm.avgIssueRate(), 1.85);
}

TEST(SmTest, FiiFillsIdleSlots)
{
    MemorySystem mem;
    Sm sm(0, SmConfig{}, mem);
    // Single slow serialized warp leaves issue slack for fakes.
    std::vector<WarpInstr> chain;
    for (int i = 0; i < 30; ++i)
        chain.push_back(alu(10, 10));
    FixedFactory factory(chain, 1);
    sm.launch(factory);
    sm.setFakeInjectRate(1.0);
    drain(sm);
    EXPECT_GT(sm.fakeIssuedTotal(), 100u);
}

TEST(SmTest, FiiDisabledInjectsNothing)
{
    MemorySystem mem;
    Sm sm(0, SmConfig{}, mem);
    FixedFactory factory(std::vector<WarpInstr>(50, alu()), 2);
    sm.launch(factory);
    drain(sm);
    EXPECT_EQ(sm.fakeIssuedTotal(), 0u);
}

TEST(SmTest, EventsReportIssuedClasses)
{
    MemorySystem mem;
    Sm sm(0, SmConfig{}, mem);
    WarpInstr sfu;
    sfu.op = OpClass::Sfu;
    FixedFactory factory({alu(), sfu}, 1);
    sm.launch(factory);
    int sfuSeen = 0, aluSeen = 0;
    for (Cycle now = 0; now < 50 && !sm.done(); ++now) {
        const auto &ev = sm.step(now);
        aluSeen += ev.issued[static_cast<int>(OpClass::IntAlu)];
        sfuSeen += ev.issued[static_cast<int>(OpClass::Sfu)];
    }
    EXPECT_EQ(aluSeen, 1);
    EXPECT_EQ(sfuSeen, 1);
}

TEST(SmTest, GatedUnitWakesOnDemand)
{
    MemorySystem mem;
    SmConfig cfg;
    cfg.pgWakeLatency = 10;
    cfg.pgBlackout = 5;
    Sm sm(0, cfg, mem);
    WarpInstr sfu;
    sfu.op = OpClass::Sfu;
    FixedFactory factory({sfu}, 1);
    sm.launch(factory);
    sm.requestGate(ExecUnitKind::Sfu, 0);
    EXPECT_TRUE(sm.unit(ExecUnitKind::Sfu).gated(0));
    Cycle now = 0;
    while (!sm.done() && now < 200)
        sm.step(now++);
    EXPECT_TRUE(sm.done());
    EXPECT_EQ(sm.unit(ExecUnitKind::Sfu).wakeEvents(), 1u);
    // The wake penalty delays completion past the latency alone.
    EXPECT_GE(now, cfg.pgWakeLatency);
}

TEST(SmTest, GatesSchedulerStillDrains)
{
    MemorySystem mem;
    SmConfig cfg;
    cfg.scheduler = SchedulerKind::Gates;
    Sm sm(0, cfg, mem);
    WarpInstr load;
    load.op = OpClass::Load;
    load.dest = 12;
    FixedFactory factory({alu(), load, alu(), sync(), alu()}, 8);
    sm.launch(factory);
    drain(sm);
    EXPECT_TRUE(sm.done());
    EXPECT_EQ(sm.retired(), 8u * 5u);
}

TEST(SmTest, RelaunchResetsState)
{
    MemorySystem mem;
    Sm sm(0, SmConfig{}, mem);
    FixedFactory factory(std::vector<WarpInstr>(10, alu()), 2);
    sm.launch(factory);
    drain(sm);
    const auto firstRetired = sm.retired();
    sm.launch(factory, 0);
    EXPECT_FALSE(sm.done());
    drain(sm);
    EXPECT_EQ(sm.retired(), firstRetired + 20u);
}

TEST(SmDeath, LaunchRejectsBadWarpCounts)
{
    setLogQuiet(true);
    MemorySystem mem;
    Sm sm(0, SmConfig{}, mem);
    FixedFactory tooMany({alu()}, config::warpsPerSM + 1);
    EXPECT_DEATH(sm.launch(tooMany), "");
}

TEST(SmScheduler, GtoIsGreedyOnTheSameWarp)
{
    // With independent work in every warp, GTO keeps draining the
    // warp it last issued from before rotating: warp 0 finishes
    // markedly earlier than warp N-1.
    MemorySystem mem;
    Sm sm(0, SmConfig{}, mem);
    FixedFactory factory(std::vector<WarpInstr>(60, alu()), 6);
    sm.launch(factory);
    Cycle now = 0;
    int warpsAliveWhenFirstFinished = -1;
    int lastActive = sm.activeWarps();
    while (!sm.done() && now < 10000) {
        sm.step(now++);
        if (sm.activeWarps() < lastActive &&
            warpsAliveWhenFirstFinished < 0) {
            warpsAliveWhenFirstFinished = sm.activeWarps();
        }
        lastActive = sm.activeWarps();
    }
    // The first warp completed while most others still had work —
    // round-robin would drain them all nearly simultaneously.
    EXPECT_GE(warpsAliveWhenFirstFinished, 4);
}

TEST(SmScheduler, GatesPrefersUngatedUnits)
{
    // Two warps: one with SFU work (gated unit), one with ALU work.
    // The GATES scheduler issues the ALU warp while the SFU stays
    // gated, waking the SFU only when nothing else remains.
    MemorySystem mem;
    SmConfig cfg;
    cfg.scheduler = SchedulerKind::Gates;
    cfg.pgWakeLatency = 5;
    cfg.pgBlackout = 5;
    Sm sm(0, cfg, mem);

    WarpInstr sfu;
    sfu.op = OpClass::Sfu;
    struct TwoWarpFactory : ProgramFactory
    {
        WarpInstr sfuInstr;
        int warpsPerSm() const override { return 2; }
        std::unique_ptr<WarpProgram>
        makeProgram(int, int warp) const override
        {
            if (warp == 0)
                return std::make_unique<TraceProgram>(
                    std::vector<WarpInstr>(4, sfuInstr));
            return std::make_unique<TraceProgram>(
                std::vector<WarpInstr>(40, WarpInstr{}));
        }
    } factory;
    factory.sfuInstr = sfu;

    sm.launch(factory);
    sm.requestGate(ExecUnitKind::Sfu, 0);
    Cycle now = 0;
    while (!sm.done() && now < 2000)
        sm.step(now++);
    EXPECT_TRUE(sm.done());
    // The SFU warp eventually ran (demand wake), at most two wakes.
    EXPECT_GE(sm.unit(ExecUnitKind::Sfu).wakeEvents(), 1u);
}

TEST(SmScheduler, ThrottledCyclesOnlyChargedWithReadyWork)
{
    // An SM waiting purely on memory must not count DIWS throttling.
    MemorySystem mem;
    Sm sm(0, SmConfig{}, mem);
    WarpInstr load;
    load.op = OpClass::Load;
    load.dest = 10;
    load.l1Hit = false;
    load.l2Hit = false;
    WarpInstr use = alu(11, 10);
    FixedFactory factory({load, use}, 1);
    sm.launch(factory);
    sm.setIssueWidthLimit(0.9);
    drain(sm);
    // The single warp spends nearly all its time blocked on DRAM;
    // throttle accounting must reflect that (few chargeable cycles).
    EXPECT_LT(sm.throttledCycles(), 10u);
}

} // namespace
} // namespace vsgpu
