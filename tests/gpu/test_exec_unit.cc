/**
 * @file
 * Unit tests for execution blocks: occupancy, idle tracking, gating.
 */

#include <gtest/gtest.h>

#include "gpu/exec_unit.hh"

namespace vsgpu
{
namespace
{

TEST(ExecUnitTest, OccupancyByOpClass)
{
    EXPECT_EQ(occupancyCycles(OpClass::IntAlu), 1u);
    EXPECT_EQ(occupancyCycles(OpClass::FpAlu), 1u);
    EXPECT_EQ(occupancyCycles(OpClass::Sfu), 4u);
    EXPECT_EQ(occupancyCycles(OpClass::Load), 1u);
    EXPECT_EQ(occupancyCycles(OpClass::Atomic), 2u);
}

TEST(ExecUnitTest, PrimaryUnitRouting)
{
    EXPECT_EQ(primaryUnit(OpClass::IntAlu), ExecUnitKind::Sp0);
    EXPECT_EQ(primaryUnit(OpClass::Sfu), ExecUnitKind::Sfu);
    EXPECT_EQ(primaryUnit(OpClass::Load), ExecUnitKind::Lsu);
    EXPECT_EQ(primaryUnit(OpClass::SharedMem), ExecUnitKind::Lsu);
}

TEST(ExecUnitTest, BusyWhileOccupied)
{
    ExecUnit u(ExecUnitKind::Sfu);
    EXPECT_TRUE(u.canAccept(10));
    u.accept(OpClass::Sfu, 10);
    EXPECT_TRUE(u.busy(10));
    EXPECT_FALSE(u.canAccept(12));
    EXPECT_TRUE(u.canAccept(14));
}

TEST(ExecUnitTest, IdleCyclesTrackLastUse)
{
    ExecUnit u(ExecUnitKind::Sp0);
    u.accept(OpClass::IntAlu, 0);
    EXPECT_EQ(u.idleCycles(1), 0u);
    EXPECT_EQ(u.idleCycles(5), 4u);
    u.accept(OpClass::IntAlu, 5);
    EXPECT_EQ(u.idleCycles(6), 0u);
}

TEST(ExecUnitTest, GateBlocksAcceptance)
{
    ExecUnit u(ExecUnitKind::Lsu);
    u.gate(10, 20);
    EXPECT_TRUE(u.gated(15));
    EXPECT_FALSE(u.canAccept(15));
    EXPECT_EQ(u.gateEvents(), 1u);
}

TEST(ExecUnitTest, UngateHonoursBlackout)
{
    ExecUnit u(ExecUnitKind::Lsu);
    u.gate(10, 50); // blackout until 60
    const Cycle usable = u.ungate(20, 5);
    EXPECT_EQ(usable, 65u); // wake starts only after blackout
    EXPECT_TRUE(u.gated(64));
    EXPECT_FALSE(u.gated(65));
    EXPECT_TRUE(u.canAccept(65));
    EXPECT_EQ(u.wakeEvents(), 1u);
}

TEST(ExecUnitTest, UngateAfterBlackoutIsPrompt)
{
    ExecUnit u(ExecUnitKind::Sp1);
    u.gate(0, 10);
    const Cycle usable = u.ungate(100, 7);
    EXPECT_EQ(usable, 107u);
}

TEST(ExecUnitTest, GatedCyclesAccumulate)
{
    ExecUnit u(ExecUnitKind::Sfu);
    u.gate(10, 0);
    u.ungate(30, 2);
    EXPECT_EQ(u.gatedCycles(100), 20u);
    u.gate(50, 0);
    EXPECT_EQ(u.gatedCycles(60), 30u);
}

TEST(ExecUnitTest, DoubleGateIsIdempotent)
{
    ExecUnit u(ExecUnitKind::Sfu);
    u.gate(10, 5);
    u.gate(12, 5);
    EXPECT_EQ(u.gateEvents(), 1u);
}

TEST(ExecUnitTest, ResetClearsState)
{
    ExecUnit u(ExecUnitKind::Sp0);
    u.accept(OpClass::Sfu, 0);
    u.gate(10, 100);
    u.reset(50);
    EXPECT_FALSE(u.gated(50));
    EXPECT_TRUE(u.canAccept(50));
    EXPECT_EQ(u.idleCycles(55), 5u);
}

TEST(ExecUnitTest, Names)
{
    EXPECT_STREQ(execUnitName(ExecUnitKind::Sp0), "sp0");
    EXPECT_STREQ(execUnitName(ExecUnitKind::Lsu), "lsu");
}

} // namespace
} // namespace vsgpu
