/**
 * @file
 * Unit tests for the workload specification types and their fluent
 * builders.
 */

#include <gtest/gtest.h>

#include "workloads/spec.hh"

namespace vsgpu
{
namespace
{

TEST(PhaseSpecTest, FluentBuildersSetFields)
{
    PhaseSpec p;
    p.w(OpClass::FpAlu, 0.7)
        .w(OpClass::Load, 0.3)
        .len(123)
        .dep(0.5, 7)
        .div(0.25)
        .rowHit(0.9)
        .barrier();
    EXPECT_DOUBLE_EQ(p.mix[static_cast<std::size_t>(OpClass::FpAlu)],
                     0.7);
    EXPECT_DOUBLE_EQ(p.mix[static_cast<std::size_t>(OpClass::Load)],
                     0.3);
    EXPECT_EQ(p.lengthInstrs, 123);
    EXPECT_DOUBLE_EQ(p.depChance, 0.5);
    EXPECT_EQ(p.depDistance, 7);
    EXPECT_DOUBLE_EQ(p.divergence, 0.25);
    EXPECT_DOUBLE_EQ(p.rowHitRate, 0.9);
    EXPECT_TRUE(p.barrierAtEnd);
}

TEST(PhaseSpecTest, BuildersChainInAnyOrder)
{
    PhaseSpec p;
    p.barrier().len(10).w(OpClass::IntAlu, 1.0);
    EXPECT_TRUE(p.barrierAtEnd);
    EXPECT_EQ(p.lengthInstrs, 10);
}

TEST(PhaseSpecTest, DefaultsAreSane)
{
    const PhaseSpec p;
    EXPECT_FALSE(p.barrierAtEnd);
    EXPECT_GT(p.lengthInstrs, 0);
    EXPECT_DOUBLE_EQ(p.divergence, 1.0);
    double total = 0.0;
    for (double w : p.mix)
        total += w;
    EXPECT_DOUBLE_EQ(total, 0.0); // mixes are explicit
}

TEST(WorkloadSpecTest, LoopLengthCountsBarriers)
{
    WorkloadSpec s;
    PhaseSpec a;
    a.len(10);
    PhaseSpec b;
    b.len(20).barrier();
    s.phases = {a, b};
    EXPECT_EQ(s.loopLength(), 31); // 10 + 20 + 1 barrier
}

TEST(WorkloadSpecTest, TotalInstrsMultipliesRepeats)
{
    WorkloadSpec s;
    PhaseSpec a;
    a.len(50);
    s.phases = {a};
    s.repeats = 6;
    EXPECT_EQ(s.totalInstrs(), 300);
}

TEST(WorkloadSpecTest, EmptyPhasesHaveZeroLoop)
{
    WorkloadSpec s;
    EXPECT_EQ(s.loopLength(), 0);
    EXPECT_EQ(s.totalInstrs(), 0);
}

} // namespace
} // namespace vsgpu
