/**
 * @file
 * Tests for the benchmark suite definitions, including parameterized
 * health checks over all twelve benchmarks.
 */

#include <set>

#include <gtest/gtest.h>

#include "gpu/gpu.hh"
#include "workloads/generator.hh"
#include "workloads/suite.hh"

namespace vsgpu
{
namespace
{

TEST(Suite, TwelveBenchmarksInPaperOrder)
{
    const auto &all = allBenchmarks();
    ASSERT_EQ(all.size(), 12u);
    EXPECT_EQ(all.front(), Benchmark::Backprop);
    EXPECT_EQ(all.back(), Benchmark::Simpleatomic);
}

TEST(Suite, NamesMatchPaperFigures)
{
    EXPECT_STREQ(benchmarkName(Benchmark::Backprop), "backprop");
    EXPECT_STREQ(benchmarkName(Benchmark::Blackscholes),
                 "blackscholes");
    EXPECT_STREQ(benchmarkName(Benchmark::Simpleatomic),
                 "simpleatomic");
}

TEST(Suite, BackpropIsMostImbalancedHeartwallMostUniform)
{
    // Paper Fig. 17: backprop shows the largest inter-SM imbalance,
    // heartwall the smallest.
    const double backprop = workloadFor(Benchmark::Backprop).smJitter;
    const double heartwall =
        workloadFor(Benchmark::Heartwall).smJitter;
    for (Benchmark b : allBenchmarks()) {
        const double j = workloadFor(b).smJitter;
        EXPECT_LE(j, backprop) << benchmarkName(b);
        EXPECT_GE(j, heartwall) << benchmarkName(b);
    }
}

TEST(Suite, UniformWorkloadHasNoJitter)
{
    const WorkloadSpec u = uniformWorkload();
    EXPECT_EQ(u.smJitter, 0.0);
    EXPECT_EQ(u.warpJitter, 0.0);
}

TEST(Suite, ResonantWorkloadAlternatesPhases)
{
    const WorkloadSpec r = resonantWorkload(200, 4);
    ASSERT_EQ(r.phases.size(), 2u);
    EXPECT_GT(r.phases[0].mix[static_cast<std::size_t>(
                  OpClass::FpAlu)],
              0.5);
    EXPECT_NEAR(r.phases[1].depChance, 1.0, 1e-12);
}

TEST(Suite, ScaledToInstrsAdjustsRepeats)
{
    WorkloadSpec spec = workloadFor(Benchmark::Srad);
    const WorkloadSpec scaled = scaledToInstrs(spec, 10000);
    EXPECT_NEAR(scaled.totalInstrs(), 10000,
                scaled.loopLength());
}

TEST(Suite, EveryGeneratorTakesAnExplicitSeed)
{
    // The default-seed overloads and the explicit-seed overloads
    // must agree, and explicit seeds must be honored verbatim.
    for (Benchmark b : allBenchmarks()) {
        EXPECT_EQ(workloadFor(b).seed, benchmarkSeed(b))
            << benchmarkName(b);
        EXPECT_EQ(workloadFor(b, 12345).seed, 12345u)
            << benchmarkName(b);
    }
    EXPECT_EQ(uniformWorkload(100, 77).seed, 77u);
    EXPECT_EQ(resonantWorkload(100, 2, 88).seed, 88u);
}

TEST(Suite, BenchmarkSeedsAreDistinct)
{
    std::set<std::uint64_t> seeds;
    for (Benchmark b : allBenchmarks())
        seeds.insert(benchmarkSeed(b));
    EXPECT_EQ(seeds.size(), allBenchmarks().size());
}

TEST(Suite, ReseedingChangesTheInstructionStream)
{
    // Fingerprint the first instructions of a few warp streams.
    const auto fingerprint = [](const WorkloadSpec &spec) {
        WorkloadFactory f(spec);
        std::vector<int> fp;
        for (int sm = 0; sm < 4; ++sm) {
            auto prog = f.makeProgram(sm, 0);
            for (int i = 0; i < 200; ++i) {
                const auto instr = prog->next();
                if (!instr)
                    break;
                fp.push_back(static_cast<int>(instr->op) * 8 +
                             instr->l1Hit * 4 + instr->rowHit * 2 +
                             (instr->activeLanes == 32));
            }
        }
        return fp;
    };
    const WorkloadSpec a = workloadFor(Benchmark::Bfs);
    const WorkloadSpec b = workloadFor(Benchmark::Bfs, 0xdead);
    // Same seed reproduces the stream; a new seed perturbs it.
    EXPECT_EQ(fingerprint(a), fingerprint(workloadFor(Benchmark::Bfs)));
    EXPECT_NE(fingerprint(a), fingerprint(b));
}

class SuiteSweep : public ::testing::TestWithParam<Benchmark>
{
};

TEST_P(SuiteSweep, SpecIsWellFormed)
{
    const WorkloadSpec spec = workloadFor(GetParam());
    EXPECT_FALSE(spec.name.empty());
    EXPECT_FALSE(spec.phases.empty());
    EXPECT_GT(spec.repeats, 0);
    EXPECT_GT(spec.warpsPerSm, 0);
    EXPECT_LE(spec.warpsPerSm, config::warpsPerSM);
    EXPECT_GE(spec.l1HitRate, 0.0);
    EXPECT_LE(spec.l1HitRate, 1.0);
    EXPECT_GT(spec.totalInstrs(), 500);
    for (const auto &phase : spec.phases) {
        double total = 0.0;
        for (double w : phase.mix)
            total += w;
        EXPECT_GT(total, 0.0);
        EXPECT_GT(phase.lengthInstrs, 0);
        EXPECT_GE(phase.divergence, 0.0);
        EXPECT_LE(phase.divergence, 1.0);
    }
}

TEST_P(SuiteSweep, RunsToCompletionOnGpu)
{
    WorkloadSpec spec = workloadFor(GetParam());
    // Shrink for test runtime but keep the structure.
    spec = scaledToInstrs(spec, 400);
    GpuConfig cfg;
    cfg.memory.l1HitRate = spec.l1HitRate;
    Gpu gpu(cfg);
    WorkloadFactory factory(spec);
    gpu.launch(factory);
    while (!gpu.done() && gpu.cycle() < 400000)
        gpu.step();
    EXPECT_TRUE(gpu.done()) << benchmarkName(GetParam());
}

TEST_P(SuiteSweep, IssueRateInPlausibleRange)
{
    WorkloadSpec spec = workloadFor(GetParam());
    spec = scaledToInstrs(spec, 1200);
    GpuConfig cfg;
    cfg.memory.l1HitRate = spec.l1HitRate;
    Gpu gpu(cfg);
    WorkloadFactory factory(spec);
    gpu.launch(factory);
    while (!gpu.done() && gpu.cycle() < 600000)
        gpu.step();
    double rate = 0.0;
    for (int sm = 0; sm < gpu.numSMs(); ++sm)
        rate += gpu.sm(sm).avgIssueRate();
    rate /= gpu.numSMs();
    // Paper Section IV-C: 0.8-1.8 warps/cycle for typical kernels;
    // memory/atomic-bound outliers fall below.
    EXPECT_GT(rate, 0.15) << benchmarkName(GetParam());
    EXPECT_LT(rate, 2.0) << benchmarkName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, SuiteSweep,
    ::testing::ValuesIn(allBenchmarks()),
    [](const ::testing::TestParamInfo<Benchmark> &info) {
        return benchmarkName(info.param);
    });

} // namespace
} // namespace vsgpu
