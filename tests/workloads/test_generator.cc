/**
 * @file
 * Unit and property tests for the procedural workload generator.
 */

#include <gtest/gtest.h>

#include <vector>

#include "workloads/generator.hh"
#include "workloads/suite.hh"

namespace vsgpu
{
namespace
{

std::vector<WarpInstr>
drainProgram(WarpProgram &p)
{
    std::vector<WarpInstr> out;
    while (auto instr = p.next())
        out.push_back(*instr);
    return out;
}

TEST(Generator, EmitsExactInstructionCount)
{
    WorkloadSpec spec = uniformWorkload(500);
    WorkloadFactory factory(spec);
    auto prog = factory.makeProgram(0, 0);
    EXPECT_EQ(drainProgram(*prog).size(), 500u);
}

TEST(Generator, DeterministicPerSmWarp)
{
    WorkloadSpec spec = workloadFor(Benchmark::Srad);
    WorkloadFactory factory(spec);
    auto a = drainProgram(*factory.makeProgram(2, 7));
    auto b = drainProgram(*factory.makeProgram(2, 7));
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].op, b[i].op);
        EXPECT_EQ(a[i].dest, b[i].dest);
        EXPECT_EQ(a[i].src0, b[i].src0);
        EXPECT_EQ(a[i].activeLanes, b[i].activeLanes);
    }
}

TEST(Generator, DifferentWarpsDiffer)
{
    WorkloadSpec spec = workloadFor(Benchmark::Srad);
    WorkloadFactory factory(spec);
    auto a = drainProgram(*factory.makeProgram(0, 0));
    auto b = drainProgram(*factory.makeProgram(0, 1));
    int differences = 0;
    const std::size_t n = std::min(a.size(), b.size());
    for (std::size_t i = 0; i < n; ++i)
        if (a[i].op != b[i].op)
            ++differences;
    EXPECT_GT(differences, 10);
}

TEST(Generator, MixMatchesPhaseWeights)
{
    WorkloadSpec spec;
    spec.name = "mixcheck";
    PhaseSpec phase;
    phase.mix[static_cast<std::size_t>(OpClass::IntAlu)] = 0.5;
    phase.mix[static_cast<std::size_t>(OpClass::Load)] = 0.5;
    phase.lengthInstrs = 4000;
    spec.phases = {phase};
    spec.repeats = 1;
    WorkloadFactory factory(spec);
    auto instrs = drainProgram(*factory.makeProgram(0, 0));
    int loads = 0;
    for (const auto &i : instrs)
        if (i.op == OpClass::Load)
            ++loads;
    EXPECT_NEAR(static_cast<double>(loads) / instrs.size(), 0.5,
                0.05);
}

TEST(Generator, BarrierEmittedAtPhaseEnd)
{
    WorkloadSpec spec;
    spec.name = "barriers";
    PhaseSpec phase;
    phase.mix[static_cast<std::size_t>(OpClass::IntAlu)] = 1.0;
    phase.lengthInstrs = 9;
    phase.barrierAtEnd = true;
    spec.phases = {phase};
    spec.repeats = 3;
    spec.smJitter = 0.0;
    spec.warpJitter = 0.0;
    WorkloadFactory factory(spec);
    auto instrs = drainProgram(*factory.makeProgram(0, 0));
    ASSERT_EQ(instrs.size(), 30u);
    EXPECT_EQ(instrs[9].op, OpClass::Sync);
    EXPECT_EQ(instrs[19].op, OpClass::Sync);
    EXPECT_EQ(instrs[29].op, OpClass::Sync);
}

TEST(Generator, JitterOffsetsSmStartPoints)
{
    WorkloadSpec spec;
    spec.name = "jitter";
    PhaseSpec a;
    a.mix[static_cast<std::size_t>(OpClass::IntAlu)] = 1.0;
    a.lengthInstrs = 100;
    PhaseSpec b;
    b.mix[static_cast<std::size_t>(OpClass::Load)] = 1.0;
    b.lengthInstrs = 100;
    spec.phases = {a, b};
    spec.repeats = 2;
    spec.smJitter = 0.9;
    spec.warpJitter = 0.0;
    WorkloadFactory factory(spec);
    // First instruction op differs between some SMs when offsets
    // land in different phases.
    int inLoadPhase = 0;
    for (int sm = 0; sm < 16; ++sm) {
        auto prog = factory.makeProgram(sm, 0);
        const auto first = prog->next();
        ASSERT_TRUE(first.has_value());
        if (first->op == OpClass::Load)
            ++inLoadPhase;
    }
    EXPECT_GT(inLoadPhase, 0);
    EXPECT_LT(inLoadPhase, 16);
}

TEST(Generator, ZeroJitterAlignsAllSms)
{
    WorkloadSpec spec = uniformWorkload(100);
    WorkloadFactory factory(spec);
    for (int sm = 0; sm < 4; ++sm) {
        auto prog = factory.makeProgram(sm, 0);
        const auto first = prog->next();
        ASSERT_TRUE(first.has_value());
        EXPECT_TRUE(first->op == OpClass::FpAlu ||
                    first->op == OpClass::IntAlu);
    }
}

TEST(Generator, LanesRespectDivergenceBounds)
{
    WorkloadSpec spec = workloadFor(Benchmark::Bfs);
    WorkloadFactory factory(spec);
    auto instrs = drainProgram(*factory.makeProgram(0, 0));
    double sum = 0.0;
    for (const auto &i : instrs) {
        ASSERT_GE(i.activeLanes, 1);
        ASSERT_LE(i.activeLanes, 32);
        sum += i.activeLanes;
    }
    // bfs divergence 0.45 -> mean lanes near 14-15.
    EXPECT_NEAR(sum / instrs.size() / 32.0, 0.45, 0.1);
}

TEST(Generator, SourceRegistersNeverExceedWrittenRange)
{
    WorkloadSpec spec = workloadFor(Benchmark::Hotspot);
    WorkloadFactory factory(spec);
    auto instrs = drainProgram(*factory.makeProgram(1, 2));
    for (const auto &i : instrs) {
        if (i.dest != noReg)
            EXPECT_LT(i.dest, 48);
        if (i.src0 != noReg)
            EXPECT_LT(i.src0, 48);
        if (i.src1 != noReg)
            EXPECT_LT(i.src1, 48);
    }
}

TEST(Generator, StoresHaveNoDestination)
{
    WorkloadSpec spec;
    spec.name = "stores";
    PhaseSpec phase;
    phase.mix[static_cast<std::size_t>(OpClass::Store)] = 1.0;
    phase.lengthInstrs = 50;
    spec.phases = {phase};
    spec.repeats = 1;
    WorkloadFactory factory(spec);
    auto instrs = drainProgram(*factory.makeProgram(0, 0));
    for (const auto &i : instrs)
        EXPECT_EQ(i.dest, noReg);
}

TEST(Generator, CacheOutcomesMatchConfiguredRates)
{
    WorkloadSpec spec;
    spec.name = "hits";
    PhaseSpec phase;
    phase.mix[static_cast<std::size_t>(OpClass::Load)] = 1.0;
    phase.lengthInstrs = 5000;
    spec.phases = {phase};
    spec.repeats = 1;
    spec.l1HitRate = 0.7;
    spec.l2HitRate = 0.4;
    WorkloadFactory factory(spec);
    auto instrs = drainProgram(*factory.makeProgram(0, 0));
    int l1 = 0, l2 = 0;
    for (const auto &i : instrs) {
        l1 += i.l1Hit ? 1 : 0;
        l2 += i.l2Hit ? 1 : 0;
    }
    const double n = static_cast<double>(instrs.size());
    EXPECT_NEAR(l1 / n, 0.7, 0.03);
    EXPECT_NEAR(l2 / n, 0.4, 0.03);
}

TEST(Generator, CacheOutcomesAreOrderIndependent)
{
    // The same (sm, warp, position) always gets the same outcome —
    // the property that makes cross-configuration timing comparisons
    // deterministic.
    WorkloadSpec spec = workloadFor(Benchmark::Scalarprod);
    WorkloadFactory factory(spec);
    auto a = drainProgram(*factory.makeProgram(3, 4));
    auto b = drainProgram(*factory.makeProgram(3, 4));
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].l1Hit, b[i].l1Hit);
        EXPECT_EQ(a[i].l2Hit, b[i].l2Hit);
    }
}

} // namespace
} // namespace vsgpu
