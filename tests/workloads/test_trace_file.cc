/**
 * @file
 * Tests for the textual warp-trace format: parsing, serialization,
 * round-tripping of generated workloads, and replay on the GPU.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/logging.hh"
#include "gpu/gpu.hh"
#include "workloads/generator.hh"
#include "workloads/suite.hh"
#include "workloads/trace_file.hh"

namespace vsgpu
{
namespace
{

constexpr const char *tinyTrace = R"(# a tiny kernel
warp 0 0
int 8 - - 32 1 1 0
fp 9 8 - 32 1 1 0
load 10 9 - 16 0 0 1
sync - - - 32 1 1 0
store - 10 - 32 1 1 0
warp 0 1
int 8 - - 32 1 1 0
sync - - - 32 1 1 0
store - 8 - 32 1 1 0
)";

TEST(TraceFileTest, ParsesTinyTrace)
{
    std::istringstream is(tinyTrace);
    const TraceFile trace = TraceFile::parse(is);
    EXPECT_EQ(trace.numStreams(), 2u);
    EXPECT_EQ(trace.totalInstrs(), 8u);
    EXPECT_EQ(trace.warpsPerSm(), 2);

    const auto &w0 = trace.stream(0, 0);
    ASSERT_EQ(w0.size(), 5u);
    EXPECT_EQ(w0[0].op, OpClass::IntAlu);
    EXPECT_EQ(w0[0].dest, 8);
    EXPECT_EQ(w0[1].op, OpClass::FpAlu);
    EXPECT_EQ(w0[1].src0, 8);
    EXPECT_EQ(w0[2].op, OpClass::Load);
    EXPECT_EQ(w0[2].activeLanes, 16);
    EXPECT_FALSE(w0[2].rowHit);
    EXPECT_FALSE(w0[2].l1Hit);
    EXPECT_TRUE(w0[2].l2Hit);
    EXPECT_EQ(w0[3].op, OpClass::Sync);
    EXPECT_EQ(w0[4].op, OpClass::Store);
    EXPECT_EQ(w0[4].dest, noReg);
}

TEST(TraceFileTest, ModuloFallbackReplaysStreams)
{
    std::istringstream is(tinyTrace);
    const TraceFile trace = TraceFile::parse(is);
    // SM 7 was not recorded: falls back to SM 0's streams.
    EXPECT_EQ(trace.stream(7, 0).size(), trace.stream(0, 0).size());
    EXPECT_EQ(trace.stream(7, 5).size(), trace.stream(0, 1).size());
}

TEST(TraceFileTest, WriteParseRoundTrip)
{
    std::istringstream is(tinyTrace);
    const TraceFile original = TraceFile::parse(is);
    std::ostringstream os;
    original.write(os);
    std::istringstream is2(os.str());
    const TraceFile reparsed = TraceFile::parse(is2);
    ASSERT_EQ(reparsed.numStreams(), original.numStreams());
    for (int warp = 0; warp < 2; ++warp) {
        const auto &a = original.stream(0, warp);
        const auto &b = reparsed.stream(0, warp);
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(a[i].op, b[i].op);
            EXPECT_EQ(a[i].dest, b[i].dest);
            EXPECT_EQ(a[i].src0, b[i].src0);
            EXPECT_EQ(a[i].activeLanes, b[i].activeLanes);
            EXPECT_EQ(a[i].l1Hit, b[i].l1Hit);
        }
    }
}

TEST(TraceFileTest, RecordsGeneratedWorkload)
{
    const WorkloadSpec spec =
        scaledToInstrs(workloadFor(Benchmark::Srad), 100);
    WorkloadFactory generated(spec);
    const TraceFile trace = recordTrace(generated, 2);
    EXPECT_EQ(trace.warpsPerSm(), spec.warpsPerSm);
    EXPECT_EQ(trace.numStreams(),
              static_cast<std::size_t>(2 * spec.warpsPerSm));

    // Replayed streams match the generator exactly.
    TraceFileFactory replay(trace);
    auto a = generated.makeProgram(1, 3);
    auto b = replay.makeProgram(1, 3);
    while (true) {
        const auto ia = a->next();
        const auto ib = b->next();
        ASSERT_EQ(ia.has_value(), ib.has_value());
        if (!ia.has_value())
            break;
        EXPECT_EQ(ia->op, ib->op);
        EXPECT_EQ(ia->dest, ib->dest);
        EXPECT_EQ(ia->l1Hit, ib->l1Hit);
    }
}

TEST(TraceFileTest, ReplayedTraceRunsOnGpu)
{
    std::istringstream is(tinyTrace);
    TraceFileFactory factory(TraceFile::parse(is));
    Gpu gpu;
    gpu.launch(factory);
    while (!gpu.done() && gpu.cycle() < 10000)
        gpu.step();
    EXPECT_TRUE(gpu.done());
    // 5 + 3 instructions per SM.
    EXPECT_EQ(gpu.sm(0).retired(), 8u);
}

TEST(TraceFileTest, ParseOpClassMnemonics)
{
    EXPECT_EQ(parseOpClass("int"), OpClass::IntAlu);
    EXPECT_EQ(parseOpClass("fp"), OpClass::FpAlu);
    EXPECT_EQ(parseOpClass("sfu"), OpClass::Sfu);
    EXPECT_EQ(parseOpClass("load"), OpClass::Load);
    EXPECT_EQ(parseOpClass("store"), OpClass::Store);
    EXPECT_EQ(parseOpClass("smem"), OpClass::SharedMem);
    EXPECT_EQ(parseOpClass("atomic"), OpClass::Atomic);
    EXPECT_EQ(parseOpClass("sync"), OpClass::Sync);
}

TEST(TraceFileDeath, MalformedInputIsFatal)
{
    setLogQuiet(true);
    const auto parseString = [](const std::string &text) {
        std::istringstream is(text);
        TraceFile::parse(is);
    };
    EXPECT_EXIT(parseString("int 8 - - 32 1 1 0\n"),
                ::testing::ExitedWithCode(1), "");
    EXPECT_EXIT(parseString("warp 0 0\nbogus 8 - - 32 1 1 0\n"),
                ::testing::ExitedWithCode(1), "");
    EXPECT_EXIT(parseString("warp 0 0\nint 8 - - 99 1 1 0\n"),
                ::testing::ExitedWithCode(1), "");
    EXPECT_EXIT(parseString("# only comments\n"),
                ::testing::ExitedWithCode(1), "");
}

} // namespace
} // namespace vsgpu
