/**
 * @file
 * Unit tests for the PDS configuration presets (Table III rows).
 */

#include <gtest/gtest.h>

#include "sim/pds.hh"

namespace vsgpu
{
namespace
{

TEST(Pds, NamesMatchTableIII)
{
    EXPECT_STREQ(pdsName(PdsKind::ConventionalVrm),
                 "single-layer VRM");
    EXPECT_STREQ(pdsName(PdsKind::SingleLayerIvr),
                 "single-layer IVR");
    EXPECT_STREQ(pdsName(PdsKind::VsCircuitOnly), "VS circuit-only");
    EXPECT_STREQ(pdsName(PdsKind::VsCrossLayer), "VS cross-layer");
}

TEST(Pds, StackedFlag)
{
    EXPECT_FALSE(isVoltageStacked(PdsKind::ConventionalVrm));
    EXPECT_FALSE(isVoltageStacked(PdsKind::SingleLayerIvr));
    EXPECT_TRUE(isVoltageStacked(PdsKind::VsCircuitOnly));
    EXPECT_TRUE(isVoltageStacked(PdsKind::VsCrossLayer));
}

TEST(Pds, CircuitOnlyDefaultsToGuaranteeSizing)
{
    const PdsOptions o = defaultPds(PdsKind::VsCircuitOnly);
    EXPECT_NEAR(o.ivrArea() / 1.0_mm2,
                config::circuitOnlyIvrArea / 1.0_mm2, 1.0);
    EXPECT_FALSE(o.smoothingEnabled);
}

TEST(Pds, CrossLayerDefaultsToPointTwo)
{
    const PdsOptions o = defaultPds(PdsKind::VsCrossLayer);
    EXPECT_NEAR(o.ivrAreaFraction, 0.2, 1e-12);
    EXPECT_TRUE(o.smoothingEnabled);
}

TEST(Pds, AreaOverheadsMatchTableIII)
{
    // Table III: conventional N/A (0), single-layer IVR 172.3 mm^2,
    // circuit-only 912 mm^2 (1.72x), cross-layer ~105.8 mm^2 (0.2x).
    EXPECT_DOUBLE_EQ(
        pdsAreaOverhead(defaultPds(PdsKind::ConventionalVrm)) /
            1.0_mm2,
        0.0);
    EXPECT_NEAR(
        pdsAreaOverhead(defaultPds(PdsKind::SingleLayerIvr)) /
            1.0_mm2,
        172.3, 0.1);
    EXPECT_NEAR(
        pdsAreaOverhead(defaultPds(PdsKind::VsCircuitOnly)) /
            1.0_mm2,
        912.0, 1.0);
    const double crossLayer =
        pdsAreaOverhead(defaultPds(PdsKind::VsCrossLayer)) / 1.0_mm2;
    EXPECT_NEAR(crossLayer, 105.8, 3.0);
}

TEST(Pds, CrossLayerAreaReductionVsCircuitOnly)
{
    // Headline claim: ~88% area reduction.
    const Area circuitOnly =
        pdsAreaOverhead(defaultPds(PdsKind::VsCircuitOnly));
    const Area crossLayer =
        pdsAreaOverhead(defaultPds(PdsKind::VsCrossLayer));
    EXPECT_NEAR(1.0 - crossLayer / circuitOnly, 0.88, 0.01);
}

} // namespace
} // namespace vsgpu
