/**
 * @file
 * Unit tests for the PDS configuration presets (Table III rows).
 */

#include <gtest/gtest.h>

#include "sim/pds.hh"

namespace vsgpu
{
namespace
{

TEST(Pds, NamesMatchTableIII)
{
    EXPECT_STREQ(pdsName(PdsKind::ConventionalVrm),
                 "single-layer VRM");
    EXPECT_STREQ(pdsName(PdsKind::SingleLayerIvr),
                 "single-layer IVR");
    EXPECT_STREQ(pdsName(PdsKind::VsCircuitOnly), "VS circuit-only");
    EXPECT_STREQ(pdsName(PdsKind::VsCrossLayer), "VS cross-layer");
}

TEST(Pds, StackedFlag)
{
    EXPECT_FALSE(isVoltageStacked(PdsKind::ConventionalVrm));
    EXPECT_FALSE(isVoltageStacked(PdsKind::SingleLayerIvr));
    EXPECT_TRUE(isVoltageStacked(PdsKind::VsCircuitOnly));
    EXPECT_TRUE(isVoltageStacked(PdsKind::VsCrossLayer));
}

TEST(Pds, CircuitOnlyDefaultsToGuaranteeSizing)
{
    const PdsOptions o = defaultPds(PdsKind::VsCircuitOnly);
    EXPECT_NEAR(o.ivrAreaMm2(), config::circuitOnlyIvrAreaMm2, 1.0);
    EXPECT_FALSE(o.smoothingEnabled);
}

TEST(Pds, CrossLayerDefaultsToPointTwo)
{
    const PdsOptions o = defaultPds(PdsKind::VsCrossLayer);
    EXPECT_NEAR(o.ivrAreaFraction, 0.2, 1e-12);
    EXPECT_TRUE(o.smoothingEnabled);
}

TEST(Pds, AreaOverheadsMatchTableIII)
{
    // Table III: conventional N/A (0), single-layer IVR 172.3 mm^2,
    // circuit-only 912 mm^2 (1.72x), cross-layer ~105.8 mm^2 (0.2x).
    EXPECT_DOUBLE_EQ(
        pdsAreaOverheadMm2(defaultPds(PdsKind::ConventionalVrm)), 0.0);
    EXPECT_NEAR(
        pdsAreaOverheadMm2(defaultPds(PdsKind::SingleLayerIvr)),
        172.3, 0.1);
    EXPECT_NEAR(
        pdsAreaOverheadMm2(defaultPds(PdsKind::VsCircuitOnly)), 912.0,
        1.0);
    const double crossLayer =
        pdsAreaOverheadMm2(defaultPds(PdsKind::VsCrossLayer));
    EXPECT_NEAR(crossLayer, 105.8, 3.0);
}

TEST(Pds, CrossLayerAreaReductionVsCircuitOnly)
{
    // Headline claim: ~88% area reduction.
    const double circuitOnly =
        pdsAreaOverheadMm2(defaultPds(PdsKind::VsCircuitOnly));
    const double crossLayer =
        pdsAreaOverheadMm2(defaultPds(PdsKind::VsCrossLayer));
    EXPECT_NEAR(1.0 - crossLayer / circuitOnly, 0.88, 0.01);
}

} // namespace
} // namespace vsgpu
