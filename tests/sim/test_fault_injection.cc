/**
 * @file
 * Fault-injection tests: verify the cross-layer stack behaves sanely
 * — and that its protection is actually load-bearing — when parts of
 * the loop are broken or stressed.
 */

#include <gtest/gtest.h>

#include "sim/cosim.hh"
#include "workloads/suite.hh"

namespace vsgpu
{
namespace
{

/** Settled minimum voltage over the last trace samples. */
double
settledFloor(const CosimResult &r)
{
    double floor = 1e9;
    const std::size_t n = r.trace.size();
    for (std::size_t i = n > 20 ? n - 20 : 0; i < n; ++i)
        floor = std::min(floor, r.trace[i].minSmVolts.raw());
    return floor;
}

CosimResult
worstCase(const ControllerConfig &controller)
{
    CosimConfig cfg;
    cfg.pds = defaultPds(PdsKind::VsCrossLayer);
    cfg.pds.controller = controller;
    cfg.maxCycles = 6000;
    cfg.gateLayerAtSec = 2.0_us;
    cfg.traceStride = 50;
    return CoSimulator(cfg).run(
        WorkloadFactory(uniformWorkload(10000)), 0.9);
}

TEST(FaultInjection, StuckDetectorDisablesProtection)
{
    // A detector stuck at nominal blinds the controller: the
    // worst-case settles like the unprotected circuit-only design.
    ControllerConfig healthy;
    ControllerConfig blind;
    blind.detector.stuckAtVolts = 1.0_V;

    const double withControl = settledFloor(worstCase(healthy));
    const double withoutControl = settledFloor(worstCase(blind));
    EXPECT_GT(withControl, config::minSafeVoltage.raw());
    EXPECT_LT(withoutControl, withControl - 0.05);
}

TEST(FaultInjection, StuckLowDetectorThrottlesPermanently)
{
    // A detector stuck below threshold forces continuous smoothing:
    // the workload still completes, just slower.
    ControllerConfig stuck;
    stuck.detector.stuckAtVolts = Volts{0.8};
    CosimConfig cfg;
    cfg.pds = defaultPds(PdsKind::VsCrossLayer);
    cfg.pds.controller = stuck;
    cfg.maxCycles = 300000;
    const CosimResult r = CoSimulator(cfg).run(
        scaledToInstrs(workloadFor(Benchmark::Heartwall), 400));
    EXPECT_TRUE(r.finished);
    EXPECT_GT(r.throttleRate, 0.2);
}

TEST(FaultInjection, InfiniteLoopLatencyNeverActuates)
{
    ControllerConfig dead;
    dead.loopLatency = 1u << 30; // commands never arrive
    const CosimResult r = worstCase(dead);
    // Equivalent to no protection.
    EXPECT_LT(settledFloor(r), config::minSafeVoltage.raw());
}

TEST(FaultInjection, ZeroAreaIvrStillSimulates)
{
    // Architectural smoothing without any CR-IVR: the run must stay
    // numerically sane even though reliability is lost.
    CosimConfig cfg;
    cfg.pds = defaultPds(PdsKind::VsCrossLayer);
    cfg.pds.ivrAreaFraction = 0.0;
    cfg.maxCycles = 20000;
    const CosimResult r = CoSimulator(cfg).run(
        scaledToInstrs(workloadFor(Benchmark::Heartwall), 400));
    // Unregulated stacks can ring a layer briefly through zero (no
    // clamp diodes in the linear model); sanity means bounded, not
    // safe.
    EXPECT_GT(r.minVoltage, -0.5);
    EXPECT_GT(r.meanVoltage, 0.8);
    EXPECT_LT(r.meanVoltage, 1.2);
}

TEST(FaultInjection, PermanentPeakLoadOnOneSm)
{
    // One SM pinned at peak activity (a pathological kernel): the
    // cross-layer system keeps every rail inside sane bounds.
    struct PinnedFactory : ProgramFactory
    {
        int warpsPerSm() const override { return 8; }

        std::unique_ptr<WarpProgram>
        makeProgram(int sm, int warp) const override
        {
            WorkloadSpec heavy = uniformWorkload(4000);
            WorkloadSpec light = uniformWorkload(4000);
            // Dependence-serialize the light SMs to create a large
            // sustained imbalance against SM 0.
            light.phases[0].depChance = 1.0;
            light.phases[0].depDistance = 1;
            WorkloadFactory f(sm == 0 ? heavy : light);
            return f.makeProgram(sm, warp);
        }
    };
    CosimConfig cfg;
    cfg.pds = defaultPds(PdsKind::VsCrossLayer);
    cfg.maxCycles = 30000;
    PinnedFactory factory;
    const CosimResult r = CoSimulator(cfg).run(factory, 0.9);
    EXPECT_GT(r.minVoltage, 0.5);
}

TEST(FaultInjection, GatingEveryLayerInTurnRecovers)
{
    // Serially halting different layers (re-running the scenario per
    // layer) always recovers to the margin with smoothing on.
    for (int layer = 0; layer < config::numLayers; ++layer) {
        CosimConfig cfg;
        cfg.pds = defaultPds(PdsKind::VsCrossLayer);
        cfg.maxCycles = 6000;
        cfg.gateLayerAtSec = 2.0_us;
        cfg.gatedLayer = layer;
        cfg.traceStride = 50;
        const CosimResult r = CoSimulator(cfg).run(
            WorkloadFactory(uniformWorkload(10000)), 0.9);
        EXPECT_GT(settledFloor(r), 0.75) << "layer " << layer;
    }
}

} // namespace
} // namespace vsgpu
