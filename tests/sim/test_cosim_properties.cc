/**
 * @file
 * Parameterized property tests of the co-simulator: invariants that
 * must hold for EVERY benchmark on EVERY PDS configuration.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "sim/cosim.hh"
#include "workloads/suite.hh"

namespace vsgpu
{
namespace
{

using Param = std::tuple<PdsKind, Benchmark>;

class CosimInvariants : public ::testing::TestWithParam<Param>
{
  protected:
    CosimResult
    run()
    {
        CosimConfig cfg;
        cfg.pds = defaultPds(std::get<0>(GetParam()));
        cfg.maxCycles = 15000;
        CoSimulator sim(cfg);
        return sim.run(scaledToInstrs(
            workloadFor(std::get<1>(GetParam())), 400));
    }
};

TEST_P(CosimInvariants, EnergyLedgerIsConsistent)
{
    const CosimResult r = run();
    const auto &e = r.energy;
    // Wall covers everything; each component non-negative.
    EXPECT_GT(e.wall, 0.0);
    EXPECT_GE(e.load, 0.0);
    EXPECT_GE(e.pdn, 0.0);
    EXPECT_GE(e.conversion, 0.0);
    EXPECT_GE(e.crIvr, 0.0);
    EXPECT_GE(e.overhead, 0.0);
    EXPECT_GT(e.wall, e.load);
    // The ledger closes within the capacitor-charging residue.
    const double booked = e.load + e.pdn + e.conversion + e.crIvr +
                          e.overhead;
    EXPECT_NEAR(booked / e.wall, 1.0, 0.06);
    // PDE in a physically sensible band.
    EXPECT_GT(e.pde(), 0.6);
    EXPECT_LT(e.pde(), 1.0);
}

TEST_P(CosimInvariants, VoltagesPhysicallyBounded)
{
    const CosimResult r = run();
    EXPECT_GT(r.meanVoltage, 0.85);
    EXPECT_LT(r.meanVoltage, 1.15);
    EXPECT_LE(r.minVoltage, r.meanVoltage);
    for (const auto &box : r.smNoise) {
        EXPECT_LE(box.min, box.q1);
        EXPECT_LE(box.q1, box.median);
        EXPECT_LE(box.median, box.q3);
        EXPECT_LE(box.q3, box.max);
        EXPECT_GT(box.count, 0u);
    }
}

TEST_P(CosimInvariants, HistogramAndRatesNormalized)
{
    const CosimResult r = run();
    double sum = 0.0;
    for (double f : r.imbalanceBins) {
        EXPECT_GE(f, 0.0);
        EXPECT_LE(f, 1.0);
        sum += f;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
    EXPECT_GE(r.throttleRate, 0.0);
    EXPECT_LE(r.throttleRate, 1.0);
    EXPECT_GE(r.triggerRate, 0.0);
    EXPECT_LE(r.triggerRate, 1.0);
}

TEST_P(CosimInvariants, DeterministicAcrossRuns)
{
    const CosimResult a = run();
    const CosimResult b = run();
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_DOUBLE_EQ(a.energy.wall, b.energy.wall);
    EXPECT_DOUBLE_EQ(a.minVoltage, b.minVoltage);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, CosimInvariants,
    ::testing::Combine(
        ::testing::Values(PdsKind::ConventionalVrm,
                          PdsKind::SingleLayerIvr,
                          PdsKind::VsCircuitOnly,
                          PdsKind::VsCrossLayer),
        ::testing::Values(Benchmark::Backprop, Benchmark::Heartwall,
                          Benchmark::Bfs, Benchmark::Simpleatomic)),
    [](const ::testing::TestParamInfo<Param> &info) {
        std::string name =
            std::string(pdsName(std::get<0>(info.param))) + "_" +
            benchmarkName(std::get<1>(info.param));
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

} // namespace
} // namespace vsgpu
