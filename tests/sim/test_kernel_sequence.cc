/**
 * @file
 * Tests for multi-kernel sequences: kernel-boundary resynchronization
 * and state continuity across launches.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "sim/cosim.hh"
#include "workloads/suite.hh"

namespace vsgpu
{
namespace
{

WorkloadSpec
kernel(Benchmark b, int instrs = 300)
{
    return scaledToInstrs(workloadFor(b), instrs);
}

TEST(KernelSequence, RunsAllKernels)
{
    CosimConfig cfg;
    cfg.pds = defaultPds(PdsKind::VsCrossLayer);
    cfg.maxCycles = 200000;
    CoSimulator sim(cfg);
    const CosimResult r = sim.runSequence(
        {kernel(Benchmark::Heartwall), kernel(Benchmark::Bfs),
         kernel(Benchmark::Hotspot)});
    EXPECT_TRUE(r.finished);
    // Instructions of all three kernels retired.
    const std::uint64_t aloneA =
        CoSimulator(cfg).run(kernel(Benchmark::Heartwall)).instructions;
    EXPECT_GT(r.instructions, aloneA);
}

TEST(KernelSequence, SequenceCyclesNearSumOfParts)
{
    CosimConfig cfg;
    cfg.pds = defaultPds(PdsKind::VsCircuitOnly);
    cfg.maxCycles = 400000;
    const CosimResult seq = CoSimulator(cfg).runSequence(
        {kernel(Benchmark::Heartwall), kernel(Benchmark::Srad)});
    const CosimResult a =
        CoSimulator(cfg).run(kernel(Benchmark::Heartwall));
    const CosimResult b =
        CoSimulator(cfg).run(kernel(Benchmark::Srad));
    const double sum = static_cast<double>(a.cycles + b.cycles);
    EXPECT_NEAR(static_cast<double>(seq.cycles) / sum, 1.0, 0.10);
}

TEST(KernelSequence, EnergyAggregatesAcrossKernels)
{
    CosimConfig cfg;
    cfg.pds = defaultPds(PdsKind::VsCrossLayer);
    cfg.maxCycles = 400000;
    const CosimResult seq = CoSimulator(cfg).runSequence(
        {kernel(Benchmark::Heartwall), kernel(Benchmark::Heartwall)});
    const CosimResult one =
        CoSimulator(cfg).run(kernel(Benchmark::Heartwall));
    EXPECT_NEAR(seq.energy.wall / one.energy.wall, 2.0, 0.15);
    EXPECT_GT(seq.energy.pde(), 0.85);
}

TEST(KernelSequence, BudgetExhaustionStopsEarly)
{
    CosimConfig cfg;
    cfg.pds = defaultPds(PdsKind::VsCircuitOnly);
    cfg.maxCycles = 2000; // far too small for three kernels
    const CosimResult r = CoSimulator(cfg).runSequence(
        {kernel(Benchmark::Heartwall), kernel(Benchmark::Bfs),
         kernel(Benchmark::Hotspot)});
    EXPECT_FALSE(r.finished);
    EXPECT_LE(r.cycles, 2000u);
}

TEST(KernelSequence, SingleKernelMatchesPlainRun)
{
    CosimConfig cfg;
    cfg.pds = defaultPds(PdsKind::VsCrossLayer);
    cfg.maxCycles = 200000;
    const CosimResult seq =
        CoSimulator(cfg).runSequence({kernel(Benchmark::Srad)});
    const CosimResult plain =
        CoSimulator(cfg).run(kernel(Benchmark::Srad));
    EXPECT_EQ(seq.cycles, plain.cycles);
    EXPECT_EQ(seq.instructions, plain.instructions);
    EXPECT_DOUBLE_EQ(seq.energy.wall, plain.energy.wall);
}

TEST(KernelSequenceDeath, EmptySequencePanics)
{
    setLogQuiet(true);
    CosimConfig cfg;
    CoSimulator sim(cfg);
    EXPECT_DEATH(sim.runSequence({}), "");
}

TEST(KernelSequence, LongSequencePenaltyStaysBounded)
{
    // The motivating property: with per-kernel resync, the smoothing
    // penalty of a long timeline stays near the single-kernel level
    // rather than growing with accumulated phase drift.
    CosimConfig base;
    base.pds = defaultPds(PdsKind::VsCircuitOnly);
    base.pds.ivrAreaFraction = 0.2;
    base.maxCycles = 600000;
    CosimConfig smooth;
    smooth.pds = defaultPds(PdsKind::VsCrossLayer);
    smooth.maxCycles = 600000;

    const std::vector<WorkloadSpec> timeline(
        4, kernel(Benchmark::Hotspot, 500));
    const CosimResult rb = CoSimulator(base).runSequence(timeline);
    const CosimResult rs = CoSimulator(smooth).runSequence(timeline);
    ASSERT_TRUE(rb.finished);
    ASSERT_TRUE(rs.finished);
    const double penalty = static_cast<double>(rs.cycles) /
                               static_cast<double>(rb.cycles) -
                           1.0;
    // Launch ramps are themselves noise events (synchronized SM
    // start-up excites the global resonance — the EmerGPU effect),
    // so each kernel pays a bounded launch cost; the property under
    // test is that the total stays proportional to kernel count
    // instead of compounding with timeline length.
    EXPECT_LT(penalty, 0.20);
}

} // namespace
} // namespace vsgpu
