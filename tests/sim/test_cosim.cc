/**
 * @file
 * Unit tests for the integrated co-simulator: energy-accounting
 * consistency, configuration behaviour, and scenario hooks.
 */

#include <gtest/gtest.h>

#include "sim/cosim.hh"
#include "workloads/suite.hh"

namespace vsgpu
{
namespace
{

WorkloadSpec
smallBench()
{
    return scaledToInstrs(workloadFor(Benchmark::Heartwall), 500);
}

TEST(Cosim, VsRunProducesConsistentEnergy)
{
    CosimConfig cfg;
    cfg.pds = defaultPds(PdsKind::VsCrossLayer);
    cfg.maxCycles = 8000;
    CoSimulator sim(cfg);
    const CosimResult r = sim.run(smallBench());
    EXPECT_GT(r.cycles, 1000u);
    EXPECT_GT(r.instructions, 1000u);
    EXPECT_GT(r.energy.load, 0.0);
    EXPECT_GT(r.energy.wall, r.energy.load);
    const double pde = r.energy.pde();
    EXPECT_GT(pde, 0.7);
    EXPECT_LT(pde, 1.0);
    EXPECT_NEAR(r.energy.pdsLoss(), r.energy.wall - r.energy.load,
                1e-12);
}

TEST(Cosim, ConventionalAccountingAddsUp)
{
    CosimConfig cfg;
    cfg.pds = defaultPds(PdsKind::ConventionalVrm);
    cfg.maxCycles = 8000;
    CoSimulator sim(cfg);
    const CosimResult r = sim.run(smallBench());
    // wall = load + pdn + conversion (+ small cap-charging residue).
    const double booked =
        r.energy.load + r.energy.pdn + r.energy.conversion;
    EXPECT_NEAR(booked / r.energy.wall, 1.0, 0.05);
    EXPECT_EQ(r.energy.crIvr, 0.0);
}

TEST(Cosim, VsBeatsConventionalPde)
{
    CosimConfig conv, vs;
    conv.pds = defaultPds(PdsKind::ConventionalVrm);
    vs.pds = defaultPds(PdsKind::VsCircuitOnly);
    conv.maxCycles = vs.maxCycles = 8000;
    const CosimResult rc = CoSimulator(conv).run(smallBench());
    const CosimResult rv = CoSimulator(vs).run(smallBench());
    EXPECT_GT(rv.energy.pde(), rc.energy.pde() + 0.05);
}

TEST(Cosim, NoiseStatsPopulated)
{
    CosimConfig cfg;
    cfg.pds = defaultPds(PdsKind::VsCircuitOnly);
    cfg.maxCycles = 5000;
    CoSimulator sim(cfg);
    const CosimResult r = sim.run(smallBench());
    for (const auto &box : r.smNoise) {
        EXPECT_GT(box.count, 0u);
        EXPECT_GT(box.median, 0.8);
        EXPECT_LT(box.median, 1.2);
    }
    EXPECT_GT(r.minVoltage, 0.0);
    EXPECT_LE(r.minVoltage, r.meanVoltage);
}

TEST(Cosim, TraceCollectsWhenEnabled)
{
    CosimConfig cfg;
    cfg.pds = defaultPds(PdsKind::VsCircuitOnly);
    cfg.maxCycles = 2000;
    cfg.traceStride = 100;
    CoSimulator sim(cfg);
    const CosimResult r = sim.run(smallBench());
    EXPECT_GE(r.trace.size(), 15u);
    for (std::size_t i = 1; i < r.trace.size(); ++i)
        EXPECT_GT(r.trace[i].timeSec, r.trace[i - 1].timeSec);
}

TEST(Cosim, TraceDisabledByDefault)
{
    CosimConfig cfg;
    cfg.maxCycles = 1000;
    CoSimulator sim(cfg);
    const CosimResult r = sim.run(smallBench());
    EXPECT_TRUE(r.trace.empty());
}

TEST(Cosim, LayerGatingScenarioDroopsOtherLayers)
{
    CosimConfig cfg;
    cfg.pds = defaultPds(PdsKind::VsCircuitOnly);
    cfg.pds.ivrAreaFraction = 0.2;
    cfg.maxCycles = 4000;
    cfg.gateLayerAtSec = 2.0_us;
    cfg.gatedLayer = 0;
    CoSimulator sim(cfg);
    const CosimResult r =
        sim.run(WorkloadFactory(uniformWorkload(6000)), 0.9);
    // The weak CR-IVR cannot hold the margin under a halted layer.
    EXPECT_LT(r.minVoltage, config::minSafeVoltage.raw());
}

TEST(Cosim, SmoothingImprovesWorstCase)
{
    CosimConfig circuitOnly;
    circuitOnly.pds = defaultPds(PdsKind::VsCircuitOnly);
    circuitOnly.pds.ivrAreaFraction = 0.2;
    circuitOnly.maxCycles = 5000;
    circuitOnly.gateLayerAtSec = 2.0_us;

    CosimConfig crossLayer = circuitOnly;
    crossLayer.pds = defaultPds(PdsKind::VsCrossLayer);
    crossLayer.gateLayerAtSec = 2.0_us;

    const CosimResult bare = CoSimulator(circuitOnly)
                                 .run(WorkloadFactory(
                                          uniformWorkload(8000)),
                                      0.9);
    const CosimResult smooth = CoSimulator(crossLayer)
                                   .run(WorkloadFactory(
                                            uniformWorkload(8000)),
                                        0.9);
    EXPECT_GT(smooth.minVoltage, bare.minVoltage + 0.03);
}

TEST(Cosim, ThrottleRateZeroWithoutSmoothing)
{
    CosimConfig cfg;
    cfg.pds = defaultPds(PdsKind::VsCircuitOnly);
    cfg.maxCycles = 3000;
    const CosimResult r = CoSimulator(cfg).run(smallBench());
    EXPECT_EQ(r.throttleRate, 0.0);
    EXPECT_EQ(r.triggerRate, 0.0);
}

TEST(Cosim, ImbalanceBinsSumToOne)
{
    CosimConfig cfg;
    cfg.pds = defaultPds(PdsKind::VsCircuitOnly);
    cfg.maxCycles = 5000;
    const CosimResult r = CoSimulator(cfg).run(smallBench());
    double sum = 0.0;
    for (double f : r.imbalanceBins)
        sum += f;
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Cosim, UniformWorkloadIsMostlyBalanced)
{
    // Paper Fig. 17 takeaway: SPMD execution keeps most windows in
    // the lowest imbalance bucket.
    CosimConfig cfg;
    cfg.pds = defaultPds(PdsKind::VsCircuitOnly);
    cfg.maxCycles = 8000;
    const CosimResult r =
        CoSimulator(cfg).run(WorkloadFactory(uniformWorkload(4000)),
                             0.9);
    EXPECT_GT(r.imbalanceBins[0] + r.imbalanceBins[1], 0.6);
}

TEST(Cosim, MaxCyclesCapRespected)
{
    CosimConfig cfg;
    cfg.maxCycles = 500;
    const CosimResult r =
        CoSimulator(cfg).run(workloadFor(Benchmark::Heartwall));
    EXPECT_LE(r.cycles, 500u);
    EXPECT_FALSE(r.finished);
}

TEST(Cosim, FinishedFlagSetOnDrain)
{
    CosimConfig cfg;
    cfg.maxCycles = 200000;
    const CosimResult r = CoSimulator(cfg).run(smallBench());
    EXPECT_TRUE(r.finished);
}

} // namespace
} // namespace vsgpu
