/**
 * @file
 * Property-based tests of the voltage detectors: over randomized
 * seeded rail traces, detector outputs stay inside the input
 * envelope (plus one quantization step), settle to within resolution
 * on constant rails, and quantize onto the resolution grid.  Seeds
 * are fixed, so failures reproduce exactly.
 */

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/random.hh"
#include "control/detector.hh"

namespace vsgpu
{
namespace
{

/** A noisy rail trace with occasional droop events. */
std::vector<double>
randomRailTrace(Rng &rng, int cycles)
{
    std::vector<double> trace;
    trace.reserve(static_cast<std::size_t>(cycles));
    double droop = 0.0;
    for (int i = 0; i < cycles; ++i) {
        if (rng.bernoulli(0.01))
            droop = rng.uniform(0.05, 0.20); // a droop event begins
        droop *= 0.97;                       // and decays
        trace.push_back(1.0 - droop + rng.normal(0.0, 0.005));
    }
    return trace;
}

TEST(DetectorProperties, OutputStaysInsideInputEnvelope)
{
    for (DetectorKind kind :
         {DetectorKind::Oddd, DetectorKind::Cpm, DetectorKind::Adc}) {
        const DetectorSpec spec = detectorSpec(kind);
        for (std::uint64_t seed = 1; seed <= 10; ++seed) {
            Rng rng(seed);
            VoltageDetector det(spec);
            const auto trace = randomRailTrace(rng, 2000);
            const double lo =
                *std::min_element(trace.begin(), trace.end());
            const double hi =
                *std::max_element(trace.begin(), trace.end());
            for (double v : trace) {
                const double out = det.sample(Volts{v}).raw();
                EXPECT_TRUE(std::isfinite(out));
                // The filter is an average of past inputs and the
                // reset state (1 V); quantization adds one step.
                EXPECT_GE(out, std::min(lo, 1.0) -
                                   spec.resolutionVolts.raw());
                EXPECT_LE(out, std::max(hi, 1.0) +
                                   spec.resolutionVolts.raw());
            }
        }
    }
}

TEST(DetectorProperties, SettlesWithinResolutionOnConstantRail)
{
    for (DetectorKind kind :
         {DetectorKind::Oddd, DetectorKind::Cpm, DetectorKind::Adc}) {
        const DetectorSpec spec = detectorSpec(kind);
        for (double level : {0.85, 0.95, 1.0, 1.05}) {
            VoltageDetector det(spec);
            double out = 0.0;
            for (int i = 0; i < 2000; ++i)
                out = det.sample(Volts{level}).raw();
            EXPECT_NEAR(out, level,
                        spec.resolutionVolts.raw() + 1e-12)
                << "kind " << static_cast<int>(kind) << " level "
                << level;
        }
    }
}

TEST(DetectorProperties, OutputLandsOnResolutionGrid)
{
    const DetectorSpec spec = detectorSpec(DetectorKind::Adc);
    Rng rng(99);
    VoltageDetector det(spec);
    for (int i = 0; i < 1000; ++i) {
        const double out =
            det.sample(Volts{rng.uniform(0.8, 1.1)}).raw();
        const double steps = out / spec.resolutionVolts.raw();
        EXPECT_NEAR(steps, std::round(steps), 1e-9)
            << "output " << out << " is off the quantization grid";
    }
}

TEST(DetectorProperties, StuckAtFaultDominatesAnyInput)
{
    DetectorSpec spec = detectorSpec(DetectorKind::Adc);
    spec.stuckAtVolts = Volts{0.93};
    Rng rng(7);
    VoltageDetector det(spec);
    for (int i = 0; i < 500; ++i)
        EXPECT_EQ(det.sample(Volts{rng.uniform(0.5, 1.5)}).raw(),
                  0.93);
}

} // namespace
} // namespace vsgpu
