/**
 * @file
 * Unit tests for the voltage detector models.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "control/detector.hh"

namespace vsgpu
{
namespace
{

TEST(DetectorSpecs, TableIIValues)
{
    const DetectorSpec oddd = detectorSpec(DetectorKind::Oddd);
    EXPECT_LE(oddd.latency, 2u);
    EXPECT_LE(oddd.powerWatts.raw(), 0.010);

    const DetectorSpec cpm = detectorSpec(DetectorKind::Cpm);
    EXPECT_GE(cpm.latency, 10u);
    EXPECT_LE(cpm.latency, 100u);

    const DetectorSpec adc = detectorSpec(DetectorKind::Adc);
    EXPECT_GE(adc.latency, 1u);
    EXPECT_LE(adc.latency, 10u);
    EXPECT_NEAR(adc.resolutionVolts.raw(), 1.0 / 128.0, 1e-12);
}

TEST(VoltageDetectorTest, SettlesToConstantInput)
{
    VoltageDetector det;
    Volts out{};
    for (int i = 0; i < 200; ++i)
        out = det.sample(Volts{0.85});
    EXPECT_NEAR(out.raw(), 0.85,
                detectorSpec(DetectorKind::Adc).resolutionVolts.raw());
}

TEST(VoltageDetectorTest, DelayMatchesLatency)
{
    DetectorSpec spec = detectorSpec(DetectorKind::Adc);
    spec.resolutionVolts = Volts{}; // isolate the delay
    // Very high cutoff so the filter is transparent.
    VoltageDetector det(spec, Hertz{1e12});
    // Step from 1.0 to 0.0: the output must stay ~1.0 for exactly
    // `latency` samples.
    int delay = 0;
    for (int i = 0; i < 50; ++i) {
        const Volts out = det.sample(Volts{});
        if (out > Volts{0.5})
            ++delay;
        else
            break;
    }
    EXPECT_EQ(delay, static_cast<int>(spec.latency));
}

TEST(VoltageDetectorTest, QuantizesToResolution)
{
    DetectorSpec spec;
    spec.latency = 0;
    spec.resolutionVolts = Volts{0.1};
    VoltageDetector det(spec, Hertz{1e12});
    Volts out{};
    for (int i = 0; i < 100; ++i)
        out = det.sample(Volts{0.8749});
    EXPECT_NEAR(out.raw(), 0.9, 1e-12);
}

TEST(VoltageDetectorTest, FiltersFastRipple)
{
    // 200 MHz square ripple around 1.0 V through the 50 MHz filter:
    // the output swing must be strongly attenuated.
    VoltageDetector det(detectorSpec(DetectorKind::Oddd), 50.0_MHz);
    double lo = 2.0, hi = 0.0;
    for (int i = 0; i < 4000; ++i) {
        // ~3.5 cycles per half period at 700 MHz core clock.
        const Volts v = ((i / 2) % 2) ? Volts{1.1} : Volts{0.9};
        const Volts out = det.sample(v);
        if (i > 500) {
            lo = std::min(lo, out.raw());
            hi = std::max(hi, out.raw());
        }
    }
    EXPECT_LT(hi - lo, 0.1); // input swing was 0.2
    EXPECT_NEAR((hi + lo) / 2.0, 1.0, 0.02);
}

TEST(VoltageDetectorTest, TracksSlowDrift)
{
    VoltageDetector det;
    Volts out{};
    // Slow ramp over thousands of cycles passes through.
    for (int i = 0; i <= 5000; ++i)
        out = det.sample(Volts{1.0 - 0.2 * i / 5000.0});
    EXPECT_NEAR(out.raw(), 0.8, 0.02);
}

TEST(VoltageDetectorTest, ResetRestoresOperatingPoint)
{
    VoltageDetector det;
    for (int i = 0; i < 100; ++i)
        det.sample(Volts{0.5});
    det.reset(1.0_V);
    EXPECT_NEAR(det.output().raw(), 1.0, 1e-12);
    EXPECT_NEAR(det.sample(1.0_V).raw(), 1.0,
                detectorSpec(DetectorKind::Adc).resolutionVolts.raw());
}

TEST(VoltageDetectorTest, CpmIsCoarserThanAdc)
{
    VoltageDetector cpm(detectorSpec(DetectorKind::Cpm), Hertz{1e12});
    VoltageDetector adc(detectorSpec(DetectorKind::Adc), Hertz{1e12});
    Volts cpmOut{}, adcOut{};
    for (int i = 0; i < 200; ++i) {
        cpmOut = cpm.sample(Volts{0.874});
        adcOut = adc.sample(Volts{0.874});
    }
    EXPECT_LE(std::abs(adcOut.raw() - 0.874),
              std::abs(cpmOut.raw() - 0.874) + 1e-12);
}

TEST(VoltageDetectorTest, StuckAtFaultOverridesRail)
{
    DetectorSpec spec;
    spec.stuckAtVolts = 1.0_V;
    VoltageDetector det(spec);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(det.sample(Volts{0.5}).raw(), 1.0);
}

TEST(VoltageDetectorTest, FaultDisabledByDefault)
{
    const DetectorSpec spec;
    EXPECT_LT(spec.stuckAtVolts, Volts{});
}

} // namespace
} // namespace vsgpu
