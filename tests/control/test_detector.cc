/**
 * @file
 * Unit tests for the voltage detector models.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "control/detector.hh"

namespace vsgpu
{
namespace
{

TEST(DetectorSpecs, TableIIValues)
{
    const DetectorSpec oddd = detectorSpec(DetectorKind::Oddd);
    EXPECT_LE(oddd.latency, 2u);
    EXPECT_LE(oddd.powerWatts, 0.010);

    const DetectorSpec cpm = detectorSpec(DetectorKind::Cpm);
    EXPECT_GE(cpm.latency, 10u);
    EXPECT_LE(cpm.latency, 100u);

    const DetectorSpec adc = detectorSpec(DetectorKind::Adc);
    EXPECT_GE(adc.latency, 1u);
    EXPECT_LE(adc.latency, 10u);
    EXPECT_NEAR(adc.resolutionVolts, 1.0 / 128.0, 1e-12);
}

TEST(VoltageDetectorTest, SettlesToConstantInput)
{
    VoltageDetector det;
    double out = 0.0;
    for (int i = 0; i < 200; ++i)
        out = det.sample(0.85);
    EXPECT_NEAR(out, 0.85, detectorSpec(DetectorKind::Adc)
                               .resolutionVolts);
}

TEST(VoltageDetectorTest, DelayMatchesLatency)
{
    DetectorSpec spec = detectorSpec(DetectorKind::Adc);
    spec.resolutionVolts = 0.0; // isolate the delay
    // Very high cutoff so the filter is transparent.
    VoltageDetector det(spec, 1e12);
    // Step from 1.0 to 0.0: the output must stay ~1.0 for exactly
    // `latency` samples.
    int delay = 0;
    for (int i = 0; i < 50; ++i) {
        const double out = det.sample(0.0);
        if (out > 0.5)
            ++delay;
        else
            break;
    }
    EXPECT_EQ(delay, static_cast<int>(spec.latency));
}

TEST(VoltageDetectorTest, QuantizesToResolution)
{
    DetectorSpec spec;
    spec.latency = 0;
    spec.resolutionVolts = 0.1;
    VoltageDetector det(spec, 1e12);
    double out = 0.0;
    for (int i = 0; i < 100; ++i)
        out = det.sample(0.8749);
    EXPECT_NEAR(out, 0.9, 1e-12);
}

TEST(VoltageDetectorTest, FiltersFastRipple)
{
    // 200 MHz square ripple around 1.0 V through the 50 MHz filter:
    // the output swing must be strongly attenuated.
    VoltageDetector det(detectorSpec(DetectorKind::Oddd), 50e6);
    double lo = 2.0, hi = 0.0;
    for (int i = 0; i < 4000; ++i) {
        // ~3.5 cycles per half period at 700 MHz core clock.
        const double v = ((i / 2) % 2) ? 1.1 : 0.9;
        const double out = det.sample(v);
        if (i > 500) {
            lo = std::min(lo, out);
            hi = std::max(hi, out);
        }
    }
    EXPECT_LT(hi - lo, 0.1); // input swing was 0.2
    EXPECT_NEAR((hi + lo) / 2.0, 1.0, 0.02);
}

TEST(VoltageDetectorTest, TracksSlowDrift)
{
    VoltageDetector det;
    double out = 0.0;
    // Slow ramp over thousands of cycles passes through.
    for (int i = 0; i <= 5000; ++i)
        out = det.sample(1.0 - 0.2 * i / 5000.0);
    EXPECT_NEAR(out, 0.8, 0.02);
}

TEST(VoltageDetectorTest, ResetRestoresOperatingPoint)
{
    VoltageDetector det;
    for (int i = 0; i < 100; ++i)
        det.sample(0.5);
    det.reset(1.0);
    EXPECT_NEAR(det.output(), 1.0, 1e-12);
    EXPECT_NEAR(det.sample(1.0), 1.0,
                detectorSpec(DetectorKind::Adc).resolutionVolts);
}

TEST(VoltageDetectorTest, CpmIsCoarserThanAdc)
{
    VoltageDetector cpm(detectorSpec(DetectorKind::Cpm), 1e12);
    VoltageDetector adc(detectorSpec(DetectorKind::Adc), 1e12);
    double cpmOut = 0.0, adcOut = 0.0;
    for (int i = 0; i < 200; ++i) {
        cpmOut = cpm.sample(0.874);
        adcOut = adc.sample(0.874);
    }
    EXPECT_LE(std::abs(adcOut - 0.874), std::abs(cpmOut - 0.874) + 1e-12);
}

TEST(VoltageDetectorTest, StuckAtFaultOverridesRail)
{
    DetectorSpec spec;
    spec.stuckAtVolts = 1.0;
    VoltageDetector det(spec);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(det.sample(0.5), 1.0);
}

TEST(VoltageDetectorTest, FaultDisabledByDefault)
{
    const DetectorSpec spec;
    EXPECT_LT(spec.stuckAtVolts, 0.0);
}

} // namespace
} // namespace vsgpu
