/**
 * @file
 * Unit tests for the DCC current-DAC model.
 */

#include <gtest/gtest.h>

#include "control/dcc.hh"

namespace vsgpu
{
namespace
{

TEST(DccDacTest, LsbFromBitsAndFullScale)
{
    DccDac dac;
    dac.bits = 6;
    dac.fullScaleAmps = 3.0_A;
    EXPECT_NEAR(dac.lsbAmps().raw(), 3.0 / 63.0, 1e-12);
}

TEST(DccDacTest, LsbPowerAtLayerVoltage)
{
    DccDac dac;
    EXPECT_NEAR(dac.lsbPowerWatts(1.0_V).raw(), dac.lsbAmps().raw(),
                1e-12);
    EXPECT_NEAR(dac.lsbPowerWatts(Volts{0.5}).raw(),
                0.5 * dac.lsbAmps().raw(), 1e-12);
}

TEST(DccDacTest, QuantizeSnapsToGrid)
{
    DccDac dac;
    dac.bits = 2; // LSB = fullScale / 3
    dac.fullScaleAmps = 3.0_A;
    EXPECT_NEAR(dac.quantize(Amps{1.4}).raw(), 1.0, 1e-12);
    EXPECT_NEAR(dac.quantize(Amps{1.6}).raw(), 2.0, 1e-12);
}

TEST(DccDacTest, QuantizeClampsRange)
{
    DccDac dac;
    EXPECT_DOUBLE_EQ(dac.quantize(Amps{-1.0}).raw(), 0.0);
    EXPECT_DOUBLE_EQ(dac.quantize(Amps{99.0}).raw(),
                     dac.fullScaleAmps.raw());
}

TEST(DccDacTest, QuantizeIsIdempotent)
{
    DccDac dac;
    for (double amps : {0.0, 0.7, 1.3, 2.9}) {
        const Amps q = dac.quantize(Amps{amps});
        EXPECT_DOUBLE_EQ(dac.quantize(q).raw(), q.raw());
    }
}

TEST(DccDacTest, FinerDacHasSmallerError)
{
    DccDac coarse, fine;
    coarse.bits = 3;
    fine.bits = 8;
    double coarseErr = 0.0, fineErr = 0.0;
    for (double amps = 0.0; amps < 3.0; amps += 0.01) {
        coarseErr = std::max(
            coarseErr,
            std::abs(coarse.quantize(Amps{amps}).raw() - amps));
        fineErr = std::max(
            fineErr,
            std::abs(fine.quantize(Amps{amps}).raw() - amps));
    }
    EXPECT_LT(fineErr, coarseErr / 8.0);
}

} // namespace
} // namespace vsgpu
