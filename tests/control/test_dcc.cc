/**
 * @file
 * Unit tests for the DCC current-DAC model.
 */

#include <gtest/gtest.h>

#include "control/dcc.hh"

namespace vsgpu
{
namespace
{

TEST(DccDacTest, LsbFromBitsAndFullScale)
{
    DccDac dac;
    dac.bits = 6;
    dac.fullScaleAmps = 3.0;
    EXPECT_NEAR(dac.lsbAmps(), 3.0 / 63.0, 1e-12);
}

TEST(DccDacTest, LsbPowerAtLayerVoltage)
{
    DccDac dac;
    EXPECT_NEAR(dac.lsbPowerWatts(1.0), dac.lsbAmps(), 1e-12);
    EXPECT_NEAR(dac.lsbPowerWatts(0.5), 0.5 * dac.lsbAmps(), 1e-12);
}

TEST(DccDacTest, QuantizeSnapsToGrid)
{
    DccDac dac;
    dac.bits = 2; // LSB = fullScale / 3
    dac.fullScaleAmps = 3.0;
    EXPECT_NEAR(dac.quantize(1.4), 1.0, 1e-12);
    EXPECT_NEAR(dac.quantize(1.6), 2.0, 1e-12);
}

TEST(DccDacTest, QuantizeClampsRange)
{
    DccDac dac;
    EXPECT_DOUBLE_EQ(dac.quantize(-1.0), 0.0);
    EXPECT_DOUBLE_EQ(dac.quantize(99.0), dac.fullScaleAmps);
}

TEST(DccDacTest, QuantizeIsIdempotent)
{
    DccDac dac;
    for (double amps : {0.0, 0.7, 1.3, 2.9}) {
        const double q = dac.quantize(amps);
        EXPECT_DOUBLE_EQ(dac.quantize(q), q);
    }
}

TEST(DccDacTest, FinerDacHasSmallerError)
{
    DccDac coarse, fine;
    coarse.bits = 3;
    fine.bits = 8;
    double coarseErr = 0.0, fineErr = 0.0;
    for (double amps = 0.0; amps < 3.0; amps += 0.01) {
        coarseErr = std::max(coarseErr,
                             std::abs(coarse.quantize(amps) - amps));
        fineErr =
            std::max(fineErr, std::abs(fine.quantize(amps) - amps));
    }
    EXPECT_LT(fineErr, coarseErr / 8.0);
}

} // namespace
} // namespace vsgpu
