/**
 * @file
 * Unit tests for the voltage-smoothing controller (Algorithm 1 +
 * eq. (9) weighted actuation).
 */

#include <gtest/gtest.h>

#include "control/controller.hh"
#include "pdn/vs_pdn.hh"

namespace vsgpu
{
namespace
{

std::array<double, config::numSMs>
allAt(double volts)
{
    std::array<double, config::numSMs> v{};
    v.fill(volts);
    return v;
}

/** Step the controller n cycles with constant voltages; @return the
 *  last command set. */
CommandSet
settle(SmoothingController &ctl,
       const std::array<double, config::numSMs> &volts, int cycles)
{
    CommandSet last{};
    for (int i = 0; i < cycles; ++i)
        last = ctl.step(volts);
    return last;
}

TEST(Controller, NoActionAboveThreshold)
{
    SmoothingController ctl;
    const CommandSet cmd = settle(ctl, allAt(1.0), 500);
    for (const auto &c : cmd) {
        EXPECT_NEAR(c.issueWidth, 2.0, 1e-9);
        EXPECT_NEAR(c.fakeRate, 0.0, 1e-9);
        EXPECT_NEAR(c.dccAmps.raw(), 0.0, 1e-9);
    }
    EXPECT_EQ(ctl.triggeredDecisions(), 0u);
    EXPECT_GT(ctl.totalDecisions(), 0u);
}

TEST(Controller, DiwsEngagesBelowThreshold)
{
    ControllerConfig cfg;
    cfg.w1 = 1.0;
    SmoothingController ctl(cfg);
    auto volts = allAt(1.0);
    volts[5] = 0.82;
    const CommandSet cmd = settle(ctl, volts, 2000);
    EXPECT_LT(cmd[5].issueWidth, 1.9);
    // Other SMs keep full width (except possible neighbour FII/DCC,
    // disabled here).
    EXPECT_NEAR(cmd[0].issueWidth, 2.0, 0.05);
    EXPECT_GT(ctl.triggeredDecisions(), 0u);
}

TEST(Controller, CorrectionScalesWithDeviation)
{
    SmoothingController mild, severe;
    auto mildV = allAt(1.0);
    mildV[3] = 0.88;
    auto severeV = allAt(1.0);
    severeV[3] = 0.70;
    const CommandSet mildCmd = settle(mild, mildV, 2000);
    const CommandSet severeCmd = settle(severe, severeV, 2000);
    EXPECT_LT(severeCmd[3].issueWidth, mildCmd[3].issueWidth);
}

TEST(Controller, FiiTargetsAdjacentLayer)
{
    ControllerConfig cfg;
    cfg.w1 = 0.0;
    cfg.w2 = 1.0;
    SmoothingController ctl(cfg);
    auto volts = allAt(1.0);
    const int droopy = VsPdn::smAt(1, 2);
    const int neighbour = VsPdn::smAt(2, 2);
    volts[static_cast<std::size_t>(droopy)] = 0.8;
    const CommandSet cmd = settle(ctl, volts, 2000);
    EXPECT_GT(cmd[static_cast<std::size_t>(neighbour)].fakeRate, 0.1);
    EXPECT_NEAR(cmd[static_cast<std::size_t>(droopy)].issueWidth, 2.0,
                1e-6);
}

TEST(Controller, FiiWrapsFromBottomLayer)
{
    ControllerConfig cfg;
    cfg.w1 = 0.0;
    cfg.w2 = 1.0;
    SmoothingController ctl(cfg);
    auto volts = allAt(1.0);
    const int droopy = VsPdn::smAt(3, 0);   // bottom layer
    const int neighbour = VsPdn::smAt(0, 0); // wraps to top
    volts[static_cast<std::size_t>(droopy)] = 0.8;
    const CommandSet cmd = settle(ctl, volts, 2000);
    EXPECT_GT(cmd[static_cast<std::size_t>(neighbour)].fakeRate, 0.1);
}

TEST(Controller, DccQuantizedAndBounded)
{
    ControllerConfig cfg;
    cfg.w1 = 0.0;
    cfg.w3 = 1.0;
    SmoothingController ctl(cfg);
    auto volts = allAt(1.0);
    volts[VsPdn::smAt(0, 1)] = 0.75;
    const CommandSet cmd = settle(ctl, volts, 3000);
    const double amps =
        cmd[static_cast<std::size_t>(VsPdn::smAt(1, 1))]
            .dccAmps.raw();
    EXPECT_GT(amps, 0.0);
    EXPECT_LE(amps, cfg.dcc.fullScaleAmps.raw());
    const double lsb = cfg.dcc.lsbAmps().raw();
    EXPECT_NEAR(amps / lsb, std::round(amps / lsb), 1e-6);
}

TEST(Controller, LoopLatencyDelaysReaction)
{
    ControllerConfig cfg;
    cfg.loopLatency = 120;
    cfg.period = 10;
    SmoothingController ctl(cfg);
    auto good = allAt(1.0);
    auto bad = allAt(0.7);
    settle(ctl, good, 300);
    // Immediately after the droop starts, the applied command is
    // still the stale full-width one.
    CommandSet cmd{};
    for (int i = 0; i < 40; ++i)
        cmd = ctl.step(bad);
    EXPECT_NEAR(cmd[0].issueWidth, 2.0, 0.05);
    // Well after the loop latency, throttling is in force.
    for (int i = 0; i < 2000; ++i)
        cmd = ctl.step(bad);
    EXPECT_LT(cmd[0].issueWidth, 1.2);
}

TEST(Controller, ReleaseIsSlowerThanOnset)
{
    ControllerConfig cfg;
    SmoothingController ctl(cfg);
    settle(ctl, allAt(0.7), 4000);
    CommandSet cmd = ctl.step(allAt(0.7));
    const double throttled = cmd[0].issueWidth;
    ASSERT_LT(throttled, 1.0);
    // Recovery toward full width takes tens of cycles.
    cmd = settle(ctl, allAt(1.0), 30);
    EXPECT_LT(cmd[0].issueWidth, 1.9);
    cmd = settle(ctl, allAt(1.0), 5000);
    EXPECT_NEAR(cmd[0].issueWidth, 2.0, 0.05);
}

TEST(Controller, ResetRestoresNominal)
{
    SmoothingController ctl;
    settle(ctl, allAt(0.7), 3000);
    ctl.reset();
    EXPECT_EQ(ctl.totalDecisions(), 0u);
    const CommandSet cmd = ctl.step(allAt(1.0));
    EXPECT_NEAR(cmd[0].issueWidth, 2.0, 1e-9);
}

TEST(Controller, DetectorPowerScalesWithArray)
{
    SmoothingController ctl;
    EXPECT_NEAR(ctl.detectorPower().raw(),
                ctl.config().detector.powerWatts.raw() * 16.0,
                1e-12);
}

TEST(Controller, DccPowerIncludesLeakage)
{
    SmoothingController ctl;
    CommandSet none{};
    EXPECT_NEAR(ctl.dccPower(none).raw(),
                ctl.config().dcc.leakageWatts.raw() * 16.0, 1e-12);
    CommandSet some{};
    some[0].dccAmps = 1.0_A;
    EXPECT_NEAR((ctl.dccPower(some) - ctl.dccPower(none)).raw(), 1.0,
                1e-9);
}

TEST(Controller, WeightedSplitMatchesEquationNine)
{
    // With all three weights active, a droop must engage all three
    // actuators simultaneously.
    ControllerConfig cfg;
    cfg.w1 = 0.6;
    cfg.w2 = 0.3;
    cfg.w3 = 0.1;
    cfg.gainWattsPerVolt = WattsPerVolt{30.0};
    SmoothingController ctl(cfg);
    auto volts = allAt(1.0);
    const int droopy = VsPdn::smAt(2, 3);
    const int neighbour = VsPdn::smAt(3, 3);
    volts[static_cast<std::size_t>(droopy)] = 0.78;
    const CommandSet cmd = settle(ctl, volts, 3000);
    EXPECT_LT(cmd[static_cast<std::size_t>(droopy)].issueWidth, 1.8);
    EXPECT_GT(cmd[static_cast<std::size_t>(neighbour)].fakeRate, 0.0);
    EXPECT_GT(cmd[static_cast<std::size_t>(neighbour)].dccAmps.raw(),
              0.0);
}

TEST(ControllerPi, IntegralRemovesSteadyStateGap)
{
    // Under a constant mild droop the PI variant eventually applies a
    // deeper correction than P alone (the integrator accumulates).
    ControllerConfig p, pi;
    p.gainWattsPerVolt = WattsPerVolt{4.0};
    pi.gainWattsPerVolt = WattsPerVolt{4.0};
    pi.integralGainWattsPerVolt = WattsPerVolt{1.0};
    SmoothingController ctlP(p), ctlPi(pi);
    auto volts = allAt(1.0);
    volts[0] = 0.86;
    const CommandSet cmdP = settle(ctlP, volts, 6000);
    const CommandSet cmdPi = settle(ctlPi, volts, 6000);
    EXPECT_LT(cmdPi[0].issueWidth, cmdP[0].issueWidth - 0.05);
}

TEST(ControllerPi, AntiWindupBoundsCorrection)
{
    ControllerConfig cfg;
    cfg.gainWattsPerVolt = WattsPerVolt{4.0};
    cfg.integralGainWattsPerVolt = WattsPerVolt{5.0};
    cfg.integralClampWatts = 1.0_W;
    SmoothingController ctl(cfg);
    auto volts = allAt(1.0);
    volts[0] = 0.80;
    const CommandSet cmd = settle(ctl, volts, 20000);
    // Correction bounded by kP*dev + clamp: width cut <=
    // (4*0.2 + 1.0) / powerPerIssueWidth.
    const double maxCut =
        (4.0 * 0.2 + 1.0) / cfg.powerPerIssueWidth.raw() + 0.05;
    EXPECT_GE(cmd[0].issueWidth, 2.0 - maxCut);
}

TEST(ControllerPi, IntegratorBleedsWhenHealthy)
{
    ControllerConfig cfg;
    cfg.gainWattsPerVolt = WattsPerVolt{4.0};
    cfg.integralGainWattsPerVolt = WattsPerVolt{2.0};
    SmoothingController ctl(cfg);
    auto droop = allAt(1.0);
    droop[0] = 0.82;
    settle(ctl, droop, 6000);
    // After recovery, commands must return to nominal despite the
    // accumulated integral state.
    const CommandSet cmd = settle(ctl, allAt(1.0), 8000);
    EXPECT_NEAR(cmd[0].issueWidth, 2.0, 0.05);
}

TEST(ControllerPi, ZeroIntegralGainMatchesPaperBehaviour)
{
    ControllerConfig cfg;
    EXPECT_EQ(cfg.integralGainWattsPerVolt.raw(), 0.0);
    SmoothingController ctl(cfg);
    auto volts = allAt(1.0);
    volts[0] = 0.85;
    const CommandSet first = settle(ctl, volts, 2000);
    const CommandSet later = settle(ctl, volts, 20000);
    // P-only correction does not keep growing over time.
    EXPECT_NEAR(first[0].issueWidth, later[0].issueWidth, 0.05);
}

} // namespace
} // namespace vsgpu
