/**
 * @file
 * Property-based tests of the smoothing controller: over randomized
 * seeded rail traces every emitted command stays inside the actuator
 * ranges (issue width, fake rate, DCC current) with no NaNs; the
 * trigger count is monotonically non-decreasing in the threshold
 * voltage (a higher threshold classifies shallower droops as
 * events); and a rail pinned at nominal never triggers at all.
 * Seeds are fixed, so failures reproduce exactly.
 */

#include <array>
#include <cmath>

#include <gtest/gtest.h>

#include "common/random.hh"
#include "control/controller.hh"

namespace vsgpu
{
namespace
{

using Rails = std::array<double, config::numSMs>;

/** Per-SM noisy rails with independent droop events. */
std::vector<Rails>
randomRailTraces(Rng &rng, int cycles)
{
    std::vector<Rails> trace(static_cast<std::size_t>(cycles));
    std::array<double, config::numSMs> droop{};
    for (int t = 0; t < cycles; ++t) {
        for (int sm = 0; sm < config::numSMs; ++sm) {
            if (rng.bernoulli(0.005))
                droop[sm] = rng.uniform(0.05, 0.25);
            droop[sm] *= 0.96;
            trace[static_cast<std::size_t>(t)][sm] =
                1.0 - droop[sm] + rng.normal(0.0, 0.004);
        }
    }
    return trace;
}

TEST(ControllerProperties, CommandsStayInActuatorRangesOverRandomTraces)
{
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        Rng rng(seed);
        ControllerConfig cfg;
        // Exercise all three actuators.
        cfg.w1 = 0.4;
        cfg.w2 = 0.4;
        cfg.w3 = 0.2;
        SmoothingController ctl(cfg);
        const double fullScale = cfg.dcc.fullScaleAmps.raw();
        const double maxWidth =
            static_cast<double>(config::maxIssueWidth);

        for (const Rails &rails : randomRailTraces(rng, 3000)) {
            const CommandSet &commands = ctl.step(rails);
            for (const SmCommand &c : commands) {
                ASSERT_TRUE(std::isfinite(c.issueWidth));
                ASSERT_TRUE(std::isfinite(c.fakeRate));
                ASSERT_TRUE(std::isfinite(c.dccAmps.raw()));
                ASSERT_GE(c.issueWidth, 0.0);
                ASSERT_LE(c.issueWidth, maxWidth);
                ASSERT_GE(c.fakeRate, 0.0);
                ASSERT_LE(c.fakeRate, maxWidth);
                ASSERT_GE(c.dccAmps.raw(), 0.0);
                ASSERT_LE(c.dccAmps.raw(), fullScale);
            }
        }
        EXPECT_GT(ctl.triggeredDecisions(), 0u)
            << "trace with droops should trigger at least once";
    }
}

TEST(ControllerProperties, NeverTriggersAtNominalRail)
{
    SmoothingController ctl;
    Rails nominal{};
    nominal.fill(ctl.config().vNominal.raw());
    for (int t = 0; t < 5000; ++t) {
        const CommandSet &commands = ctl.step(nominal);
        for (const SmCommand &c : commands) {
            EXPECT_EQ(c.issueWidth,
                      static_cast<double>(config::maxIssueWidth));
            EXPECT_EQ(c.fakeRate, 0.0);
            EXPECT_EQ(c.dccAmps.raw(), 0.0);
        }
    }
    EXPECT_EQ(ctl.triggeredDecisions(), 0u);
    EXPECT_GT(ctl.totalDecisions(), 0u);
}

TEST(ControllerProperties, TriggerCountMonotonicInThreshold)
{
    // A higher threshold classifies shallower droops as events, so
    // on the same trace the trigger count can only grow with it.
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        Rng rng(seed);
        const auto trace = randomRailTraces(rng, 4000);

        std::uint64_t lastTriggered = 0;
        bool first = true;
        for (double threshold :
             {0.70, 0.80, 0.85, 0.90, 0.95, 1.00}) {
            ControllerConfig cfg;
            cfg.vThreshold = Volts{threshold};
            SmoothingController ctl(cfg);
            for (const Rails &rails : trace)
                ctl.step(rails);
            if (!first)
                EXPECT_GE(ctl.triggeredDecisions(), lastTriggered)
                    << "seed " << seed << " threshold " << threshold;
            lastTriggered = ctl.triggeredDecisions();
            first = false;
        }
    }
}

TEST(ControllerProperties, DccCommandsLandOnDacGrid)
{
    ControllerConfig cfg;
    cfg.w1 = 0.0;
    cfg.w2 = 0.0;
    cfg.w3 = 1.0; // all correction through the DCC
    SmoothingController ctl(cfg);
    const double lsb = cfg.dcc.lsbAmps().raw();

    Rng rng(5);
    for (const Rails &rails : randomRailTraces(rng, 3000)) {
        const CommandSet &commands = ctl.step(rails);
        for (const SmCommand &c : commands) {
            const double steps = c.dccAmps.raw() / lsb;
            ASSERT_NEAR(steps, std::round(steps), 1e-6)
                << "dcc command " << c.dccAmps.raw()
                << " A is off the DAC grid";
        }
    }
}

} // namespace
} // namespace vsgpu
