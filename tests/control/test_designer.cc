/**
 * @file
 * Tests for the control-theoretic designer (paper Section IV-A/B):
 * stability of the discretized delayed loop and the disturbance-gain
 * (Bode) bound.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "control/designer.hh"

namespace vsgpu
{
namespace
{

TEST(Designer, PlantShapesMatchFormulation)
{
    const ControlDesign d = designController(ControlDesignSpec{});
    EXPECT_EQ(d.plant.a.rows(), 3u);
    EXPECT_EQ(d.plant.b.rows(), 3u);
    EXPECT_EQ(d.plant.b.cols(), 4u);
    EXPECT_EQ(d.feedback.rows(), 4u);
    EXPECT_EQ(d.feedback.cols(), 3u);
    EXPECT_EQ(d.augmented.rows(), 6u);
}

TEST(Designer, ClosedLoopIsLaplacianShaped)
{
    // A + B K = (k/C) tridiag(1, -2, 1) over the boundary voltages.
    ControlDesignSpec spec;
    spec.gainWattsPerVolt = WattsPerVolt{100.0};
    spec.boundaryCapF = Farads{1e-6};
    const ControlDesign d = designController(spec);
    const Matrix acl = d.plant.a + d.plant.b * d.feedback;
    const double scale =
        spec.gainWattsPerVolt.raw() / spec.boundaryCapF.raw();
    EXPECT_NEAR(acl(0, 0), -2.0 * scale, 1e-3);
    EXPECT_NEAR(acl(0, 1), 1.0 * scale, 1e-3);
    EXPECT_NEAR(acl(1, 0), 1.0 * scale, 1e-3);
    EXPECT_NEAR(acl(1, 2), 1.0 * scale, 1e-3);
    EXPECT_NEAR(acl(0, 2), 0.0, 1e-3);
}

TEST(Designer, ModerateGainIsStable)
{
    // The pure-integrator plant with a 60-cycle delayed loop is
    // stable only below ~C/(3.41 T) = 1.37 W/V per layer.
    ControlDesignSpec spec;
    spec.gainWattsPerVolt = WattsPerVolt{0.5};
    const ControlDesign d = designController(spec);
    EXPECT_TRUE(d.stable);
    EXPECT_LT(d.spectralRadius, 1.0);
}

TEST(Designer, ExcessiveGainIsUnstable)
{
    // The loop delay limits the usable gain: far past the bound the
    // delayed feedback must go unstable.
    ControlDesignSpec spec;
    spec.loopLatencyCycles = 60;
    spec.gainWattsPerVolt =
        100.0 * maxStableGain(spec.boundaryCapF, 60);
    const ControlDesign d = designController(spec);
    EXPECT_FALSE(d.stable);
}

TEST(Designer, MaxStableGainShrinksWithLatency)
{
    const Farads cap{4.0 * 100e-9};
    const WattsPerVolt fast = maxStableGain(cap, 30);
    const WattsPerVolt slow = maxStableGain(cap, 120);
    EXPECT_GT(fast.raw(), slow.raw());
    EXPECT_GT(slow.raw(), 0.0);
}

TEST(Designer, MaxStableGainGrowsWithCapacitance)
{
    const WattsPerVolt small = maxStableGain(Farads{1e-7}, 60);
    const WattsPerVolt large = maxStableGain(Farads{1e-6}, 60);
    EXPECT_GT(large.raw(), small.raw());
    // Linear relationship: the stability bound scales with C / T.
    EXPECT_NEAR(large / small, 10.0, 1.0);
}

TEST(Designer, BisectionBracketsTheBoundary)
{
    const Farads cap{4.0 * 100e-9};
    const Cycle latency = 60;
    const WattsPerVolt kMax = maxStableGain(cap, latency);
    ControlDesignSpec spec;
    spec.boundaryCapF = cap;
    spec.loopLatencyCycles = latency;
    spec.gainWattsPerVolt = kMax * 0.98;
    EXPECT_TRUE(designController(spec).stable);
    spec.gainWattsPerVolt = kMax * 1.05;
    EXPECT_FALSE(designController(spec).stable);
}

TEST(Designer, DisturbanceGainFiniteWhenStable)
{
    ControlDesignSpec spec;
    spec.gainWattsPerVolt = WattsPerVolt{50.0};
    const ControlDesign d = designController(spec);
    EXPECT_GT(d.peakDisturbanceGain, 0.0);
    EXPECT_LT(d.peakDisturbanceGain, 1e4);
}

TEST(Designer, StrongerGainTightensWorstDroop)
{
    ControlDesignSpec weak, strong;
    weak.gainWattsPerVolt = WattsPerVolt{0.27};  // ~0.2 x bound
    strong.gainWattsPerVolt = WattsPerVolt{0.68}; // ~0.5 x bound
    const ControlDesign dw = designController(weak);
    const ControlDesign ds = designController(strong);
    ASSERT_TRUE(dw.stable);
    ASSERT_TRUE(ds.stable);
    EXPECT_LT(ds.worstDroopVolts(1.0_A).raw(),
              dw.worstDroopVolts(1.0_A).raw());
}

TEST(Designer, WorstDroopScalesLinearlyWithDisturbance)
{
    const ControlDesign d = designController(ControlDesignSpec{});
    EXPECT_NEAR(d.worstDroopVolts(Amps{2.0}).raw(),
                2.0 * d.worstDroopVolts(1.0_A).raw(), 1e-9);
}

TEST(Designer, PaperDefaultMeetsTheMarginBound)
{
    // The architecture loop alone only needs to contain the slow
    // residual that leaks past the minimum-size CR-IVR (the paper's
    // division of labour); with the 60-cycle loop at half the
    // stability bound, a 0.05 A sub-Nyquist residual stays inside
    // the 0.2 V margin.
    ControlDesignSpec spec;
    spec.loopLatencyCycles = config::defaultControlLatency;
    spec.boundaryCapF = Farads{4.0 * 100e-9};
    spec.gainWattsPerVolt =
        0.5 * maxStableGain(spec.boundaryCapF,
                            spec.loopLatencyCycles);
    const ControlDesign d = designController(spec);
    ASSERT_TRUE(d.stable);
    EXPECT_LT(d.worstDroopVolts(Amps{0.05}), config::voltageMargin);
}

TEST(DesignerDeath, RejectsBadSpecs)
{
    setLogQuiet(true);
    ControlDesignSpec spec;
    spec.boundaryCapF = Farads{};
    EXPECT_DEATH(designController(spec), "");
    spec.boundaryCapF = Farads{1e-7};
    spec.loopLatencyCycles = 0;
    EXPECT_DEATH(designController(spec), "");
}

} // namespace
} // namespace vsgpu
