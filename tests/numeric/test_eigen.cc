/**
 * @file
 * Unit and property tests for the eigenvalue solver.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/random.hh"
#include "numeric/eigen.hh"

namespace vsgpu
{
namespace
{

std::vector<double>
sortedReal(std::vector<Complex> l)
{
    std::vector<double> re;
    re.reserve(l.size());
    for (const auto &v : l)
        re.push_back(v.real());
    std::sort(re.begin(), re.end());
    return re;
}

TEST(Eigen, DiagonalMatrix)
{
    Matrix a{{3.0, 0.0}, {0.0, -1.0}};
    const auto re = sortedReal(eigenvalues(a));
    EXPECT_NEAR(re[0], -1.0, 1e-10);
    EXPECT_NEAR(re[1], 3.0, 1e-10);
}

TEST(Eigen, OneByOne)
{
    Matrix a{{7.0}};
    const auto l = eigenvalues(a);
    ASSERT_EQ(l.size(), 1u);
    EXPECT_NEAR(l[0].real(), 7.0, 1e-14);
}

TEST(Eigen, SymmetricKnown)
{
    // Eigenvalues of [[2,1],[1,2]] are 1 and 3.
    Matrix a{{2.0, 1.0}, {1.0, 2.0}};
    const auto re = sortedReal(eigenvalues(a));
    EXPECT_NEAR(re[0], 1.0, 1e-10);
    EXPECT_NEAR(re[1], 3.0, 1e-10);
}

TEST(Eigen, ComplexConjugatePair)
{
    // Rotation-like matrix: eigenvalues +/- i.
    Matrix a{{0.0, -1.0}, {1.0, 0.0}};
    const auto l = eigenvalues(a);
    ASSERT_EQ(l.size(), 2u);
    for (const auto &v : l) {
        EXPECT_NEAR(v.real(), 0.0, 1e-10);
        EXPECT_NEAR(std::abs(v.imag()), 1.0, 1e-10);
    }
}

TEST(Eigen, TriangularReadsDiagonal)
{
    Matrix a{{1.0, 5.0, -2.0}, {0.0, 4.0, 3.0}, {0.0, 0.0, -2.0}};
    const auto re = sortedReal(eigenvalues(a));
    EXPECT_NEAR(re[0], -2.0, 1e-9);
    EXPECT_NEAR(re[1], 1.0, 1e-9);
    EXPECT_NEAR(re[2], 4.0, 1e-9);
}

TEST(Eigen, LaplacianChain)
{
    // 1-D Laplacian tridiag(1,-2,1), n=3: eigenvalues
    // -2 + 2 cos(k pi / 4), k = 1..3.
    Matrix a{{-2.0, 1.0, 0.0}, {1.0, -2.0, 1.0}, {0.0, 1.0, -2.0}};
    auto re = sortedReal(eigenvalues(a));
    EXPECT_NEAR(re[0], -2.0 - std::sqrt(2.0), 1e-9);
    EXPECT_NEAR(re[1], -2.0, 1e-9);
    EXPECT_NEAR(re[2], -2.0 + std::sqrt(2.0), 1e-9);
}

TEST(Eigen, TraceEqualsEigenSum)
{
    Rng rng(21);
    for (int trial = 0; trial < 10; ++trial) {
        const std::size_t n = 5;
        Matrix a(n, n);
        double trace = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = 0; j < n; ++j)
                a(i, j) = rng.uniform(-2.0, 2.0);
            trace += a(i, i);
        }
        Complex sum{};
        for (const auto &l : eigenvalues(a))
            sum += l;
        EXPECT_NEAR(sum.real(), trace, 1e-7);
        EXPECT_NEAR(sum.imag(), 0.0, 1e-7);
    }
}

TEST(SpectralRadiusTest, KnownValues)
{
    Matrix a{{0.5, 0.0}, {0.0, -0.9}};
    EXPECT_NEAR(spectralRadius(a), 0.9, 1e-10);
}

TEST(SpectralRadiusTest, RotationHasUnitRadius)
{
    Matrix a{{0.0, -1.0}, {1.0, 0.0}};
    EXPECT_NEAR(spectralRadius(a), 1.0, 1e-10);
}

TEST(Eigen, ComplexMatrixEigenvalues)
{
    CMatrix a(2, 2);
    a(0, 0) = {0.0, 1.0}; // i
    a(1, 1) = {0.0, -2.0};
    const auto l = eigenvalues(a);
    ASSERT_EQ(l.size(), 2u);
    double maxImag = 0.0, minImag = 0.0;
    for (const auto &v : l) {
        maxImag = std::max(maxImag, v.imag());
        minImag = std::min(minImag, v.imag());
    }
    EXPECT_NEAR(maxImag, 1.0, 1e-10);
    EXPECT_NEAR(minImag, -2.0, 1e-10);
}

class EigenSizeSweep : public ::testing::TestWithParam<int>
{
};

/** Property: for random matrices the characteristic identities hold
 *  (sum = trace) and all eigenvalues have finite magnitude bounded by
 *  the infinity norm. */
TEST_P(EigenSizeSweep, SpectralBoundAndTrace)
{
    const int n = GetParam();
    Rng rng(static_cast<std::uint64_t>(n) * 99991ull);
    Matrix a(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
    double trace = 0.0;
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j)
            a(static_cast<std::size_t>(i),
              static_cast<std::size_t>(j)) = rng.uniform(-1.0, 1.0);
        trace += a(static_cast<std::size_t>(i),
                   static_cast<std::size_t>(i));
    }
    const auto l = eigenvalues(a);
    ASSERT_EQ(l.size(), static_cast<std::size_t>(n));
    Complex sum{};
    const double bound = a.normInf() + 1e-9;
    for (const auto &v : l) {
        sum += v;
        EXPECT_LE(std::abs(v), bound);
    }
    EXPECT_NEAR(sum.real(), trace, 1e-6 * std::max(1.0, std::abs(trace)) + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenSizeSweep,
                         ::testing::Values(2, 3, 4, 6, 8, 12));

} // namespace
} // namespace vsgpu
