/**
 * @file
 * Unit and property tests for the FFT and spectrum estimator.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hh"
#include "common/random.hh"
#include "numeric/fft.hh"

namespace vsgpu
{
namespace
{

TEST(Fft, NextPowerOfTwo)
{
    EXPECT_EQ(nextPowerOfTwo(1), 1u);
    EXPECT_EQ(nextPowerOfTwo(2), 2u);
    EXPECT_EQ(nextPowerOfTwo(3), 4u);
    EXPECT_EQ(nextPowerOfTwo(1000), 1024u);
}

TEST(Fft, ImpulseHasFlatSpectrum)
{
    std::vector<Complex> data(8, Complex{});
    data[0] = Complex{1.0, 0.0};
    fft(data);
    for (const auto &x : data) {
        EXPECT_NEAR(x.real(), 1.0, 1e-12);
        EXPECT_NEAR(x.imag(), 0.0, 1e-12);
    }
}

TEST(Fft, SingleToneLandsInOneBin)
{
    const std::size_t n = 64;
    const int k0 = 5;
    std::vector<Complex> data(n);
    for (std::size_t i = 0; i < n; ++i) {
        const double phase = 2.0 * M_PI * k0 *
                             static_cast<double>(i) /
                             static_cast<double>(n);
        data[i] = Complex{std::cos(phase), 0.0};
    }
    fft(data);
    // Real cosine: energy at bins k0 and n - k0, amplitude n/2.
    EXPECT_NEAR(std::abs(data[k0]), n / 2.0, 1e-9);
    EXPECT_NEAR(std::abs(data[n - k0]), n / 2.0, 1e-9);
    for (std::size_t k = 0; k < n; ++k) {
        if (k == static_cast<std::size_t>(k0) || k == n - k0)
            continue;
        EXPECT_NEAR(std::abs(data[k]), 0.0, 1e-9) << "bin " << k;
    }
}

TEST(Fft, ForwardInverseRoundTrip)
{
    Rng rng(99);
    std::vector<Complex> data(128);
    for (auto &x : data)
        x = Complex{rng.normal(), rng.normal()};
    const auto original = data;
    fft(data);
    fft(data, true);
    for (std::size_t i = 0; i < data.size(); ++i) {
        EXPECT_NEAR(data[i].real(), original[i].real(), 1e-10);
        EXPECT_NEAR(data[i].imag(), original[i].imag(), 1e-10);
    }
}

TEST(Fft, ParsevalHolds)
{
    Rng rng(7);
    std::vector<Complex> data(256);
    double timePower = 0.0;
    for (auto &x : data) {
        x = Complex{rng.normal(), 0.0};
        timePower += std::norm(x);
    }
    fft(data);
    double freqPower = 0.0;
    for (const auto &x : data)
        freqPower += std::norm(x);
    EXPECT_NEAR(freqPower / data.size(), timePower,
                1e-9 * timePower);
}

TEST(FftDeath, RejectsNonPowerOfTwo)
{
    setLogQuiet(true);
    std::vector<Complex> data(12);
    EXPECT_DEATH(fft(data), "");
}

TEST(PowerSpectrumTest, FindsSinusoidFrequency)
{
    const double fs = 700e6;
    const double f0 = 50e6;
    std::vector<double> samples(16384);
    for (std::size_t i = 0; i < samples.size(); ++i)
        samples[i] = 2.0 + std::sin(2.0 * M_PI * f0 *
                                    static_cast<double>(i) / fs);
    const auto psd = powerSpectrum(samples, fs, 2048);
    double peakF = 0.0, peakP = 0.0;
    for (const auto &p : psd) {
        if (p.power > peakP) {
            peakP = p.power;
            peakF = p.freqHz;
        }
    }
    EXPECT_NEAR(peakF, f0, fs / 2048.0 * 2.0);
}

TEST(PowerSpectrumTest, LowFrequencySignalConcentratesBelowCut)
{
    const double fs = 700e6;
    std::vector<double> samples(8192);
    for (std::size_t i = 0; i < samples.size(); ++i)
        samples[i] = std::sin(2.0 * M_PI * 2e6 *
                              static_cast<double>(i) / fs);
    const auto psd = powerSpectrum(samples, fs, 1024);
    EXPECT_GT(spectralFractionBelow(psd, 10e6), 0.9);
    EXPECT_LT(spectralFractionBelow(psd, 0.5e6), 0.5);
}

TEST(PowerSpectrumTest, WhiteNoiseSpreadsEvenly)
{
    Rng rng(13);
    std::vector<double> samples(32768);
    for (auto &s : samples)
        s = rng.normal();
    const auto psd = powerSpectrum(samples, 1.0, 1024);
    // Half the band holds roughly half the power.
    EXPECT_NEAR(spectralFractionBelow(psd, 0.25), 0.5, 0.1);
}

TEST(PowerSpectrumTest, SegmentClampedToSeriesLength)
{
    std::vector<double> samples(100, 1.0);
    const auto psd = powerSpectrum(samples, 1.0, 4096);
    EXPECT_GE(psd.size(), 5u); // clamped segment still produces bins
}

TEST(PowerSpectrumDeath, RejectsTinySeries)
{
    setLogQuiet(true);
    std::vector<double> samples(4, 1.0);
    EXPECT_DEATH(powerSpectrum(samples, 1.0), "");
}

} // namespace
} // namespace vsgpu
