/**
 * @file
 * Unit and property tests for the dense matrix and LU solver.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "numeric/matrix.hh"

namespace vsgpu
{
namespace
{

TEST(Matrix, ConstructAndIndex)
{
    Matrix m(2, 3, 1.5);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
    m(0, 0) = -2.0;
    EXPECT_DOUBLE_EQ(m(0, 0), -2.0);
}

TEST(Matrix, InitializerList)
{
    Matrix m{{1.0, 2.0}, {3.0, 4.0}};
    EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
    EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, IdentityProduct)
{
    Matrix a{{1.0, 2.0}, {3.0, 4.0}};
    const Matrix i = Matrix::identity(2);
    const Matrix p = a * i;
    EXPECT_DOUBLE_EQ(p(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(p(1, 1), 4.0);
}

TEST(Matrix, AdditionSubtraction)
{
    Matrix a{{1.0, 2.0}, {3.0, 4.0}};
    Matrix b{{4.0, 3.0}, {2.0, 1.0}};
    const Matrix s = a + b;
    const Matrix d = a - b;
    EXPECT_DOUBLE_EQ(s(0, 0), 5.0);
    EXPECT_DOUBLE_EQ(s(1, 1), 5.0);
    EXPECT_DOUBLE_EQ(d(0, 0), -3.0);
    EXPECT_DOUBLE_EQ(d(1, 1), 3.0);
}

TEST(Matrix, ScalarProduct)
{
    Matrix a{{1.0, -2.0}};
    const Matrix b = a * 3.0;
    EXPECT_DOUBLE_EQ(b(0, 0), 3.0);
    EXPECT_DOUBLE_EQ(b(0, 1), -6.0);
}

TEST(Matrix, KnownProduct)
{
    Matrix a{{1.0, 2.0}, {3.0, 4.0}};
    Matrix b{{5.0, 6.0}, {7.0, 8.0}};
    const Matrix p = a * b;
    EXPECT_DOUBLE_EQ(p(0, 0), 19.0);
    EXPECT_DOUBLE_EQ(p(0, 1), 22.0);
    EXPECT_DOUBLE_EQ(p(1, 0), 43.0);
    EXPECT_DOUBLE_EQ(p(1, 1), 50.0);
}

TEST(Matrix, MatrixVectorProduct)
{
    Matrix a{{1.0, 2.0}, {3.0, 4.0}};
    const std::vector<double> y = a * std::vector<double>{1.0, 1.0};
    EXPECT_DOUBLE_EQ(y[0], 3.0);
    EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(Matrix, Transpose)
{
    Matrix a{{1.0, 2.0, 3.0}};
    const Matrix t = a.transpose();
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.cols(), 1u);
    EXPECT_DOUBLE_EQ(t(2, 0), 3.0);
}

TEST(Matrix, Norms)
{
    Matrix a{{1.0, -4.0}, {2.0, 2.0}};
    EXPECT_DOUBLE_EQ(a.maxAbs(), 4.0);
    EXPECT_DOUBLE_EQ(a.normInf(), 5.0);
}

TEST(MatrixDeath, ShapeMismatchPanics)
{
    Matrix a(2, 2), b(3, 3);
    EXPECT_DEATH(a + b, "");
    EXPECT_DEATH(a * b, "");
    EXPECT_DEATH(a(5, 0), "");
}

TEST(Lu, SolvesKnownSystem)
{
    Matrix a{{2.0, 1.0}, {1.0, 3.0}};
    const auto x = solveLinear(a, std::vector<double>{3.0, 5.0});
    EXPECT_NEAR(x[0], 0.8, 1e-12);
    EXPECT_NEAR(x[1], 1.4, 1e-12);
}

TEST(Lu, HandlesPivoting)
{
    // Zero on the initial pivot position forces a row swap.
    Matrix a{{0.0, 1.0}, {1.0, 0.0}};
    const auto x = solveLinear(a, std::vector<double>{2.0, 3.0});
    EXPECT_NEAR(x[0], 3.0, 1e-12);
    EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(LuDeath, SingularPanics)
{
    Matrix a{{1.0, 2.0}, {2.0, 4.0}};
    EXPECT_DEATH(
        {
            LuFactor<double> lu(a);
            (void)lu;
        },
        "");
}

TEST(Lu, ReusableFactorization)
{
    Matrix a{{4.0, 1.0}, {1.0, 3.0}};
    LuFactor<double> lu(a);
    const auto x1 = lu.solve({1.0, 0.0});
    const auto x2 = lu.solve({0.0, 1.0});
    // Columns of the inverse.
    EXPECT_NEAR(4.0 * x1[0] + 1.0 * x1[1], 1.0, 1e-12);
    EXPECT_NEAR(1.0 * x2[0] + 3.0 * x2[1], 1.0, 1e-12);
}

TEST(Lu, ComplexSystem)
{
    CMatrix a(2, 2);
    a(0, 0) = {1.0, 1.0};
    a(0, 1) = {0.0, -1.0};
    a(1, 0) = {2.0, 0.0};
    a(1, 1) = {1.0, 0.0};
    std::vector<Complex> b = {{1.0, 0.0}, {0.0, 0.0}};
    const auto x = solveLinear(a, b);
    // Verify residual instead of a hand-computed answer.
    const auto r = a * x;
    EXPECT_NEAR(std::abs(r[0] - b[0]), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(r[1] - b[1]), 0.0, 1e-12);
}

TEST(Inverse, TimesOriginalIsIdentity)
{
    Matrix a{{2.0, 1.0, 0.0}, {1.0, 3.0, 1.0}, {0.0, 1.0, 4.0}};
    const Matrix inv = inverse(a);
    const Matrix p = a * inv;
    for (std::size_t i = 0; i < 3; ++i)
        for (std::size_t j = 0; j < 3; ++j)
            EXPECT_NEAR(p(i, j), i == j ? 1.0 : 0.0, 1e-12);
}

class LuRandomSweep : public ::testing::TestWithParam<int>
{
};

/** Property: LU solves random diagonally dominant systems to high
 *  accuracy across sizes. */
TEST_P(LuRandomSweep, ResidualIsTiny)
{
    const int n = GetParam();
    Rng rng(static_cast<std::uint64_t>(n) * 1234567ull);
    Matrix a(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
    std::vector<double> b(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        double rowSum = 0.0;
        for (int j = 0; j < n; ++j) {
            const double v = rng.uniform(-1.0, 1.0);
            a(static_cast<std::size_t>(i),
              static_cast<std::size_t>(j)) = v;
            rowSum += std::abs(v);
        }
        a(static_cast<std::size_t>(i), static_cast<std::size_t>(i)) +=
            rowSum + 1.0;
        b[static_cast<std::size_t>(i)] = rng.uniform(-5.0, 5.0);
    }
    const auto x = solveLinear(a, b);
    const auto ax = a * x;
    for (int i = 0; i < n; ++i)
        EXPECT_NEAR(ax[static_cast<std::size_t>(i)],
                    b[static_cast<std::size_t>(i)], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuRandomSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 32, 64));

} // namespace
} // namespace vsgpu
