/**
 * @file
 * Unit tests for matrix exponential, ZOH discretization, stability,
 * and disturbance-gain analysis.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "numeric/statespace.hh"

namespace vsgpu
{
namespace
{

TEST(Expm, ZeroMatrixIsIdentity)
{
    const Matrix e = expm(Matrix(3, 3));
    for (std::size_t i = 0; i < 3; ++i)
        for (std::size_t j = 0; j < 3; ++j)
            EXPECT_NEAR(e(i, j), i == j ? 1.0 : 0.0, 1e-14);
}

TEST(Expm, DiagonalExponentiatesEntrywise)
{
    Matrix a{{1.0, 0.0}, {0.0, -2.0}};
    const Matrix e = expm(a);
    EXPECT_NEAR(e(0, 0), std::exp(1.0), 1e-12);
    EXPECT_NEAR(e(1, 1), std::exp(-2.0), 1e-12);
    EXPECT_NEAR(e(0, 1), 0.0, 1e-14);
}

TEST(Expm, RotationGeneratesSineCosine)
{
    const double t = 0.7;
    Matrix a{{0.0, -t}, {t, 0.0}};
    const Matrix e = expm(a);
    EXPECT_NEAR(e(0, 0), std::cos(t), 1e-12);
    EXPECT_NEAR(e(0, 1), -std::sin(t), 1e-12);
    EXPECT_NEAR(e(1, 0), std::sin(t), 1e-12);
}

TEST(Expm, LargeNormUsesScaling)
{
    Matrix a{{-50.0, 0.0}, {0.0, -80.0}};
    const Matrix e = expm(a);
    EXPECT_NEAR(e(0, 0), std::exp(-50.0), 1e-20);
    EXPECT_GE(e(1, 1), 0.0);
}

TEST(Discretize, ScalarFirstOrderMatchesClosedForm)
{
    // x' = -a x + b u  ->  Ad = e^{-aT}, Bd = (1-e^{-aT}) b / a.
    const double a = 3.0, b = 2.0, T = 0.25;
    StateSpace sys;
    sys.a = Matrix{{-a}};
    sys.b = Matrix{{b}};
    const auto d = discretizeZoh(sys, T);
    EXPECT_NEAR(d.ad(0, 0), std::exp(-a * T), 1e-12);
    EXPECT_NEAR(d.bd(0, 0), (1.0 - std::exp(-a * T)) * b / a, 1e-12);
}

TEST(Discretize, IntegratorBdEqualsT)
{
    // x' = u  ->  Ad = 1, Bd = T.
    StateSpace sys;
    sys.a = Matrix{{0.0}};
    sys.b = Matrix{{1.0}};
    const auto d = discretizeZoh(sys, 0.01);
    EXPECT_NEAR(d.ad(0, 0), 1.0, 1e-14);
    EXPECT_NEAR(d.bd(0, 0), 0.01, 1e-14);
}

TEST(Discretize, MultiInputShape)
{
    StateSpace sys;
    sys.a = Matrix(3, 3);
    sys.b = Matrix(3, 4, 0.5);
    const auto d = discretizeZoh(sys, 0.1);
    EXPECT_EQ(d.ad.rows(), 3u);
    EXPECT_EQ(d.bd.rows(), 3u);
    EXPECT_EQ(d.bd.cols(), 4u);
}

TEST(ClosedLoop, StableForNegativeFeedback)
{
    // x' = u with u = -k x: discretized 1 - kT, stable for kT < 2.
    StateSpace sys;
    sys.a = Matrix{{0.0}};
    sys.b = Matrix{{1.0}};
    const Matrix k{{-5.0}};
    const Matrix ad = closedLoopDiscrete(sys, k, 0.1);
    EXPECT_TRUE(isDiscreteStable(ad));
    EXPECT_NEAR(ad(0, 0), std::exp(-0.5), 1e-12);
}

TEST(ClosedLoop, UnstableForPositiveFeedback)
{
    StateSpace sys;
    sys.a = Matrix{{0.0}};
    sys.b = Matrix{{1.0}};
    const Matrix k{{5.0}};
    const Matrix ad = closedLoopDiscrete(sys, k, 0.1);
    EXPECT_FALSE(isDiscreteStable(ad));
}

TEST(DisturbanceGain, DcGainOfFirstOrder)
{
    // x+ = a x + w: gain at DC is 1 / (1 - a).
    Matrix ad{{0.5}};
    const auto g = disturbanceGain(ad, 0.0, 1e-3);
    ASSERT_EQ(g.size(), 1u);
    EXPECT_NEAR(g[0], 2.0, 1e-9);
}

TEST(DisturbanceGain, NyquistGainOfFirstOrder)
{
    // At Nyquist z = -1: gain = 1 / |(-1) - a| = 1 / (1 + a).
    Matrix ad{{0.5}};
    const double nyquist = 0.5 / 1e-3;
    const auto g = disturbanceGain(ad, nyquist, 1e-3);
    EXPECT_NEAR(g[0], 1.0 / 1.5, 1e-9);
}

TEST(PeakDisturbanceGain, AtLeastDcGain)
{
    Matrix ad{{0.9}};
    const double peak = peakDisturbanceGain(ad, 1e-3, 64);
    EXPECT_GE(peak, 1.0 / (1.0 - 0.9) - 1e-6);
}

TEST(SimulateDiscrete, TracksKnownRecursion)
{
    Matrix ad{{0.5}};
    std::vector<std::vector<double>> w = {{1.0}, {0.0}, {0.0}};
    const auto traj = simulateDiscrete(ad, {0.0}, w);
    ASSERT_EQ(traj.size(), 3u);
    EXPECT_NEAR(traj[0][0], 1.0, 1e-14);
    EXPECT_NEAR(traj[1][0], 0.5, 1e-14);
    EXPECT_NEAR(traj[2][0], 0.25, 1e-14);
}

TEST(SimulateDiscrete, StableSystemDecays)
{
    Matrix ad{{0.8, 0.1}, {0.0, 0.7}};
    std::vector<std::vector<double>> w(200, {0.0, 0.0});
    const auto traj = simulateDiscrete(ad, {1.0, 1.0}, w);
    EXPECT_LT(std::abs(traj.back()[0]), 1e-8);
    EXPECT_LT(std::abs(traj.back()[1]), 1e-8);
}

/** Property: ZOH discretization of a stable continuous system is
 *  stable for any sampling period. */
TEST(Discretize, StabilityPreservedUnderSampling)
{
    StateSpace sys;
    sys.a = Matrix{{-1.0, 0.5}, {0.0, -2.0}};
    sys.b = Matrix(2, 1);
    for (double period : {1e-9, 1e-6, 1e-3, 0.1, 1.0, 10.0}) {
        const auto d = discretizeZoh(sys, period);
        EXPECT_TRUE(isDiscreteStable(d.ad)) << "period " << period;
    }
}

} // namespace
} // namespace vsgpu
