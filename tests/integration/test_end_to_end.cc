/**
 * @file
 * Cross-module integration tests reproducing the paper's headline
 * qualitative results end to end (small scales for test runtime).
 *
 * Independent co-simulation points run through exec::runSweep on a
 * shared pool with a shared setup cache — the same machinery the
 * bench binaries use — so this suite also exercises the parallel
 * engine against real workloads.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/transient.hh"
#include "control/designer.hh"
#include "exec/pool.hh"
#include "exec/setup_cache.hh"
#include "exec/sweep.hh"
#include "hypervisor/dfs.hh"
#include "hypervisor/pg.hh"
#include "hypervisor/vs_hypervisor.hh"
#include "ivr/cr_ivr.hh"
#include "pdn/impedance.hh"
#include "sim/cosim.hh"
#include "workloads/suite.hh"

namespace vsgpu
{
namespace
{

WorkloadSpec
shortBench(Benchmark b, int instrs = 600)
{
    return scaledToInstrs(workloadFor(b), instrs);
}

/** Pool and setup cache shared by every test in the suite. */
class EndToEnd : public ::testing::Test
{
  protected:
    static exec::Pool &
    pool()
    {
        static exec::Pool p; // hardware concurrency
        return p;
    }
    static exec::SetupCache &
    cache()
    {
        static exec::SetupCache c;
        return c;
    }
};

TEST_F(EndToEnd, PdeOrderingMatchesTableIII)
{
    // VRM < IVR < VS — the central efficiency claim.
    const std::vector<PdsKind> kinds = {
        PdsKind::ConventionalVrm,
        PdsKind::SingleLayerIvr,
        PdsKind::VsCrossLayer,
    };
    const auto pde = exec::runSweep(
        pool(), kinds, 1, [](PdsKind kind, exec::TaskContext &) {
            CosimConfig cfg;
            cfg.pds = defaultPds(kind);
            cfg.maxCycles = 12000;
            return CoSimulator(cache().withSetup(cfg))
                .run(shortBench(Benchmark::Heartwall, 800))
                .energy.pde();
        });
    EXPECT_LT(pde[0], pde[1]);
    EXPECT_LT(pde[1], pde[2]);
    EXPECT_NEAR(pde[0], 0.80, 0.06);
    EXPECT_NEAR(pde[2], 0.923, 0.05);
}

TEST_F(EndToEnd, ImpedanceGuaranteeMatchesTransientOutcome)
{
    // If the impedance analysis says the 1.72x CR-IVR bounds every
    // peak under 0.1 ohm, the worst-case transient must hold the
    // 0.8 V margin; the 0.2x design violates the bound and fails.
    const std::vector<double> areaFractions = {1.72, 0.2};
    const auto worstMin = exec::runSweep(
        pool(), areaFractions, 2,
        [](double areaFraction, exec::TaskContext &) {
            CosimConfig cfg;
            cfg.pds = defaultPds(PdsKind::VsCircuitOnly);
            cfg.pds.ivrAreaFraction = areaFraction;
            cfg.maxCycles = 4500;
            cfg.gateLayerAtSec = 2.0_us;
            return CoSimulator(cache().withSetup(cfg))
                .run(WorkloadFactory(uniformWorkload(8000)), 0.9)
                .minVoltage;
        });
    EXPECT_GT(worstMin[0], config::minSafeVoltage.raw());
    EXPECT_LT(worstMin[1], config::minSafeVoltage.raw());
}

TEST_F(EndToEnd, CrossLayerRecoversWorstCaseWithSmallIvr)
{
    CosimConfig cfg;
    cfg.pds = defaultPds(PdsKind::VsCrossLayer);
    cfg.maxCycles = 6000;
    cfg.gateLayerAtSec = 2.0_us;
    cfg.traceStride = 50;
    const CosimResult r = CoSimulator(cache().withSetup(cfg))
                              .run(WorkloadFactory(
                                       uniformWorkload(12000)),
                                   0.9);
    // Steady recovery: the tail of the trace is back near the margin.
    ASSERT_GT(r.trace.size(), 20u);
    double tailMin = 1e9;
    for (std::size_t i = r.trace.size() - 10; i < r.trace.size(); ++i)
        tailMin = std::min(tailMin, r.trace[i].minSmVolts.raw());
    EXPECT_GT(tailMin, 0.78);
}

TEST_F(EndToEnd, SmoothingCostsPerformanceButSavesEnergyPath)
{
    // Paper Fig. 14: a few percent performance penalty.
    CosimConfig smooth, bare;
    smooth.pds = defaultPds(PdsKind::VsCrossLayer);
    bare.pds = defaultPds(PdsKind::VsCircuitOnly);
    bare.pds.ivrAreaFraction = 0.2;
    smooth.maxCycles = bare.maxCycles = 60000;
    const std::vector<CosimConfig> configs = {smooth, bare};
    const auto results = exec::runSweep(
        pool(), configs, 14,
        [](const CosimConfig &cfg, exec::TaskContext &) {
            return CoSimulator(cache().withSetup(cfg))
                .run(shortBench(Benchmark::Hotspot, 1200));
        });
    const CosimResult &rs = results[0];
    const CosimResult &rb = results[1];
    ASSERT_TRUE(rs.finished);
    ASSERT_TRUE(rb.finished);
    const double penalty =
        static_cast<double>(rs.cycles) /
            static_cast<double>(rb.cycles) -
        1.0;
    EXPECT_GE(penalty, -0.01);
    EXPECT_LT(penalty, 0.25);
}

TEST_F(EndToEnd, DesignerPredictsCosimStability)
{
    // A gain far beyond the designer's stability bound must produce
    // visibly worse voltage excursions than a conservative gain.
    const Farads cap{4.0 * 100e-9};
    const WattsPerVolt kMax = maxStableGain(cap, 60);
    const auto runMin = [](WattsPerVolt gain) {
        CosimConfig cfg;
        cfg.pds = defaultPds(PdsKind::VsCrossLayer);
        cfg.pds.controller.gainWattsPerVolt = gain;
        cfg.maxCycles = 15000;
        // The gain is a controller field: the shared electrical
        // setup still applies.
        return CoSimulator(cache().withSetup(cfg))
            .run(scaledToInstrs(workloadFor(Benchmark::Hotspot), 700))
            .minVoltage;
    };
    // Conservative gain behaves sanely.
    EXPECT_GT(runMin(0.4 * kMax), 0.4);
}

TEST_F(EndToEnd, HypervisorKeepsDfsImbalanceBudgeted)
{
    DfsConfig dfsCfg;
    dfsCfg.perfTarget = 0.5;
    dfsCfg.epoch = 1024;
    DfsGovernor dfs(dfsCfg);
    VsAwareHypervisor hv;

    CosimConfig cfg;
    cfg.pds = defaultPds(PdsKind::VsCrossLayer);
    cfg.maxCycles = 30000;
    CoSimulator sim(cache().withSetup(cfg));
    sim.attachDfs(&dfs);
    sim.attachHypervisor(&hv);
    const CosimResult r =
        sim.run(shortBench(Benchmark::Srad, 900));
    // The run completes and the supply stays out of collapse.
    EXPECT_GT(r.minVoltage, 0.5);
    EXPECT_GT(r.energy.pde(), 0.8);
}

TEST_F(EndToEnd, PgUnderVsCompletesAndSavesLeakage)
{
    PgConfig pgCfg;
    pgCfg.idleDetect = 12;
    PgGovernor pg(pgCfg);
    VsAwareHypervisor hv;

    CosimConfig cfg;
    cfg.pds = defaultPds(PdsKind::VsCrossLayer);
    cfg.gpu.sm.scheduler = SchedulerKind::Gates;
    cfg.maxCycles = 60000;
    CoSimulator sim(cfg);
    sim.attachPg(&pg);
    sim.attachHypervisor(&hv);
    const CosimResult gated =
        sim.run(shortBench(Benchmark::Bfs, 500));
    ASSERT_TRUE(gated.finished);

    CosimConfig noPgCfg = cfg;
    const CosimResult plain =
        CoSimulator(noPgCfg).run(shortBench(Benchmark::Bfs, 500));
    ASSERT_TRUE(plain.finished);

    // Gating a memory-bound workload reduces average load power.
    EXPECT_LT(gated.avgLoadPower(), plain.avgLoadPower() * 1.02);
}

TEST_F(EndToEnd, BackpropMoreImbalancedThanHeartwall)
{
    // Paper Fig. 17 ordering.  Both points share one electrical
    // setup, so this sweep hits the cache on the second task.
    const std::vector<Benchmark> benches = {Benchmark::Heartwall,
                                            Benchmark::Backprop};
    const auto lowBin = exec::runSweep(
        pool(), benches, 17, [](Benchmark b, exec::TaskContext &) {
            CosimConfig cfg;
            cfg.pds = defaultPds(PdsKind::VsCircuitOnly);
            cfg.maxCycles = 20000;
            const CosimResult r = CoSimulator(cache().withSetup(cfg))
                                      .run(shortBench(b, 1000));
            return r.imbalanceBins[0];
        });
    EXPECT_GT(lowBin[0], lowBin[1]);
}

TEST_F(EndToEnd, TransientMatchesAcImpedance)
{
    // Engine cross-validation: drive the voltage-stacked PDN with a
    // sinusoidal global load current and compare the settled
    // layer-voltage amplitude against the AC analyzer's |Z_G(f)| —
    // two independent code paths over the same MNA stamps.
    VsPdn pdn;
    ImpedanceAnalyzer analyzer(pdn);

    for (double freq : {10e6, 71e6}) {
        TransientSim sim(pdn.netlist(), config::clockPeriod.raw());
        const double bias = 5.0, amp = 1.0;
        for (int sm = 0; sm < pdn.numSms(); ++sm)
            sim.setCurrent(pdn.smCurrentSource(sm), bias);
        sim.initToDc();

        const int settleSteps = 6000;
        double vMin = 1e9, vMax = -1e9;
        const int totalSteps = 12000;
        for (int i = 0; i < totalSteps; ++i) {
            const double t = sim.time();
            const double load =
                bias + amp * std::sin(2.0 * M_PI * freq * t);
            for (int sm = 0; sm < pdn.numSms(); ++sm)
                sim.setCurrent(pdn.smCurrentSource(sm), load);
            sim.step();
            if (i >= settleSteps) {
                const double v = pdn.smVoltage(sim, 0).raw();
                vMin = std::min(vMin, v);
                vMax = std::max(vMax, v);
            }
        }
        const double transientAmp = (vMax - vMin) / 2.0;
        const double acAmp =
            amp * analyzer.globalImpedance(Hertz{freq}).raw();
        EXPECT_NEAR(transientAmp / acAmp, 1.0, 0.25)
            << "freq " << freq;
    }
}

TEST_F(EndToEnd, ResonantWorkloadAlternatesPowerLevels)
{
    // The resonant microbenchmark must actually produce two distinct
    // power levels (its reason to exist: exciting chosen frequencies).
    GpuConfig cfg;
    Gpu gpu(cfg);
    SmPowerModel pm;
    WorkloadFactory factory(resonantWorkload(400, 6));
    gpu.launch(factory);
    RunningStats power;
    std::vector<double> trace;
    while (!gpu.done() && gpu.cycle() < 120000) {
        gpu.step();
        const double w =
            pm.cyclePower(gpu.smEvents(0), gpu.sm(0), gpu.cycle())
                .raw();
        power.add(w);
        trace.push_back(w);
    }
    EXPECT_TRUE(gpu.done());
    // Strongly bimodal: the 90th percentile clearly above the 10th.
    const double hi = quantile(trace, 0.9);
    const double lo = quantile(trace, 0.1);
    EXPECT_GT(hi, lo + 2.0);
}

} // namespace
} // namespace vsgpu
