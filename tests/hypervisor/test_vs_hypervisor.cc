/**
 * @file
 * Unit tests for the VS-aware power-management hypervisor
 * (Algorithm 2): frequency and gating command remapping plus budget
 * adaptation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "hypervisor/vs_hypervisor.hh"

namespace vsgpu
{
namespace
{

std::array<Hertz, config::numSMs>
uniformFreq(Hertz hz)
{
    std::array<Hertz, config::numSMs> f{};
    f.fill(hz);
    return f;
}

TEST(VsHypervisor, BalancedFrequenciesPassThrough)
{
    VsAwareHypervisor hv;
    const auto in = uniformFreq(600.0_MHz);
    const auto out = hv.filterFrequencies(in);
    for (int sm = 0; sm < config::numSMs; ++sm)
        EXPECT_DOUBLE_EQ(out[static_cast<std::size_t>(sm)].raw(), 600e6);
}

TEST(VsHypervisor, PullsUpColumnOutlier)
{
    HypervisorConfig cfg;
    cfg.freqThresholdHz = 100.0_MHz;
    VsAwareHypervisor hv(cfg);
    auto in = uniformFreq(700.0_MHz);
    in[0] = 300.0_MHz; // column 0, far below the rest of its column
    const auto out = hv.filterFrequencies(in);
    EXPECT_GE(out[0].raw(), 600e6 - 1.0);
    // Other columns untouched.
    EXPECT_DOUBLE_EQ(out[1].raw(), 700e6);
}

TEST(VsHypervisor, SpreadWithinBudgetIsKept)
{
    HypervisorConfig cfg;
    cfg.freqThresholdHz = 200.0_MHz;
    VsAwareHypervisor hv(cfg);
    auto in = uniformFreq(700.0_MHz);
    in[4] = 550.0_MHz; // within the 200 MHz budget for column 0
    const auto out = hv.filterFrequencies(in);
    EXPECT_DOUBLE_EQ(out[4].raw(), 550e6);
}

TEST(VsHypervisor, RemapQuantizesToStep)
{
    HypervisorConfig cfg;
    cfg.freqThresholdHz = 130.0_MHz;
    cfg.stepHz = 50.0_MHz;
    VsAwareHypervisor hv(cfg);
    auto in = uniformFreq(700.0_MHz);
    in[8] = 200.0_MHz;
    const auto out = hv.filterFrequencies(in);
    EXPECT_NEAR(out[8] / 50.0_MHz, std::round(out[8] / 50.0_MHz),
                1e-9);
    EXPECT_GE(out[8].raw(), 700e6 - 130e6 - 1.0);
}

TEST(VsHypervisor, GatingWithinBudgetPermitted)
{
    HypervisorConfig cfg;
    cfg.leakThresholdW = 10.0_W; // generous
    VsAwareHypervisor hv(cfg);
    GatingPlan wish{};
    wish[0][static_cast<std::size_t>(ExecUnitKind::Sfu)] = true;
    const std::array<Watts, numExecUnits> leak = {
        0.3_W, 0.3_W, 0.14_W, 0.24_W};
    const GatingPlan plan = hv.filterGating(wish, leak);
    EXPECT_TRUE(plan[0][static_cast<std::size_t>(ExecUnitKind::Sfu)]);
}

TEST(VsHypervisor, VetoesImbalancedGating)
{
    HypervisorConfig cfg;
    cfg.leakThresholdW = 0.2_W;
    VsAwareHypervisor hv(cfg);
    // Ask to gate EVERY unit of one layer's SM in column 0 only:
    // that unbalances the column's gated leakage.
    GatingPlan wish{};
    for (int u = 0; u < numExecUnits; ++u)
        wish[0][static_cast<std::size_t>(u)] = true; // SM0: layer 0
    const std::array<Watts, numExecUnits> leak = {
        0.3_W, 0.3_W, 0.14_W, 0.24_W};
    const GatingPlan plan = hv.filterGating(wish, leak);
    Watts granted{};
    for (int u = 0; u < numExecUnits; ++u)
        if (plan[0][static_cast<std::size_t>(u)])
            granted += leak[static_cast<std::size_t>(u)];
    EXPECT_LE(granted.raw(), cfg.leakThresholdW.raw() + 1e-9);
}

TEST(VsHypervisor, BalancedGatingFullyGranted)
{
    HypervisorConfig cfg;
    cfg.leakThresholdW = 0.2_W;
    VsAwareHypervisor hv(cfg);
    // Gate the SFU in every SM: perfectly balanced across layers.
    GatingPlan wish{};
    for (int sm = 0; sm < config::numSMs; ++sm)
        wish[static_cast<std::size_t>(sm)]
            [static_cast<std::size_t>(ExecUnitKind::Sfu)] = true;
    const std::array<Watts, numExecUnits> leak = {
        0.3_W, 0.3_W, 0.14_W, 0.24_W};
    const GatingPlan plan = hv.filterGating(wish, leak);
    for (int sm = 0; sm < config::numSMs; ++sm)
        EXPECT_TRUE(plan[static_cast<std::size_t>(sm)]
                        [static_cast<std::size_t>(ExecUnitKind::Sfu)]);
}

TEST(VsHypervisor, FeedbackTightensUnderPressure)
{
    VsAwareHypervisor hv;
    const Hertz before = hv.freqThresholdHz();
    for (int i = 0; i < 10; ++i)
        hv.feedback(0.5); // heavy smoothing pressure
    EXPECT_LT(hv.freqThresholdHz(), before);
    EXPECT_LT(hv.leakThresholdW(), HypervisorConfig{}.leakThresholdW);
}

TEST(VsHypervisor, FeedbackRelaxesWhenQuiet)
{
    VsAwareHypervisor hv;
    for (int i = 0; i < 10; ++i)
        hv.feedback(0.5);
    const Hertz tightened = hv.freqThresholdHz();
    for (int i = 0; i < 30; ++i)
        hv.feedback(0.0);
    EXPECT_GT(hv.freqThresholdHz(), tightened);
}

TEST(VsHypervisor, BudgetsStayWithinConfiguredBounds)
{
    HypervisorConfig cfg;
    VsAwareHypervisor hv(cfg);
    for (int i = 0; i < 1000; ++i)
        hv.feedback(1.0);
    EXPECT_GE(hv.freqThresholdHz().raw(),
              cfg.freqThresholdMinHz.raw() - 1.0);
    for (int i = 0; i < 1000; ++i)
        hv.feedback(0.0);
    EXPECT_LE(hv.freqThresholdHz().raw(),
              cfg.freqThresholdMaxHz.raw() + 1.0);
}

} // namespace
} // namespace vsgpu
