/**
 * @file
 * Unit tests for the GRAPE-style DFS governor.
 */

#include <gtest/gtest.h>

#include "hypervisor/dfs.hh"
#include "workloads/generator.hh"
#include "workloads/suite.hh"

namespace vsgpu
{
namespace
{

TEST(DfsGovernor, StartsAtMaxFrequency)
{
    DfsGovernor gov;
    for (Hertz f : gov.requested())
        EXPECT_DOUBLE_EQ(f.raw(), config::smClockHz.raw());
}

TEST(DfsGovernor, RequestsQuantizedToStep)
{
    DfsConfig cfg;
    cfg.perfTarget = 0.5;
    cfg.epoch = 256;
    DfsGovernor gov(cfg);
    GpuConfig gpuCfg;
    Gpu gpu(gpuCfg);
    WorkloadFactory factory(uniformWorkload(4000));
    gpu.launch(factory);
    for (int i = 0; i < 4096 && !gpu.done(); ++i) {
        gpu.step();
        gov.step(gpu);
    }
    for (Hertz f : gov.requested()) {
        EXPECT_GE(f, cfg.minHz);
        EXPECT_LE(f, cfg.maxHz);
        EXPECT_NEAR(f / cfg.stepHz, std::round(f / cfg.stepHz), 1e-6);
    }
}

TEST(DfsGovernor, LowerTargetRequestsLowerFrequency)
{
    const auto meanRequest = [](double target) {
        DfsConfig cfg;
        cfg.perfTarget = target;
        cfg.epoch = 256;
        DfsGovernor gov(cfg);
        Gpu gpu;
        WorkloadFactory factory(uniformWorkload(6000));
        gpu.launch(factory);
        for (int i = 0; i < 6000 && !gpu.done(); ++i) {
            gpu.step();
            gov.step(gpu);
        }
        double sum = 0.0;
        for (Hertz f : gov.requested())
            sum += f.raw();
        return sum / 16.0;
    };
    EXPECT_LT(meanRequest(0.3), meanRequest(0.9));
}

TEST(DfsGovernor, NoUpdateBeforeEpochBoundary)
{
    DfsConfig cfg;
    cfg.epoch = 1000;
    cfg.perfTarget = 0.2;
    DfsGovernor gov(cfg);
    Gpu gpu;
    WorkloadFactory factory(uniformWorkload(2000));
    gpu.launch(factory);
    for (int i = 0; i < 500; ++i) {
        gpu.step();
        gov.step(gpu);
    }
    for (Hertz f : gov.requested())
        EXPECT_DOUBLE_EQ(f.raw(), cfg.maxHz.raw());
}

TEST(DfsGovernor, AppliedFrequencySlowsExecution)
{
    // Closing the loop: apply requested frequencies to the GPU and
    // verify a low perf target stretches execution time.
    const auto runCycles = [](double target) {
        DfsConfig cfg;
        cfg.perfTarget = target;
        cfg.epoch = 512;
        DfsGovernor gov(cfg);
        Gpu gpu;
        WorkloadFactory factory(uniformWorkload(3000));
        gpu.launch(factory);
        while (!gpu.done() && gpu.cycle() < 500000) {
            gpu.step();
            gov.step(gpu);
            const auto &req = gov.requested();
            for (int sm = 0; sm < 16; ++sm)
                gpu.setSmFrequencyFraction(
                    sm, req[static_cast<std::size_t>(sm)] /
                            config::smClockHz);
        }
        return gpu.cycle();
    };
    const Cycle fast = runCycles(1.0);
    const Cycle slow = runCycles(0.3);
    EXPECT_GT(slow, fast * 5 / 4);
}

} // namespace
} // namespace vsgpu
