/**
 * @file
 * Unit tests for the Warped-Gates-style power-gating governor.
 */

#include <gtest/gtest.h>

#include "hypervisor/pg.hh"
#include "workloads/generator.hh"
#include "workloads/suite.hh"

namespace vsgpu
{
namespace
{

/** Workload with no SFU work at all: the SFU should gate. */
WorkloadSpec
noSfuWorkload()
{
    WorkloadSpec s = uniformWorkload(3000);
    return s; // uniform is FP+INT only
}

TEST(PgGovernor, GatesIdleSfu)
{
    PgConfig cfg;
    cfg.idleDetect = 16;
    PgGovernor gov(cfg);
    Gpu gpu;
    WorkloadFactory factory(noSfuWorkload());
    gpu.launch(factory);
    for (Cycle now = 0; now < 2000 && !gpu.done(); ++now) {
        gpu.step();
        gov.step(gpu, gpu.cycle());
    }
    int gated = 0;
    for (int sm = 0; sm < 16; ++sm)
        if (gpu.sm(sm).unit(ExecUnitKind::Sfu).gated(gpu.cycle()))
            ++gated;
    EXPECT_GT(gated, 12);
}

TEST(PgGovernor, DoesNotGateBusyUnits)
{
    PgConfig cfg;
    cfg.idleDetect = 4;
    PgGovernor gov(cfg);
    Gpu gpu;
    WorkloadFactory factory(uniformWorkload(4000));
    gpu.launch(factory);
    Cycle gatedSpCycles = 0, steps = 0;
    for (Cycle now = 0; now < 1500 && !gpu.done(); ++now) {
        gpu.step();
        gov.step(gpu, gpu.cycle());
        ++steps;
        if (gpu.sm(0).unit(ExecUnitKind::Sp0).gated(gpu.cycle()))
            ++gatedSpCycles;
    }
    // SP blocks are saturated by the FP/INT workload; they may gate
    // only rarely.
    EXPECT_LT(static_cast<double>(gatedSpCycles) /
                  static_cast<double>(steps),
              0.2);
}

TEST(PgGovernor, RespectsUnitEnableFlags)
{
    PgConfig cfg;
    cfg.idleDetect = 8;
    cfg.gateSfu = false;
    PgGovernor gov(cfg);
    Gpu gpu;
    WorkloadFactory factory(noSfuWorkload());
    gpu.launch(factory);
    for (Cycle now = 0; now < 1500 && !gpu.done(); ++now) {
        gpu.step();
        gov.step(gpu, gpu.cycle());
    }
    for (int sm = 0; sm < 16; ++sm)
        EXPECT_FALSE(
            gpu.sm(sm).unit(ExecUnitKind::Sfu).gated(gpu.cycle()));
}

TEST(PgGovernor, VetoBlocksGating)
{
    PgConfig cfg;
    cfg.idleDetect = 8;
    PgGovernor gov(cfg);
    Gpu gpu;
    WorkloadFactory factory(noSfuWorkload());
    gpu.launch(factory);
    for (int sm = 0; sm < 16; ++sm)
        gov.setVeto(sm, ExecUnitKind::Sfu, true);
    for (Cycle now = 0; now < 1500 && !gpu.done(); ++now) {
        gpu.step();
        gov.step(gpu, gpu.cycle());
    }
    for (int sm = 0; sm < 16; ++sm)
        EXPECT_FALSE(
            gpu.sm(sm).unit(ExecUnitKind::Sfu).gated(gpu.cycle()));
    gov.clearVetoes();
    for (Cycle now = 0; now < 1500 && !gpu.done(); ++now) {
        gpu.step();
        gov.step(gpu, gpu.cycle());
    }
    int gated = 0;
    for (int sm = 0; sm < 16; ++sm)
        if (gpu.sm(sm).unit(ExecUnitKind::Sfu).gated(gpu.cycle()))
            ++gated;
    EXPECT_GT(gated, 0);
}

TEST(PgGovernor, GatedWorkloadStillCompletes)
{
    // End-to-end: gating with demand wake-ups must not deadlock.
    PgConfig cfg;
    cfg.idleDetect = 10;
    PgGovernor gov(cfg);
    GpuConfig gpuCfg;
    gpuCfg.sm.scheduler = SchedulerKind::Gates;
    Gpu gpu(gpuCfg);
    WorkloadSpec spec = scaledToInstrs(
        workloadFor(Benchmark::Pathfinder), 600);
    gpuCfg.memory.l1HitRate = spec.l1HitRate;
    WorkloadFactory factory(spec);
    gpu.launch(factory);
    while (!gpu.done() && gpu.cycle() < 400000) {
        gpu.step();
        gov.step(gpu, gpu.cycle());
    }
    EXPECT_TRUE(gpu.done());
}

} // namespace
} // namespace vsgpu
