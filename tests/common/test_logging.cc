/**
 * @file
 * Unit tests for the logging helpers.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace vsgpu
{
namespace
{

TEST(Logging, QuietFlagRoundTrips)
{
    const bool before = logQuiet();
    setLogQuiet(true);
    EXPECT_TRUE(logQuiet());
    setLogQuiet(false);
    EXPECT_FALSE(logQuiet());
    setLogQuiet(before);
}

TEST(Logging, WarnAndInformDoNotTerminate)
{
    setLogQuiet(true);
    warn("warning ", 42);
    inform("info ", 3.14);
    SUCCEED();
}

TEST(Logging, PanicIfNotPassesOnTrue)
{
    panicIfNot(true, "must not fire");
    SUCCEED();
}

TEST(Logging, FatalIfPassesOnFalse)
{
    fatalIf(false, "must not fire");
    SUCCEED();
}

TEST(LoggingDeath, PanicAborts)
{
    setLogQuiet(true);
    EXPECT_DEATH(panic("boom"), "");
}

TEST(LoggingDeath, PanicIfNotFiresOnFalse)
{
    setLogQuiet(true);
    EXPECT_DEATH(panicIfNot(false, "fired"), "");
}

TEST(LoggingDeath, FatalExitsWithOne)
{
    setLogQuiet(true);
    EXPECT_EXIT(fatal("config error"), ::testing::ExitedWithCode(1),
                "");
}

TEST(Logging, ConcatFormatsMixedTypes)
{
    EXPECT_EQ(detail::concat("a", 1, "b", 2.5), "a1b2.5");
    EXPECT_EQ(detail::concat(), "");
}

} // namespace
} // namespace vsgpu
