/**
 * @file
 * Unit tests for the logging helpers.
 */

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace vsgpu
{
namespace
{

TEST(Logging, QuietFlagRoundTrips)
{
    const bool before = logQuiet();
    setLogQuiet(true);
    EXPECT_TRUE(logQuiet());
    setLogQuiet(false);
    EXPECT_FALSE(logQuiet());
    setLogQuiet(before);
}

TEST(Logging, WarnAndInformDoNotTerminate)
{
    setLogQuiet(true);
    warn("warning ", 42);
    inform("info ", 3.14);
    SUCCEED();
}

TEST(Logging, PanicIfNotPassesOnTrue)
{
    panicIfNot(true, "must not fire");
    SUCCEED();
}

TEST(Logging, FatalIfPassesOnFalse)
{
    fatalIf(false, "must not fire");
    SUCCEED();
}

TEST(LoggingDeath, PanicAborts)
{
    setLogQuiet(true);
    EXPECT_DEATH(panic("boom"), "");
}

TEST(LoggingDeath, PanicIfNotFiresOnFalse)
{
    setLogQuiet(true);
    EXPECT_DEATH(panicIfNot(false, "fired"), "");
}

TEST(LoggingDeath, FatalExitsWithOne)
{
    setLogQuiet(true);
    EXPECT_EXIT(fatal("config error"), ::testing::ExitedWithCode(1),
                "");
}

TEST(Logging, ConcatFormatsMixedTypes)
{
    EXPECT_EQ(detail::concat("a", 1, "b", 2.5), "a1b2.5");
    EXPECT_EQ(detail::concat(), "");
}

/** RAII: capture log output through a test sink, restore on exit. */
class SinkCapture
{
  public:
    SinkCapture()
    {
        wasQuiet_ = logQuiet();
        setLogQuiet(false);
        setLogThreshold(LogLevel::Inform);
        setLogSink([this](LogLevel level, const std::string &msg) {
            lines.emplace_back(level, msg);
        });
    }

    ~SinkCapture()
    {
        setLogSink({});
        setLogQuiet(wasQuiet_);
    }

    std::vector<std::pair<LogLevel, std::string>> lines;

  private:
    bool wasQuiet_ = false;
};

TEST(Logging, SinkReceivesWarnAndInform)
{
    SinkCapture capture;
    inform("hello ", 1);
    warn("watch out");
    ASSERT_EQ(capture.lines.size(), 2U);
    EXPECT_EQ(capture.lines[0].first, LogLevel::Inform);
    EXPECT_EQ(capture.lines[0].second, "hello 1");
    EXPECT_EQ(capture.lines[1].first, LogLevel::Warn);
    EXPECT_EQ(capture.lines[1].second, "watch out");
}

TEST(Logging, ThresholdFiltersBelowLevel)
{
    SinkCapture capture;
    setLogThreshold(LogLevel::Warn);
    inform("dropped");
    warn("kept");
    setLogThreshold(LogLevel::Inform);
    ASSERT_EQ(capture.lines.size(), 1U);
    EXPECT_EQ(capture.lines[0].second, "kept");
}

TEST(Logging, WarnOnceFiresOncePerCallsite)
{
    SinkCapture capture;
    for (int i = 0; i < 5; ++i)
        warn_once("only once, i=", i);
    ASSERT_EQ(capture.lines.size(), 1U);
    EXPECT_EQ(capture.lines[0].second, "only once, i=0");
    // A distinct callsite has its own latch.
    warn_once("second site");
    EXPECT_EQ(capture.lines.size(), 2U);
}

} // namespace
} // namespace vsgpu
