/**
 * @file
 * Unit tests for the dimensional-analysis Quantity type: literal
 * round-trips, algebraic identities, and (negative) compile-time
 * checks that ill-dimensioned expressions do not form.
 */

#include <gtest/gtest.h>

#include <type_traits>

#include "common/quantity.hh"

namespace vsgpu
{
namespace
{

TEST(Quantity, LiteralRoundTrips)
{
    EXPECT_DOUBLE_EQ((1.0_V).raw(), 1.0);
    EXPECT_DOUBLE_EQ((80.0_mV).raw(), 0.08);
    EXPECT_DOUBLE_EQ((5.0_mOhm).raw(), 0.005);
    EXPECT_DOUBLE_EQ((12.0_uOhm).raw(), 12e-6);
    EXPECT_DOUBLE_EQ((50.0_nF).raw(), 50e-9);
    EXPECT_DOUBLE_EQ((3.0_pF).raw(), 3e-12);
    EXPECT_DOUBLE_EQ((20.0_pH).raw(), 20e-12);
    EXPECT_DOUBLE_EQ((14.0_W).raw(), 14.0);
    EXPECT_DOUBLE_EQ((2.0_nJ).raw(), 2e-9);
    EXPECT_DOUBLE_EQ((700.0_MHz).raw(), 700e6);
    EXPECT_DOUBLE_EQ((1.0_GHz).raw(), 1e9);
    EXPECT_DOUBLE_EQ((1.4_ns).raw(), 1.4e-9);
    EXPECT_DOUBLE_EQ((528.0_mm2).raw(), 528e-6);
    // Integral spellings produce the same values as floating ones.
    EXPECT_DOUBLE_EQ((80_mOhm).raw(), (80.0_mOhm).raw());
    EXPECT_DOUBLE_EQ((700_MHz).raw(), (700.0_MHz).raw());
}

TEST(Quantity, TauEqualsRTimesCInSeconds)
{
    // The canonical dimensional identity for this codebase: an RC
    // time constant formed from typed values IS a Seconds value.
    const Ohms r = 2.0_Ohm;
    const Farads c = 50.0_nF;
    const auto tau = r * c;
    static_assert(std::is_same_v<decltype(tau),
                                 const Seconds>);
    EXPECT_DOUBLE_EQ(tau.raw(), 100e-9);
    // And its reciprocal is a frequency.
    const auto f = 1.0 / tau;
    static_assert(std::is_same_v<decltype(f), const Hertz>);
    EXPECT_DOUBLE_EQ(f.raw(), 1e7);
}

TEST(Quantity, OhmsLawRoundTrip)
{
    const Volts v = 1.025_V;
    const Ohms r = 250.0_mOhm;
    const Amps i = v / r;
    EXPECT_DOUBLE_EQ(i.raw(), 4.1);
    const Watts p = v * i;
    EXPECT_DOUBLE_EQ(p.raw(), 1.025 * 4.1);
    // Back to volts through the power path.
    const Volts back = p / i;
    EXPECT_DOUBLE_EQ(back.raw(), v.raw());
}

TEST(Quantity, DimensionlessRatiosCollapseToDouble)
{
    static_assert(
        std::is_same_v<decltype(1.0_V / 1.0_V), double>);
    static_assert(
        std::is_same_v<decltype(1.0_MHz / 1.0_Hz), double>);
    static_assert(
        std::is_same_v<decltype(1.0_mm2 / 1.0_m2), double>);
    EXPECT_DOUBLE_EQ(4.1_V / 1.025_V, 4.0);
    EXPECT_DOUBLE_EQ(700.0_MHz / 1.0_MHz, 700.0);
    EXPECT_DOUBLE_EQ(528.0_mm2 / 1.0_mm2, 528.0);
}

TEST(Quantity, AdditiveAndScalarOps)
{
    Volts v = 1.0_V;
    v += 25.0_mV;
    v -= 5.0_mV;
    v *= 2.0;
    v /= 4.0;
    EXPECT_DOUBLE_EQ(v.raw(), 1.02 / 2.0);
    EXPECT_DOUBLE_EQ((-v).raw(), -0.51);
    EXPECT_DOUBLE_EQ((+v).raw(), 0.51);
    EXPECT_DOUBLE_EQ((3.0 * 2.0_A).raw(), 6.0);
    EXPECT_DOUBLE_EQ((2.0_A * 3.0).raw(), 6.0);
    EXPECT_DOUBLE_EQ((6.0_A / 3.0).raw(), 2.0);
}

TEST(Quantity, ComparisonAndAbs)
{
    EXPECT_LT(0.9_V, 1.0_V);
    EXPECT_GT(1.1_V, 1.0_V);
    EXPECT_EQ(1000.0_mV, 1.0_V);
    EXPECT_GE(1.0_V, 1000.0_mV);
    EXPECT_DOUBLE_EQ(abs(-3.0_A).raw(), 3.0);
    EXPECT_DOUBLE_EQ(abs(3.0_A).raw(), 3.0);
}

TEST(Quantity, DefaultConstructionIsZero)
{
    EXPECT_DOUBLE_EQ(Volts{}.raw(), 0.0);
    EXPECT_EQ(Watts{}, 0.0_W);
}

TEST(Quantity, ZeroRuntimeCostLayout)
{
    // The whole point: a Quantity is exactly one double.
    static_assert(sizeof(Volts) == sizeof(double));
    static_assert(std::is_trivially_copyable_v<Volts>);
    static_assert(alignof(Volts) == alignof(double));
}

// -----------------------------------------------------------------
// Negative compile-time checks: ill-dimensioned expressions must not
// form.  Each `requires` probe would be valid code if the type system
// failed to reject the mix, so these static_asserts ARE the
// compile-fail test cases, kept green in every build.

template <typename T, typename U>
concept Addable = requires(T t, U u) { t + u; };
template <typename T, typename U>
concept Assignable = requires(T t, U u) { t = u; };
template <typename T, typename U>
concept Comparable = requires(T t, U u) { t < u; };

// Adding watts to volts is meaningless and must not compile.
static_assert(!Addable<Watts, Volts>);
// Nor ohms + farads.
static_assert(!Addable<Ohms, Farads>);
// A volts variable cannot be assigned from a raw double (explicit
// construction only) nor from another unit.
static_assert(!Assignable<Volts &, double>);
static_assert(!Assignable<Volts &, Watts>);
// Cross-unit comparison has no meaning.
static_assert(!Comparable<Hertz, Seconds>);
// No implicit decay back to double: the escape hatch is .raw() only.
static_assert(!std::is_convertible_v<Volts, double>);
static_assert(!std::is_convertible_v<double, Volts>);

} // namespace
} // namespace vsgpu
