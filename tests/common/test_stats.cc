/**
 * @file
 * Unit and property tests for the statistics helpers.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.hh"
#include "common/stats.hh"

namespace vsgpu
{
namespace
{

TEST(RunningStats, EmptyDefaults)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_TRUE(std::isinf(s.min()));
    EXPECT_TRUE(std::isinf(s.max()));
}

TEST(RunningStats, SingleSample)
{
    RunningStats s;
    s.add(3.5);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 3.5);
    EXPECT_DOUBLE_EQ(s.min(), 3.5);
    EXPECT_DOUBLE_EQ(s.max(), 3.5);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownMoments)
{
    RunningStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeEqualsSingleStream)
{
    Rng rng(5);
    RunningStats all, a, b;
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.normal(2.0, 3.0);
        all.add(x);
        (i % 2 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity)
{
    RunningStats a, empty;
    a.add(1.0);
    a.add(2.0);
    const double mean = a.mean();
    a.merge(empty);
    EXPECT_DOUBLE_EQ(a.mean(), mean);
    EXPECT_EQ(a.count(), 2u);

    RunningStats b;
    b.merge(a);
    EXPECT_DOUBLE_EQ(b.mean(), mean);
}

TEST(RunningStats, ResetClearsState)
{
    RunningStats s;
    s.add(10.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
}

TEST(Quantile, MedianOfOddSet)
{
    EXPECT_DOUBLE_EQ(quantile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(Quantile, InterpolatesBetweenSamples)
{
    EXPECT_DOUBLE_EQ(quantile({0.0, 10.0}, 0.25), 2.5);
}

TEST(Quantile, Extremes)
{
    std::vector<double> v = {5.0, -1.0, 3.0};
    EXPECT_DOUBLE_EQ(quantile(v, 0.0), -1.0);
    EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
}

TEST(BoxStatsTest, FiveNumberSummary)
{
    std::vector<double> v;
    for (int i = 1; i <= 101; ++i)
        v.push_back(static_cast<double>(i));
    const BoxStats b = boxStats(v);
    EXPECT_DOUBLE_EQ(b.min, 1.0);
    EXPECT_DOUBLE_EQ(b.median, 51.0);
    EXPECT_DOUBLE_EQ(b.max, 101.0);
    EXPECT_DOUBLE_EQ(b.q1, 26.0);
    EXPECT_DOUBLE_EQ(b.q3, 76.0);
    EXPECT_DOUBLE_EQ(b.mean, 51.0);
    EXPECT_EQ(b.count, 101u);
}

TEST(BoxStatsTest, EmptyIsZeroed)
{
    const BoxStats b = boxStats({});
    EXPECT_EQ(b.count, 0u);
    EXPECT_EQ(b.median, 0.0);
}

/** Property: quartiles are ordered for arbitrary data. */
TEST(BoxStatsTest, QuartilesOrdered)
{
    Rng rng(9);
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<double> v;
        const int n = 1 + rng.uniformInt(0, 300);
        for (int i = 0; i < n; ++i)
            v.push_back(rng.normal(0.0, 5.0));
        const BoxStats b = boxStats(v);
        EXPECT_LE(b.min, b.q1);
        EXPECT_LE(b.q1, b.median);
        EXPECT_LE(b.median, b.q3);
        EXPECT_LE(b.q3, b.max);
    }
}

TEST(ReservoirSamplerTest, KeepsEverythingUnderCapacity)
{
    ReservoirSampler r(100);
    for (int i = 0; i < 50; ++i)
        r.add(static_cast<double>(i));
    EXPECT_EQ(r.samples().size(), 50u);
    EXPECT_EQ(r.seen(), 50u);
}

TEST(ReservoirSamplerTest, CapsAtCapacity)
{
    ReservoirSampler r(64);
    for (int i = 0; i < 10000; ++i)
        r.add(static_cast<double>(i));
    EXPECT_EQ(r.samples().size(), 64u);
    EXPECT_EQ(r.seen(), 10000u);
}

TEST(ReservoirSamplerTest, RetainedMeanApproximatesStream)
{
    ReservoirSampler r(4096);
    Rng rng(77);
    for (int i = 0; i < 200000; ++i)
        r.add(rng.uniform());
    const BoxStats b = r.box();
    EXPECT_NEAR(b.mean, 0.5, 0.05);
    EXPECT_NEAR(b.median, 0.5, 0.05);
}

TEST(HistogramTest, BinAssignment)
{
    Histogram h({0.0, 1.0, 2.0, 3.0});
    h.add(0.5);
    h.add(1.5);
    h.add(1.7);
    h.add(2.5);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(1), 2u);
    EXPECT_EQ(h.binCount(2), 1u);
    EXPECT_EQ(h.total(), 4u);
}

TEST(HistogramTest, OutOfRangeClampsToEdges)
{
    Histogram h({0.0, 1.0, 2.0});
    h.add(-5.0);
    h.add(99.0);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(1), 1u);
}

TEST(HistogramTest, LowerEdgeInclusiveUpperExclusive)
{
    Histogram h({0.0, 1.0, 2.0});
    h.add(0.0);
    h.add(1.0);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(1), 1u);
}

TEST(HistogramTest, FractionsSumToOne)
{
    Histogram h({0.0, 0.1, 0.2, 0.4, 10.0});
    Rng rng(3);
    for (int i = 0; i < 1000; ++i)
        h.add(rng.uniform());
    double sum = 0.0;
    for (std::size_t b = 0; b < h.numBins(); ++b)
        sum += h.fraction(b);
    EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(HistogramTest, EmptyFractionIsZero)
{
    Histogram h({0.0, 1.0});
    EXPECT_EQ(h.fraction(0), 0.0);
}

TEST(HistogramTest, BinLabels)
{
    Histogram h({0.0, 0.5, 1.0});
    EXPECT_EQ(h.binLabel(0), "0-0.5");
    EXPECT_EQ(h.binLabel(1), "0.5-1");
}

} // namespace
} // namespace vsgpu
