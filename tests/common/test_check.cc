/**
 * @file
 * Tests for the debug-mode numeric invariant guards and their hookup
 * in the transient solver: a poisoned netlist (NaN current source)
 * must abort at the solve in checked builds and stay silent (guards
 * compiled out) in release builds.
 */

#include <gtest/gtest.h>

#include <array>
#include <limits>

#include "common/check.hh"
#include "common/logging.hh"
#include "pdn/vs_pdn.hh"

namespace vsgpu
{
namespace
{

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

#if VSGPU_DEBUG_CHECKS

TEST(CheckMacrosDeath, FiniteGuardTrips)
{
    setLogQuiet(true);
    EXPECT_DEATH(VSGPU_CHECK_FINITE(kNaN), "invariant");
    EXPECT_DEATH(VSGPU_CHECK_FINITE(kInf), "invariant");
    EXPECT_DEATH(VSGPU_CHECK_FINITE(Volts{kNaN}), "invariant");
}

TEST(CheckMacrosDeath, RangeGuardTrips)
{
    setLogQuiet(true);
    EXPECT_DEATH(VSGPU_CHECK_RANGE(2.0, 0.0, 1.0), "range");
    EXPECT_DEATH(VSGPU_CHECK_RANGE(kNaN, 0.0, 1.0), "range");
    EXPECT_DEATH(VSGPU_CHECK_RANGE(0.5_V, 0.8_V, 1.2_V), "range");
}

TEST(CheckMacrosDeath, AllFiniteGuardTrips)
{
    setLogQuiet(true);
    const std::array<double, 3> bad = {1.0, kNaN, 3.0};
    EXPECT_DEATH(VSGPU_CHECK_ALL_FINITE(bad, "test vector"),
                 "index 1");
}

TEST(CheckMacrosDeath, PoisonedNetlistAbortsAtSolve)
{
    // addCurrentSource is deliberately unguarded, so the poison only
    // surfaces when the MNA solution itself goes non-finite — the
    // exact corruption class the solver-loop guard exists to catch.
    setLogQuiet(true);
    EXPECT_DEATH(
        {
            VsPdn pdn;
            Netlist net = pdn.netlist();
            net.addCurrentSource(pdn.smTopNode(0),
                                 pdn.smBottomNode(0), Amps{kNaN},
                                 "poison");
            TransientSim sim(net, config::clockPeriod.raw());
            sim.initToDc();
            sim.step();
        },
        "non-finite");
}

#else // !VSGPU_DEBUG_CHECKS

TEST(CheckMacros, ReleaseGuardsAreSilentNoOps)
{
    // Guards must not evaluate or abort; the poisoned value simply
    // propagates (NaN rail voltages), which is release behaviour.
    VSGPU_CHECK_FINITE(kNaN);
    VSGPU_CHECK_RANGE(2.0, 0.0, 1.0);
    const std::array<double, 2> bad = {kNaN, kInf};
    VSGPU_CHECK_ALL_FINITE(bad, "test vector");

    VsPdn pdn;
    Netlist net = pdn.netlist();
    net.addCurrentSource(pdn.smTopNode(0), pdn.smBottomNode(0),
                         Amps{kNaN}, "poison");
    TransientSim sim(net, config::clockPeriod.raw());
    sim.initToDc();
    sim.step();
    EXPECT_TRUE(std::isnan(sim.nodeVoltage(pdn.smTopNode(0))));
}

#endif // VSGPU_DEBUG_CHECKS

TEST(CheckMacros, PassingValuesDoNotAbort)
{
    VSGPU_CHECK_FINITE(1.0);
    VSGPU_CHECK_FINITE(1.025_V);
    VSGPU_CHECK_RANGE(0.5, 0.0, 1.0);
    VSGPU_CHECK_RANGE(1.0_V, 0.8_V, 1.2_V);
    const std::array<Volts, 3> ok = {1.0_V, 1.1_V, 0.9_V};
    VSGPU_CHECK_ALL_FINITE(ok, "ok vector");
    SUCCEED();
}

} // namespace
} // namespace vsgpu
