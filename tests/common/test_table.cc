/**
 * @file
 * Unit tests for the table/CSV emitters.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/table.hh"

namespace vsgpu
{
namespace
{

TEST(Table, RendersHeaderAndRows)
{
    Table t("demo");
    t.setHeader({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"bb", "22"});
    std::ostringstream oss;
    t.print(oss);
    const std::string out = oss.str();
    EXPECT_NE(out.find("demo"), std::string::npos);
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("bb"), std::string::npos);
    EXPECT_EQ(t.numRows(), 2u);
}

TEST(Table, FluentRowBuilder)
{
    Table t;
    t.setHeader({"a", "b", "c"});
    t.beginRow().cell("x").cell(1.23456, 2).cell(7ll).endRow();
    std::ostringstream oss;
    t.printCsv(oss);
    EXPECT_EQ(oss.str(), "a,b,c\nx,1.23,7\n");
}

TEST(Table, CsvWithoutHeader)
{
    Table t;
    t.addRow({"1", "2"});
    std::ostringstream oss;
    t.printCsv(oss);
    EXPECT_EQ(oss.str(), "1,2\n");
}

TEST(TableDeath, RowWidthMismatchPanics)
{
    Table t;
    t.setHeader({"one", "two"});
    EXPECT_DEATH(t.addRow({"only"}), "");
}

TEST(TableDeath, CellOutsideRowPanics)
{
    Table t;
    EXPECT_DEATH(t.cell("x"), "");
}

TEST(TableDeath, NestedBeginRowPanics)
{
    Table t;
    t.beginRow();
    EXPECT_DEATH(t.beginRow(), "");
}

TEST(FormatHelpers, FixedPrecision)
{
    EXPECT_EQ(formatFixed(3.14159, 2), "3.14");
    EXPECT_EQ(formatFixed(2.0, 0), "2");
}

TEST(FormatHelpers, Percent)
{
    EXPECT_EQ(formatPercent(0.923), "92.3%");
    EXPECT_EQ(formatPercent(1.0, 0), "100%");
    EXPECT_EQ(formatPercent(0.0), "0.0%");
}

} // namespace
} // namespace vsgpu
