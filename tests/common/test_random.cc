/**
 * @file
 * Unit and property tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/random.hh"

namespace vsgpu
{
namespace
{

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 3);
}

TEST(Rng, ZeroSeedIsUsable)
{
    Rng rng(0);
    EXPECT_NE(rng.next(), 0u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(13);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-2.0, 3.0);
        EXPECT_GE(u, -2.0);
        EXPECT_LT(u, 3.0);
    }
}

TEST(Rng, UniformIntCoversInclusiveRange)
{
    Rng rng(17);
    std::set<int> seen;
    for (int i = 0; i < 2000; ++i) {
        const int v = rng.uniformInt(3, 7);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 7);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntSingleton)
{
    Rng rng(19);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.uniformInt(5, 5), 5);
}

TEST(Rng, NormalMomentsMatch)
{
    Rng rng(23);
    double sum = 0.0, sumSq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        sum += x;
        sumSq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sumSq / n, 1.0, 0.03);
}

TEST(Rng, NormalShiftScale)
{
    Rng rng(29);
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += rng.normal(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(31);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        if (rng.bernoulli(0.3))
            ++hits;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliExtremes)
{
    Rng rng(37);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(Rng, GeometricAtLeastOne)
{
    Rng rng(41);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GE(rng.geometric(0.5), 1);
}

TEST(Rng, GeometricCertainSuccessIsOne)
{
    Rng rng(43);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.geometric(1.0), 1);
}

TEST(Rng, GeometricMeanMatches)
{
    Rng rng(47);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.geometric(0.25);
    EXPECT_NEAR(sum / n, 4.0, 0.1);
}

/** Property: the stream is reproducible across interface mixes. */
TEST(Rng, MixedCallsStayDeterministic)
{
    Rng a(53), b(53);
    for (int i = 0; i < 100; ++i) {
        EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
        EXPECT_DOUBLE_EQ(a.normal(), b.normal());
        EXPECT_EQ(a.uniformInt(0, 9), b.uniformInt(0, 9));
        EXPECT_EQ(a.bernoulli(0.4), b.bernoulli(0.4));
    }
}

class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

/** Property sweep: every seed yields in-range uniforms and sane
 *  normals. */
TEST_P(RngSeedSweep, HealthyStream)
{
    Rng rng(GetParam());
    double sum = 0.0;
    for (int i = 0; i < 5000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 5000.0, 0.5, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ull, 1ull, 42ull,
                                           0xdeadbeefull,
                                           0xffffffffffffffffull));

} // namespace
} // namespace vsgpu
