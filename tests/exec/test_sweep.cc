/**
 * @file
 * Tests of the sweep layer's determinism contract: ordered results,
 * schedule-independent per-task RNG streams, and bitwise-equal
 * output for any worker count.
 */

#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "exec/sweep.hh"

namespace vsgpu::exec
{
namespace
{

TEST(Sweep, ResultsComeBackInPointOrder)
{
    Pool pool(4);
    std::vector<int> points;
    for (int i = 0; i < 257; ++i)
        points.push_back(i * 3);

    const auto results = runSweep(
        pool, points, 99,
        [](const int &p, TaskContext &) { return p * 2; });
    ASSERT_EQ(results.size(), points.size());
    for (std::size_t i = 0; i < points.size(); ++i)
        EXPECT_EQ(results[i], points[i] * 2);
}

TEST(Sweep, TaskSeedsAreStableAndDistinct)
{
    // Seeds depend only on (sweepSeed, index) — never on schedule.
    const std::uint64_t a0 = taskSeed(42, 0);
    EXPECT_EQ(a0, taskSeed(42, 0));
    EXPECT_NE(taskSeed(42, 0), taskSeed(42, 1));
    EXPECT_NE(taskSeed(42, 0), taskSeed(43, 0));

    std::vector<std::uint64_t> seeds;
    for (int i = 0; i < 1000; ++i)
        seeds.push_back(taskSeed(7, i));
    std::sort(seeds.begin(), seeds.end());
    EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()),
              seeds.end())
        << "task seeds must be unique per index";
}

TEST(Sweep, RngStreamsAreBitwiseIdenticalAcrossJobCounts)
{
    const auto draw = [](int jobs) {
        Pool pool(jobs);
        return runIndexSweep(pool, 200, 1234,
                             [](int, TaskContext &ctx) {
                                 double acc = 0.0;
                                 for (int k = 0; k < 16; ++k)
                                     acc += ctx.rng.uniform();
                                 return acc;
                             });
    };
    const auto serial = draw(1);
    const auto wide = draw(8);
    ASSERT_EQ(serial.size(), wide.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(serial[i], wide[i]) << "index " << i;
}

TEST(Sweep, FoldOrderedVisitsInOrder)
{
    Pool pool(2);
    const auto results =
        runIndexSweep(pool, 10, 0,
                      [](int i, TaskContext &) { return i + 1; });
    // Non-commutative fold: order matters, so this checks ordering.
    const double folded = foldOrdered(
        results, 0.0, [](double acc, int v) { return acc * 2 + v; });
    double expect = 0.0;
    for (int i = 0; i < 10; ++i)
        expect = expect * 2 + (i + 1);
    EXPECT_EQ(folded, expect);
}

} // namespace
} // namespace vsgpu::exec
