/**
 * @file
 * Tests of the shared-setup cache: key discrimination, build
 * sharing, transparency (cached and uncached co-simulations are
 * bitwise identical), and concurrent access from pool workers.
 */

#include <gtest/gtest.h>

#include "exec/pool.hh"
#include "exec/setup_cache.hh"
#include "exec/sweep.hh"
#include "sim/cosim.hh"
#include "sim/pds_setup.hh"
#include "workloads/suite.hh"

namespace vsgpu::exec
{
namespace
{

CosimConfig
smallConfig(PdsKind kind)
{
    CosimConfig cfg;
    cfg.pds = defaultPds(kind);
    cfg.maxCycles = 20000;
    return cfg;
}

WorkloadSpec
smallWorkload()
{
    return scaledToInstrs(workloadFor(Benchmark::Srad), 120);
}

TEST(PdsSetupKey, DiscriminatesElectricalFields)
{
    const CosimConfig a = smallConfig(PdsKind::VsCrossLayer);
    EXPECT_EQ(pdsSetupKey(a), pdsSetupKey(a));
    EXPECT_NE(pdsSetupKey(a),
              pdsSetupKey(smallConfig(PdsKind::ConventionalVrm)));

    CosimConfig moreIvr = a;
    moreIvr.pds.ivrAreaFraction += 0.05;
    EXPECT_NE(pdsSetupKey(a), pdsSetupKey(moreIvr));

    CosimConfig fatterGrid = a;
    fatterGrid.pdn.gridR = fatterGrid.pdn.gridR * 0.5;
    EXPECT_NE(pdsSetupKey(a), pdsSetupKey(fatterGrid));
}

TEST(PdsSetupKey, IgnoresControllerAndWorkloadFields)
{
    const CosimConfig a = smallConfig(PdsKind::VsCrossLayer);
    CosimConfig b = a;
    b.pds.controller.vThreshold = Volts{0.7};
    b.maxCycles = 99999;
    b.traceStride = 8;
    EXPECT_EQ(pdsSetupKey(a), pdsSetupKey(b));
}

TEST(SetupCache, SharesOneBuildPerKey)
{
    SetupCache cache;
    const CosimConfig cross = smallConfig(PdsKind::VsCrossLayer);
    const CosimConfig conv = smallConfig(PdsKind::ConventionalVrm);

    const auto s1 = cache.setupFor(cross);
    const auto s2 = cache.setupFor(cross);
    const auto s3 = cache.setupFor(conv);
    EXPECT_EQ(s1.get(), s2.get());
    EXPECT_NE(s1.get(), s3.get());
    EXPECT_EQ(cache.setupsBuilt(), 2);
    EXPECT_EQ(cache.setupHits(), 1);

    EXPECT_TRUE(s1->stacked);
    EXPECT_FALSE(s3->stacked);
}

TEST(SetupCache, CachedRunIsBitwiseIdenticalToUncached)
{
    const CosimConfig cfg = smallConfig(PdsKind::VsCrossLayer);
    const WorkloadSpec w = smallWorkload();

    CoSimulator plain(cfg);
    const CosimResult a = plain.run(w);

    SetupCache cache;
    CoSimulator shared(cache.withSetup(cfg));
    const CosimResult b = shared.run(w);

    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    // Doubles must match to the last bit, not approximately.
    EXPECT_EQ(a.minVoltage, b.minVoltage);
    EXPECT_EQ(a.meanVoltage, b.meanVoltage);
    EXPECT_EQ(a.energy.wall, b.energy.wall);
    EXPECT_EQ(a.energy.load, b.energy.load);
    EXPECT_EQ(a.throttleRate, b.throttleRate);
}

TEST(SetupCache, MismatchedSharedSetupPanics)
{
    SetupCache cache;
    CosimConfig cross = smallConfig(PdsKind::VsCrossLayer);
    CosimConfig mismatched = cross;
    mismatched.setup =
        cache.setupFor(smallConfig(PdsKind::ConventionalVrm));
    CoSimulator sim(mismatched);
    EXPECT_DEATH(sim.run(smallWorkload()), "different electrical");
}

TEST(SetupCache, ConcurrentLookupsShareOneBuild)
{
    SetupCache cache;
    Pool pool(8);
    const CosimConfig cfg = smallConfig(PdsKind::VsCrossLayer);

    const auto setups = runIndexSweep(
        pool, 64, 0,
        [&](int, TaskContext &) { return cache.setupFor(cfg); });
    for (const auto &s : setups)
        EXPECT_EQ(s.get(), setups.front().get());
    EXPECT_EQ(cache.setupsBuilt(), 1);
    EXPECT_EQ(cache.setupHits(), 63);
}

TEST(SetupCache, ImpedanceSweepIsMemoized)
{
    SetupCache cache;
    const CosimConfig cfg = smallConfig(PdsKind::VsCrossLayer);
    const auto freqs = logFrequencyGrid(1.0_MHz, 500.0_MHz, 8);

    const auto a = cache.impedanceSweep(cfg, freqs);
    const auto b = cache.impedanceSweep(cfg, freqs);
    EXPECT_EQ(a.get(), b.get());
    ASSERT_EQ(a->size(), freqs.size());

    // A different grid is a different entry.
    const auto c = cache.impedanceSweep(
        cfg, logFrequencyGrid(1.0_MHz, 500.0_MHz, 9));
    EXPECT_NE(a.get(), c.get());
}

} // namespace
} // namespace vsgpu::exec
