/**
 * @file
 * Unit tests for the per-task progress tracker: hook wiring into
 * exec::Pool, record accounting across batches, the (batch, task)
 * snapshot ordering, and thread safety under a parallel pool.
 */

#include <gtest/gtest.h>

#include <atomic>

#include "exec/pool.hh"
#include "exec/progress.hh"

namespace vsgpu::exec
{
namespace
{

TEST(Progress, RecordsEveryTaskOnce)
{
    ProgressTracker tracker;
    tracker.batchStart(3);
    tracker.taskDone(2, 1.0);
    tracker.taskDone(0, 2.0);
    tracker.taskDone(1, 3.0);
    EXPECT_EQ(tracker.completed(), 3);
    EXPECT_EQ(tracker.total(), 3);
    const auto records = tracker.records();
    ASSERT_EQ(records.size(), 3u);
    // Sorted by (batch, task) regardless of completion order.
    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(records[static_cast<std::size_t>(i)].batch, 0);
        EXPECT_EQ(records[static_cast<std::size_t>(i)].task, i);
    }
    EXPECT_DOUBLE_EQ(records[2].wallMs, 1.0);
}

TEST(Progress, BatchesNumberSequentially)
{
    ProgressTracker tracker;
    tracker.batchStart(1);
    tracker.taskDone(0, 1.0);
    tracker.batchStart(2);
    tracker.taskDone(1, 1.0);
    tracker.taskDone(0, 1.0);
    EXPECT_EQ(tracker.completed(), 3);
    EXPECT_EQ(tracker.total(), 3);
    const auto records = tracker.records();
    ASSERT_EQ(records.size(), 3u);
    EXPECT_EQ(records[0].batch, 0);
    EXPECT_EQ(records[1].batch, 1);
    EXPECT_EQ(records[1].task, 0);
    EXPECT_EQ(records[2].batch, 1);
    EXPECT_EQ(records[2].task, 1);
}

TEST(Progress, HooksRecordPoolTasks)
{
    ProgressTracker tracker;
    Pool pool(4);
    pool.setHooks(tracker.hooks());

    std::atomic<int> ran{0};
    pool.parallelFor(16, [&ran](int) { ++ran; });
    pool.parallelFor(8, [&ran](int) { ++ran; });

    EXPECT_EQ(ran.load(), 24);
    EXPECT_EQ(tracker.completed(), 24);
    EXPECT_EQ(tracker.total(), 24);
    const auto records = tracker.records();
    ASSERT_EQ(records.size(), 24u);
    for (std::size_t i = 0; i < 16; ++i) {
        EXPECT_EQ(records[i].batch, 0);
        EXPECT_EQ(records[i].task, static_cast<int>(i));
        EXPECT_GE(records[i].wallMs, 0.0);
    }
    for (std::size_t i = 16; i < 24; ++i) {
        EXPECT_EQ(records[i].batch, 1);
        EXPECT_EQ(records[i].task, static_cast<int>(i - 16));
    }
    tracker.finish();
}

TEST(Progress, SingleThreadInlinePathAlsoRecords)
{
    ProgressTracker tracker;
    Pool pool(1);
    pool.setHooks(tracker.hooks());
    pool.parallelFor(5, [](int) {});
    EXPECT_EQ(tracker.completed(), 5);
    ASSERT_EQ(tracker.records().size(), 5u);
}

TEST(Progress, EmptyBatchIsIgnored)
{
    ProgressTracker tracker;
    Pool pool(2);
    pool.setHooks(tracker.hooks());
    pool.parallelFor(0, [](int) {});
    EXPECT_EQ(tracker.completed(), 0);
    EXPECT_EQ(tracker.total(), 0);
    EXPECT_TRUE(tracker.records().empty());
}

} // namespace
} // namespace vsgpu::exec
