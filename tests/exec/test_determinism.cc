/**
 * @file
 * The engine invariant, end to end: a sweep of co-simulations run
 * with --jobs 1 and --jobs 8 produces bitwise-identical metrics, and
 * repeated runs of the same sweep are identical to each other.
 *
 * Every double is compared with EXPECT_EQ (exact bits), not
 * EXPECT_NEAR: the pool shards work but must never change results.
 * This suite also runs under the TSan CI job, where the jobs=8
 * sweeps double as a race detector workload.
 */

#include <vector>

#include <gtest/gtest.h>

#include "exec/pool.hh"
#include "exec/setup_cache.hh"
#include "exec/sweep.hh"
#include "sim/cosim.hh"
#include "workloads/suite.hh"

namespace vsgpu::exec
{
namespace
{

struct SweepPoint
{
    Benchmark bench;
    PdsKind kind;
    double vThreshold;
};

std::vector<SweepPoint>
sweepPoints()
{
    return {
        {Benchmark::Srad, PdsKind::VsCrossLayer, 0.90},
        {Benchmark::Hotspot, PdsKind::VsCrossLayer, 0.80},
        {Benchmark::Bfs, PdsKind::VsCrossLayer, 0.95},
        {Benchmark::Backprop, PdsKind::VsCircuitOnly, 0.90},
        {Benchmark::Srad, PdsKind::ConventionalVrm, 0.90},
        {Benchmark::Scalarprod, PdsKind::VsCrossLayer, 0.90},
    };
}

std::vector<CosimResult>
runSweepWithJobs(int jobs)
{
    Pool pool(jobs);
    SetupCache cache;
    return runSweep(pool, sweepPoints(), /*sweepSeed=*/7,
                    [&cache](const SweepPoint &p, TaskContext &) {
                        CosimConfig cfg;
                        cfg.pds = defaultPds(p.kind);
                        cfg.pds.controller.vThreshold = Volts{p.vThreshold};
                        cfg.maxCycles = 25000;
                        CoSimulator sim(cache.withSetup(cfg));
                        return sim.run(scaledToInstrs(
                            workloadFor(p.bench), 150));
                    });
}

void
expectBitwiseEqual(const CosimResult &a, const CosimResult &b,
                   std::size_t idx)
{
    SCOPED_TRACE("sweep point " + std::to_string(idx));
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.finished, b.finished);

    EXPECT_EQ(a.energy.load, b.energy.load);
    EXPECT_EQ(a.energy.fake, b.energy.fake);
    EXPECT_EQ(a.energy.pdn, b.energy.pdn);
    EXPECT_EQ(a.energy.conversion, b.energy.conversion);
    EXPECT_EQ(a.energy.crIvr, b.energy.crIvr);
    EXPECT_EQ(a.energy.overhead, b.energy.overhead);
    EXPECT_EQ(a.energy.wall, b.energy.wall);

    EXPECT_EQ(a.minVoltage, b.minVoltage);
    EXPECT_EQ(a.meanVoltage, b.meanVoltage);
    EXPECT_EQ(a.throttleRate, b.throttleRate);
    EXPECT_EQ(a.triggerRate, b.triggerRate);

    for (std::size_t sm = 0; sm < a.smNoise.size(); ++sm) {
        EXPECT_EQ(a.smNoise[sm].min, b.smNoise[sm].min);
        EXPECT_EQ(a.smNoise[sm].median, b.smNoise[sm].median);
        EXPECT_EQ(a.smNoise[sm].max, b.smNoise[sm].max);
        EXPECT_EQ(a.smNoise[sm].mean, b.smNoise[sm].mean);
    }

    for (std::size_t i = 0; i < a.imbalanceBins.size(); ++i)
        EXPECT_EQ(a.imbalanceBins[i], b.imbalanceBins[i]);
}

TEST(Determinism, Jobs1AndJobs8AreBitwiseIdentical)
{
    const auto serial = runSweepWithJobs(1);
    const auto wide = runSweepWithJobs(8);
    ASSERT_EQ(serial.size(), wide.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        expectBitwiseEqual(serial[i], wide[i], i);
}

TEST(Determinism, RepeatedRunsAreIdentical)
{
    const auto first = runSweepWithJobs(4);
    const auto second = runSweepWithJobs(4);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i)
        expectBitwiseEqual(first[i], second[i], i);
}

TEST(Determinism, SetupSharingAcrossThreadsIsTransparent)
{
    // Same sweep with and without the cache: sharing the netlist and
    // DC operating point must not perturb a single bit.
    Pool pool(8);
    SetupCache cache;
    const auto points = sweepPoints();

    const auto shared = runSweep(
        pool, points, 7,
        [&cache](const SweepPoint &p, TaskContext &) {
            CosimConfig cfg;
            cfg.pds = defaultPds(p.kind);
            cfg.pds.controller.vThreshold = Volts{p.vThreshold};
            cfg.maxCycles = 25000;
            CoSimulator sim(cache.withSetup(cfg));
            return sim.run(
                scaledToInstrs(workloadFor(p.bench), 150));
        });
    const auto isolated = runSweep(
        pool, points, 7, [](const SweepPoint &p, TaskContext &) {
            CosimConfig cfg;
            cfg.pds = defaultPds(p.kind);
            cfg.pds.controller.vThreshold = Volts{p.vThreshold};
            cfg.maxCycles = 25000;
            CoSimulator sim(cfg);
            return sim.run(
                scaledToInstrs(workloadFor(p.bench), 150));
        });
    ASSERT_EQ(shared.size(), isolated.size());
    for (std::size_t i = 0; i < shared.size(); ++i)
        expectBitwiseEqual(shared[i], isolated[i], i);
}

} // namespace
} // namespace vsgpu::exec
