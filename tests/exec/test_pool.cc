/**
 * @file
 * Tests of the work-stealing pool's scheduling contract: every task
 * index runs exactly once for any worker count, exceptions propagate
 * after quiescing, and a pool survives many batches.  These tests
 * are the core of the TSan CI job — they exercise the queues, the
 * batch barrier, and stealing under deliberately unbalanced loads.
 */

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exec/pool.hh"

namespace vsgpu::exec
{
namespace
{

TEST(Pool, RunsEveryIndexExactlyOnce)
{
    for (int jobs : {1, 2, 4, 8}) {
        Pool pool(jobs);
        ASSERT_EQ(pool.threads(), jobs);

        constexpr int kTasks = 1000;
        std::vector<std::atomic<int>> counts(kTasks);
        pool.parallelFor(kTasks,
                         [&](int i) { counts[i].fetch_add(1); });
        for (int i = 0; i < kTasks; ++i)
            EXPECT_EQ(counts[i].load(), 1)
                << "index " << i << " at jobs=" << jobs;
        EXPECT_EQ(pool.tasksRun(), static_cast<std::uint64_t>(kTasks));
    }
}

TEST(Pool, SingleThreadRunsInlineInOrder)
{
    Pool pool(1);
    const std::thread::id caller = std::this_thread::get_id();
    std::vector<int> order;
    pool.parallelFor(64, [&](int i) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        order.push_back(i);
    });
    ASSERT_EQ(order.size(), 64u);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
    EXPECT_EQ(pool.steals(), 0u);
}

TEST(Pool, ZeroSelectsHardwareJobs)
{
    Pool pool(0);
    EXPECT_EQ(pool.threads(), Pool::hardwareJobs());
    EXPECT_GE(Pool::hardwareJobs(), 1);
}

TEST(Pool, EmptyAndTinyBatches)
{
    Pool pool(4);
    pool.parallelFor(0, [](int) { FAIL() << "no tasks expected"; });

    // Fewer tasks than workers: the surplus workers find empty
    // queues and go back to sleep.
    std::atomic<int> ran{0};
    pool.parallelFor(2, [&](int) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 2);
}

TEST(Pool, ManyBatchesOnOnePool)
{
    Pool pool(3);
    std::atomic<int> total{0};
    for (int batch = 0; batch < 50; ++batch)
        pool.parallelFor(batch % 7, [&](int) { total.fetch_add(1); });
    int expect = 0;
    for (int batch = 0; batch < 50; ++batch)
        expect += batch % 7;
    EXPECT_EQ(total.load(), expect);
}

TEST(Pool, FirstExceptionPropagatesAndPoolSurvives)
{
    Pool pool(4);
    std::atomic<int> ran{0};
    const auto faulty = [&](int i) {
        if (i == 37)
            throw std::runtime_error("task 37 failed");
        ran.fetch_add(1);
    };
    EXPECT_THROW(pool.parallelFor(100, faulty), std::runtime_error);
    // Cancelled tasks are skipped, so at most 99 ran.
    EXPECT_LE(ran.load(), 99);

    // The pool must be fully usable after an error.
    std::atomic<int> ran2{0};
    pool.parallelFor(100, [&](int) { ran2.fetch_add(1); });
    EXPECT_EQ(ran2.load(), 100);
}

TEST(Pool, ExceptionOnCallerThreadPropagates)
{
    // Slot 0 (the caller) owns the first index block, so index 0
    // throws on the calling thread itself.
    Pool pool(2);
    EXPECT_THROW(pool.parallelFor(
                     8,
                     [&](int i) {
                         if (i == 0)
                             throw std::logic_error("boom");
                     }),
                 std::logic_error);
}

TEST(Pool, UnbalancedLoadCompletes)
{
    // One pathologically slow task at the front of slot 0's block;
    // with stealing the other workers drain the rest meanwhile.
    Pool pool(4);
    std::atomic<int> ran{0};
    pool.parallelFor(64, [&](int i) {
        if (i == 0)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(30));
        ran.fetch_add(1);
    });
    EXPECT_EQ(ran.load(), 64);
}

TEST(Pool, LargeIndexSpaceStress)
{
    Pool pool(8);
    constexpr int kTasks = 20000;
    std::vector<std::atomic<std::uint8_t>> seen(kTasks);
    pool.parallelFor(kTasks, [&](int i) { seen[i].fetch_add(1); });
    for (int i = 0; i < kTasks; ++i)
        ASSERT_EQ(seen[i].load(), 1u) << "index " << i;
}

} // namespace
} // namespace vsgpu::exec
