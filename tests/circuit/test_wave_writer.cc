/**
 * @file
 * Unit tests for the VCD/CSV waveform writer.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "circuit/wave_writer.hh"
#include "common/logging.hh"

namespace vsgpu
{
namespace
{

/** A divider with a current source so voltages move. */
struct Rig
{
    Netlist net;
    NodeId a = 0;
    NodeId b = 0;
    int isrc = -1;

    Rig()
    {
        a = net.allocNode("a");
        b = net.allocNode("b");
        net.addVoltageSource(a, Netlist::ground, Volts{2.0});
        net.addResistor(a, b, Ohms{1.0});
        net.addResistor(b, Netlist::ground, Ohms{1.0});
        isrc = net.addCurrentSource(b, Netlist::ground);
    }
};

TEST(WaveWriter, RecordsEverySampleByDefault)
{
    Rig rig;
    TransientSim sim(rig.net, 1e-9);
    WaveWriter wave(sim);
    wave.addSignal("vb", rig.b);
    for (int i = 0; i < 10; ++i) {
        sim.step();
        wave.sample();
    }
    EXPECT_EQ(wave.numSamples(), 10u);
    EXPECT_EQ(wave.numSignals(), 1u);
    EXPECT_NEAR(wave.value(9, 0), 1.0, 1e-9);
    EXPECT_NEAR(wave.timeAt(9), 10e-9, 1e-15);
}

TEST(WaveWriter, StrideDecimates)
{
    Rig rig;
    TransientSim sim(rig.net, 1e-9);
    WaveWriter wave(sim, 4);
    wave.addSignal("vb", rig.b);
    for (int i = 0; i < 16; ++i) {
        sim.step();
        wave.sample();
    }
    EXPECT_EQ(wave.numSamples(), 4u);
}

TEST(WaveWriter, DifferentialSignal)
{
    Rig rig;
    TransientSim sim(rig.net, 1e-9);
    WaveWriter wave(sim);
    wave.addSignal("vab", rig.a, rig.b);
    sim.step();
    wave.sample();
    EXPECT_NEAR(wave.value(0, 0), 1.0, 1e-9);
}

TEST(WaveWriter, TracksChangingValues)
{
    Rig rig;
    TransientSim sim(rig.net, 1e-9);
    WaveWriter wave(sim);
    wave.addSignal("vb", rig.b);
    sim.step();
    wave.sample();
    sim.setCurrent(rig.isrc, 1.0); // pulls b down by 0.5 V
    sim.step();
    wave.sample();
    EXPECT_NEAR(wave.value(0, 0), 1.0, 1e-9);
    EXPECT_NEAR(wave.value(1, 0), 0.5, 1e-9);
}

TEST(WaveWriter, VcdOutputWellFormed)
{
    Rig rig;
    TransientSim sim(rig.net, 1e-9);
    WaveWriter wave(sim);
    wave.addSignal("rail b", rig.b);
    wave.addSignal("v(a,b)", rig.a, rig.b);
    for (int i = 0; i < 3; ++i) {
        sim.step();
        wave.sample();
    }
    std::ostringstream oss;
    wave.writeVcd(oss, "pdn");
    const std::string vcd = oss.str();
    EXPECT_NE(vcd.find("$timescale 1ps $end"), std::string::npos);
    EXPECT_NE(vcd.find("$var real 64 ! rail_b $end"),
              std::string::npos);
    EXPECT_NE(vcd.find("$var real 64 \" v_a_b_ $end"),
              std::string::npos);
    EXPECT_NE(vcd.find("#1000"), std::string::npos); // 1 ns = 1000 ps
    EXPECT_NE(vcd.find("r1 !"), std::string::npos);
}

TEST(WaveWriter, CsvOutputWellFormed)
{
    Rig rig;
    TransientSim sim(rig.net, 1e-9);
    WaveWriter wave(sim);
    wave.addSignal("vb", rig.b);
    sim.step();
    wave.sample();
    std::ostringstream oss;
    wave.writeCsv(oss);
    EXPECT_EQ(oss.str().substr(0, 12), "time_s,vb\n1e");
}

TEST(WaveWriter, ClearKeepsSignals)
{
    Rig rig;
    TransientSim sim(rig.net, 1e-9);
    WaveWriter wave(sim);
    wave.addSignal("vb", rig.b);
    sim.step();
    wave.sample();
    wave.clear();
    EXPECT_EQ(wave.numSamples(), 0u);
    EXPECT_EQ(wave.numSignals(), 1u);
    sim.step();
    wave.sample();
    EXPECT_EQ(wave.numSamples(), 1u);
}

TEST(WaveWriter, OutputByteIdenticalAcrossSolvers)
{
    // The writer streams straight from the solver's state vector, and
    // the sparse and dense backends are bitwise-identical, so the
    // emitted files must match byte for byte.
    std::ostringstream vcd[2];
    std::ostringstream csv[2];
    const SolverKind kinds[2] = {SolverKind::Sparse,
                                 SolverKind::Dense};
    for (int k = 0; k < 2; ++k) {
        Rig rig;
        TransientSim sim(rig.net, 1e-9, kinds[k]);
        sim.initToDc();
        WaveWriter wave(sim);
        wave.addSignal("vb", rig.b);
        wave.addSignal("vab", rig.a, rig.b);
        for (int i = 0; i < 50; ++i) {
            sim.setCurrent(rig.isrc, 0.1 * (i % 7));
            sim.step();
            wave.sample();
        }
        wave.writeVcd(vcd[k], "pdn");
        wave.writeCsv(csv[k]);
    }
    EXPECT_EQ(vcd[0].str(), vcd[1].str());
    EXPECT_EQ(csv[0].str(), csv[1].str());
}

TEST(WaveWriterDeath, LateRegistrationPanics)
{
    setLogQuiet(true);
    Rig rig;
    TransientSim sim(rig.net, 1e-9);
    WaveWriter wave(sim);
    wave.addSignal("vb", rig.b);
    sim.step();
    wave.sample();
    EXPECT_DEATH(wave.addSignal("late", rig.a), "");
}

TEST(WaveWriterDeath, BadIndicesPanic)
{
    setLogQuiet(true);
    Rig rig;
    TransientSim sim(rig.net, 1e-9);
    WaveWriter wave(sim);
    wave.addSignal("vb", rig.b);
    EXPECT_DEATH(wave.value(0, 0), "");
    EXPECT_DEATH(wave.timeAt(0), "");
}

TEST(VcdSafeNameTest, Sanitization)
{
    EXPECT_EQ(vcdSafeName("abc_123"), "abc_123");
    EXPECT_EQ(vcdSafeName("v(a,b)"), "v_a_b_");
    EXPECT_EQ(vcdSafeName("3volts"), "s3volts");
    EXPECT_EQ(vcdSafeName(""), "s");
}

} // namespace
} // namespace vsgpu
