/**
 * @file
 * Tests for the averaged charge-recycling equalizer element: its MNA
 * stamp, equalizing behaviour, loss accounting, and orthogonality to
 * common-mode (global) currents.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/ac.hh"
#include "circuit/transient.hh"

namespace vsgpu
{
namespace
{

/**
 * Build a two-layer stack: supply 2 V across (top .. ground) with a
 * middle rail, per-layer load resistors, and an equalizer.  Returns
 * node ids through out-params.
 */
Netlist
twoLayerStack(NodeId &top, NodeId &mid, int &isrcTop, int &isrcBot,
              double effOhms)
{
    Netlist net;
    top = net.allocNode("top");
    mid = net.allocNode("mid");
    net.addVoltageSource(top, Netlist::ground, Volts{2.0});
    net.addResistor(top, mid, Ohms{10.0}, "load_top");
    net.addResistor(mid, Netlist::ground, Ohms{10.0}, "load_bot");
    net.addCapacitor(top, mid, Farads{1e-9}, Volts{1.0});
    net.addCapacitor(mid, Netlist::ground, Farads{1e-9}, Volts{1.0});
    isrcTop = net.addCurrentSource(top, mid);
    isrcBot = net.addCurrentSource(mid, Netlist::ground);
    if (effOhms > 0.0)
        net.addEqualizer(top, mid, Netlist::ground, Ohms{effOhms});
    return net;
}

TEST(Equalizer, BalancedLoadsStayBalanced)
{
    NodeId top, mid;
    int iTop, iBot;
    Netlist net = twoLayerStack(top, mid, iTop, iBot, 0.1);
    TransientSim sim(net, 1e-10);
    sim.setCurrent(iTop, 0.5);
    sim.setCurrent(iBot, 0.5);
    sim.initToDc();
    for (int i = 0; i < 5000; ++i)
        sim.step();
    EXPECT_NEAR(sim.nodeVoltage(mid), 1.0, 1e-3);
    EXPECT_NEAR(sim.equalizerCurrent(0), 0.0, 1e-3);
    EXPECT_NEAR(sim.equalizerPower(0), 0.0, 1e-5);
}

TEST(Equalizer, ReducesImbalanceDroop)
{
    // Top layer draws 1 A more than the bottom.  Without the
    // equalizer the imbalance splits the rails strongly; with it the
    // mid rail is pulled back toward half the supply.
    NodeId top, mid;
    int iTop, iBot;

    Netlist bare = twoLayerStack(top, mid, iTop, iBot, 0.0);
    TransientSim simBare(bare, 1e-10);
    simBare.setCurrent(iTop, 1.0);
    simBare.setCurrent(iBot, 0.0);
    simBare.initToDc();
    for (int i = 0; i < 20000; ++i)
        simBare.step();
    const double bareDeviation = std::abs(simBare.nodeVoltage(mid) - 1.0);

    Netlist eq = twoLayerStack(top, mid, iTop, iBot, 0.05);
    TransientSim simEq(eq, 1e-10);
    simEq.setCurrent(iTop, 1.0);
    simEq.setCurrent(iBot, 0.0);
    simEq.initToDc();
    for (int i = 0; i < 20000; ++i)
        simEq.step();
    const double eqDeviation = std::abs(simEq.nodeVoltage(mid) - 1.0);

    EXPECT_GT(bareDeviation, 3.0 * eqDeviation);
}

TEST(Equalizer, TransferCurrentMatchesDefinition)
{
    NodeId top, mid;
    int iTop, iBot;
    Netlist net = twoLayerStack(top, mid, iTop, iBot, 0.1);
    TransientSim sim(net, 1e-10);
    sim.setCurrent(iTop, 1.0);
    sim.setCurrent(iBot, 0.2);
    sim.initToDc();
    for (int i = 0; i < 20000; ++i)
        sim.step();
    const double vt = sim.nodeVoltage(top);
    const double vm = sim.nodeVoltage(mid);
    const double expectedIx = (vt - 2.0 * vm + 0.0) / 0.1;
    EXPECT_NEAR(sim.equalizerCurrent(0), expectedIx, 1e-9);
    EXPECT_NEAR(sim.equalizerPower(0), 0.1 * expectedIx * expectedIx,
                1e-9);
    EXPECT_NEAR(sim.totalEqualizerPower(), sim.equalizerPower(0),
                1e-12);
}

TEST(Equalizer, StrongerCellEqualizesHarder)
{
    double prevDeviation = 1e9;
    for (double eff : {0.5, 0.1, 0.02}) {
        NodeId top, mid;
        int iTop, iBot;
        Netlist net = twoLayerStack(top, mid, iTop, iBot, eff);
        TransientSim sim(net, 1e-10);
        sim.setCurrent(iTop, 1.0);
        sim.setCurrent(iBot, 0.0);
        sim.initToDc();
        for (int i = 0; i < 20000; ++i)
            sim.step();
        const double deviation =
            std::abs(sim.nodeVoltage(mid) - 1.0);
        EXPECT_LT(deviation, prevDeviation);
        prevDeviation = deviation;
    }
}

TEST(Equalizer, InvisibleToCommonModeAc)
{
    // The equalizer stamp is (1,-2,1)-shaped: a stimulus drawing the
    // SAME current from both layers (pure stack current) sees no
    // equalizer action, so the impedance with and without the cell is
    // identical at the mid rail.
    NodeId top, mid;
    int iTop, iBot;
    Netlist bare = twoLayerStack(top, mid, iTop, iBot, 0.0);
    Netlist eq = twoLayerStack(top, mid, iTop, iBot, 0.05);
    AcAnalysis acBare(bare), acEq(eq);
    // Common-mode stimulus: 1 A through both layers in series, i.e.
    // drawn from top and returned at ground.
    const std::vector<AcInjection> stim = {
        {top, Complex{-1.0, 0.0}},
        // returned at ground (node 0): no injection entry needed.
    };
    for (double f : {1e6, 1e7, 1e8}) {
        const auto vb = acBare.solve(f, stim);
        const auto ve = acEq.solve(f, stim);
        const Complex midB = vb[static_cast<std::size_t>(mid)];
        const Complex midE = ve[static_cast<std::size_t>(mid)];
        // Mid-rail response to common-mode should match closely: the
        // equalizer only couples to differential content.
        EXPECT_NEAR(std::abs(midB - midE), 0.0,
                    1e-9 + 0.02 * std::abs(midB));
    }
}

TEST(Equalizer, AcStampReducesDifferentialImpedance)
{
    NodeId top, mid;
    int iTop, iBot;
    Netlist bare = twoLayerStack(top, mid, iTop, iBot, 0.0);
    Netlist eq = twoLayerStack(top, mid, iTop, iBot, 0.05);
    AcAnalysis acBare(bare), acEq(eq);
    // Differential stimulus: extra load on the top layer only.
    const std::vector<AcInjection> stim = {
        {top, Complex{-1.0, 0.0}},
        {mid, Complex{1.0, 0.0}},
    };
    const double f = 1e6;
    const auto vb = acBare.solve(f, stim);
    const auto ve = acEq.solve(f, stim);
    const double dropBare =
        std::abs(vb[static_cast<std::size_t>(top)] -
                 vb[static_cast<std::size_t>(mid)]);
    const double dropEq =
        std::abs(ve[static_cast<std::size_t>(top)] -
                 ve[static_cast<std::size_t>(mid)]);
    EXPECT_LT(dropEq, 0.5 * dropBare);
}

} // namespace
} // namespace vsgpu
