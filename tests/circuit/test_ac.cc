/**
 * @file
 * Unit tests for the AC (phasor) analyzer against closed-form
 * impedances.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/ac.hh"
#include "common/logging.hh"

namespace vsgpu
{
namespace
{

TEST(AcAnalysis, ResistorImpedanceIsFlat)
{
    Netlist net;
    const NodeId a = net.allocNode();
    net.addResistor(a, Netlist::ground, Ohms{42.0});
    AcAnalysis ac(net);
    for (double f : {1e3, 1e6, 1e9})
        EXPECT_NEAR(std::abs(ac.impedanceAt(f, a)), 42.0, 1e-9);
}

TEST(AcAnalysis, CapacitorImpedanceFallsWithFrequency)
{
    const double c = 1e-9;
    Netlist net;
    const NodeId a = net.allocNode();
    net.addCapacitor(a, Netlist::ground, Farads{c});
    AcAnalysis ac(net);
    for (double f : {1e6, 1e7, 1e8}) {
        const double expected = 1.0 / (2.0 * M_PI * f * c);
        EXPECT_NEAR(std::abs(ac.impedanceAt(f, a)), expected,
                    expected * 1e-9);
    }
}

TEST(AcAnalysis, InductorImpedanceRisesWithFrequency)
{
    const double l = 1e-9;
    Netlist net;
    const NodeId a = net.allocNode();
    net.addInductor(a, Netlist::ground, Henries{l});
    AcAnalysis ac(net);
    for (double f : {1e6, 1e8}) {
        const double expected = 2.0 * M_PI * f * l;
        EXPECT_NEAR(std::abs(ac.impedanceAt(f, a)), expected,
                    expected * 1e-9);
    }
}

TEST(AcAnalysis, SeriesRlcResonance)
{
    // Series RLC to ground: |Z| is minimal (=R) at f0.  The
    // characteristic impedance sqrt(L/C) = 50 ohm dwarfs R so the
    // off-resonance skirts are steep.
    const double r = 0.5, l = 2.5e-6, c = 1e-9;
    Netlist net;
    const NodeId a = net.allocNode();
    const NodeId m1 = net.allocNode();
    const NodeId m2 = net.allocNode();
    net.addResistor(a, m1, Ohms{r});
    net.addInductor(m1, m2, Henries{l});
    net.addCapacitor(m2, Netlist::ground, Farads{c});
    AcAnalysis ac(net);
    const double f0 = 1.0 / (2.0 * M_PI * std::sqrt(l * c));
    EXPECT_NEAR(std::abs(ac.impedanceAt(f0, a)), r, r * 1e-6);
    EXPECT_GT(std::abs(ac.impedanceAt(f0 / 10.0, a)), r * 10.0);
    EXPECT_GT(std::abs(ac.impedanceAt(f0 * 10.0, a)), r * 10.0);
}

TEST(AcAnalysis, ParallelRlcPeaksAtResonance)
{
    const double r = 100.0, l = 1e-9, c = 1e-9;
    Netlist net;
    const NodeId a = net.allocNode();
    net.addResistor(a, Netlist::ground, Ohms{r});
    net.addInductor(a, Netlist::ground, Henries{l});
    net.addCapacitor(a, Netlist::ground, Farads{c});
    AcAnalysis ac(net);
    const double f0 = 1.0 / (2.0 * M_PI * std::sqrt(l * c));
    const double zPeak = std::abs(ac.impedanceAt(f0, a));
    EXPECT_NEAR(zPeak, r, r * 0.01);
    EXPECT_LT(std::abs(ac.impedanceAt(f0 / 5.0, a)), zPeak);
    EXPECT_LT(std::abs(ac.impedanceAt(f0 * 5.0, a)), zPeak);
}

TEST(AcAnalysis, VoltageSourceIsAcShort)
{
    // Injecting current into a node held by a DC source produces no
    // AC response at that node.
    Netlist net;
    const NodeId a = net.allocNode();
    net.addVoltageSource(a, Netlist::ground, Volts{5.0});
    net.addResistor(a, Netlist::ground, Ohms{10.0});
    AcAnalysis ac(net);
    EXPECT_NEAR(std::abs(ac.impedanceAt(1e6, a)), 0.0, 1e-12);
}

TEST(AcAnalysis, TransferImpedanceAcrossDivider)
{
    // Inject at node a, observe at node b across a resistor ladder.
    Netlist net;
    const NodeId a = net.allocNode();
    const NodeId b = net.allocNode();
    net.addResistor(a, b, Ohms{1.0});
    net.addResistor(b, Netlist::ground, Ohms{2.0});
    AcAnalysis ac(net);
    const auto volts = ac.solve(1e6, {{a, Complex{1.0, 0.0}}});
    EXPECT_NEAR(volts[static_cast<std::size_t>(a)].real(), 3.0, 1e-9);
    EXPECT_NEAR(volts[static_cast<std::size_t>(b)].real(), 2.0, 1e-9);
}

TEST(AcAnalysis, SwitchStateChangesTopology)
{
    Netlist net;
    const NodeId a = net.allocNode();
    net.addResistor(a, Netlist::ground, Ohms{10.0});
    net.addSwitch(a, Netlist::ground, Ohms{1.0}, Ohms{1e12}, false);
    AcAnalysis open(net, {false});
    AcAnalysis closed(net, {true});
    EXPECT_NEAR(std::abs(open.impedanceAt(1e6, a)), 10.0, 1e-6);
    // 10 || 1 = 0.909...
    EXPECT_NEAR(std::abs(closed.impedanceAt(1e6, a)), 10.0 / 11.0,
                1e-6);
}

TEST(AcAnalysisDeath, RejectsNonPositiveFrequency)
{
    setLogQuiet(true);
    Netlist net;
    const NodeId a = net.allocNode();
    net.addResistor(a, Netlist::ground, Ohms{1.0});
    AcAnalysis ac(net);
    EXPECT_DEATH(ac.impedanceAt(0.0, a), "");
    EXPECT_DEATH(ac.impedanceAt(-1e6, a), "");
}

} // namespace
} // namespace vsgpu
