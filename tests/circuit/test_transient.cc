/**
 * @file
 * Unit and property tests for the trapezoidal transient engine,
 * validated against closed-form RC/RL/RLC responses.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/transient.hh"
#include "common/logging.hh"

namespace vsgpu
{
namespace
{

TEST(TransientSim, ResistiveDividerIsExact)
{
    Netlist net;
    const NodeId mid = net.allocNode("mid");
    const NodeId top = net.allocNode("top");
    net.addVoltageSource(top, Netlist::ground, Volts{10.0});
    net.addResistor(top, mid, Ohms{1.0});
    net.addResistor(mid, Netlist::ground, Ohms{3.0});
    TransientSim sim(net, 1e-9);
    sim.step();
    EXPECT_NEAR(sim.nodeVoltage(mid), 7.5, 1e-9);
    EXPECT_NEAR(sim.nodeVoltage(top), 10.0, 1e-9);
    // Source delivers V^2 / Rtotal = 25 W.
    EXPECT_NEAR(sim.totalSourcePower(), 25.0, 1e-9);
    EXPECT_NEAR(sim.totalResistivePower(), 25.0, 1e-9);
    EXPECT_NEAR(sim.sourceCurrent(0), 2.5, 1e-9);
}

TEST(TransientSim, CurrentSourceThroughResistor)
{
    Netlist net;
    const NodeId a = net.allocNode();
    net.addResistor(a, Netlist::ground, Ohms{2.0});
    const int isrc = net.addCurrentSource(a, Netlist::ground, Amps{0.0});
    TransientSim sim(net, 1e-9);
    // Load drawing from node a pulls the node negative through R.
    sim.setCurrent(isrc, 1.5);
    sim.step();
    EXPECT_NEAR(sim.nodeVoltage(a), -3.0, 1e-9);
    // Reversed current pushes it positive.
    sim.setCurrent(isrc, -1.5);
    sim.step();
    EXPECT_NEAR(sim.nodeVoltage(a), 3.0, 1e-9);
}

TEST(TransientSim, RcChargingMatchesClosedForm)
{
    // V source -> R -> C to ground, C initially 0 V.
    const double r = 100.0, c = 1e-9, vs = 1.0;
    Netlist net;
    const NodeId top = net.allocNode();
    const NodeId out = net.allocNode();
    net.addVoltageSource(top, Netlist::ground, Volts{vs});
    net.addResistor(top, out, Ohms{r});
    net.addCapacitor(out, Netlist::ground, Farads{c}, Volts{0.0});
    const double dt = 1e-9; // tau / 100
    TransientSim sim(net, dt);
    const int steps = 300;
    for (int i = 0; i < steps; ++i)
        sim.step();
    const double t = steps * dt;
    const double expected = vs * (1.0 - std::exp(-t / (r * c)));
    EXPECT_NEAR(sim.nodeVoltage(out), expected, 2e-3);
}

TEST(TransientSim, RlCurrentRampMatchesClosedForm)
{
    // V source -> R -> L to ground: i(t) = V/R (1 - e^{-tR/L}).
    const double r = 1.0, l = 1e-6, vs = 2.0;
    Netlist net;
    const NodeId top = net.allocNode();
    const NodeId mid = net.allocNode();
    net.addVoltageSource(top, Netlist::ground, Volts{vs});
    net.addResistor(top, mid, Ohms{r});
    const int ind = net.addInductor(mid, Netlist::ground, Henries{l}, Amps{0.0});
    const double dt = 1e-8; // tau/100
    TransientSim sim(net, dt);
    const int steps = 150;
    for (int i = 0; i < steps; ++i)
        sim.step();
    const double t = steps * dt;
    const double expected = vs / r * (1.0 - std::exp(-t * r / l));
    EXPECT_NEAR(sim.inductorCurrent(ind), expected, 5e-3);
}

TEST(TransientSim, LcOscillationFrequency)
{
    // Lightly damped series RLC; measure the ring period at the cap.
    const double l = 1e-9, c = 1e-9, r = 0.05;
    Netlist net;
    const NodeId a = net.allocNode();
    const NodeId b = net.allocNode();
    net.addResistor(a, b, Ohms{r});
    net.addInductor(b, Netlist::ground, Henries{l}, Amps{0.0});
    net.addCapacitor(a, Netlist::ground, Farads{c}, Volts{1.0});
    const double dt = 2e-11;
    TransientSim sim(net, dt);
    // Count zero crossings of the cap voltage over many cycles.
    int crossings = 0;
    double prev = 1.0;
    const int steps = 20000;
    for (int i = 0; i < steps; ++i) {
        sim.step();
        const double v = sim.nodeVoltage(a);
        if (prev > 0.0 && v <= 0.0)
            ++crossings;
        prev = v;
    }
    const double simTime = steps * dt;
    const double measuredHz = crossings / simTime;
    const double expectedHz = 1.0 / (2.0 * M_PI * std::sqrt(l * c));
    EXPECT_NEAR(measuredHz / expectedHz, 1.0, 0.03);
}

TEST(TransientSim, DcInitRemovesStartupTransient)
{
    // A divider with a cap: initToDc should land on the steady state
    // so stepping produces no drift.
    Netlist net;
    const NodeId top = net.allocNode();
    const NodeId mid = net.allocNode();
    net.addVoltageSource(top, Netlist::ground, Volts{4.0});
    net.addResistor(top, mid, Ohms{1.0});
    net.addResistor(mid, Netlist::ground, Ohms{1.0});
    net.addCapacitor(mid, Netlist::ground, Farads{1e-6}, Volts{0.0});
    TransientSim sim(net, 1e-9);
    sim.initToDc();
    EXPECT_NEAR(sim.nodeVoltage(mid), 2.0, 1e-6);
    for (int i = 0; i < 100; ++i)
        sim.step();
    EXPECT_NEAR(sim.nodeVoltage(mid), 2.0, 1e-6);
}

TEST(TransientSim, SwitchTogglesConductionPath)
{
    Netlist net;
    const NodeId top = net.allocNode();
    const NodeId out = net.allocNode();
    net.addVoltageSource(top, Netlist::ground, Volts{1.0});
    net.addResistor(top, out, Ohms{1.0});
    const int sw = net.addSwitch(out, Netlist::ground, Ohms{1e-6}, Ohms{1e9},
                                 false);
    net.addResistor(out, Netlist::ground, Ohms{1.0}); // keeps node defined
    TransientSim sim(net, 1e-9);
    sim.step();
    EXPECT_NEAR(sim.nodeVoltage(out), 0.5, 1e-6);
    sim.setSwitch(sw, true);
    sim.step();
    EXPECT_NEAR(sim.nodeVoltage(out), 0.0, 1e-5);
    sim.setSwitch(sw, false);
    sim.step();
    EXPECT_NEAR(sim.nodeVoltage(out), 0.5, 1e-6);
}

TEST(TransientSim, TimeAndStepsAdvance)
{
    Netlist net;
    const NodeId a = net.allocNode();
    net.addResistor(a, Netlist::ground, Ohms{1.0});
    net.addVoltageSource(a, Netlist::ground, Volts{1.0});
    TransientSim sim(net, 2e-9);
    EXPECT_EQ(sim.steps(), 0u);
    sim.step();
    sim.step();
    EXPECT_EQ(sim.steps(), 2u);
    EXPECT_NEAR(sim.time(), 4e-9, 1e-18);
}

TEST(TransientSim, ResistorCurrentSign)
{
    Netlist net;
    const NodeId a = net.allocNode();
    net.addVoltageSource(a, Netlist::ground, Volts{2.0});
    const int r = net.addResistor(a, Netlist::ground, Ohms{4.0});
    TransientSim sim(net, 1e-9);
    sim.step();
    EXPECT_NEAR(sim.resistorCurrent(r), 0.5, 1e-9);
}

TEST(TransientSimDeath, BadIndicesPanic)
{
    setLogQuiet(true);
    Netlist net;
    const NodeId a = net.allocNode();
    net.addResistor(a, Netlist::ground, Ohms{1.0});
    net.addVoltageSource(a, Netlist::ground, Volts{1.0});
    TransientSim sim(net, 1e-9);
    EXPECT_DEATH(sim.setCurrent(0, 1.0), "");
    EXPECT_DEATH(sim.setSwitch(0, true), "");
    EXPECT_DEATH(sim.nodeVoltage(17), "");
    EXPECT_DEATH(sim.sourceCurrent(3), "");
}

TEST(SolveDc, CurrentSourceIntoResistor)
{
    Netlist net;
    const NodeId a = net.allocNode();
    net.addResistor(a, Netlist::ground, Ohms{5.0});
    net.addCurrentSource(a, Netlist::ground, Amps{0.0});
    const auto v = solveDc(net, {2.0});
    EXPECT_NEAR(v[1], -10.0, 1e-6);
}

TEST(SolveDc, InductorActsAsShort)
{
    Netlist net;
    const NodeId top = net.allocNode();
    const NodeId mid = net.allocNode();
    net.addVoltageSource(top, Netlist::ground, Volts{1.0});
    net.addResistor(top, mid, Ohms{1.0});
    net.addInductor(mid, Netlist::ground, Henries{1e-9});
    const auto v = solveDc(net, {});
    EXPECT_NEAR(v[2], 0.0, 1e-4);
}

/** Property: energy is conserved in steady state — source power
 *  equals resistive dissipation for a range of loads. */
class TransientLoadSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(TransientLoadSweep, PowerBalanceInSteadyState)
{
    const double loadAmps = GetParam();
    Netlist net;
    const NodeId top = net.allocNode();
    const NodeId out = net.allocNode();
    net.addVoltageSource(top, Netlist::ground, Volts{1.0});
    net.addResistor(top, out, Ohms{0.01});
    net.addResistor(out, Netlist::ground, Ohms{0.5});
    net.addCapacitor(out, Netlist::ground, Farads{1e-9}, Volts{1.0});
    const int isrc = net.addCurrentSource(out, Netlist::ground);
    TransientSim sim(net, 1e-10);
    sim.setCurrent(isrc, loadAmps);
    sim.initToDc();
    for (int i = 0; i < 2000; ++i)
        sim.step();
    const double vOut = sim.nodeVoltage(out);
    const double delivered = sim.totalSourcePower();
    const double dissipated =
        sim.totalResistivePower() + vOut * loadAmps;
    EXPECT_NEAR(delivered, dissipated,
                1e-6 + 1e-6 * std::abs(delivered));
}

INSTANTIATE_TEST_SUITE_P(Loads, TransientLoadSweep,
                         ::testing::Values(0.0, 0.1, 0.5, 1.0, 2.0,
                                           5.0, -0.5));

/** Property: trapezoidal integration is second-order accurate —
 *  halving the timestep reduces the error of a smooth (sinusoidal)
 *  excitation ~4x.  (A hard source step at t=0 would degrade the
 *  start-up to first order, so the stimulus starts consistently.) */
TEST(TransientAccuracy, TrapezoidalIsSecondOrder)
{
    const double r = 100.0, c = 1e-9, amp = 0.01;
    const double w = 2.0 * M_PI * 20e6;
    const double tEnd = 2e-7;

    // Closed form of C v' = I(t) - v/R with I = amp sin(wt), v(0)=0:
    // v(t) = amp R / (1 + (wRC)^2) *
    //        (sin wt - wRC cos wt + wRC e^{-t/RC}).
    const auto exactAt = [&](double t) {
        const double a = w * r * c;
        return amp * r / (1.0 + a * a) *
               (std::sin(w * t) - a * std::cos(w * t) +
                a * std::exp(-t / (r * c)));
    };

    const auto errorAt = [&](double dt) {
        Netlist net;
        const NodeId out = net.allocNode();
        net.addResistor(out, Netlist::ground, Ohms{r});
        net.addCapacitor(out, Netlist::ground, Farads{c}, Volts{0.0});
        const int isrc =
            net.addCurrentSource(out, Netlist::ground, Amps{0.0});
        TransientSim sim(net, dt);
        const int steps = static_cast<int>(tEnd / dt);
        for (int i = 0; i < steps; ++i) {
            // Trapezoid sees the source as constant over a step; use
            // the midpoint value for a consistent O(dt^2) stimulus.
            const double tMid = sim.time() + dt / 2.0;
            // Source draws from the node: negative = injects.
            sim.setCurrent(isrc, -amp * std::sin(w * tMid));
            sim.step();
        }
        return std::abs(sim.nodeVoltage(out) - exactAt(sim.time()));
    };

    const double coarse = errorAt(2e-9);
    const double fine = errorAt(1e-9);
    ASSERT_GT(coarse, 1e-12);
    EXPECT_NEAR(coarse / fine, 4.0, 1.3);
}

TEST(TransientAccuracy, SourceSetpointChangeTakesEffect)
{
    Netlist net;
    const NodeId a = net.allocNode();
    net.addVoltageSource(a, Netlist::ground, Volts{1.0});
    net.addResistor(a, Netlist::ground, Ohms{1.0});
    TransientSim sim(net, 1e-9);
    sim.step();
    EXPECT_NEAR(sim.nodeVoltage(a), 1.0, 1e-12);
    sim.setSourceVolts(0, 1.5);
    sim.step();
    EXPECT_NEAR(sim.nodeVoltage(a), 1.5, 1e-12);
    EXPECT_NEAR(sim.totalSourcePower(), 1.5 * 1.5, 1e-9);
}

} // namespace
} // namespace vsgpu
