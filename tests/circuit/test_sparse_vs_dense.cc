/**
 * @file
 * Differential tests of the sparse MNA engine against the dense one.
 *
 * Two layers of evidence back the `--solver dense` escape hatch and
 * the sparse default:
 *
 *  - Property-based: randomized RLC/switch/equalizer/source netlists
 *    from seeded generators, solved by both backends across DC, AC
 *    and transient analyses, must agree within a tight tolerance.
 *  - Exact bits: on the eight golden configurations (the four
 *    Table III PDS presets plus the four fig09 worst-transient
 *    variants) the two backends must agree bit for bit — DC
 *    operating point, a long transient run with a gating event, and
 *    an AC sweep.  This is the contract that lets the golden traces
 *    stay byte-identical when the default solver changed.
 */

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "circuit/ac.hh"
#include "circuit/solver.hh"
#include "circuit/transient.hh"
#include "common/random.hh"
#include "sim/pds_setup.hh"

namespace vsgpu
{
namespace
{

/** Bitwise equality of two double vectors (memcmp, so -0.0 != +0.0
 *  and any NaN mismatch fails loudly). */
::testing::AssertionResult
bitsEqual(const std::vector<double> &a, const std::vector<double> &b)
{
    if (a.size() != b.size())
        return ::testing::AssertionFailure()
               << "size " << a.size() << " vs " << b.size();
    if (a.empty() ||
        std::memcmp(a.data(), b.data(),
                    a.size() * sizeof(double)) == 0)
        return ::testing::AssertionSuccess();
    for (std::size_t i = 0; i < a.size(); ++i)
        if (std::memcmp(&a[i], &b[i], sizeof(double)) != 0)
            return ::testing::AssertionFailure()
                   << "first difference at [" << i << "]: " << a[i]
                   << " vs " << b[i];
    return ::testing::AssertionFailure() << "unreachable";
}

::testing::AssertionResult
bitsEqual(const std::vector<Complex> &a, const std::vector<Complex> &b)
{
    if (a.size() != b.size())
        return ::testing::AssertionFailure()
               << "size " << a.size() << " vs " << b.size();
    if (a.empty() ||
        std::memcmp(a.data(), b.data(),
                    a.size() * sizeof(Complex)) == 0)
        return ::testing::AssertionSuccess();
    for (std::size_t i = 0; i < a.size(); ++i)
        if (std::memcmp(&a[i], &b[i], sizeof(Complex)) != 0)
            return ::testing::AssertionFailure()
                   << "first difference at [" << i << "]";
    return ::testing::AssertionFailure() << "unreachable";
}

/** |a - b| <= tol * max(1, |a|, |b|), element-wise. */
void
expectClose(const std::vector<double> &a, const std::vector<double> &b,
            double tol)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double scale =
            std::max({1.0, std::abs(a[i]), std::abs(b[i])});
        EXPECT_LE(std::abs(a[i] - b[i]), tol * scale)
            << "element " << i << ": " << a[i] << " vs " << b[i];
    }
}

/**
 * A random netlist that is solvable by construction: every node
 * reaches ground through a resistive spanning tree, voltage sources
 * hang off dedicated fresh nodes (no ideal-source loops), and all
 * element values are drawn from well-conditioned ranges.
 */
struct RandomCircuit
{
    Netlist net;
    std::vector<NodeId> nodes;
    int numSwitches = 0;
    int numSources = 0;
};

RandomCircuit
randomCircuit(std::uint64_t seed)
{
    Rng rng(seed);
    RandomCircuit rc;
    const int numNodes = rng.uniformInt(3, 24);
    for (int i = 0; i < numNodes; ++i)
        rc.nodes.push_back(rc.net.allocNode());
    const auto anyNode = [&]() {
        // Includes ground.
        const int i = rng.uniformInt(0, numNodes);
        return i == 0 ? Netlist::ground
                      : rc.nodes[static_cast<std::size_t>(i - 1)];
    };

    // Resistive spanning tree to ground keeps DC nonsingular.
    for (int i = 0; i < numNodes; ++i) {
        const NodeId parent =
            i == 0 ? Netlist::ground
                   : rc.nodes[static_cast<std::size_t>(
                         rng.uniformInt(0, i - 1))];
        rc.net.addResistor(rc.nodes[static_cast<std::size_t>(i)],
                           parent, Ohms{rng.uniform(0.01, 10.0)});
    }

    const int extraR = rng.uniformInt(0, numNodes);
    for (int i = 0; i < extraR; ++i)
        rc.net.addResistor(anyNode(), anyNode(),
                           Ohms{rng.uniform(0.1, 100.0)});

    const int caps = rng.uniformInt(1, numNodes);
    for (int i = 0; i < caps; ++i)
        rc.net.addCapacitor(anyNode(), anyNode(),
                            Farads{rng.uniform(1e-9, 1e-6)},
                            Volts{rng.uniform(0.0, 1.0)});

    const int inds = rng.uniformInt(1, numNodes / 2 + 1);
    for (int i = 0; i < inds; ++i)
        rc.net.addInductor(anyNode(), anyNode(),
                           Henries{rng.uniform(1e-9, 1e-6)},
                           Amps{rng.uniform(-1.0, 1.0)});

    rc.numSwitches = rng.uniformInt(0, 4);
    for (int i = 0; i < rc.numSwitches; ++i)
        rc.net.addSwitch(anyNode(), anyNode(),
                         Ohms{rng.uniform(1e-3, 1e-2)},
                         Ohms{rng.uniform(1e6, 1e9)},
                         rng.uniform() < 0.5);

    const int eqs = rng.uniformInt(0, 3);
    for (int i = 0; i < eqs; ++i)
        rc.net.addEqualizer(anyNode(), anyNode(), anyNode(),
                            Ohms{rng.uniform(0.05, 1.0)});

    // A voltage source on its own fresh node, tied into the tree
    // through a resistor, can never form an ideal-source loop.
    const int vsrcs = rng.uniformInt(0, 2);
    for (int i = 0; i < vsrcs; ++i) {
        const NodeId tap = rc.net.allocNode();
        rc.net.addVoltageSource(tap, Netlist::ground,
                                Volts{rng.uniform(0.5, 2.0)});
        rc.net.addResistor(tap, anyNode(),
                           Ohms{rng.uniform(0.01, 1.0)});
    }

    rc.numSources = rng.uniformInt(1, 4);
    for (int i = 0; i < rc.numSources; ++i)
        rc.net.addCurrentSource(anyNode(), anyNode(),
                                Amps{rng.uniform(-2.0, 2.0)});
    return rc;
}

constexpr double kRandomTol = 1e-9;

class SparseVsDenseRandom
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SparseVsDenseRandom, DcAgrees)
{
    const RandomCircuit rc = randomCircuit(GetParam());
    std::vector<double> amps;
    for (const auto &s : rc.net.currentSources())
        amps.push_back(s.amps);
    const std::vector<double> sparse =
        solveDc(rc.net, amps, {}, SolverKind::Sparse);
    const std::vector<double> dense =
        solveDc(rc.net, amps, {}, SolverKind::Dense);
    expectClose(sparse, dense, kRandomTol);
}

TEST_P(SparseVsDenseRandom, TransientAgrees)
{
    const RandomCircuit rc = randomCircuit(GetParam());
    const double dt = 1e-9;
    TransientSim sparse(rc.net, dt, SolverKind::Sparse);
    TransientSim dense(rc.net, dt, SolverKind::Dense);
    sparse.initToDc();
    dense.initToDc();
    expectClose(sparse.solution(), dense.solution(), kRandomTol);

    Rng rng(GetParam() ^ 0xabcdef12345ull);
    for (int step = 0; step < 200; ++step) {
        // Random load schedule, occasionally toggling a switch so
        // both backends exercise their per-topology factor caches.
        if (rc.numSources > 0 && step % 3 == 0) {
            const int src = rng.uniformInt(0, rc.numSources - 1);
            const double value = rng.uniform(-2.0, 2.0);
            sparse.setCurrent(src, value);
            dense.setCurrent(src, value);
        }
        if (rc.numSwitches > 0 && step % 41 == 17) {
            const int sw = rng.uniformInt(0, rc.numSwitches - 1);
            const bool closed = rng.uniform() < 0.5;
            sparse.setSwitch(sw, closed);
            dense.setSwitch(sw, closed);
        }
        sparse.step();
        dense.step();
        expectClose(sparse.solution(), dense.solution(), kRandomTol);
    }
}

TEST_P(SparseVsDenseRandom, AcAgrees)
{
    const RandomCircuit rc = randomCircuit(GetParam());
    AcAnalysis sparse(rc.net, {}, SolverKind::Sparse);
    AcAnalysis dense(rc.net, {}, SolverKind::Dense);
    for (const double freq : {1e4, 1e6, 1e8}) {
        const std::vector<AcInjection> inj = {
            {rc.nodes.front(), Complex{1.0, 0.0}},
            {rc.nodes.back(), Complex{0.0, 0.5}},
        };
        const std::vector<Complex> a = sparse.solve(freq, inj);
        const std::vector<Complex> b = dense.solve(freq, inj);
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i)
            EXPECT_LE(std::abs(a[i] - b[i]),
                      kRandomTol *
                          std::max({1.0, std::abs(a[i]),
                                    std::abs(b[i])}))
                << "node " << i << " at " << freq << " Hz";
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparseVsDenseRandom,
                         ::testing::Values(1ull, 2ull, 3ull, 5ull,
                                           8ull, 13ull, 21ull, 34ull,
                                           55ull, 89ull));

/**
 * The eight golden configurations: the four Table III PDS presets
 * and the four fig09 worst-transient variants.
 */
struct GoldenConfig
{
    const char *name;
    PdsKind kind;
    double areaFraction; // < 0: keep the preset default
};

const GoldenConfig kGoldenConfigs[] = {
    {"conventional_vrm", PdsKind::ConventionalVrm, -1.0},
    {"single_layer_ivr", PdsKind::SingleLayerIvr, -1.0},
    {"vs_circuit_only", PdsKind::VsCircuitOnly, -1.0},
    {"vs_cross_layer", PdsKind::VsCrossLayer, -1.0},
    {"fig09_circuit_only_2x", PdsKind::VsCircuitOnly, 2.0},
    {"fig09_circuit_only_1x", PdsKind::VsCircuitOnly, 1.0},
    {"fig09_circuit_only_02x", PdsKind::VsCircuitOnly, 0.2},
    {"fig09_cross_layer_02x", PdsKind::VsCrossLayer, 0.2},
};

class SparseVsDenseGolden
    : public ::testing::TestWithParam<GoldenConfig>
{
  protected:
    std::shared_ptr<const PdsSetup>
    setup() const
    {
        CosimConfig cfg;
        cfg.pds = defaultPds(GetParam().kind);
        if (GetParam().areaFraction >= 0.0)
            cfg.pds.ivrAreaFraction = GetParam().areaFraction;
        return buildPdsSetup(cfg);
    }

    int
    sourceOf(const PdsSetup &s, int sm) const
    {
        return s.stacked ? s.vs->smCurrentSource(sm)
                         : s.sl->smCurrentSource(sm);
    }
};

TEST_P(SparseVsDenseGolden, DcExactBits)
{
    const std::shared_ptr<const PdsSetup> s = setup();
    std::vector<double> amps;
    for (const auto &src : s->netlist().currentSources())
        amps.push_back(src.amps);
    const std::vector<double> sparse =
        solveDc(s->netlist(), amps, {}, SolverKind::Sparse,
                s->mnaPattern);
    const std::vector<double> dense =
        solveDc(s->netlist(), amps, {}, SolverKind::Dense);
    EXPECT_TRUE(bitsEqual(sparse, dense));
    // And the cached setup's own operating point matches both.
    EXPECT_TRUE(bitsEqual(s->dcNodeVolts, sparse));
}

TEST_P(SparseVsDenseGolden, TransientExactBits)
{
    const std::shared_ptr<const PdsSetup> s = setup();
    const double dt = config::clockPeriod.raw();
    TransientSim sparse(s->netlist(), dt, SolverKind::Sparse,
                        s->mnaPattern);
    TransientSim dense(s->netlist(), dt, SolverKind::Dense);
    sparse.initFromDc(s->dcNodeVolts);
    dense.initFromDc(s->dcNodeVolts);

    // The fig09 shape: all SMs loaded, one layer dropped half way.
    for (int step = 0; step < 600; ++step) {
        for (int sm = 0; sm < config::numSMs; ++sm) {
            const bool gated =
                step >= 300 && s->stacked && s->vs->smLayer(sm) == 0;
            const double amps =
                gated ? 0.0 : 4.0 + 0.5 * ((sm + step) % 5);
            sparse.setCurrent(sourceOf(*s, sm), amps);
            dense.setCurrent(sourceOf(*s, sm), amps);
        }
        sparse.step();
        dense.step();
        ASSERT_TRUE(bitsEqual(sparse.solution(), dense.solution()))
            << "diverged at step " << step;
    }
}

TEST_P(SparseVsDenseGolden, AcExactBits)
{
    const std::shared_ptr<const PdsSetup> s = setup();
    AcAnalysis sparse(s->netlist(), {}, SolverKind::Sparse,
                      s->mnaPattern);
    AcAnalysis dense(s->netlist(), {}, SolverKind::Dense);
    const NodeId probe = s->stacked ? s->vs->smTopNode(0)
                                    : s->sl->smNode(0);
    for (const double freq : {1e5, 1e6, 1e7, 1e8}) {
        const std::vector<AcInjection> inj = {
            {probe, Complex{1.0, 0.0}},
        };
        EXPECT_TRUE(
            bitsEqual(sparse.solve(freq, inj), dense.solve(freq, inj)))
            << "at " << freq << " Hz";
    }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, SparseVsDenseGolden,
    ::testing::ValuesIn(kGoldenConfigs),
    [](const ::testing::TestParamInfo<GoldenConfig> &info) {
        return std::string(info.param.name);
    });

} // namespace
} // namespace vsgpu
