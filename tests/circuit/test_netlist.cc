/**
 * @file
 * Unit tests for netlist construction and validation.
 */

#include <gtest/gtest.h>

#include "circuit/netlist.hh"
#include "common/logging.hh"

namespace vsgpu
{
namespace
{

TEST(Netlist, NodesAllocateSequentially)
{
    Netlist net;
    EXPECT_EQ(net.numNodes(), 0);
    EXPECT_EQ(net.allocNode("a"), 1);
    EXPECT_EQ(net.allocNode("b"), 2);
    EXPECT_EQ(net.numNodes(), 2);
    EXPECT_EQ(net.nodeLabel(1), "a");
    EXPECT_EQ(net.nodeLabel(0), "");
}

TEST(Netlist, ElementsRecordParameters)
{
    Netlist net;
    const NodeId a = net.allocNode();
    const NodeId b = net.allocNode();
    const int r = net.addResistor(a, b, 10.0_Ohm, "r1");
    const int c = net.addCapacitor(a, b, 1.0_nF, 0.5_V);
    const int l = net.addInductor(a, b, 1.0_pH, 2.0_A);
    const int v = net.addVoltageSource(a, Netlist::ground, 3.3_V);
    const int i = net.addCurrentSource(a, b, 0.1_A, "load");
    const int s = net.addSwitch(a, b, 1.0_mOhm, Ohms{1e9}, true);
    const int e = net.addEqualizer(a, b, Netlist::ground, 0.05_Ohm);

    EXPECT_EQ(r, 0);
    EXPECT_DOUBLE_EQ(net.resistors()[0].ohms, 10.0);
    EXPECT_EQ(net.resistors()[0].name, "r1");
    EXPECT_EQ(c, 0);
    EXPECT_DOUBLE_EQ(net.capacitors()[0].initialVolts, 0.5);
    EXPECT_EQ(l, 0);
    EXPECT_DOUBLE_EQ(net.inductors()[0].initialAmps, 2.0);
    EXPECT_EQ(v, 0);
    EXPECT_DOUBLE_EQ(net.voltageSources()[0].volts, 3.3);
    EXPECT_EQ(i, 0);
    EXPECT_EQ(net.currentSources()[0].name, "load");
    EXPECT_EQ(s, 0);
    EXPECT_TRUE(net.switches()[0].initiallyClosed);
    EXPECT_EQ(e, 0);
    EXPECT_DOUBLE_EQ(net.equalizers()[0].effOhms, 0.05);
}

TEST(NetlistDeath, RejectsInvalidValues)
{
    setLogQuiet(true);
    Netlist net;
    const NodeId a = net.allocNode();
    EXPECT_DEATH(net.addResistor(a, Netlist::ground, Ohms{}), "");
    EXPECT_DEATH(net.addResistor(a, Netlist::ground, -1.0_Ohm), "");
    EXPECT_DEATH(net.addCapacitor(a, Netlist::ground, Farads{}), "");
    EXPECT_DEATH(net.addInductor(a, Netlist::ground, -1.0_nH), "");
    EXPECT_DEATH(net.addEqualizer(a, Netlist::ground,
                                  Netlist::ground, Ohms{}), "");
    // Switch requires Ron < Roff.
    EXPECT_DEATH(net.addSwitch(a, Netlist::ground, 1.0_Ohm, 0.5_Ohm), "");
}

TEST(NetlistDeath, RejectsUnknownNodes)
{
    setLogQuiet(true);
    Netlist net;
    net.allocNode();
    EXPECT_DEATH(net.addResistor(1, 5, 1.0_Ohm), "");
    EXPECT_DEATH(net.addCurrentSource(-1, 0), "");
    EXPECT_DEATH(net.nodeLabel(9), "");
}

} // namespace
} // namespace vsgpu
