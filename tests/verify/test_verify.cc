/**
 * @file
 * Tests for the static model verifier (src/verify) and its fail-fast
 * gates in the simulation stack.
 *
 * Fault-injection fixtures: each deliberately broken model must be
 * rejected with its exact diagnostic id — a regression here means a
 * malformed model could reach the transient solver.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hh"
#include "numeric/eigen.hh"
#include "sim/cosim.hh"
#include "sim/model_verify.hh"
#include "verify/verify.hh"
#include "workloads/suite.hh"

namespace vsgpu
{
namespace
{

using verify::Report;
using verify::Severity;

/** Severity of the first finding carrying @p id (must exist). */
Severity
severityOf(const Report &report, std::string_view id)
{
    for (const verify::Diagnostic &d : report.diags)
        if (d.id == id)
            return d.severity;
    ADD_FAILURE() << "no finding with id " << id;
    return Severity::Warning;
}

// ================= ERC fixtures =================

TEST(VerifyErc, FloatingIslandIsRejected)
{
    // Two nodes tied to each other but to nothing else: no DC path
    // to ground anywhere.
    Netlist net;
    const NodeId a = net.allocNode("island_a");
    const NodeId b = net.allocNode("island_b");
    net.addResistor(a, b, Ohms{1.0});

    const Report report = verify::ercAudit(net);
    EXPECT_TRUE(report.has("erc.floating-node"));
    EXPECT_EQ(severityOf(report, "erc.floating-node"),
              Severity::Error);
    EXPECT_TRUE(report.hasErrors());
}

TEST(VerifyErcDeath, BuilderRefusesNegativeCapacitanceUpFront)
{
    Netlist net;
    const NodeId n = net.allocNode("rail");
    net.addResistor(n, Netlist::ground, Ohms{1.0});
    EXPECT_DEATH(
        net.addCapacitor(n, Netlist::ground, Farads{-1e-9}),
        "positive capacitance");
}

TEST(VerifyErc, NegativeCapacitanceIsRejected)
{
    Netlist net;
    const NodeId n = net.allocNode("rail");
    net.addResistor(n, Netlist::ground, Ohms{1.0});
    net.addCapacitor(n, Netlist::ground, Farads{1e-9});
    // The builder refuses nonpositive values up front (test above);
    // corrupt the stored element to prove the audit is an
    // independent second line of defense, not a builder echo.
    const_cast<Netlist::Capacitor &>(net.capacitors().back())
        .farads = -1e-9;

    const Report report = verify::ercAudit(net);
    EXPECT_TRUE(report.has("erc.nonpositive-capacitance"));
    EXPECT_EQ(severityOf(report, "erc.nonpositive-capacitance"),
              Severity::Error);
    EXPECT_TRUE(report.hasErrors());
}

TEST(VerifyErc, WellFormedDividerIsClean)
{
    Netlist net;
    const NodeId supply = net.allocNode("supply");
    const NodeId mid = net.allocNode("mid");
    net.addVoltageSource(supply, Netlist::ground, 1.0_V);
    net.addResistor(supply, mid, Ohms{1.0});
    net.addResistor(mid, Netlist::ground, Ohms{1.0});
    net.addCapacitor(mid, Netlist::ground, Farads{1e-9});

    const Report report = verify::ercAudit(net);
    EXPECT_TRUE(report.diags.empty())
        << verify::formatReport(report);
}

// ================= numeric fixtures =================

namespace
{

/** Parallel LC tank at `tank`, driven through a voltage source:
 *  resonance at 1/(2 pi sqrt(LC)) ~ 159 MHz, damped by R. */
Netlist
tankNetlist(NodeId &tank)
{
    Netlist net;
    const NodeId drive = net.allocNode("drive");
    tank = net.allocNode("tank");
    net.addVoltageSource(drive, Netlist::ground, 1.0_V);
    net.addInductor(drive, tank, Henries{1e-9});
    net.addCapacitor(tank, Netlist::ground, Farads{1e-9});
    net.addResistor(tank, Netlist::ground, Ohms{50.0});
    return net;
}

} // namespace

TEST(VerifyNumeric, OversizedTimestepIsRejected)
{
    NodeId tank = -1;
    const Netlist net = tankNetlist(tank);

    verify::NumericAuditOptions opts;
    opts.probeNode = tank;
    opts.dt = Seconds{1e-6}; // ~160 periods of the pole per step

    const Report report = verify::numericAudit(net, opts);
    EXPECT_TRUE(report.has("num.dt-undersamples-pole"))
        << verify::formatReport(report);
    EXPECT_EQ(severityOf(report, "num.dt-undersamples-pole"),
              Severity::Error);
    EXPECT_TRUE(report.has("num.trapezoidal-ringing"));
    EXPECT_TRUE(report.hasErrors());
}

TEST(VerifyNumeric, AdequateTimestepPasses)
{
    NodeId tank = -1;
    const Netlist net = tankNetlist(tank);

    verify::NumericAuditOptions opts;
    opts.probeNode = tank;
    opts.dt = Seconds{1e-10}; // ~63 samples per resonance period

    const Report report = verify::numericAudit(net, opts);
    EXPECT_FALSE(report.has("num.dt-undersamples-pole"))
        << verify::formatReport(report);
    EXPECT_FALSE(report.hasErrors());
}

TEST(VerifyNumeric, MonotonicImpedanceSkipsTheResonanceCheck)
{
    // A pure RC rail has no interior impedance peak: the scan must
    // not invent a "resonance" at a scan edge (the bug class this
    // guards against is the package-inductance rise at the high edge
    // being mistaken for a pole).
    Netlist net;
    const NodeId n = net.allocNode("rc");
    net.addResistor(n, Netlist::ground, Ohms{1.0});
    net.addCapacitor(n, Netlist::ground, Farads{1e-9});

    verify::NumericAuditOptions opts;
    opts.probeNode = n;
    opts.dt = Seconds{1.0}; // absurd, but there is no pole to sample

    const Report report = verify::numericAudit(net, opts);
    EXPECT_FALSE(report.has("num.dt-undersamples-pole"))
        << verify::formatReport(report);
    EXPECT_FALSE(report.has("num.trapezoidal-ringing"));
}

// ================= control fixtures =================

TEST(VerifyControl, GainOutsideJuryRegionIsFlagged)
{
    verify::ControlAuditInputs in;
    in.controller.gainWattsPerVolt = WattsPerVolt{200.0};
    in.controller.integralGainWattsPerVolt = WattsPerVolt{20.0};

    const Report report = verify::controlAudit(in);
    EXPECT_TRUE(report.has("ctl.jury-unstable"))
        << verify::formatReport(report);
    EXPECT_EQ(severityOf(report, "ctl.jury-unstable"),
              Severity::Warning);
}

TEST(VerifyControl, SmallGainIsJuryStable)
{
    verify::ControlAuditInputs in;
    in.controller.gainWattsPerVolt = WattsPerVolt{0.2};
    in.controller.integralGainWattsPerVolt = WattsPerVolt{};

    const Report report = verify::controlAudit(in);
    EXPECT_FALSE(report.has("ctl.jury-unstable"))
        << verify::formatReport(report);
    EXPECT_FALSE(report.hasErrors());
}

TEST(VerifyControl, CoarseDetectorResolutionIsRejected)
{
    // Resolution 0.5 V against a 0.1 V nominal-to-threshold band:
    // the trigger condition sits inside one quantization step.
    verify::ControlAuditInputs in;
    in.controller.detector.resolutionVolts = Volts{0.5};

    const Report report = verify::controlAudit(in);
    EXPECT_TRUE(report.has("ctl.deadband"))
        << verify::formatReport(report);
    EXPECT_EQ(severityOf(report, "ctl.deadband"), Severity::Error);
    EXPECT_TRUE(report.hasErrors());
}

TEST(VerifyControl, PathologicalLatencyShortCircuitsAnalytically)
{
    // A 2^30-cycle loop latency must not build a degree-10^8 Jury
    // polynomial; the audit answers from the closed-form bound.
    verify::ControlAuditInputs in;
    in.controller.loopLatency = 1u << 30;

    const Report report = verify::controlAudit(in);
    EXPECT_TRUE(report.has("ctl.jury-unstable"))
        << verify::formatReport(report);
    EXPECT_FALSE(report.hasErrors());
}

// ================= Jury vs companion eigenvalues =================

namespace
{

/** Spectral radius of the companion matrix of the polynomial. */
double
companionRadius(const std::vector<double> &coeffs)
{
    const std::size_t n = coeffs.size() - 1;
    Matrix companion(n, n);
    for (std::size_t j = 0; j < n; ++j)
        companion(0, j) = -coeffs[j + 1] / coeffs[0];
    for (std::size_t i = 1; i < n; ++i)
        companion(i, i - 1) = 1.0;
    return spectralRadius(companion);
}

} // namespace

TEST(VerifyJury, MatchesCompanionMatrixEigenvalues)
{
    const std::vector<std::vector<double>> polys = {
        {1.0, -0.5, 0.06},        // roots 0.2, 0.3
        {1.0, -1.5, 0.56},        // roots 0.7, 0.8
        {1.0, -2.5, 1.0},         // roots 2.0, 0.5
        {1.0, 0.0, 0.81},         // roots +-0.9i
        {1.0, 0.0, 1.21},         // roots +-1.1i
        {1.0, -1.0, 0.0, 0.3},    // delayed-integrator shape, small g
        {1.0, -1.0, 0.0, 0.9},    // delayed-integrator shape, large g
        {1.0, -2.0, 1.0, 0.2, 0.1},  // PI shape
        {1.0, -2.0, 1.0, 1.5, 0.5},  // PI shape, overdriven
        {2.0, -1.0, 0.12},        // non-monic, roots 0.2, 0.3
    };
    for (const auto &poly : polys) {
        const double radius = companionRadius(poly);
        // Skip near-marginal cases where the two methods could
        // legitimately disagree on strictness.
        if (std::abs(radius - 1.0) < 1e-9)
            continue;
        EXPECT_EQ(verify::juryStable(poly), radius < 1.0)
            << "radius " << radius << " for poly "
            << ::testing::PrintToString(poly);
    }
}

// ================= gates =================

using VerifyGateDeath = ::testing::Test;

TEST(VerifyGateDeath, ControlGateRejectsCoarseDetector)
{
    setLogQuiet(true);
    CosimConfig cfg;
    cfg.pds = defaultPds(PdsKind::VsCrossLayer);
    cfg.pds.controller.detector.resolutionVolts = Volts{0.5};
    cfg.maxCycles = 2000;
    EXPECT_DEATH(
        {
            CoSimulator sim(cfg);
            sim.run(WorkloadFactory(uniformWorkload(100)), 0.9);
        },
        "ctl.deadband");
}

TEST(VerifyGate, NoVerifyEscapeHatchBypassesTheGate)
{
    setLogQuiet(true);
    CosimConfig cfg;
    cfg.pds = defaultPds(PdsKind::VsCrossLayer);
    cfg.pds.controller.detector.resolutionVolts = Volts{0.5};
    cfg.verifyModel = false;
    cfg.maxCycles = 2000;
    CoSimulator sim(cfg);
    const CosimResult r =
        sim.run(WorkloadFactory(uniformWorkload(100)), 0.9);
    EXPECT_GT(r.cycles, 0u);
}

// ================= whole-config audits =================

TEST(VerifyModel, DefaultConfigsProduceNoErrors)
{
    for (PdsKind kind :
         {PdsKind::ConventionalVrm, PdsKind::SingleLayerIvr,
          PdsKind::VsCircuitOnly, PdsKind::VsCrossLayer}) {
        CosimConfig cfg;
        cfg.pds = defaultPds(kind);
        const Report report = verifyModel(cfg);
        EXPECT_FALSE(report.hasErrors())
            << pdsName(kind) << ":\n"
            << verify::formatReport(report);
    }
}

TEST(VerifyModel, CrossLayerDefaultCarriesTheFrozenJuryWarning)
{
    // The paper's operating point exceeds the linear Jury bound by
    // design (threshold-gated loop); the audit must keep saying so.
    CosimConfig cfg;
    cfg.pds = defaultPds(PdsKind::VsCrossLayer);
    const Report report = verifyModel(cfg);
    EXPECT_TRUE(report.has("ctl.jury-unstable"))
        << verify::formatReport(report);
}

} // namespace
} // namespace vsgpu
