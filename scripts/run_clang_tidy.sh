#!/usr/bin/env bash
# Run clang-tidy over the project sources using the repo .clang-tidy
# profile and the compile database from the CMake build tree.
#
# Usage:
#   scripts/run_clang_tidy.sh [build-dir] [file...]
#
# With no files given, tidies every .cc under src/.  Degrades
# gracefully (exit 0 with a notice) when clang-tidy is not installed,
# so the script is safe to call unconditionally from CI and hooks.

set -u

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"
shift 2>/dev/null || true

tidy="$(command -v clang-tidy || true)"
if [ -z "$tidy" ]; then
    echo "run_clang_tidy: clang-tidy not found on PATH; skipping" >&2
    exit 0
fi

if [ ! -f "$build/compile_commands.json" ]; then
    echo "run_clang_tidy: no compile database; configuring with" \
         "CMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
    cmake -B "$build" -S "$repo" \
          -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null || exit 1
fi

if [ "$#" -gt 0 ]; then
    files=("$@")
else
    mapfile -t files < <(find "$repo/src" -name '*.cc' | sort)
fi

status=0
for f in "${files[@]}"; do
    case "$f" in
        *.cc|*.cpp) ;;
        *) continue ;;
    esac
    echo "tidy $f"
    "$tidy" -p "$build" --quiet "$f" || status=1
done
exit $status
