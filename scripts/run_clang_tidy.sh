#!/usr/bin/env bash
# Run the project static-analysis gate: vsgpu_lint (always, when
# built) followed by clang-tidy (when installed) over the compile
# database from the CMake build tree, using the repo .clang-tidy
# profile.
#
# Usage:
#   scripts/run_clang_tidy.sh [build-dir] [file...]
#
# With no files given, tidies every .cc under src/.  Degrades
# gracefully (exit 0 with a notice) when clang-tidy is not installed,
# so the script is safe to call unconditionally from CI and hooks;
# vsgpu_lint failures are always fatal because the tool builds with
# the project.

set -u

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"
shift 2>/dev/null || true

# Project lint first: fast, zero-dependency, and its baseline gate
# (tools/lint/lint_baseline.txt) must stay clean either way.  Always
# the full sweep — explicit file arguments would bypass vsgpu_lint's
# path scoping, and the whole project lints in well under a second.
lint="$build/tools/lint/vsgpu_lint"
if [ -x "$lint" ]; then
    echo "run_clang_tidy: vsgpu_lint -p $build"
    (cd "$repo" && "$lint" -p "$build") || exit 1
else
    echo "run_clang_tidy: $lint not built; skipping project lint" >&2
fi

tidy="$(command -v clang-tidy || true)"
if [ -z "$tidy" ]; then
    echo "run_clang_tidy: clang-tidy not found on PATH; skipping" >&2
    exit 0
fi

if [ ! -f "$build/compile_commands.json" ]; then
    echo "run_clang_tidy: no compile database; configuring with" \
         "CMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
    cmake -B "$build" -S "$repo" \
          -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null || exit 1
fi

if [ "$#" -gt 0 ]; then
    files=("$@")
else
    mapfile -t files < <(find "$repo/src" -name '*.cc' | sort)
fi

status=0
for f in "${files[@]}"; do
    case "$f" in
        *.cc|*.cpp) ;;
        *) continue ;;
    esac
    echo "tidy $f"
    "$tidy" -p "$build" --quiet "$f" || status=1
done
exit $status
