#!/usr/bin/env bash
# Build everything, run the full test suite, and regenerate every
# paper table/figure plus the ablations into results/.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build -j "$(nproc)"

mkdir -p results
for bench in build/bench/*; do
    [ -x "$bench" ] || continue
    name="$(basename "$bench")"
    case "$name" in
        perf_microbench)
            echo ">>> $name"
            "$bench" --benchmark_min_time=0.2 | tee "results/$name.txt"
            ;;
        *)
            echo ">>> $name"
            "$bench" | tee "results/$name.txt"
            ;;
    esac
done

echo
echo "All claims:"
grep -h "\[claim\]" results/*.txt
