#!/usr/bin/env python3
"""Unit-suffix lint for the converted physical-model modules.

This check has been folded into the vsgpu_lint tool (tools/lint/),
whose unit-safety family supersedes the regex scan below: it lexes
real tokens, covers every converted module, and honors the shared
baseline (tools/lint/lint_baseline.txt).  When the binary has been
built, this script simply delegates to

    vsgpu_lint --checks unit-safety [files...]

and the regex fallback only runs when no build tree exists (e.g. a
bare checkout running pre-commit hooks).  The fallback accepts both
the legacy waiver `// check_units:allow` and the vsgpu_lint spelling
`// vsgpu-lint: raw-ok(<reason>)`.

Usage:  scripts/check_units.py [--verbose] [files...]

With no arguments, scans every public header of the converted modules.
Exit status 0 = clean, 1 = violations found.
"""

import argparse
import os
import pathlib
import re
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent

# Headers of modules whose public interfaces are fully converted.
CONVERTED_GLOBS = [
    "src/common/units.hh",
    "src/circuit/netlist.hh",
    "src/pdn/*.hh",
    "src/ivr/*.hh",
    "src/power/*.hh",
]

# Unit-ish name suffixes, case-insensitive word-final:
#   loadOhms, supplyVolts, freqHz, areaMm2, capF, delaySec, powerW ...
UNIT_SUFFIX = re.compile(
    r"(volts?|amps?|ohms?|siemens|farads?|henr(?:y|ies)|watts?|"
    r"joules?|hz|hertz|mhz|ghz|sec(?:onds?)?|m?m2|nf|uf|pf|nh|ph|"
    r"mv|ma|mw|nj|us|ns|ps)$",
    re.IGNORECASE,
)

# `double <name>` as a parameter or data member, capturing the name.
DOUBLE_DECL = re.compile(r"\bdouble\s+(\w+)")

# Escape hatch for the rare legitimate case (document why inline).
WAIVER = "check_units:allow"


def strip_comments(text: str) -> str:
    """Blank out // and /* */ comments, preserving line numbers."""
    out = []
    i, n = 0, len(text)
    while i < n:
        if text.startswith("//", i):
            j = text.find("\n", i)
            j = n if j < 0 else j
            i = j
        elif text.startswith("/*", i):
            j = text.find("*/", i)
            j = n if j < 0 else j + 2
            out.append("\n" * text.count("\n", i, j))
            i = j
        else:
            out.append(text[i])
            i += 1
    return "".join(out)


def lint_file(path: pathlib.Path) -> list[str]:
    raw_lines = path.read_text().splitlines()
    text = strip_comments(path.read_text())
    problems = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in DOUBLE_DECL.finditer(line):
            name = match.group(1)
            if not UNIT_SUFFIX.search(name):
                continue
            near = raw_lines[max(0, lineno - 2) : lineno]
            if any(WAIVER in s or "vsgpu-lint: raw-ok" in s
                   for s in near):
                continue
            rel = path.relative_to(REPO)
            problems.append(
                f"{rel}:{lineno}: raw double '{name}' carries a unit "
                f"suffix — declare it as a Quantity type "
                f"(see src/common/quantity.hh) or waive with "
                f"'// {WAIVER}: <reason>'"
            )
    return problems


def find_vsgpu_lint() -> pathlib.Path | None:
    """Locate the vsgpu_lint binary ($VSGPU_LINT or the build tree)."""
    env = os.environ.get("VSGPU_LINT")
    candidates = [pathlib.Path(env)] if env else []
    candidates += [
        REPO / "build" / "tools" / "lint" / "vsgpu_lint",
        REPO / "build-release" / "tools" / "lint" / "vsgpu_lint",
    ]
    for cand in candidates:
        if cand.is_file() and os.access(cand, os.X_OK):
            return cand
    return None


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="*", type=pathlib.Path)
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args()

    lint = find_vsgpu_lint()
    if lint is not None:
        cmd = [str(lint), "--checks", "unit-safety"]
        cmd += ["-p", str(lint.parents[2])]
        cmd += [str(p) for p in args.files]
        if args.verbose:
            cmd.append("--verbose")
            print("check_units: delegating to", " ".join(cmd))
        return subprocess.run(cmd, cwd=REPO, check=False).returncode

    if args.verbose:
        print("check_units: vsgpu_lint not built; regex fallback")

    if args.files:
        targets = [p.resolve() for p in args.files]
        # Only headers of converted modules are in scope.
        in_scope = {
            f for g in CONVERTED_GLOBS for f in REPO.glob(g)
        }
        targets = [p for p in targets if p in in_scope]
    else:
        targets = sorted(
            f for g in CONVERTED_GLOBS for f in REPO.glob(g)
        )

    problems = []
    for path in targets:
        if args.verbose:
            print(f"checking {path.relative_to(REPO)}")
        problems.extend(lint_file(path))

    for p in problems:
        print(p, file=sys.stderr)
    if problems:
        print(f"check_units: {len(problems)} violation(s)",
              file=sys.stderr)
        return 1
    print(f"check_units: {len(targets)} header(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
