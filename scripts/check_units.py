#!/usr/bin/env python3
"""Unit lint shim: delegates to vsgpu_lint (tools/lint/).

The regex scan that used to live here is fully retired.  The
vsgpu_lint unit-safety family supersedes it (real tokens, every
converted module, the shared fingerprint baseline), and the unit-flow
family goes further: it propagates unit tags through assignments,
arithmetic, and call arguments, so mixed-unit bugs are caught even
when every variable is an unsuffixed raw double.

This script exists only to keep the historical entry point (and its
exit codes) stable for hooks and muscle memory:

    scripts/check_units.py [--verbose] [files...]

is exactly

    vsgpu_lint --checks unit-safety,unit-flow -p <build> [files...]

Exit status: 0 = clean, 1 = violations, 2 = vsgpu_lint not built or
not runnable (build the project first: cmake -B build && cmake
--build build).
"""

import argparse
import os
import pathlib
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent


def find_vsgpu_lint() -> pathlib.Path | None:
    """Locate the vsgpu_lint binary ($VSGPU_LINT or the build tree)."""
    env = os.environ.get("VSGPU_LINT")
    candidates = [pathlib.Path(env)] if env else []
    candidates += [
        REPO / "build" / "tools" / "lint" / "vsgpu_lint",
        REPO / "build-release" / "tools" / "lint" / "vsgpu_lint",
    ]
    for cand in candidates:
        if cand.is_file() and os.access(cand, os.X_OK):
            return cand
    return None


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="*", type=pathlib.Path)
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args()

    lint = find_vsgpu_lint()
    if lint is None:
        print(
            "check_units: vsgpu_lint is not built — run "
            "`cmake -B build && cmake --build build` first "
            "(or point $VSGPU_LINT at the binary)",
            file=sys.stderr,
        )
        return 2

    cmd = [str(lint), "--checks", "unit-safety,unit-flow"]
    cmd += ["-p", str(lint.parents[2])]
    cmd += [str(p) for p in args.files]
    if args.verbose:
        cmd.append("--verbose")
        print("check_units: delegating to", " ".join(cmd))
    return subprocess.run(cmd, cwd=REPO, check=False).returncode


if __name__ == "__main__":
    sys.exit(main())
