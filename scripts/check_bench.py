#!/usr/bin/env python3
"""Compare fresh bench results against a recorded trajectory and
fail on regressions.

Usage (solver benches, BENCH_circuit.json):
  check_bench.py --trajectory BENCH_circuit.json
                 [--fig09 FIG09.json] [--microbench GBENCH.json]
                 [--tolerance 0.10] [--record --note "..."]

Usage (lint wall-clock, BENCH_lint.json):
  check_bench.py --trajectory BENCH_lint.json --lint TIMINGS.json
                 [--record --note "..."]

Usage (observability overhead, BENCH_obs.json):
  check_bench.py --trajectory BENCH_obs.json --obs OBS.json
                 [--record --note "..."]

The obs gate reads the JSON written by `scripts/bench_obs.py` and
enforces the trajectory's hard "overhead_budget": the fully-armed
observability path (time-series sampling + stage profiler) may not
slow the co-simulation loop by more than that fraction.  The
disabled-path costs (ns per ProfileScope / trace point with the
global gates off) are recorded as machine-local trend context, with
a generous "disabled_ns_ceiling" sanity bound so an accidentally
heavyweight disabled path still fails somewhere.

The lint gate reads the JSON written by `vsgpu_lint --timings` and
applies two checks: a hard wall-clock budget (trajectory
"budget_seconds", the CI timeout contract) and a >tolerance
regression against the last recorded entry's wall time (trajectory
"regression_tolerance").  Raw wall seconds are machine-dependent, so
the regression gate only arms above "grace_floor_seconds" — a
sub-second run that doubles from scheduler noise is not a
regression, but a run that blows past the floor AND the recorded
baseline by >25% is.

Wall-clock times are not comparable across machines, so the gate
works on *ratios* (dense time / sparse time for the same kernel on
the same machine), which are stable: a >tolerance drop in any
recorded speedup ratio fails the check, as does violating a hard
floor from the trajectory's "floors" table (e.g. the fig09
worst-transient circuit engine must stay >= 5x).

Inputs (stdlib only, no third-party deps):
  fig09       JSON written by `fig09_worst_transient --json PATH`
              (cosim + circuit-engine replay wall clocks).
  microbench  google-benchmark JSON written by
              `perf_microbench --benchmark_out=PATH
               --benchmark_out_format=json`.

--record appends the fresh numbers as a new trajectory entry instead
of gating, so the trajectory file is grown by the same tool that
checks it.
"""

import argparse
import datetime
import json
import sys

# microbench ratio name -> (numerator bench, denominator bench)
KERNEL_RATIOS = {
    "solve_speedup": ("BM_SolverSolveDense", "BM_SolverSolveSparse"),
    "step_speedup": ("BM_TransientStepDense", "BM_TransientStep"),
    "refactor_speedup": ("BM_SolverRefactorDense",
                         "BM_SolverRefactorSparse"),
}
# raw kernel times recorded (ns) for human trend-reading only
KERNEL_TIMES = (
    "BM_SolverStamp", "BM_SolverSymbolic", "BM_SolverRefactorSparse",
    "BM_SolverRefactorDense", "BM_SolverSolveSparse",
    "BM_SolverSolveDense", "BM_TransientStep", "BM_TransientStepDense",
)


def fail(msg: str) -> None:
    print(f"check_bench: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load_json(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        fail(f"{path}: {err}")
    raise AssertionError("unreachable")


def bench_times(doc: dict, path: str) -> dict:
    times = {}
    for bench in doc.get("benchmarks", []):
        name = bench.get("name", "")
        # Skip aggregate rows (mean/median/stddev repetitions).
        if bench.get("run_type") == "aggregate":
            continue
        times[name] = float(bench["cpu_time"])
    if not times:
        fail(f"{path}: no benchmark entries")
    return times


def fresh_metrics(args: argparse.Namespace) -> dict:
    """Collect {metric: value} from whichever inputs were given."""
    fresh = {}
    if args.fig09:
        doc = load_json(args.fig09)
        for key in ("timesteps", "circuit_sparse_sec",
                    "circuit_dense_sec", "circuit_speedup"):
            if key not in doc:
                fail(f"{args.fig09}: missing '{key}'")
        fresh["fig09_circuit_speedup"] = float(doc["circuit_speedup"])
        fresh["fig09"] = {
            "timesteps": doc["timesteps"],
            "cosim_elapsed_sec": doc.get("cosim_elapsed_sec"),
            "solver": doc.get("solver"),
            "circuit_sparse_sec": doc["circuit_sparse_sec"],
            "circuit_dense_sec": doc["circuit_dense_sec"],
            "circuit_speedup": doc["circuit_speedup"],
        }
    if args.microbench:
        times = bench_times(load_json(args.microbench),
                            args.microbench)
        for ratio, (num, den) in KERNEL_RATIOS.items():
            if num not in times or den not in times:
                fail(f"{args.microbench}: missing {num} or {den}")
            fresh[ratio] = times[num] / times[den]
        fresh["kernels_ns"] = {
            name: round(times[name], 1)
            for name in KERNEL_TIMES if name in times
        }
    return fresh


def gate(trajectory: dict, fresh: dict, tolerance: float) -> None:
    entries = trajectory.get("entries", [])
    if not entries:
        fail("trajectory has no entries to compare against")
    ref = entries[-1]
    ref_ratios = dict(ref.get("kernel_ratios", {}))
    if "fig09" in ref:
        ref_ratios["fig09_circuit_speedup"] = \
            ref["fig09"]["circuit_speedup"]

    checked = 0
    for name, want in sorted(ref_ratios.items()):
        if name not in fresh:
            continue
        got = fresh[name]
        limit = want * (1.0 - tolerance)
        status = "ok" if got >= limit else "REGRESSION"
        print(f"check_bench: {name}: recorded {want:.2f}x, "
              f"fresh {got:.2f}x (limit {limit:.2f}x) {status}")
        if got < limit:
            fail(f"{name} regressed: {got:.2f}x < "
                 f"{limit:.2f}x ({want:.2f}x - {tolerance:.0%})")
        checked += 1
    if checked == 0:
        fail("no fresh metrics overlap the recorded trajectory "
             "(pass --fig09 and/or --microbench)")

    for name, floor in trajectory.get("floors", {}).items():
        if name not in fresh:
            continue
        got = fresh[name]
        print(f"check_bench: {name}: floor {floor:.2f}x, "
              f"fresh {got:.2f}x "
              f"{'ok' if got >= floor else 'BELOW FLOOR'}")
        if got < floor:
            fail(f"{name} = {got:.2f}x violates the hard floor "
                 f"{floor:.2f}x")
    print("check_bench: OK")


def record(trajectory: dict, fresh: dict, path: str,
           note: str) -> None:
    entry = {
        "date": datetime.date.today().isoformat(),
        "note": note,
    }
    if "fig09" in fresh:
        entry["fig09"] = fresh["fig09"]
    ratios = {k: round(v, 3) for k, v in fresh.items()
              if k in KERNEL_RATIOS}
    if ratios:
        entry["kernel_ratios"] = ratios
    if "kernels_ns" in fresh:
        entry["kernels_ns"] = fresh["kernels_ns"]
    trajectory.setdefault("entries", []).append(entry)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trajectory, fh, indent=2)
        fh.write("\n")
    print(f"check_bench: recorded entry {entry['date']} to {path}")


def lint_fresh(path: str) -> dict:
    """Validate and summarize a `vsgpu_lint --timings` JSON file."""
    doc = load_json(path)
    for key in ("files", "wall_seconds", "families"):
        if key not in doc:
            fail(f"{path}: missing '{key}'")
    families = {f["check"]: float(f["seconds"])
                for f in doc["families"]}
    if not families:
        fail(f"{path}: no family timings")
    return {
        "files": int(doc["files"]),
        "wall_seconds": float(doc["wall_seconds"]),
        "families": families,
    }


def lint_gate(trajectory: dict, fresh: dict) -> None:
    budget = float(trajectory.get("budget_seconds", 120.0))
    tolerance = float(trajectory.get("regression_tolerance", 0.25))
    floor = float(trajectory.get("grace_floor_seconds", 5.0))
    wall = fresh["wall_seconds"]

    print(f"check_bench: lint wall {wall:.3f}s over "
          f"{fresh['files']} files (budget {budget:.0f}s)")
    if wall > budget:
        fail(f"lint wall {wall:.3f}s exceeds the hard budget "
             f"{budget:.0f}s")

    entries = trajectory.get("entries", [])
    if not entries:
        fail("trajectory has no entries to compare against")
    ref = float(entries[-1]["wall_seconds"])
    limit = ref * (1.0 + tolerance)
    if wall <= floor:
        print(f"check_bench: under the {floor:.0f}s grace floor — "
              f"regression gate not armed")
    else:
        status = "ok" if wall <= limit else "REGRESSION"
        print(f"check_bench: recorded {ref:.3f}s, fresh "
              f"{wall:.3f}s (limit {limit:.3f}s) {status}")
        if wall > limit:
            fail(f"lint wall regressed: {wall:.3f}s > {limit:.3f}s "
                 f"({ref:.3f}s + {tolerance:.0%})")

    slowest = sorted(fresh["families"].items(),
                     key=lambda kv: -kv[1])[:3]
    for name, sec in slowest:
        print(f"check_bench: slowest family {name}: {sec:.3f}s")
    print("check_bench: OK")


def lint_record(trajectory: dict, fresh: dict, path: str,
                note: str) -> None:
    entry = {
        "date": datetime.date.today().isoformat(),
        "note": note,
        "files": fresh["files"],
        "wall_seconds": round(fresh["wall_seconds"], 3),
        "families": {k: round(v, 3)
                     for k, v in fresh["families"].items()},
    }
    trajectory.setdefault("entries", []).append(entry)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trajectory, fh, indent=2)
        fh.write("\n")
    print(f"check_bench: recorded entry {entry['date']} to {path}")


def obs_fresh(path: str) -> dict:
    """Validate and summarize a `bench_obs.py` JSON file."""
    doc = load_json(path)
    if doc.get("schema") != "vsgpu-bench-obs-v1":
        fail(f"{path}: schema is not vsgpu-bench-obs-v1")
    for key in ("baseline_sec", "observed_sec", "overhead_frac"):
        if key not in doc:
            fail(f"{path}: missing '{key}'")
    if float(doc["baseline_sec"]) <= 0.0:
        fail(f"{path}: non-positive baseline_sec")
    return doc


def obs_gate(trajectory: dict, fresh: dict) -> None:
    budget = float(trajectory.get("overhead_budget", 0.02))
    overhead = float(fresh["overhead_frac"])
    print(f"check_bench: obs overhead {overhead:+.2%} "
          f"(baseline {fresh['baseline_sec']:.3f}s, observed "
          f"{fresh['observed_sec']:.3f}s, budget {budget:.0%})")
    if overhead > budget:
        fail(f"observability overhead {overhead:+.2%} exceeds the "
             f"hard budget {budget:.0%}")
    ceiling = float(trajectory.get("disabled_ns_ceiling", 50.0))
    for key in ("profile_scope_disabled_ns",
                "trace_scope_disabled_ns"):
        if key not in fresh:
            continue
        got = float(fresh[key])
        status = "ok" if got <= ceiling else "ABOVE CEILING"
        print(f"check_bench: {key}: {got:.2f} ns "
              f"(ceiling {ceiling:.0f} ns) {status}")
        if got > ceiling:
            fail(f"{key} = {got:.2f} ns violates the disabled-path "
                 f"ceiling {ceiling:.0f} ns")
    print("check_bench: OK")


def obs_record(trajectory: dict, fresh: dict, path: str,
               note: str) -> None:
    entry = {
        "date": datetime.date.today().isoformat(),
        "note": note,
    }
    for key in ("benchmark", "instrs", "cycles", "sample_every_sec",
                "baseline_sec", "observed_sec", "overhead_frac",
                "profile_scope_disabled_ns",
                "trace_scope_disabled_ns"):
        if key in fresh:
            entry[key] = fresh[key]
    trajectory.setdefault("entries", []).append(entry)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trajectory, fh, indent=2)
        fh.write("\n")
    print(f"check_bench: recorded entry {entry['date']} to {path}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trajectory", required=True)
    parser.add_argument("--fig09")
    parser.add_argument("--microbench")
    parser.add_argument("--lint",
                        help="vsgpu_lint --timings JSON to gate "
                             "against a BENCH_lint.json trajectory")
    parser.add_argument("--obs",
                        help="bench_obs.py JSON to gate against a "
                             "BENCH_obs.json trajectory")
    parser.add_argument("--tolerance", type=float, default=0.10)
    parser.add_argument("--record", action="store_true")
    parser.add_argument("--note", default="")
    args = parser.parse_args()

    trajectory = load_json(args.trajectory)
    if args.obs:
        fresh = obs_fresh(args.obs)
        if args.record:
            obs_record(trajectory, fresh, args.trajectory, args.note)
        else:
            obs_gate(trajectory, fresh)
        return
    if args.lint:
        fresh = lint_fresh(args.lint)
        if args.record:
            lint_record(trajectory, fresh, args.trajectory,
                        args.note)
        else:
            lint_gate(trajectory, fresh)
        return
    fresh = fresh_metrics(args)
    if args.record:
        record(trajectory, fresh, args.trajectory, args.note)
    else:
        gate(trajectory, fresh, args.tolerance)


if __name__ == "__main__":
    main()
