#!/usr/bin/env python3
"""Measure the observability overhead of the co-simulation loop.

Usage: bench_obs.py --vsgpu build/tools/vsgpu [--out OBS.json]
                    [--microbench GBENCH.json]
                    [--benchmark hotspot] [--instrs 20000]
                    [--cycles 1200000] [--sample-every 2e-7]
                    [--repeat 3]

Runs the single co-simulation CLI twice per repetition — once plain,
once with time-series sampling AND the stage-cost profiler enabled —
and reports the relative wall-clock overhead of the fully-armed
observability path.  The two sides run as back-to-back pairs (plain,
observed, plain, observed, ...) and the overhead is the median of
the per-pair wall-time ratios: pairing cancels slow machine drift
and the median resists the occasional descheduled run, which on a
loaded single-CPU box distorts min- or mean-based estimates by
several percent.

With --microbench, the disabled-path costs (BM_ProfileScopeDisabled,
BM_TraceScopeDisabled) are lifted from a google-benchmark JSON file
so the trajectory also tracks the "observability off" contract.

The resulting JSON feeds `check_bench.py --obs` against the
BENCH_obs.json trajectory, which holds the hard <=2% overhead budget.
Stdlib only, no third-party deps.
"""

import argparse
import json
import subprocess
import sys
import time


def fail(msg: str) -> None:
    print(f"bench_obs: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def run_once(cmd: list) -> float:
    start = time.monotonic()
    proc = subprocess.run(cmd, stdout=subprocess.DEVNULL,
                          stderr=subprocess.DEVNULL, check=False)
    elapsed = time.monotonic() - start
    if proc.returncode != 0:
        fail(f"{' '.join(cmd)} exited {proc.returncode}")
    return elapsed


def median(values: list) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def paired_overhead(base_cmd: list, obs_cmd: list,
                    repeat: int) -> tuple:
    """(median baseline, median observed, median pair ratio - 1)."""
    baselines, observeds, ratios = [], [], []
    for _ in range(repeat):
        b = run_once(base_cmd)
        o = run_once(obs_cmd)
        baselines.append(b)
        observeds.append(o)
        ratios.append(o / b)
    return median(baselines), median(observeds), median(ratios) - 1.0


def disabled_ns(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    times = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        times[bench.get("name", "")] = float(bench["cpu_time"])
    out = {}
    for name, key in (("BM_ProfileScopeDisabled",
                       "profile_scope_disabled_ns"),
                      ("BM_TraceScopeDisabled",
                       "trace_scope_disabled_ns")):
        if name in times:
            out[key] = round(times[name], 3)
    if not out:
        fail(f"{path}: no *ScopeDisabled benchmarks found")
    return out


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--vsgpu", required=True,
                        help="path to the vsgpu CLI binary")
    parser.add_argument("--out")
    parser.add_argument("--microbench",
                        help="google-benchmark JSON with the "
                             "*ScopeDisabled entries")
    parser.add_argument("--benchmark", default="hotspot")
    parser.add_argument("--instrs", type=int, default=20000)
    parser.add_argument("--cycles", type=int, default=1200000)
    parser.add_argument("--sample-every", default="2e-7")
    parser.add_argument("--repeat", type=int, default=3)
    args = parser.parse_args()

    base_cmd = [args.vsgpu, "run", "--benchmark", args.benchmark,
                "--instrs", str(args.instrs),
                "--cycles", str(args.cycles)]
    obs_cmd = base_cmd + ["--sample-every", args.sample_every,
                          "--profile"]

    # Warm-up so neither side pays the cold-cache run.
    run_once(base_cmd)
    baseline, observed, overhead = paired_overhead(
        base_cmd, obs_cmd, args.repeat)

    result = {
        "schema": "vsgpu-bench-obs-v1",
        "benchmark": args.benchmark,
        "instrs": args.instrs,
        "cycles": args.cycles,
        "sample_every_sec": float(args.sample_every),
        "repeat": args.repeat,
        "baseline_sec": round(baseline, 4),
        "observed_sec": round(observed, 4),
        "overhead_frac": round(overhead, 5),
    }
    if args.microbench:
        result.update(disabled_ns(args.microbench))

    print(f"bench_obs: baseline {baseline:.3f}s, observed "
          f"{observed:.3f}s, overhead {overhead:+.2%}")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(result, fh, indent=2)
            fh.write("\n")
        print(f"bench_obs: wrote {args.out}")
    else:
        json.dump(result, sys.stdout, indent=2)
        print()


if __name__ == "__main__":
    main()
