#!/usr/bin/env python3
"""Validate the observability outputs of one simulator run.

Usage: check_observability.py --stats STATS.json [--trace TRACE.json]
                              [--summary SUMMARY.json]

Checks (stdlib only, no third-party deps):
  stats   parses as JSON; carries a manifest with a tool, a 16-hex
          config fingerprint, and a seed; has counters from each of
          the gpu / sim / control / hypervisor / exec layers; every
          entry carries name/kind/unit/desc.
  trace   parses as Chrome trace_event JSON; spans have
          non-negative durations; at least a few distinct phase
          spans and one pool span exist; every event names a known
          category; 'i' events carry the scope field.
  summary scenario summary JSON embeds the same manifest
          fingerprint as the stats dump.

Exits non-zero with a message on the first failed check.
"""

import argparse
import json
import sys

REQUIRED_LAYERS = ("gpu.", "sim.", "circuit.", "control.",
                   "hypervisor.", "exec.")
KNOWN_KINDS = {"scalar", "counter", "distribution", "formula"}
KNOWN_CATEGORIES = {"phase", "pool", "ctl", "hv"}
MIN_PHASE_SPAN_KINDS = 4


def fail(msg: str) -> None:
    print(f"check_observability: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_manifest(manifest: dict, context: str) -> str:
    for key in ("tool", "version", "build", "subject",
                "config_fingerprint", "seed", "scale"):
        if key not in manifest:
            fail(f"{context}: manifest lacks '{key}'")
    fp = manifest["config_fingerprint"]
    if len(fp) != 16 or any(c not in "0123456789abcdef" for c in fp):
        fail(f"{context}: config_fingerprint '{fp}' is not 16 hex")
    int(manifest["seed"])  # must parse
    return fp


def check_stats(path: str) -> str:
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    if "manifest" not in doc:
        fail(f"{path}: no manifest block")
    fingerprint = check_manifest(doc["manifest"], path)
    stats = doc.get("stats")
    if not isinstance(stats, list) or not stats:
        fail(f"{path}: empty or missing stats array")
    names = set()
    for entry in stats:
        for key in ("name", "kind", "unit", "desc"):
            if key not in entry:
                fail(f"{path}: stat entry lacks '{key}': {entry}")
        if entry["kind"] not in KNOWN_KINDS:
            fail(f"{path}: unknown stat kind '{entry['kind']}'")
        if entry["name"] in names:
            fail(f"{path}: duplicate stat '{entry['name']}'")
        names.add(entry["name"])
    for layer in REQUIRED_LAYERS:
        if not any(n.startswith(layer) for n in names):
            fail(f"{path}: no stats under the '{layer}' hierarchy")
    if sorted(names) != [e["name"] for e in stats]:
        fail(f"{path}: stats are not sorted by name")
    print(f"check_observability: {path}: {len(stats)} stats, "
          f"fingerprint {fingerprint}")
    return fingerprint


def check_trace(path: str) -> None:
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: empty or missing traceEvents")
    phase_span_names = set()
    pool_spans = 0
    for event in events:
        if event.get("ph") not in ("X", "i"):
            fail(f"{path}: unexpected event phase: {event}")
        if event.get("cat") not in KNOWN_CATEGORIES:
            fail(f"{path}: unknown category: {event}")
        if event.get("pid") != 1 or "tid" not in event:
            fail(f"{path}: event lacks pid/tid: {event}")
        if event["ph"] == "X":
            if event.get("dur", -1.0) < 0.0 or event.get("ts", -1.0) < 0.0:
                fail(f"{path}: span with negative ts/dur: {event}")
            if event["cat"] == "phase":
                phase_span_names.add(event["name"])
            if event["name"] == "pool.task":
                pool_spans += 1
        else:
            if event.get("s") != "t":
                fail(f"{path}: instant without thread scope: {event}")
    if len(phase_span_names) < MIN_PHASE_SPAN_KINDS:
        fail(f"{path}: only {sorted(phase_span_names)} phase spans; "
             f"want >= {MIN_PHASE_SPAN_KINDS} distinct")
    if pool_spans == 0:
        fail(f"{path}: no pool.task spans")
    print(f"check_observability: {path}: {len(events)} events, "
          f"{len(phase_span_names)} phase span kinds, "
          f"{pool_spans} pool spans")


def check_summary(path: str, stats_fingerprint: str) -> None:
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    if "manifest" not in doc:
        fail(f"{path}: summary has no manifest block")
    fingerprint = check_manifest(doc["manifest"], path)
    if fingerprint != stats_fingerprint:
        fail(f"{path}: summary fingerprint {fingerprint} != stats "
             f"fingerprint {stats_fingerprint}")
    print(f"check_observability: {path}: manifest matches stats dump")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--stats", required=True)
    parser.add_argument("--trace")
    parser.add_argument("--summary")
    args = parser.parse_args()

    fingerprint = check_stats(args.stats)
    if args.trace:
        check_trace(args.trace)
    if args.summary:
        check_summary(args.summary, fingerprint)
    print("check_observability: OK")


if __name__ == "__main__":
    main()
