#!/usr/bin/env python3
"""Validate the observability outputs of one simulator run.

Usage: check_observability.py [--stats STATS.json]
                              [--trace TRACE.json]
                              [--summary SUMMARY.json]
                              [--timeseries SERIES.json]
                              [--profile-required]
                              [--flight FLIGHT.json]

At least one input is required.  --summary and --profile-required
need --stats (they validate against the stats dump's manifest and
embedded profile section); the other inputs stand alone, so a CI
crash fixture can validate just its --flight dump.

Checks (stdlib only, no third-party deps):
  stats   parses as JSON; carries a manifest with a tool, a 16-hex
          config fingerprint, and a seed; has counters from each of
          the gpu / sim / control / hypervisor / exec layers; every
          entry carries name/kind/unit/desc; no unknown top-level
          keys.
  trace   parses as Chrome trace_event JSON; spans have
          non-negative durations; at least a few distinct phase
          spans and one pool span exist; every event names a known
          category; 'i' events carry the scope field.
  summary scenario summary JSON embeds the same manifest
          fingerprint as the stats dump.
  timeseries  vsgpu-timeseries-v1 document: per-run window arrays
          align with window_cycles, every channel carries all four
          aggregate arrays of the right length, "count"-unit
          channels are monotone across windows (they record
          cumulative counters), and no schedule-dependent channel
          leaked into the determinism-gated default dump.
  profile the stats dump embeds a vsgpu-profile-v1 section whose
          named loop stages attribute >= 95% of the sampled loop
          time (--profile-required makes its absence an error).
  flight  vsgpu-flight-v1 crash dump: run identity present, record
          cycles non-decreasing, counts consistent with capacity.

Exits non-zero with a message on the first failed check.
"""

import argparse
import json
import sys

REQUIRED_LAYERS = ("gpu.", "sim.", "circuit.", "control.",
                   "hypervisor.", "exec.")
KNOWN_KINDS = {"scalar", "counter", "distribution", "formula"}
KNOWN_CATEGORIES = {"phase", "pool", "ctl", "hv"}
MIN_PHASE_SPAN_KINDS = 4

STATS_TOP_KEYS = {"manifest", "profile", "stats"}
SERIES_TOP_KEYS = {"schema", "sample_every_sec", "dt_sec",
                   "window_cycles", "runs"}
SERIES_RUN_KEYS = {"label", "time_sec", "cycles", "channels"}
SERIES_CHANNEL_KEYS = {"name", "unit", "desc", "schedule_dependent",
                       "min", "max", "mean", "p99"}
PROFILE_TOP_KEYS = {"schema", "runs", "stride_cycles", "cycles",
                    "sampled_cycles", "loop_ns", "wall_ns", "stages"}
PROFILE_LOOP_STAGES = ("gpu", "power", "circuit", "control",
                       "hypervisor", "observe", "bookkeeping")
PROFILE_STAGES = ("setup",) + PROFILE_LOOP_STAGES + (
    "circuit.assemble", "circuit.solve", "circuit.refactor",
    "circuit.update")
FLIGHT_TOP_KEYS = {"schema", "subject", "config_fingerprint",
                   "capacity", "recorded", "records"}
PROFILE_MIN_LOOP_COVERAGE = 0.95


def fail(msg: str) -> None:
    print(f"check_observability: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_manifest(manifest: dict, context: str) -> str:
    for key in ("tool", "version", "build", "subject",
                "config_fingerprint", "seed", "scale"):
        if key not in manifest:
            fail(f"{context}: manifest lacks '{key}'")
    fp = manifest["config_fingerprint"]
    if len(fp) != 16 or any(c not in "0123456789abcdef" for c in fp):
        fail(f"{context}: config_fingerprint '{fp}' is not 16 hex")
    int(manifest["seed"])  # must parse
    return fp


def check_no_unknown_keys(doc: dict, known: set, context: str) -> None:
    unknown = sorted(set(doc) - known)
    if unknown:
        fail(f"{context}: unknown top-level keys {unknown}")


def check_stats(path: str) -> str:
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    check_no_unknown_keys(doc, STATS_TOP_KEYS, path)
    if "manifest" not in doc:
        fail(f"{path}: no manifest block")
    fingerprint = check_manifest(doc["manifest"], path)
    stats = doc.get("stats")
    if not isinstance(stats, list) or not stats:
        fail(f"{path}: empty or missing stats array")
    names = set()
    for entry in stats:
        for key in ("name", "kind", "unit", "desc"):
            if key not in entry:
                fail(f"{path}: stat entry lacks '{key}': {entry}")
        if entry["kind"] not in KNOWN_KINDS:
            fail(f"{path}: unknown stat kind '{entry['kind']}'")
        if entry["name"] in names:
            fail(f"{path}: duplicate stat '{entry['name']}'")
        names.add(entry["name"])
    for layer in REQUIRED_LAYERS:
        if not any(n.startswith(layer) for n in names):
            fail(f"{path}: no stats under the '{layer}' hierarchy")
    if sorted(names) != [e["name"] for e in stats]:
        fail(f"{path}: stats are not sorted by name")
    print(f"check_observability: {path}: {len(stats)} stats, "
          f"fingerprint {fingerprint}")
    return fingerprint


def check_trace(path: str) -> None:
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: empty or missing traceEvents")
    phase_span_names = set()
    pool_spans = 0
    for event in events:
        if event.get("ph") not in ("X", "i"):
            fail(f"{path}: unexpected event phase: {event}")
        if event.get("cat") not in KNOWN_CATEGORIES:
            fail(f"{path}: unknown category: {event}")
        if event.get("pid") != 1 or "tid" not in event:
            fail(f"{path}: event lacks pid/tid: {event}")
        if event["ph"] == "X":
            if event.get("dur", -1.0) < 0.0 or event.get("ts", -1.0) < 0.0:
                fail(f"{path}: span with negative ts/dur: {event}")
            if event["cat"] == "phase":
                phase_span_names.add(event["name"])
            if event["name"] == "pool.task":
                pool_spans += 1
        else:
            if event.get("s") != "t":
                fail(f"{path}: instant without thread scope: {event}")
    if len(phase_span_names) < MIN_PHASE_SPAN_KINDS:
        fail(f"{path}: only {sorted(phase_span_names)} phase spans; "
             f"want >= {MIN_PHASE_SPAN_KINDS} distinct")
    if pool_spans == 0:
        fail(f"{path}: no pool.task spans")
    print(f"check_observability: {path}: {len(events)} events, "
          f"{len(phase_span_names)} phase span kinds, "
          f"{pool_spans} pool spans")


def check_summary(path: str, stats_fingerprint: str) -> None:
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    if "manifest" not in doc:
        fail(f"{path}: summary has no manifest block")
    fingerprint = check_manifest(doc["manifest"], path)
    if fingerprint != stats_fingerprint:
        fail(f"{path}: summary fingerprint {fingerprint} != stats "
             f"fingerprint {stats_fingerprint}")
    print(f"check_observability: {path}: manifest matches stats dump")


def check_channel(ch: dict, windows: int, context: str) -> None:
    unknown = sorted(set(ch) - SERIES_CHANNEL_KEYS)
    if unknown:
        fail(f"{context}: unknown channel keys {unknown}")
    for key in ("name", "unit", "desc"):
        if not isinstance(ch.get(key), str):
            fail(f"{context}: channel lacks string '{key}': {ch}")
    name = ch["name"]
    for agg in ("min", "max", "mean", "p99"):
        values = ch.get(agg)
        if not isinstance(values, list) or len(values) != windows:
            fail(f"{context}: channel '{name}' aggregate '{agg}' "
                 f"is not a {windows}-window array")
        for v in values:
            if not isinstance(v, (int, float)):
                fail(f"{context}: channel '{name}' has a non-number "
                     f"in '{agg}'")
    for i in range(windows):
        # Relative slack: the mean is a rounded sum/count and may
        # land a few ulps outside [min, max].
        eps = 1e-9 * max(abs(ch["min"][i]), abs(ch["max"][i]), 1.0)
        if not (ch["min"][i] - eps <= ch["mean"][i]
                <= ch["max"][i] + eps):
            fail(f"{context}: channel '{name}' window {i} violates "
                 f"min <= mean <= max")
    if ch["unit"] == "count":
        # Count channels record cumulative counters: the window
        # maxima must be non-decreasing, and no window may dip below
        # the previous window's maximum.
        for i in range(1, windows):
            if ch["max"][i] < ch["max"][i - 1]:
                fail(f"{context}: count channel '{name}' max "
                     f"decreases at window {i}")
            if ch["min"][i] < ch["max"][i - 1]:
                fail(f"{context}: count channel '{name}' window {i} "
                     f"dips below the previous window's max")


def check_timeseries(path: str,
                     allow_schedule_dependent: bool) -> None:
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    check_no_unknown_keys(doc, SERIES_TOP_KEYS, path)
    if doc.get("schema") != "vsgpu-timeseries-v1":
        fail(f"{path}: schema is not vsgpu-timeseries-v1")
    window_cycles = doc.get("window_cycles")
    if not isinstance(window_cycles, int) or window_cycles < 1:
        fail(f"{path}: bad window_cycles {window_cycles!r}")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        fail(f"{path}: empty or missing runs array")
    labels = [run.get("label") for run in runs]
    if labels != sorted(labels):
        fail(f"{path}: runs are not sorted by label")
    if len(set(labels)) != len(labels):
        fail(f"{path}: duplicate run labels")
    total_channels = 0
    for run in runs:
        context = f"{path}: run '{run.get('label')}'"
        check_no_unknown_keys(run, SERIES_RUN_KEYS, context)
        cycles = run.get("cycles")
        times = run.get("time_sec")
        if not isinstance(cycles, list) or not cycles:
            fail(f"{context}: empty cycles array")
        if len(times) != len(cycles):
            fail(f"{context}: time_sec/cycles length mismatch")
        # Window alignment: every window but the (possibly partial)
        # last one closes exactly window_cycles after its
        # predecessor.
        for i, c in enumerate(cycles):
            expected = (i + 1) * window_cycles
            if i + 1 < len(cycles) and c != expected:
                fail(f"{context}: window {i} closes at cycle {c}, "
                     f"expected {expected}")
        if cycles[-1] > len(cycles) * window_cycles:
            fail(f"{context}: final window overruns the cadence")
        channels = run.get("channels")
        if not isinstance(channels, list) or not channels:
            fail(f"{context}: no channels")
        for ch in channels:
            if ch.get("schedule_dependent") and \
                    not allow_schedule_dependent:
                fail(f"{context}: schedule-dependent channel "
                     f"'{ch.get('name')}' in a determinism-gated "
                     f"dump")
            check_channel(ch, len(cycles), context)
        total_channels += len(channels)
    print(f"check_observability: {path}: {len(runs)} runs, "
          f"{total_channels} channels, window {window_cycles} cycles")


def check_profile(doc: dict, path: str, required: bool) -> None:
    profile = doc.get("profile")
    if profile is None:
        if required:
            fail(f"{path}: no profile section (--profile-required)")
        return
    check_no_unknown_keys(profile, PROFILE_TOP_KEYS, path)
    if profile.get("schema") != "vsgpu-profile-v1":
        fail(f"{path}: profile schema is not vsgpu-profile-v1")
    for key in ("runs", "cycles", "sampled_cycles", "loop_ns"):
        if not isinstance(profile.get(key), int) or profile[key] <= 0:
            fail(f"{path}: profile '{key}' is not a positive int")
    stages = profile.get("stages")
    names = [s.get("name") for s in stages]
    if names != list(PROFILE_STAGES):
        fail(f"{path}: profile stages {names} != expected "
             f"{list(PROFILE_STAGES)}")
    for stage in stages:
        hist = stage.get("hist")
        if not isinstance(hist, list) or len(hist) != 24:
            fail(f"{path}: stage '{stage['name']}' hist is not "
                 f"24 buckets")
        if sum(hist) != stage.get("samples"):
            fail(f"{path}: stage '{stage['name']}' hist does not "
                 f"sum to its sample count")
    by_name = {s["name"]: s for s in stages}
    loop_ns = sum(by_name[n]["ns"] for n in PROFILE_LOOP_STAGES)
    coverage = loop_ns / profile["loop_ns"]
    if coverage < PROFILE_MIN_LOOP_COVERAGE:
        fail(f"{path}: profile loop stages cover only "
             f"{coverage:.1%} of sampled loop time "
             f"(floor {PROFILE_MIN_LOOP_COVERAGE:.0%})")
    print(f"check_observability: {path}: profile covers "
          f"{coverage:.1%} of loop time over "
          f"{profile['sampled_cycles']} sampled cycles")


def check_flight(path: str) -> None:
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    check_no_unknown_keys(doc, FLIGHT_TOP_KEYS, path)
    if doc.get("schema") != "vsgpu-flight-v1":
        fail(f"{path}: schema is not vsgpu-flight-v1")
    fp = doc.get("config_fingerprint", "")
    if len(fp) != 16 or any(c not in "0123456789abcdef" for c in fp):
        fail(f"{path}: config_fingerprint '{fp}' is not 16 hex")
    if not doc.get("subject"):
        fail(f"{path}: empty subject")
    records = doc.get("records")
    if not isinstance(records, list) or not records:
        fail(f"{path}: empty records array")
    if len(records) > doc.get("capacity", 0):
        fail(f"{path}: more records than capacity")
    if doc.get("recorded", 0) < len(records):
        fail(f"{path}: recorded count below held records")
    last_cycle = -1
    for rec in records:
        if not rec.get("tag"):
            fail(f"{path}: record without tag: {rec}")
        if rec.get("cycle", -1) < last_cycle:
            fail(f"{path}: record cycles go backwards at {rec}")
        last_cycle = rec["cycle"]
    print(f"check_observability: {path}: {len(records)} records, "
          f"subject '{doc['subject']}'")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--stats")
    parser.add_argument("--trace")
    parser.add_argument("--summary")
    parser.add_argument("--timeseries")
    parser.add_argument("--allow-schedule-dependent",
                        action="store_true")
    parser.add_argument("--profile-required", action="store_true")
    parser.add_argument("--flight")
    args = parser.parse_args()

    if not (args.stats or args.timeseries or args.flight
            or args.trace):
        parser.error("pass at least one of --stats, --trace, "
                     "--timeseries, --flight")
    if args.summary and not args.stats:
        parser.error("--summary needs --stats (the manifests are "
                     "cross-checked)")
    if args.profile_required and not args.stats:
        parser.error("--profile-required needs --stats (the profile "
                     "section lives in the stats dump)")

    if args.stats:
        fingerprint = check_stats(args.stats)
        with open(args.stats, encoding="utf-8") as fh:
            check_profile(json.load(fh), args.stats,
                          args.profile_required)
        if args.summary:
            check_summary(args.summary, fingerprint)
    if args.trace:
        check_trace(args.trace)
    if args.timeseries:
        check_timeseries(args.timeseries,
                         args.allow_schedule_dependent)
    if args.flight:
        check_flight(args.flight)
    print("check_observability: OK")


if __name__ == "__main__":
    main()
